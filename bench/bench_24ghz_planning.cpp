// §4.5.1 — 2.4 GHz vs 5 GHz planning behaviour.
//
// Only three non-overlapping channels exist at 2.4 GHz and utilization runs
// far higher (Fig. 2), so "even small variations can reduce NetP by half"
// and TurboCA responds with a much larger switch penalty on that band (and
// whenever utilization exceeds 90 %). This bench plans the same physical
// deployment's two radios and checks:
//
//   * 2.4 GHz assignments stay within {1, 6, 11};
//   * the per-AP switch rate under churn is lower at 2.4 GHz than 5 GHz
//     despite the dirtier spectrum (the penalty at work);
//   * turning the band-specific penalty off visibly raises 2.4 GHz churn.

#include <iostream>

#include "bench_util.hpp"
#include "core/turboca/service.hpp"
#include "workload/topology.hpp"
#include "workload/traffic.hpp"

using namespace w11;

namespace {

std::unique_ptr<flowsim::Network> radio(Band band) {
  workload::CampusConfig cc;
  cc.band = band;
  cc.n_aps = 40;
  cc.buildings = 5;
  cc.seed = 81;
  cc.clients_per_ap_mean = band == Band::G2_4 ? 4.0 : 7.0;
  cc.offered_per_client_mbps = band == Band::G2_4 ? 1.0 : 1.5;
  // 2.4 GHz: dense external interference (Fig. 2's utilization gap).
  cc.interferers_per_building = band == Band::G2_4 ? 6.0 : 2.0;
  return workload::make_campus(cc);
}

struct RadioOutcome {
  int business_switches = 0;
  double median_util = 0.0;
  bool channels_legal = true;
};

RadioOutcome run(Band band, bool band_penalty) {
  auto net = radio(band);
  turboca::NetworkHooks hooks;
  hooks.scan = [&net] { return net->scan(); };
  hooks.current_plan = [&net] { return net->current_plan(); };
  hooks.apply_plan = [&net](const ChannelPlan& p) { net->apply_plan(p); };

  turboca::Params params;
  if (!band_penalty) params.switch_penalty_24ghz = params.switch_penalty;
  turboca::TurboCaService svc(params, {}, hooks, Rng(7));
  net->set_load_factor(workload::diurnal_factor(0.0));
  svc.run_now({2, 1, 0});

  Rng churn(17);
  RadioOutcome out;
  int switches_at_9 = 0;
  Samples utils;
  for (int step = 0; step < 96; ++step) {
    const double hour = step * 0.25;
    net->set_load_factor(workload::diurnal_factor(hour));
    if (step % 4 == 0) net->mutate_interferers(churn);
    svc.advance_to(time::minutes(15 * step));
    if (step == 36) switches_at_9 = net->total_switches();
    if (hour >= 9.0 && hour < 18.0 && step % 8 == 0) {
      const auto ev = net->evaluate();
      for (const auto& m : ev.per_ap) utils.add(m.utilization);
    }
  }
  out.business_switches = net->total_switches() - switches_at_9;
  out.median_util = utils.median();
  for (const auto& ap : net->aps()) {
    if (band == Band::G2_4) {
      out.channels_legal &= ap.channel.number == 1 || ap.channel.number == 6 ||
                            ap.channel.number == 11;
      out.channels_legal &= ap.channel.width == ChannelWidth::MHz20;
    } else {
      out.channels_legal &= ap.channel.band == Band::G5;
    }
  }
  return out;
}

}  // namespace

int main() {
  print_banner("§4.5.1", "2.4 GHz vs 5 GHz planning: utilization and switch damping");

  const RadioOutcome g24 = run(Band::G2_4, true);
  const RadioOutcome g5 = run(Band::G5, true);
  const RadioOutcome g24_nopenalty = run(Band::G2_4, false);

  TablePrinter t({"radio", "median util (business hrs)", "switches (9am-)",
                  "legal channels"});
  t.add_row("2.4GHz (band penalty)", g24.median_util, g24.business_switches,
            g24.channels_legal ? "yes" : "NO");
  t.add_row("5GHz", g5.median_util, g5.business_switches,
            g5.channels_legal ? "yes" : "NO");
  t.add_row("2.4GHz (penalty off)", g24_nopenalty.median_util,
            g24_nopenalty.business_switches,
            g24_nopenalty.channels_legal ? "yes" : "NO");
  t.print();

  bench::paper_note("higher 2.4GHz utilization would drive more switches; TurboCA damps them with a larger penalty (§4.5.1)");
  bench::shape_check("2.4 GHz assignments confined to 1/6/11 at 20 MHz",
                     g24.channels_legal && g24_nopenalty.channels_legal);
  bench::shape_check("2.4 GHz runs hotter than 5 GHz",
                     g24.median_util > g5.median_util);
  bench::shape_check("band penalty suppresses business-hours churn at 2.4 GHz",
                     g24.business_switches <= g24_nopenalty.business_switches);
  return bench::finish();
}
