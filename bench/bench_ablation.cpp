// Ablations for the design decisions DESIGN.md calls out (D1-D6).
//
// D1  NodeP product vs sum aggregation (single-node-failure avoidance)
// D2  hop-limit schedule: i=0-only vs full 0/1/2 cadence
// D3  load-weighted AP pick in NBO line 8 vs uniform
// D4  FastACK contiguity queue vs naive per-MPDU acking
// D5  receive-window rewriting on vs off
// D6  client TCP ACK suppression on vs off
// D7  A-MSDU bundling on top of A-MPDU (§5.1's second aggregation type)

#include <cmath>
#include <iostream>
#include <type_traits>
#include <utility>

#include "bench_util.hpp"
#include "core/turboca/plan_context.hpp"
#include "core/turboca/service.hpp"
#include "exec/task_pool.hpp"
#include "flowsim/scan_index.hpp"
#include "scenario/testbed.hpp"
#include "workload/topology.hpp"

using namespace w11;

namespace {

// Each ablation contrasts two independent simulations (own campus, own
// RNGs); run the pair as two pool tasks. parallel_map returns in index
// order, so the printed tables and shape checks are identical at any
// worker count.
template <class F>
auto run_pair(F&& f) {
  using T = std::invoke_result_t<F&, bool>;
  auto r = exec::TaskPool::global().parallel_map<T>(
      2, [&](std::size_t i) { return f(i == 0); });
  return std::pair<T, T>{std::move(r[0]), std::move(r[1])};
}

// ---------------------------------------------------------------- D1 ----
void d1_product_vs_sum() {
  std::cout << "\n[D1] NetP product (log-sum) vs plain sum aggregation\n";
  // Three APs: plan X starves AP c completely but over-serves a & b; plan Y
  // is balanced. A sum metric prefers X; the product (the paper's choice)
  // must prefer Y because one starved NodeP collapses the whole product.
  const turboca::Params params;
  auto scan_with_util = [&](std::uint32_t id, double util36, double util149) {
    ApScan s;
    s.id = ApId{id};
    s.current = Channel{Band::G5, 36, ChannelWidth::MHz20};
    s.max_width = ChannelWidth::MHz20;
    s.has_clients = true;
    s.load_by_width[ChannelWidth::MHz20] = 2.0;
    s.external_util[36] = util36;
    s.external_util[149] = util149;
    for (const Channel& c : channels::us_catalog(Band::G5, ChannelWidth::MHz20)) {
      s.quality[c.number] = 1.0;
      if (c.number != 36 && c.number != 149) s.external_util[c.number] = 1.0;
    }
    return s;
  };
  // AP2 hears channel 36 saturated; 149 clean. AP0/AP1 see both mild.
  std::vector<ApScan> scans{scan_with_util(0, 0.1, 0.3),
                            scan_with_util(1, 0.1, 0.3),
                            scan_with_util(2, 0.999, 0.0)};
  const Channel c36{Band::G5, 36, ChannelWidth::MHz20};
  const Channel c149{Band::G5, 149, ChannelWidth::MHz20};
  const ChannelPlan starving{{ApId{0}, c36}, {ApId{1}, c36}, {ApId{2}, c36}};
  const ChannelPlan balanced{{ApId{0}, c36}, {ApId{1}, c36}, {ApId{2}, c149}};

  // One ScanIndex for the whole ablation; both metrics evaluate against it.
  const flowsim::ScanIndex index(scans, params.neighbor_rssi_floor);
  auto netp_log = [&](const ChannelPlan& p) {
    turboca::PlanContext ctx(index, params, p);
    return ctx.net_p_log();
  };
  auto netp_sum = [&](const ChannelPlan& p) {
    turboca::PlanContext ctx(index, params, p);
    double sum = 0.0;
    for (std::size_t i = 0; i < index.size(); ++i)
      sum += std::exp(ctx.node_p_log(i, p.at(index.scan(i).id)) / 2.0);
    return sum;  // linearized
  };
  std::cout << "  product(log): starving=" << netp_log(starving)
            << " balanced=" << netp_log(balanced) << "\n";
  std::cout << "  sum:          starving=" << netp_sum(starving)
            << " balanced=" << netp_sum(balanced) << "\n";
  bench::shape_check("D1: product metric rejects the starving plan",
                     netp_log(balanced) > netp_log(starving));
}

// ---------------------------------------------------------------- D2/D3 --
turboca::NetworkHooks hooks_for(flowsim::Network& net) {
  turboca::NetworkHooks h;
  h.scan = [&net] { return net.scan(); };
  h.current_plan = [&net] { return net.current_plan(); };
  h.apply_plan = [&net](const ChannelPlan& p) { net.apply_plan(p); };
  return h;
}

void d2_hop_schedule() {
  std::cout << "\n[D2] i=0-only vs full i=2,1,0 schedule (local-optimum escape)\n";
  auto final_netp = [&](std::vector<int> levels) {
    workload::CampusConfig cc;
    cc.n_aps = 50;
    cc.buildings = 5;
    cc.seed = 83;
    auto net = workload::make_campus(cc);
    turboca::TurboCaService svc({}, {}, hooks_for(*net), Rng(7));
    svc.run_now(levels);
    return svc.stats().last_netp_log;
  };
  const auto [only0, full] = run_pair([&](bool first) {
    return final_netp(first ? std::vector<int>{0} : std::vector<int>{2, 1, 0});
  });
  std::cout << "  NetP(log): i=0 only = " << only0 << ", full schedule = " << full
            << "\n";
  bench::shape_check("D2: deeper hop limits find plans at least as good",
                     full >= only0 - 1e-6);
}

void d3_load_weighted_pick() {
  std::cout << "\n[D3] load-weighted vs uniform AP pick in NBO\n";
  auto heavy_ap_share = [&](bool weighted) {
    workload::CampusConfig cc;
    cc.n_aps = 40;
    cc.buildings = 4;
    cc.seed = 89;
    auto net = workload::make_campus(cc);
    // Make a handful of APs far heavier than the rest.
    for (std::size_t i = 0; i < 5; ++i)
      net->set_client_load(net->aps()[i * 7].id, 8.0);
    turboca::Params p;
    p.load_weighted_pick = weighted;
    turboca::TurboCaService svc(p, {}, hooks_for(*net), Rng(11));
    svc.run_now({1, 0});
    const auto ev = net->evaluate();
    double share = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
      const auto& m = ev.of(net->aps()[i * 7].id);
      share += m.demand_airtime > 0
                   ? std::min(1.0, m.airtime_share / m.demand_airtime)
                   : 1.0;
    }
    return share / 5.0;  // mean demand fulfilment of the heavy APs
  };
  const auto [weighted, uniform] =
      run_pair([&](bool first) { return heavy_ap_share(first); });
  std::cout << "  heavy-AP demand fulfilment: weighted=" << weighted
            << " uniform=" << uniform << "\n";
  bench::shape_check("D3: load weighting serves heavy APs at least as well",
                     weighted >= uniform - 0.02);
}

// ---------------------------------------------------------------- D4-D6 --
struct FaOutcome {
  double throughput = 0.0;
  std::uint64_t local_retx = 0;
  std::uint64_t rwnd_overflows = 0;
  std::uint64_t sender_rtos = 0;
};

FaOutcome run_fastack(fastack::FastAckAgent::Config agent, double bad_hints,
                      std::size_t receiver_buffer_kb = 1024,
                      int n_clients = 10) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = n_clients;
  cfg.duration = time::seconds(5);
  cfg.fastack = {true};
  cfg.agent = agent;
  cfg.bad_hint_rate = bad_hints;
  cfg.receiver.buffer = units::kilobytes(static_cast<std::int64_t>(receiver_buffer_kb));
  cfg.seed = 97;
  scenario::Testbed tb(cfg);
  tb.run();
  FaOutcome out;
  out.throughput = tb.aggregate_throughput_mbps();
  out.local_retx = tb.agent(0)->stats().local_retransmits;
  for (int c = 0; c < n_clients; ++c) {
    const auto* rx = tb.client(0, c).receiver(FlowId{static_cast<std::uint32_t>(c)});
    if (rx) out.rwnd_overflows += rx->stats().window_overflow_drops;
    out.sender_rtos += tb.sender(0, c).stats().rto_events;
  }
  return out;
}

void d4_contiguity() {
  std::cout << "\n[D4] contiguity queue vs naive per-MPDU fast-acking (1.5% bad hints)\n";
  fastack::FastAckAgent::Config naive;
  naive.require_contiguity = false;
  const auto [ctg, nv] = run_pair([&](bool first) {
    return run_fastack(first ? fastack::FastAckAgent::Config{} : naive, 0.015);
  });
  std::cout << "  contiguous: thr=" << ctg.throughput << " Mbps, local retx="
            << ctg.local_retx << ", sender RTOs=" << ctg.sender_rtos << "\n";
  std::cout << "  naive:      thr=" << nv.throughput << " Mbps, local retx="
            << nv.local_retx << ", sender RTOs=" << nv.sender_rtos << "\n";
  bench::shape_check("D4: contiguity keeps throughput at least as high",
                     ctg.throughput >= nv.throughput * 0.95);
}

void d5_rwnd_rewrite() {
  // Overflow needs (a) a hole at the client (a bad 802.11 hint) so data
  // accumulates out-of-order, and (b) a fast flow against a small buffer.
  std::cout << "\n[D5] rwnd rewriting on vs off (128 kB client buffers, 5% bad hints, 2 fast flows)\n";
  fastack::FastAckAgent::Config no_rewrite;
  no_rewrite.rewrite_rwnd = false;
  const auto [on, off] = run_pair([&](bool first) {
    return run_fastack(first ? fastack::FastAckAgent::Config{} : no_rewrite,
                       0.05, 128, 2);
  });
  std::cout << "  rewrite on:  thr=" << on.throughput
            << " Mbps, receiver overflow drops=" << on.rwnd_overflows << "\n";
  std::cout << "  rewrite off: thr=" << off.throughput
            << " Mbps, receiver overflow drops=" << off.rwnd_overflows << "\n";
  bench::shape_check("D5: disabling rwnd rewriting causes receiver overflow",
                     off.rwnd_overflows > on.rwnd_overflows);
}

void d6_suppression() {
  std::cout << "\n[D6] client TCP ACK suppression on vs off\n";
  fastack::FastAckAgent::Config no_suppress;
  no_suppress.suppress_client_acks = false;
  const auto [on, off] = run_pair([&](bool first) {
    return run_fastack(first ? fastack::FastAckAgent::Config{} : no_suppress,
                       0.0);
  });
  std::cout << "  suppression on:  thr=" << on.throughput << " Mbps\n";
  std::cout << "  suppression off: thr=" << off.throughput
            << " Mbps (duplicate cumulative ACKs reach the sender)\n";
  bench::shape_check("D6: both configurations remain functional",
                     on.throughput > 50.0 && off.throughput > 50.0);
  bench::shape_check("D6: suppression does not hurt throughput",
                     on.throughput >= off.throughput * 0.9);
}

void d7_amsdu() {
  std::cout << "\n[D7] A-MSDU bundling (4 MSDUs/MPDU) on top of A-MPDU, FastACK on\n";
  auto thr = [](int k) {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = 8;
    cfg.duration = time::seconds(5);
    cfg.fastack = {true};
    cfg.amsdu_max_msdus = k;
    cfg.client_max_dist_m = 15.0;  // high MCS: the 64-MPDU cap binds
    cfg.seed = 101;
    scenario::Testbed tb(cfg);
    tb.run();
    return tb.aggregate_throughput_mbps();
  };
  const auto [plain, bundled] =
      run_pair([&](bool first) { return thr(first ? 1 : 4); });
  std::cout << "  A-MPDU only:        " << plain << " Mbps\n";
  std::cout << "  A-MSDU x4 + A-MPDU: " << bundled << " Mbps\n";
  bench::shape_check("D7: A-MSDU bundling adds throughput when the MPDU cap binds",
                     bundled > plain * 1.05);
}

}  // namespace

int main() {
  print_banner("Ablations", "design decisions D1-D6 (DESIGN.md §5)");
  d1_product_vs_sum();
  d2_hop_schedule();
  d3_load_weighted_pick();
  d4_contiguity();
  d5_rwnd_rewrite();
  d6_suppression();
  d7_amsdu();
  return bench::finish();
}
