// Chaos soak at evaluation scale: random deterministic fault plans fired
// into both halves of the system, reporting what the ISSUE's robustness bar
// demands — every flow completes or is cleanly abandoned, no AP is ever
// stranded on a DFS channel, bookkeeping stays exact under degraded inputs,
// and identical (sim seed, plan seed) pairs reproduce bit-for-bit.
//
// The packet-level half stresses FastACK against AP crashes and wired-link
// flaps; the polling half stresses TurboCA and the collector against radar,
// scan degradation, telemetry drops and clock glitches. Both are larger
// sweeps of the soak harness the unit tests run in miniature.

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/turboca/service.hpp"
#include "exec/task_pool.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/scan_fault.hpp"
#include "flowsim/network.hpp"
#include "scenario/testbed.hpp"
#include "telemetry/collector.hpp"
#include "workload/topology.hpp"

using namespace w11;
using fault::DegradedScanHooks;
using fault::FaultHandlers;
using fault::FaultInjector;
using fault::FaultPlan;

namespace {

// ------------------------------------------------- packet-level testbed --

struct TestbedOutcome {
  std::uint64_t bytes = 0;        // total across all flows
  std::vector<fault::FaultEvent> log;
  int faults = 0;
  std::uint64_t bypass = 0;
  std::uint64_t flows_lost = 0;
  int flows_progressed = 0;
  int flows_clean_stall = 0;
  int flows_wedged = 0;  // neither progressed nor stalled cleanly — a bug
};

TestbedOutcome run_testbed(std::uint64_t sim_seed, std::uint64_t plan_seed,
                           bool with_faults) {
  TestbedOutcome out;
  scenario::TestbedConfig cfg;
  cfg.n_aps = 2;
  cfg.n_clients_per_ap = 2;
  cfg.duration = time::seconds(5);
  cfg.warmup = time::millis(200);
  cfg.fastack = {true};
  cfg.agent.max_flows = 8;
  cfg.seed = sim_seed;
  scenario::Testbed tb(cfg);

  FaultPlan::RandomConfig rc;
  rc.horizon = time::seconds(3);
  rc.n_aps = 2;
  rc.n_links = 2;
  rc.n_events = 6;
  rc.allow_radar = false;
  rc.allow_scan_faults = false;
  rc.allow_telemetry_faults = false;
  rc.allow_clock_faults = false;
  rc.max_outage = time::millis(300);
  FaultPlan plan =
      with_faults ? FaultPlan::random(plan_seed, rc) : FaultPlan("none");

  FaultHandlers h;
  h.ap_crash = [&](int ap) { tb.crash_ap(ap); };
  h.link_down = [&](int l) { tb.down_link(l).set_up(false); };
  h.link_up = [&](int l) { tb.down_link(l).set_up(true); };
  FaultInjector inj(plan, h);
  inj.arm(tb.simulator());

  // Snapshot after the chaos window: "eventually completes" is measured as
  // forward progress from here to the end of the run.
  std::vector<std::uint64_t> snap(4);
  tb.simulator().schedule_at(time::seconds(4), [&] {
    for (int i = 0; i < 4; ++i)
      snap[static_cast<std::size_t>(i)] =
          tb.client(i / 2, i % 2).bytes_delivered();
  });
  tb.run();

  for (int i = 0; i < 4; ++i) {
    const std::uint64_t fin = tb.client(i / 2, i % 2).bytes_delivered();
    out.bytes += fin;
    const auto& snd = tb.sender(i / 2, i % 2);
    if (fin > snap[static_cast<std::size_t>(i)]) {
      ++out.flows_progressed;
    } else if (snd.peer_rwnd() < 1460 || snd.stats().zero_window_probes > 0) {
      // Post-crash bimodality: bytes fast-acked then lost with the AP exist
      // nowhere, so the flow parks in zero-window persist — abandoned
      // cleanly, not deadlocked silently (see DESIGN.md, "Fault model").
      ++out.flows_clean_stall;
    } else {
      ++out.flows_wedged;
    }
  }
  for (int a = 0; a < 2; ++a) {
    out.bypass += tb.agent(a)->stats().bypass_activations;
    out.flows_lost += tb.agent(a)->stats().flows_lost_to_crash;
  }
  out.faults = inj.stats().fired;
  out.log = inj.log();
  return out;
}

// ------------------------------------------------------- polling harness --

struct PollOutcome {
  ChannelPlan plan;
  std::vector<fault::FaultEvent> log;
  int faults = 0;
  int runs = 0;
  int skips = 0;  // empty + stale scan skips
  int clock_anomalies = 0;
  int evacuations = 0;
  int switches = 0;
  std::uint64_t records_written = 0;
  std::uint64_t records_dropped = 0;
  bool dfs_safe = true;     // no AP stranded on DFS without non-DFS fallback
  bool accounting_ok = true;  // written + dropped == polls
};

PollOutcome run_polling(std::uint64_t net_seed, std::uint64_t plan_seed) {
  PollOutcome out;
  workload::CampusConfig cc;
  cc.n_aps = 16;
  cc.seed = net_seed;
  auto net = workload::make_campus(cc);

  turboca::NetworkHooks inner;
  inner.scan = [&net] { return net->scan(); };
  inner.current_plan = [&net] { return net->current_plan(); };
  inner.apply_plan = [&net](const ChannelPlan& p) { net->apply_plan(p); };

  Time clock{};
  DegradedScanHooks deg(inner, [&clock] { return clock; },
                        Rng(net_seed * 31 + 7));
  turboca::TurboCaService::Schedule sched;
  sched.max_scan_age = time::hours(1);
  turboca::TurboCaService svc({}, sched, deg.hooks(), Rng(net_seed));
  telemetry::NetworkCollector coll;

  const Time horizon = time::hours(12);
  const Time step = time::minutes(15);

  FaultPlan::RandomConfig rc;
  rc.horizon = horizon;
  rc.n_aps = cc.n_aps;
  rc.n_events = 12;
  rc.allow_ap_crash = false;
  rc.allow_link_faults = false;
  FaultPlan plan = FaultPlan::random(plan_seed, rc);

  Time last_observed{};
  FaultHandlers h;
  h.radar = [&](int ap) {
    net->radar_event(ApId{static_cast<std::uint32_t>(ap)});
  };
  h.scan_degrade = [&](fault::ScanFaultMode m, double keep) {
    deg.set_mode(m, keep);
  };
  h.telemetry_drop = [&](int n) { coll.drop_next(n); };
  h.clock_jump = [&](Time back) { svc.advance_to(last_observed - back); };
  FaultInjector inj(plan, h);

  std::uint64_t polls = 0;
  for (Time t{}; t <= horizon; t = t + step, ++polls) {
    clock = t;
    inj.advance_to(t);
    svc.advance_to(t);
    last_observed = t;
    const auto ev = net->evaluate();
    coll.record(*net, ev, t);
  }

  for (const auto& ap : net->aps()) {
    if (ap.channel.is_dfs() &&
        !(ap.dfs_fallback.has_value() && !ap.dfs_fallback->is_dfs()))
      out.dfs_safe = false;
  }
  out.accounting_ok =
      coll.records_written() + coll.records_dropped() == polls;
  out.plan = net->current_plan();
  out.log = inj.log();
  out.faults = inj.stats().fired;
  out.runs = svc.stats().runs;
  out.skips = svc.stats().empty_scan_skips + svc.stats().stale_scan_skips;
  out.clock_anomalies = svc.stats().clock_anomalies;
  out.evacuations = net->radar_evacuations();
  out.switches = net->total_switches();
  out.records_written = coll.records_written();
  out.records_dropped = coll.records_dropped();
  return out;
}

}  // namespace

int main() {
  print_banner("chaos", "Deterministic fault injection: survival & recovery");

  // --- packet-level sweep -------------------------------------------------
  // Every (sim seed, plan seed) world is independent, so the whole sweep
  // shards across the pool — one run per task, results consumed in the
  // original loop order (parallel_map returns slots in index order).
  exec::TaskPool& pool = exec::TaskPool::global();
  const std::vector<std::uint64_t> sim_seeds = {1, 2, 3, 4};
  const std::vector<std::uint64_t> plan_seeds = {11, 12, 13, 14};
  const std::vector<TestbedOutcome> baselines =
      pool.parallel_map<TestbedOutcome>(sim_seeds.size(), [&](std::size_t i) {
        return run_testbed(sim_seeds[i], 0, /*with_faults=*/false);
      });
  const std::vector<TestbedOutcome> chaos_runs =
      pool.parallel_map<TestbedOutcome>(
          sim_seeds.size() * plan_seeds.size(), [&](std::size_t i) {
            return run_testbed(sim_seeds[i / plan_seeds.size()],
                               plan_seeds[i % plan_seeds.size()],
                               /*with_faults=*/true);
          });

  TablePrinter tt({"sim seed", "plan seed", "faults", "MB total",
                   "baseline MB", "progressed", "clean stall", "wedged",
                   "bypass", "flows lost"});
  int wedged_total = 0;
  int runs_below_floor = 0;
  std::uint64_t chaos_bytes = 0, base_bytes = 0;
  for (std::size_t si = 0; si < sim_seeds.size(); ++si) {
    const TestbedOutcome& base = baselines[si];
    base_bytes += base.bytes;
    for (std::size_t pi = 0; pi < plan_seeds.size(); ++pi) {
      const TestbedOutcome& r = chaos_runs[si * plan_seeds.size() + pi];
      chaos_bytes += r.bytes;
      wedged_total += r.flows_wedged;
      if (r.bytes * 10 < base.bytes) ++runs_below_floor;
      tt.add_row(sim_seeds[si], plan_seeds[pi], r.faults, r.bytes / 1.0e6,
                 base.bytes / 1.0e6, r.flows_progressed, r.flows_clean_stall,
                 r.flows_wedged, r.bypass, r.flows_lost);
    }
  }
  tt.print();

  bench::paper_note(
      "crash/outage recovery is sender-driven end-to-end TCP; FastACK must "
      "only ever fail toward plain forwarding (§5.5.4 corner cases)");
  bench::shape_check(
      "no flow ever wedges: each one progresses or stalls cleanly "
      "(zero-window persist), across every seed x plan combo",
      wedged_total == 0);
  bench::shape_check(
      "every chaos run keeps at least 10% of its fault-free twin's bytes",
      runs_below_floor == 0);
  bench::shape_check("chaos costs throughput (sanity: faults actually bite)",
                     chaos_bytes < base_bytes * static_cast<std::uint64_t>(
                                                    plan_seeds.size()));

  // Reproducibility: identical seeds, identical world — event log and
  // totals. The twin runs execute on different lanes; determinism must
  // survive that too.
  {
    const auto twins = pool.parallel_map<TestbedOutcome>(
        2, [&](std::size_t) { return run_testbed(2, 12, true); });
    const TestbedOutcome& a = twins[0];
    const TestbedOutcome& b = twins[1];
    bench::shape_check(
        "a testbed chaos run is bit-for-bit reproducible from its seeds",
        a.log == b.log && a.bytes == b.bytes && a.bypass == b.bypass &&
            a.flows_lost == b.flows_lost);
  }

  // --- polling sweep ------------------------------------------------------
  std::cout << "\n";
  TablePrinter pt({"net seed", "plan seed", "faults", "runs", "skips",
                   "clock anomalies", "evacuations", "switches", "records",
                   "dropped"});
  bool all_dfs_safe = true, all_accounting_ok = true, any_skip = false;
  int total_runs = 0;
  const std::vector<std::uint64_t> net_seeds = {1, 2};
  const std::vector<std::uint64_t> poll_plan_seeds = {21, 22, 23, 24};
  const std::vector<PollOutcome> poll_runs = pool.parallel_map<PollOutcome>(
      net_seeds.size() * poll_plan_seeds.size(), [&](std::size_t i) {
        return run_polling(net_seeds[i / poll_plan_seeds.size()],
                           poll_plan_seeds[i % poll_plan_seeds.size()]);
      });
  for (std::size_t i = 0; i < poll_runs.size(); ++i) {
    const PollOutcome& r = poll_runs[i];
    all_dfs_safe &= r.dfs_safe;
    all_accounting_ok &= r.accounting_ok;
    any_skip |= r.skips > 0;
    total_runs += r.runs;
    pt.add_row(net_seeds[i / poll_plan_seeds.size()],
               poll_plan_seeds[i % poll_plan_seeds.size()], r.faults, r.runs,
               r.skips, r.clock_anomalies, r.evacuations, r.switches,
               r.records_written, r.records_dropped);
  }
  pt.print();

  bench::paper_note(
      "radar must evacuate within the regulatory deadline and never strand "
      "an AP without a usable channel (§4.5.2)");
  bench::shape_check(
      "no AP ends any run stranded on a DFS channel without a non-DFS "
      "fallback armed",
      all_dfs_safe);
  bench::shape_check(
      "telemetry accounting stays exact under drops: written + dropped == "
      "polls, every run",
      all_accounting_ok);
  bench::shape_check(
      "degraded scans were actually served and skipped (the faults ran)",
      any_skip);
  bench::shape_check("the service kept re-planning through the chaos",
                     total_runs > 0);
  {
    const auto twins = pool.parallel_map<PollOutcome>(
        2, [&](std::size_t) { return run_polling(1, 23); });
    const PollOutcome& a = twins[0];
    const PollOutcome& b = twins[1];
    bench::shape_check(
        "a polling chaos run is bit-for-bit reproducible from its seeds",
        a.log == b.log && a.plan == b.plan && a.switches == b.switches &&
            a.records_written == b.records_written);
  }
  return bench::finish();
}
