// Figure 1: advertised client capabilities, 2015 vs 2017.
//
// Paper: since 2015, 802.11ac clients grew 18 % -> 46 %; 2.4 GHz-only
// devices stayed ~40 %; 2-stream MIMO grew 19 % -> 37 %; 40/80 MHz-capable
// shares grew accordingly (80 % of clients support 40 MHz by 2017).

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "workload/device_population.hpp"

using namespace w11;
using workload::Era;

int main() {
  print_banner("Figure 1", "Advertised client capabilities (1.7M-device population model)");

  constexpr int kDevices = 200'000;
  workload::CapabilityShares s15, s17;
  {
    Rng rng(2015);
    std::vector<ClientCapability> pop;
    pop.reserve(kDevices);
    for (int i = 0; i < kDevices; ++i)
      pop.push_back(workload::sample_client(Era::k2015, rng));
    s15 = workload::summarize(pop);
  }
  {
    Rng rng(2017);
    std::vector<ClientCapability> pop;
    pop.reserve(kDevices);
    for (int i = 0; i < kDevices; ++i)
      pop.push_back(workload::sample_client(Era::k2017, rng));
    s17 = workload::summarize(pop);
  }

  TablePrinter t({"capability", "2015 share", "2017 share", "paper 2015", "paper 2017"});
  t.add_row("802.11ac", s15.ac, s17.ac, 0.18, 0.46);
  t.add_row("2.4GHz only", s15.band24_only, s17.band24_only, "~0.40", "~0.40");
  t.add_row(">=2 spatial streams", s15.two_stream, s17.two_stream, 0.19, 0.37);
  t.add_row(">=40MHz capable", s15.width40, s17.width40, "-", "~0.80");
  t.add_row(">=80MHz capable", s15.width80, s17.width80, "-", "-");
  t.print();

  bench::paper_note("11ac 18%->46%, 2.4-only steady ~40%, 2SS 19%->37%");
  bench::shape_check("802.11ac share grows strongly (>=2x)", s17.ac > 2.0 * s15.ac);
  bench::shape_check("2.4GHz-only share steady (|delta| < 5pp)",
                     std::abs(s17.band24_only - s15.band24_only) < 0.05);
  bench::shape_check("2-stream share roughly doubles",
                     s17.two_stream > 1.6 * s15.two_stream);
  bench::shape_check("~80% of 2017 clients support 40MHz",
                     s17.width40 > 0.70 && s17.width40 < 0.90);
  return bench::finish();
}
