// Figure 2: CDF of channel utilization seen by APs — fleet (networks with
// >=10 APs) vs the dense Meraki HQ office, both bands.
//
// Paper: fleet median utilization ~20 % at 2.4 GHz and ~3 % at 5 GHz;
// the single dense office floor (31-35 APs, 300-400 clients) sees medians
// of ~82 % (2.4 GHz) and ~23 % (5 GHz).

#include <iostream>

#include "bench_util.hpp"
#include "fleet.hpp"
#include "workload/topology.hpp"

using namespace w11;

namespace {

Samples fleet_utilization(Band band) {
  bench::FleetConfig fc;
  fc.band = band;
  fc.networks = 25;
  fc.seed = band == Band::G2_4 ? 24 : 5;
  Samples out;
  for (const auto& net : bench::make_fleet(fc)) {
    const auto ev = net->evaluate();
    for (const auto& m : ev.per_ap) out.add(m.utilization);
  }
  return out;
}

Samples office_utilization(Band band) {
  workload::OfficeConfig oc;
  oc.band = band;
  oc.n_aps = 33;
  oc.n_clients = band == Band::G2_4 ? 140 : 350;  // 2.4-only share
  oc.offered_per_client_mbps = band == Band::G2_4 ? 0.6 : 0.35;
  oc.seed = 71;
  auto net = workload::make_office(oc);
  Rng rng(72);
  workload::randomize_channels(*net, ChannelWidth::MHz20, rng);
  // A dense downtown floor also hears neighbouring offices at 2.4 GHz.
  if (band == Band::G2_4) {
    Rng irng(73);
    for (int k = 0; k < 7; ++k) {
      flowsim::ExternalInterferer intf;
      intf.pos = {irng.uniform(0.0, 120.0), irng.uniform(0.0, 60.0)};
      intf.channel = {Band::G2_4, static_cast<int>(irng.uniform_int(0, 2)) * 5 + 1,
                      ChannelWidth::MHz20};
      intf.duty_cycle = irng.uniform(0.2, 0.45);
      net->add_interferer(intf);
    }
  }
  return net->sample_utilization(net->evaluate());
}

}  // namespace

int main() {
  print_banner("Figure 2", "CDF of AP-observed channel utilization: fleet vs dense office");

  const Samples f24 = fleet_utilization(Band::G2_4);
  const Samples f5 = fleet_utilization(Band::G5);
  const Samples o24 = office_utilization(Band::G2_4);
  const Samples o5 = office_utilization(Band::G5);

  bench::print_cdf("fleet 2.4GHz", f24);
  bench::print_cdf("fleet 5GHz", f5);
  bench::print_cdf("office 2.4GHz", o24);
  bench::print_cdf("office 5GHz", o5);

  TablePrinter t({"population", "median util", "paper median"});
  t.add_row("fleet 2.4GHz", f24.median(), 0.20);
  t.add_row("fleet 5GHz", f5.median(), 0.03);
  t.add_row("office 2.4GHz", o24.median(), 0.82);
  t.add_row("office 5GHz", o5.median(), 0.23);
  t.print();

  bench::paper_note("fleet medians 20% / 3%; HQ office 82% / 23%");
  bench::shape_check("2.4GHz runs far hotter than 5GHz fleet-wide (>=3x)",
                     f24.median() > 3.0 * f5.median());
  bench::shape_check("fleet 5GHz median is single-digit percent", f5.median() < 0.10);
  bench::shape_check("office 2.4GHz nearly saturated (>60%)", o24.median() > 0.60);
  bench::shape_check("office utilization >> fleet utilization on both bands",
                     o24.median() > 2.0 * f24.median() &&
                         o5.median() > 2.0 * f5.median());
  return bench::finish();
}
