// Figure 3 (+ §3.2.3): CDF of same-channel interfering APs per AP, and the
// per-AP peak client-density buckets.
//
// Paper: at 2.4 GHz the median AP sees 7 same-channel interferers and 90 %
// see fewer than 29; at 5 GHz the median is 5 and 90 % see fewer than 14.
// Client density: 33 % of APs peak at <=5 clients, 22 % at 6-10, 20 % at
// 11-20, 25 % at >=21 (max observed 338).

#include <iostream>

#include "bench_util.hpp"
#include "fleet.hpp"
#include "workload/device_population.hpp"

using namespace w11;

namespace {

Samples interferers(Band band) {
  bench::FleetConfig fc;
  fc.band = band;
  fc.networks = 25;
  fc.seed = band == Band::G2_4 ? 14 : 15;
  Samples out;
  for (const auto& net : bench::make_fleet(fc)) {
    const Samples s = net->sample_cochannel_interferers();
    for (double v : s.sorted()) out.add(v);
  }
  return out;
}

}  // namespace

int main() {
  print_banner("Figure 3", "CDF of same-channel interfering APs; client density buckets");

  const Samples i24 = interferers(Band::G2_4);
  const Samples i5 = interferers(Band::G5);
  bench::print_cdf("2.4GHz interferers", i24);
  bench::print_cdf("5GHz interferers", i5);

  TablePrinter t({"band", "median", "p90", "paper median", "paper p90"});
  t.add_row("2.4GHz", i24.median(), i24.quantile(0.9), 7, "<29");
  t.add_row("5GHz", i5.median(), i5.quantile(0.9), 5, "<14");
  t.print();

  bench::paper_note("2.4GHz median 7 (p90 <29); 5GHz median 5 (p90 <14)");
  bench::shape_check("2.4GHz is more crowded than 5GHz at the median",
                     i24.median() >= i5.median());
  bench::shape_check("2.4GHz p90 below ~29", i24.quantile(0.9) < 29.0);
  bench::shape_check("5GHz p90 below ~14", i5.quantile(0.9) < 14.0);
  bench::shape_check("median interferer counts in the single digits",
                     i24.median() < 10.0 && i5.median() < 10.0);

  // §3.2.3 client-density buckets over 41k APs.
  std::cout << "\n  Client density (share of APs by peak associated clients):\n";
  Rng rng(16);
  constexpr int kAps = 41'000;
  int b[4] = {0, 0, 0, 0};
  int max_seen = 0;
  for (int i = 0; i < kAps; ++i) {
    const int d = workload::sample_client_density(rng);
    max_seen = std::max(max_seen, d);
    if (d <= 5) ++b[0];
    else if (d <= 10) ++b[1];
    else if (d <= 20) ++b[2];
    else ++b[3];
  }
  TablePrinter d({"bucket", "share %", "paper %"});
  d.add_row("<=5", 100.0 * b[0] / kAps, 33);
  d.add_row("6-10", 100.0 * b[1] / kAps, 22);
  d.add_row("11-20", 100.0 * b[2] / kAps, 20);
  d.add_row(">=21", 100.0 * b[3] / kAps, 25);
  d.print();
  std::cout << "  max observed density: " << max_seen << " (paper: 338)\n";
  bench::shape_check("client-density buckets within 3pp of paper",
                     std::abs(100.0 * b[0] / kAps - 33) < 3 &&
                         std::abs(100.0 * b[3] / kAps - 25) < 3);
  return bench::finish();
}
