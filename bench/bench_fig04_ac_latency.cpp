// Figure 4 (+ §3.2.4 loss table): latency and loss by 802.11e access
// category.
//
// Paper: from least to most aggressive — BK, BE, VI, VO — more aggressive
// categories see lower link-layer latency; loss was 5.0 % (BK), 2.7 % (BE),
// 0.2 % (VI), 0.9 % (VO), ~3 % overall; the field mix is 14 % BK / 86 % BE.

#include <iostream>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"
#include "workload/traffic.hpp"

using namespace w11;

int main() {
  print_banner("Figure 4", "802.11 latency and loss by access category");

  // 16 clients, four per AC, stretched to the cell edge so PER-driven
  // retries genuinely exhaust (the field's §3.2.4 loss came from marginal
  // links, and aggressive ACs retry fewer times before giving up).
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 16;
  cfg.duration = time::seconds(8);
  cfg.client_min_dist_m = 30.0;
  cfg.client_max_dist_m = 58.0;
  cfg.rate_control.fading_sigma = 4.0;  // deep fades -> occasional loss
  cfg.seed = 31;
  cfg.dscp_of = [](int c) {
    switch (c % 4) {
      case 0: return workload::dscp_for(AccessCategory::BK);
      case 1: return workload::dscp_for(AccessCategory::BE);
      case 2: return workload::dscp_for(AccessCategory::VI);
      default: return workload::dscp_for(AccessCategory::VO);
    }
  };
  scenario::Testbed tb(cfg);
  tb.run();
  const auto& st = tb.ap(0).stats();

  TablePrinter t({"AC", "median latency (ms)", "p90 (ms)", "mean (ms)",
                  "MPDUs acked", "loss %", "paper loss %"});
  const double paper_loss[4] = {5.0, 2.7, 0.2, 0.9};
  std::array<double, 4> med{};
  std::array<double, 4> loss{};
  for (AccessCategory ac : kAllAccessCategories) {
    const auto i = static_cast<std::size_t>(ac);
    const Samples& s = st.latency_80211_by_ac[i];
    const auto acked = st.mpdus_acked_by_ac[i];
    // Loss = retry exhaustion over the air + queue overflow at the AP.
    const auto lost = st.mpdus_lost_by_ac[i] + st.queue_drops_by_ac[i];
    loss[i] = acked + lost > 0
                  ? 100.0 * static_cast<double>(lost) /
                        static_cast<double>(acked + lost)
                  : 0.0;
    med[i] = s.count() ? s.median() : 0.0;
    t.add_row(to_string(ac), med[i], s.count() ? s.quantile(0.9) : 0.0,
              s.count() ? s.mean() : 0.0, acked, loss[i], paper_loss[i]);
  }
  t.print();

  std::uint64_t total_acked = 0, total_lost = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    total_acked += st.mpdus_acked_by_ac[i];
    total_lost += st.mpdus_lost_by_ac[i] + st.queue_drops_by_ac[i];
  }
  std::cout << "  overall loss = "
            << 100.0 * static_cast<double>(total_lost) /
                   static_cast<double>(total_acked + total_lost)
            << " %  (paper: 3.0 %)\n";

  constexpr auto BK = static_cast<std::size_t>(AccessCategory::BK);
  constexpr auto BE = static_cast<std::size_t>(AccessCategory::BE);
  constexpr auto VI = static_cast<std::size_t>(AccessCategory::VI);
  constexpr auto VO = static_cast<std::size_t>(AccessCategory::VO);
  bench::paper_note("aggressive ACs (VO/VI) see lower latency; BK the highest");
  bench::paper_note("loss order: BK 5.0 > BE 2.7 > VO 0.9 > VI 0.2 %. Here BK loss is underestimated: all modelled traffic is TCP, which throttles before BK queues overflow, whereas field BK includes non-adaptive traffic");
  bench::shape_check("latency ordering VO <= VI < BE < BK",
                     med[VO] <= med[VI] * 1.1 && med[VI] < med[BE] &&
                         med[BE] < med[BK]);
  bench::shape_check("VO loses more than VI (retry limit 4 exhausts faster at higher attempt rate)",
                     loss[VO] > loss[VI]);
  bench::shape_check("losses are sub-percent to a-few-percent (paper: 0.2-5%)",
                     loss[BE] > 0.05 && loss[BE] < 6.0);
  return bench::finish();
}
