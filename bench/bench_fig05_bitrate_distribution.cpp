// Figure 5: bit-rate distribution across the 5 GHz client fleet.
//
// Paper: over one day of fleet-wide 5 GHz traffic, most selected rates fall
// between 256 and 512 Mbps (typical 2-stream 802.11ac at 40/80 MHz with
// real-world SNR).

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "phy/mcs.hpp"
#include "phy/propagation.hpp"
#include "workload/device_population.hpp"

using namespace w11;

int main() {
  print_banner("Figure 5", "Selected PHY rate distribution, 5 GHz clients");

  Rng rng(41);
  const PropagationModel prop;
  constexpr int kSamples = 100'000;

  // Rate buckets (Mbps) matching the paper's axis.
  const double edges[] = {0, 64, 128, 256, 512, 1024, 1734};
  constexpr int kBuckets = 6;
  int counts[kBuckets] = {0};
  Samples rates;

  int produced = 0;
  while (produced < kSamples) {
    const ClientCapability cap =
        workload::sample_client(workload::Era::k2017, rng);
    if (!cap.supports_5ghz) continue;  // 5 GHz band only
    // AP channel width as administrators configure it (Table 1).
    const ChannelWidth ap_width =
        workload::sample_configured_width(/*large_network=*/false, rng);
    const ChannelWidth width = std::min(ap_width, cap.max_width);
    // Indoor association distances: mostly close, with a tail.
    const double dist = 2.0 + rng.lognormal(2.0, 0.55);
    const Db snr =
        prop.snr(kApTxPowerDbm, {0, 0}, {dist, 0}, Band::G5, width);
    const int nss = std::min(3, cap.max_nss);
    const auto pick = mcs::select(snr - 2.0, width, nss);
    if (!pick) continue;  // out of range; no rate recorded
    McsIndex idx = *pick;
    idx.mcs = std::min(idx.mcs, cap.to_mcs_capability().max_mcs);
    if (!mcs::valid(idx, width)) idx.mcs -= 1;
    const double rate = mcs::rate(idx, width, cap.short_gi)->mbps();
    rates.add(rate);
    for (int b = 0; b < kBuckets; ++b) {
      if (rate > edges[b] && rate <= edges[b + 1]) {
        ++counts[b];
        break;
      }
    }
    ++produced;
  }

  TablePrinter t({"rate bucket (Mbps)", "share %"});
  int mode_bucket = 0;
  for (int b = 0; b < kBuckets; ++b) {
    t.add_row(std::to_string(static_cast<int>(edges[b])) + "-" +
                  std::to_string(static_cast<int>(edges[b + 1])),
              100.0 * counts[b] / kSamples);
    if (counts[b] > counts[mode_bucket]) mode_bucket = b;
  }
  t.print();
  bench::print_cdf("rate (Mbps)", rates);

  bench::paper_note("most rates between 256-512 Mbps");
  bench::shape_check("modal bucket is 256-512 Mbps", mode_bucket == 3);
  bench::shape_check("median rate within 128-512 Mbps",
                     rates.median() > 128.0 && rates.median() <= 512.0);
  return bench::finish();
}
