// Figure 6: one 802.11ac AP in an office over a weekday — associated
// clients passing traffic, data usage, channel utilization.
//
// Paper: client count changes gradually through the day while usage and
// utilization swing rapidly; a sudden 30-minute traffic burst around 2 pm
// coincides with a spike in channel utilization.

#include <iostream>

#include "bench_util.hpp"
#include "telemetry/collector.hpp"
#include "workload/topology.hpp"
#include "workload/traffic.hpp"

using namespace w11;

int main() {
  print_banner("Figure 6", "One office AP over a weekday (15-min samples)");

  workload::OfficeConfig oc;
  oc.n_aps = 12;
  oc.n_clients = 90;
  oc.seed = 61;
  auto net = workload::make_office(oc);
  Rng rng(62);
  workload::randomize_channels(*net, ChannelWidth::MHz40, rng);
  const ApId target = net->aps()[5].id;  // mid-floor AP

  const workload::BurstEvent burst{14.0, 0.5, 3.0};
  telemetry::NetworkCollector collector;

  struct Row {
    double hour;
    int active_clients;
    double usage_gb;
    double utilization;
  };
  std::vector<Row> rows;
  Rng noise(63);

  for (int step = 0; step < 96; ++step) {
    const double hour = step * 0.25;
    // Per-step jitter on top of the diurnal curve makes usage/utilization
    // "change rapidly" the way Fig. 6 shows, while client counts follow the
    // smooth curve.
    const double schedule = workload::diurnal_factor(hour) *
                            workload::burst_factor(burst, hour);
    const double factor = schedule * noise.lognormal(0.0, 0.35);
    net->set_load_factor(factor);
    const auto ev = net->evaluate();
    collector.record(*net, ev, time::minutes(15 * step));

    // Client presence follows the (smooth) schedule; instantaneous usage
    // carries the jitter — people stay connected, traffic bursts.
    int active = 0;
    for (const auto& cl : net->aps()[5].clients)
      if (cl.base_offered_mbps * schedule > 0.2) ++active;
    const auto& m = ev.of(target);
    rows.push_back(Row{hour, active, m.throughput_mbps * 900.0 / 8e3,
                       m.utilization});
  }

  TablePrinter t({"hour", "active clients", "usage (GB/15min)", "utilization"});
  for (const auto& r : rows)
    if (std::fmod(r.hour, 1.0) == 0.0)  // print hourly, sampled 15-min
      t.add_row(r.hour, r.active_clients, r.usage_gb, r.utilization);
  t.print();

  // Shape analysis over the full 15-min resolution.
  auto swing = [&](auto get) {
    double max_step = 0.0;
    for (std::size_t i = 1; i < rows.size(); ++i)
      max_step = std::max(max_step, std::abs(get(rows[i]) - get(rows[i - 1])));
    return max_step;
  };
  const double client_swing =
      swing([](const Row& r) { return static_cast<double>(r.active_clients); });
  const double util_swing = swing([](const Row& r) { return r.utilization; });

  double util_burst = 0.0, util_before = 0.0;
  for (const auto& r : rows) {
    if (r.hour >= 14.0 && r.hour < 14.5) util_burst = std::max(util_burst, r.utilization);
    if (r.hour >= 13.0 && r.hour < 14.0) util_before = std::max(util_before, r.utilization);
  }

  bench::paper_note("clients change gradually; usage/utilization swing fast; 2pm burst spikes utilization");
  bench::shape_check("utilization swings step-to-step by >10pp somewhere",
                     util_swing > 0.10);
  bench::shape_check("client count changes gradually (max step small share of pool)",
                     client_swing <=
                         0.5 * static_cast<double>(net->aps()[5].clients.size()));
  bench::shape_check("2pm burst lifts utilization above the prior hour",
                     util_burst > util_before);
  std::cout << "  telemetry rows recorded: ap_stats=" << collector.ap_stats().row_count()
            << " network_stats=" << collector.net_stats().row_count() << "\n";
  return bench::finish();
}
