// Figure 7: PDF of client RSSI at MNet during peak vs non-peak hours.
//
// Paper: the RSSI distribution is essentially identical between peak and
// non-peak hours even though usage more than doubles (12 GB -> 25 GB in the
// hour) — which is why RSSI is a poor health metric and the paper argues
// for TCP latency / bit-rate efficiency instead.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/turboca/service.hpp"
#include "deployment.hpp"
#include "workload/traffic.hpp"

using namespace w11;

int main() {
  print_banner("Figure 7", "RSSI PDF at MNet, peak vs non-peak hour");

  auto net = bench::make_deployment(bench::Deployment::kMNet);
  // Production MNet runs under a channel plan; give it one so the medium
  // has headroom, then scale demand below saturation — Fig. 7's point
  // requires usage to track demand (12 GB -> 25 GB), which only happens
  // below the capacity ceiling.
  {
    turboca::NetworkHooks hooks;
    hooks.scan = [&net] { return net->scan(); };
    hooks.current_plan = [&net] { return net->current_plan(); };
    hooks.apply_plan = [&net](const ChannelPlan& p) { net->apply_plan(p); };
    turboca::TurboCaService svc({}, {}, hooks, Rng(77));
    svc.run_now({1, 0});
  }
  net->scale_offered_load(0.35);

  // Non-peak (8:00) vs peak (15:00).
  net->set_load_factor(workload::diurnal_factor(8.0));
  const auto ev_off = net->evaluate();
  const Samples rssi_off = net->sample_client_rssi();
  const double usage_off_gb = ev_off.total_throughput_mbps * 3600.0 / 8e3;

  net->set_load_factor(workload::diurnal_factor(15.0));
  const auto ev_peak = net->evaluate();
  const Samples rssi_peak = net->sample_client_rssi();
  const double usage_peak_gb = ev_peak.total_throughput_mbps * 3600.0 / 8e3;

  Histogram h_off(-95.0, -35.0, 12), h_peak(-95.0, -35.0, 12);
  for (double v : rssi_off.sorted()) h_off.add(v);
  for (double v : rssi_peak.sorted()) h_peak.add(v);

  TablePrinter t({"RSSI bin (dBm)", "non-peak PDF", "peak PDF"});
  double max_bin_delta = 0.0;
  for (std::size_t b = 0; b < h_off.bin_count(); ++b) {
    t.add_row(std::to_string(static_cast<int>(h_off.bin_lo(b))) + "..." +
                  std::to_string(static_cast<int>(h_off.bin_hi(b))),
              h_off.fraction(b), h_peak.fraction(b));
    max_bin_delta =
        std::max(max_bin_delta, std::abs(h_off.fraction(b) - h_peak.fraction(b)));
  }
  t.print();
  std::cout << "  hourly usage: non-peak=" << usage_off_gb
            << " GB, peak=" << usage_peak_gb
            << " GB  (paper: 12 GB vs >25 GB)\n";

  bench::paper_note("RSSI PDF invariant while usage ~doubles");
  bench::shape_check("RSSI PDFs near-identical (max bin delta < 2pp)",
                     max_bin_delta < 0.02);
  bench::shape_check("peak usage at least ~2x non-peak",
                     usage_peak_gb > 1.8 * usage_off_gb);
  bench::shape_check("median RSSI unchanged (|delta| < 1 dB)",
                     std::abs(rssi_off.median() - rssi_peak.median()) < 1.0);
  return bench::finish();
}
