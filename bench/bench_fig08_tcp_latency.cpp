// Figure 8: CDF of AP-measured TCP latency at MNet, ReservedCA vs TurboCA.
//
// Paper: TurboCA cuts the median TCP latency by ~40 %; the distribution
// above 400 ms is unchanged (arbitrarily slow/unresponsive clients — an
// orthogonal problem, injected identically under both algorithms here).

#include <iostream>

#include "bench_util.hpp"
#include "deployment.hpp"

using namespace w11;
using bench::Algorithm;
using bench::Deployment;

int main() {
  print_banner("Figure 8", "CDF of TCP latency at MNet: ReservedCA vs TurboCA");

  const auto rca = bench::run_deployment(Deployment::kMNet, Algorithm::kReservedCA);
  const auto tca = bench::run_deployment(Deployment::kMNet, Algorithm::kTurboCA);

  bench::print_cdf("ReservedCA latency (ms)", rca.tcp_latency_ms);
  bench::print_cdf("TurboCA latency (ms)", tca.tcp_latency_ms);

  const double med_r = rca.tcp_latency_ms.median();
  const double med_t = tca.tcp_latency_ms.median();
  const double drop = 100.0 * (med_r - med_t) / med_r;
  const double tail_r = 1.0 - rca.tcp_latency_ms.cdf_at(400.0);
  const double tail_t = 1.0 - tca.tcp_latency_ms.cdf_at(400.0);

  TablePrinter t({"metric", "ReservedCA", "TurboCA", "paper"});
  t.add_row("median (ms)", med_r, med_t, "-40% under TurboCA");
  t.add_row("p90 (ms)", rca.tcp_latency_ms.quantile(0.9),
            tca.tcp_latency_ms.quantile(0.9), "-");
  t.add_row("P(latency >= 400ms)", tail_r, tail_t, "similar (slow clients)");
  t.print();
  std::cout << "  median drop = " << drop << " %  (paper: ~40 %)\n";

  bench::paper_note("median -40%; >=400ms tail identical (unresponsive clients)");
  bench::shape_check("TurboCA median latency is materially lower (>=15%)", drop >= 15.0);
  bench::shape_check(">=400ms tail similar under both (within 1.5pp)",
                     std::abs(tail_r - tail_t) < 0.015);
  return bench::finish();
}
