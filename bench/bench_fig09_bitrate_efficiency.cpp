// Figure 9: CDF of bit-rate efficiency (selected rate / association max
// rate) at MNet, ReservedCA vs TurboCA.
//
// Paper: TurboCA achieves a ~15 % gain in bit-rate efficiency at MNet
// (similar at UNet), evidence that better channel plans reduce medium
// contention and let both sides run higher MCS / wider channels.

#include <iostream>

#include "bench_util.hpp"
#include "deployment.hpp"

using namespace w11;
using bench::Algorithm;
using bench::Deployment;

int main() {
  print_banner("Figure 9", "CDF of bit-rate efficiency at MNet: ReservedCA vs TurboCA");

  const auto rca = bench::run_deployment(Deployment::kMNet, Algorithm::kReservedCA);
  const auto tca = bench::run_deployment(Deployment::kMNet, Algorithm::kTurboCA);

  bench::print_cdf("ReservedCA efficiency", rca.bitrate_efficiency);
  bench::print_cdf("TurboCA efficiency", tca.bitrate_efficiency);

  const double med_r = rca.bitrate_efficiency.median();
  const double med_t = tca.bitrate_efficiency.median();
  const double gain = 100.0 * (med_t - med_r) / med_r;

  TablePrinter t({"metric", "ReservedCA", "TurboCA"});
  t.add_row("median efficiency", med_r, med_t);
  t.add_row("mean efficiency", rca.bitrate_efficiency.mean(),
            tca.bitrate_efficiency.mean());
  t.add_row("p25", rca.bitrate_efficiency.quantile(0.25),
            tca.bitrate_efficiency.quantile(0.25));
  t.print();
  std::cout << "  median gain = " << gain << " %  (paper: ~15 %)\n";

  bench::paper_note("TurboCA gains ~15% bit-rate efficiency at MNet");
  bench::shape_check("TurboCA median efficiency exceeds ReservedCA by >=10%",
                     gain >= 10.0);
  bench::shape_check("efficiencies lie in (0, 1]",
                     rca.bitrate_efficiency.max() <= 1.0 &&
                         tca.bitrate_efficiency.min() >= 0.0);
  return bench::finish();
}
