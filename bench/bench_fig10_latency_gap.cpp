// Figure 10: mean 802.11 latency vs TCP latency as client count grows.
//
// Paper: TCP latency exceeds 802.11 latency by up to 75 % at 30 clients and
// the gap widens with the number of clients (TCP ACK contention); at a
// moderately busy 25 clients, TCP ACKs take ~85 ms to reach the sender.

#include <iostream>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"

using namespace w11;

int main() {
  print_banner("Figure 10", "802.11 latency vs TCP latency, varying clients");

  TablePrinter t({"clients", "802.11 latency (ms)", "TCP latency (ms)",
                  "gap (ms)", "ratio"});
  std::vector<double> gaps;
  double tcp_at_25 = 0.0;
  double ratio_at_30 = 0.0;
  for (int clients : {5, 10, 15, 20, 25, 30}) {
    // Average several seeds: client placement draws move individual points.
    double l80211 = 0.0, ltcp = 0.0;
    constexpr int kSeeds = 3;
    for (std::uint64_t seed : {17ull, 31ull, 59ull}) {
      scenario::TestbedConfig cfg;
      cfg.n_clients_per_ap = clients;
      cfg.duration = time::seconds(6);
      cfg.seed = seed;
      scenario::Testbed tb(cfg);
      tb.run();
      const auto& st = tb.ap(0).stats();
      double air = 0.0;
      std::size_t n = 0;
      for (const auto& s : st.latency_80211_by_ac) {
        if (s.count() == 0) continue;
        air += s.mean() * static_cast<double>(s.count());
        n += s.count();
      }
      l80211 += air / static_cast<double>(n);
      ltcp += st.tcp_latency.mean();
    }
    l80211 /= kSeeds;
    ltcp /= kSeeds;
    t.add_row(clients, l80211, ltcp, ltcp - l80211, ltcp / l80211);
    gaps.push_back(ltcp - l80211);
    if (clients == 25) tcp_at_25 = ltcp;
    if (clients == 30) ratio_at_30 = ltcp / l80211;
  }
  t.print();

  bench::paper_note("TCP ACKs take ~85ms at 25 clients; gap grows with clients; up to +75% at 30");
  bench::shape_check("TCP latency exceeds 802.11 latency at every point",
                     [&] {
                       for (double g : gaps)
                         if (g <= 0) return false;
                       return true;
                     }());
  // Skip the 5-client point for the trend: at tiny client counts the
  // delayed-ACK timer, not medium contention, dominates the gap.
  bench::shape_check("gap grows with contention (30 clients vs 10)",
                     gaps.back() > gaps[1]);
  bench::shape_check("TCP latency at 25 clients is tens of ms (same order as paper's 85ms)",
                     tcp_at_25 > 20.0 && tcp_at_25 < 300.0);
  bench::shape_check("TCP/802.11 ratio > 1 at 30 clients", ratio_at_30 > 1.0);
  return bench::finish();
}
