// Figure 14: TCP congestion window, baseline vs FastACK, 10 flows.
//
// Paper: with baseline TCP not all flows grow cwnd to the OS maximum of
// 770 segments; with FastACK every flow's window opens up quickly.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"

using namespace w11;

namespace {

struct CwndSummary {
  std::vector<double> final_cwnd;      // per flow, sorted
  std::vector<double> mean_cwnd;       // per flow (time-averaged from trace)
  double time_to_open_s = -1.0;        // first flow reaching 700 segs
};

CwndSummary run(bool fastack) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 10;
  cfg.duration = time::seconds(8);
  cfg.warmup = time::seconds(0);
  cfg.fastack = {fastack};
  cfg.seed = 5;
  scenario::Testbed tb(cfg);
  for (int c = 0; c < 10; ++c) tb.sender(0, c).enable_cwnd_trace();
  tb.run();

  CwndSummary out;
  for (int c = 0; c < 10; ++c) {
    const auto& tr = tb.sender(0, c).cwnd_trace();
    out.final_cwnd.push_back(tb.sender(0, c).cwnd_segments());
    double area = 0.0;
    for (std::size_t i = 1; i < tr.size(); ++i)
      area += tr[i - 1].second * (tr[i].first - tr[i - 1].first).sec();
    const double span = tr.empty() ? 1.0 : (tr.back().first - tr.front().first).sec();
    out.mean_cwnd.push_back(span > 0 ? area / span : 0.0);
    for (const auto& [at, cw] : tr) {
      if (cw >= 700.0) {
        const double t = at.sec();
        if (out.time_to_open_s < 0 || t < out.time_to_open_s)
          out.time_to_open_s = t;
        break;
      }
    }
  }
  std::sort(out.final_cwnd.begin(), out.final_cwnd.end());
  std::sort(out.mean_cwnd.begin(), out.mean_cwnd.end());
  return out;
}

int count_at_cap(const std::vector<double>& v) {
  return static_cast<int>(std::count_if(v.begin(), v.end(),
                                        [](double c) { return c >= 700.0; }));
}

}  // namespace

int main() {
  print_banner("Figure 14", "TCP cwnd, 10 flows: baseline vs FastACK (max 770 segments)");

  const CwndSummary base = run(false);
  const CwndSummary fast = run(true);

  TablePrinter t({"flow (sorted)", "baseline mean cwnd", "baseline final",
                  "FastACK mean cwnd", "FastACK final"});
  for (int i = 0; i < 10; ++i) {
    t.add_row(i + 1, base.mean_cwnd[i], base.final_cwnd[i], fast.mean_cwnd[i],
              fast.final_cwnd[i]);
  }
  t.print();
  std::cout << "  flows at >=700 segs (of 10): baseline=" << count_at_cap(base.final_cwnd)
            << " FastACK=" << count_at_cap(fast.final_cwnd) << "\n";
  if (fast.time_to_open_s >= 0)
    std::cout << "  first FastACK flow reached 700 segs at t=" << fast.time_to_open_s
              << " s\n";

  bench::paper_note("baseline: many flows never reach the 770-segment cap; FastACK: all open quickly");
  bench::shape_check("baseline leaves most flows far below the cap",
                     count_at_cap(base.final_cwnd) <= 3);
  bench::shape_check("FastACK opens (nearly) every flow to the cap",
                     count_at_cap(fast.final_cwnd) >= 8);
  bench::shape_check("FastACK median mean-cwnd >> baseline median mean-cwnd",
                     fast.mean_cwnd[5] > 3.0 * base.mean_cwnd[5]);
  return bench::finish();
}
