// Figure 15: mean 802.11 A-MPDU size per client, 30 clients.
//
// Paper: baseline TCP achieves aggregates of 17-41 MPDUs; FastACK 33-56
// (+36-94 % per client); saturating UDP approximates the upper bound but
// stays below the 64-MPDU maximum.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"

using namespace w11;

namespace {

std::vector<double> run(int mode) {  // 0=baseline, 1=fastack, 2=udp
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 30;
  cfg.duration = time::seconds(6);
  cfg.client_max_dist_m = 40.0;  // rate diversity -> airtime-limited tails
  cfg.seed = 9;
  if (mode == 1) cfg.fastack = {true};
  if (mode == 2) cfg.traffic = scenario::TrafficType::kUdpDownlink;
  scenario::Testbed tb(cfg);
  tb.run();
  auto a = tb.mean_ampdu_per_client(0);
  std::sort(a.begin(), a.end());
  return a;
}

}  // namespace

int main() {
  print_banner("Figure 15", "Per-client mean A-MPDU size, 30 clients (sorted)");

  const auto base = run(0);
  const auto fast = run(1);
  const auto udp = run(2);

  TablePrinter t({"client (sorted)", "baseline", "FastACK", "UDP bound",
                  "FastACK gain %"});
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double gain = base[i] > 0 ? 100.0 * (fast[i] - base[i]) / base[i] : 0;
    t.add_row(i + 1, base[i], fast[i], udp[i], gain);
  }
  t.print();

  auto rng_of = [](const std::vector<double>& v) {
    return std::pair{v.front(), v.back()};
  };
  const auto [b_lo, b_hi] = rng_of(base);
  const auto [f_lo, f_hi] = rng_of(fast);
  std::cout << "  baseline range [" << b_lo << ", " << b_hi << "]  FastACK range ["
            << f_lo << ", " << f_hi << "]\n";

  int improved = 0;
  double median_gain = 0;
  {
    std::vector<double> gains;
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (fast[i] > base[i]) ++improved;
      gains.push_back(base[i] > 0 ? (fast[i] - base[i]) / base[i] : 0.0);
    }
    std::sort(gains.begin(), gains.end());
    median_gain = gains[gains.size() / 2];
  }

  bench::paper_note("baseline 17-41 MPDUs, FastACK 33-56 (+36-94%), UDP highest but <64");
  bench::shape_check("FastACK improves aggregation for (nearly) every client",
                     improved >= 27);
  bench::shape_check("median per-client gain >= 30%", median_gain >= 0.30);
  bench::shape_check("UDP bound dominates FastACK at the top end",
                     udp.back() >= fast.back() - 1.0);
  bench::shape_check("nothing exceeds the 64-MPDU standard limit",
                     udp.back() <= 64.0 && fast.back() <= 64.0);
  return bench::finish();
}
