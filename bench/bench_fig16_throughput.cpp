// Figure 16: aggregate client throughput vs number of clients.
//
// Paper: FastACK outperforms baseline TCP in every scenario, with benefits
// up to 38 %, and gains generally grow as contention (client count) rises.

#include <iostream>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"

using namespace w11;

namespace {

double throughput(int clients, bool fastack, std::uint64_t seed) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = clients;
  cfg.duration = time::seconds(6);
  cfg.fastack = {fastack};
  cfg.seed = seed;
  scenario::Testbed tb(cfg);
  tb.run();
  return tb.aggregate_throughput_mbps();
}

}  // namespace

int main() {
  print_banner("Figure 16", "Aggregate downlink TCP throughput vs client count");

  TablePrinter t({"clients", "baseline (Mbps)", "FastACK (Mbps)", "gain %"});
  std::vector<double> gains;
  for (int clients : {5, 10, 15, 20, 25, 30}) {
    // Average two seeds to damp placement luck.
    double b = 0, f = 0;
    for (std::uint64_t seed : {3ull, 11ull}) {
      b += throughput(clients, false, seed);
      f += throughput(clients, true, seed);
    }
    b /= 2;
    f /= 2;
    const double gain = 100.0 * (f - b) / b;
    t.add_row(clients, b, f, gain);
    if (clients >= 5) gains.push_back(gain);
  }
  t.print();

  bench::paper_note("FastACK wins every scenario; gains up to ~38%, larger under contention");
  bool all_win = true;
  for (double g : gains) all_win &= g > 0.0;
  double max_gain = 0.0;
  for (double g : gains) max_gain = std::max(max_gain, g);
  bench::shape_check("FastACK outperforms baseline at every client count (>=5)", all_win);
  bench::shape_check("peak gain is tens of percent (paper: up to 38%)",
                     max_gain >= 20.0);
  bench::shape_check("gain under contention (>=10 clients) exceeds gain at 5 clients",
                     gains.size() >= 2 && *std::max_element(gains.begin() + 1,
                                                            gains.end()) >
                                              gains.front());
  return bench::finish();
}
