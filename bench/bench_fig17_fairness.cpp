// Figure 17: per-client throughput fairness, 30 clients.
//
// Paper: with FastACK ~80 % of clients land within 70 % of the top client's
// throughput (baseline: only 25 %); Jain's fairness index 0.94 vs 0.88, and
// 0.99 vs 0.88 over the top-80 % of clients. The slowest clients are
// limited by their distance-driven PHY rates, not by FastACK.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "scenario/testbed.hpp"

using namespace w11;

namespace {

std::vector<double> per_client(bool fastack) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 30;
  cfg.duration = time::seconds(6);
  cfg.fastack = {fastack};
  cfg.seed = 23;
  scenario::Testbed tb(cfg);
  tb.run();
  auto v = tb.per_client_throughput_mbps();
  std::sort(v.begin(), v.end());
  return v;
}

double within70_share(const std::vector<double>& v) {
  const double top = v.back();
  int n = 0;
  for (double x : v)
    if (x >= 0.7 * top) ++n;
  return static_cast<double>(n) / static_cast<double>(v.size());
}

double top80_jain(const std::vector<double>& v) {
  // Fairness over the best 80 % of clients (drops the distance-limited tail).
  const std::size_t skip = v.size() / 5;
  return jain_fairness({v.begin() + static_cast<std::ptrdiff_t>(skip), v.end()});
}

}  // namespace

int main() {
  print_banner("Figure 17", "Per-client throughput fairness, 30 clients (sorted)");

  const auto base = per_client(false);
  const auto fast = per_client(true);

  TablePrinter t({"client (sorted)", "baseline Mbps", "FastACK Mbps"});
  for (std::size_t i = 0; i < base.size(); ++i)
    t.add_row(i + 1, base[i], fast[i]);
  t.print();

  const double jb = jain_fairness(base);
  const double jf = jain_fairness(fast);
  std::cout << "  Jain index: baseline=" << jb << " FastACK=" << jf
            << "  (paper: 0.88 vs 0.94)\n";
  std::cout << "  Jain (top 80%): baseline=" << top80_jain(base)
            << " FastACK=" << top80_jain(fast) << "  (paper: 0.88 vs 0.99)\n";
  std::cout << "  clients within 70% of top: baseline=" << within70_share(base)
            << " FastACK=" << within70_share(fast)
            << "  (paper: ~0.25 vs ~0.80)\n";

  bench::paper_note("FastACK lifts most clients, not a favoured few");
  bench::shape_check("FastACK Jain index exceeds baseline", jf > jb);
  bench::shape_check("FastACK puts more clients within 70% of the top",
                     within70_share(fast) > within70_share(base));
  bench::shape_check("FastACK top-80% fairness is near-perfect (>0.9)",
                     top80_jain(fast) > 0.9);
  return bench::finish();
}
