// Figure 18: multi-AP deployment — two co-channel APs, 10 clients each.
//
// Paper: (i) both baseline: 251 Mbps combined (127 + 132... per-AP roughly
// equal); (ii) AP1 baseline + AP2 FastACK: FastACK AP jumps 132 -> 240 while
// the baseline AP slips 127 -> 85, combined 325 (> case i); (iii) both
// FastACK: 395 Mbps combined, +51 % over case (i). FastACK never loses from
// being enabled unilaterally.

#include <iostream>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"

using namespace w11;

namespace {

struct Case {
  double ap1 = 0, ap2 = 0;
  [[nodiscard]] double total() const { return ap1 + ap2; }
};

Case run(const std::vector<bool>& fastack) {
  Case total;
  constexpr int kSeeds = 3;
  for (std::uint64_t seed : {29ull, 41ull, 77ull}) {
    scenario::TestbedConfig cfg;
    cfg.n_aps = 2;
    cfg.n_clients_per_ap = 10;
    cfg.duration = time::seconds(6);
    cfg.fastack = fastack;
    cfg.seed = seed;
    // The paper's two testbed cells are comparable; mirror the layouts so
    // the comparison isolates the TCP mechanism, not placement luck.
    cfg.symmetric_cells = true;
    scenario::Testbed tb(cfg);
    tb.run();
    total.ap1 += tb.ap_throughput_mbps(0) / kSeeds;
    total.ap2 += tb.ap_throughput_mbps(1) / kSeeds;
  }
  return total;
}

}  // namespace

int main() {
  print_banner("Figure 18", "Two co-channel APs x 10 clients: baseline/FastACK mixes");

  const Case bb = run({false, false});
  const Case bf = run({false, true});
  const Case ff = run({true, true});

  TablePrinter t({"case", "AP1 (Mbps)", "AP2 (Mbps)", "combined", "vs (i) %"});
  t.add_row("(i)   base + base", bb.ap1, bb.ap2, bb.total(), 0.0);
  t.add_row("(ii)  base + FastACK", bf.ap1, bf.ap2, bf.total(),
            100.0 * (bf.total() - bb.total()) / bb.total());
  t.add_row("(iii) FastACK + FastACK", ff.ap1, ff.ap2, ff.total(),
            100.0 * (ff.total() - bb.total()) / bb.total());
  t.print();

  bench::paper_note("paper: (i) 251 -> (ii) 325 -> (iii) 395 Mbps (+51%); in (ii) the FastACK AP gains (132->240) while the baseline AP cedes airtime (127->85)");
  bench::shape_check("both-FastACK beats both-baseline by tens of percent",
                     ff.total() > 1.2 * bb.total());
  bench::shape_check("mixed case total still beats both-baseline",
                     bf.total() > bb.total());
  bench::shape_check("in the mixed case the FastACK AP gains",
                     bf.ap2 > bb.ap2 * 1.1);
  bench::shape_check("in the mixed case the baseline AP loses share",
                     bf.ap1 < bb.ap1);
  bench::shape_check("FastACK does not suffer when enabled in isolation",
                     bf.ap2 >= bb.ap2);
  return bench::finish();
}
