// Fleet-scale planning throughput (DESIGN.md §15, §16). Two modes:
//
//   bench_fleet            worker sweep: a ≥10k-AP population through the
//                          sharded pipeline at 1-8 workers (aps/sec, plan
//                          latency, ingest rate, digest byte-equivalence).
//                          Writes BENCH_fleet.json.
//   bench_fleet --churn    churn sweep: a ≥100k-AP population re-ingested
//                          for 5 steady-state cycles at 0.1% / 1% / 10%
//                          churn, replayed both as full ScanEpochs and as
//                          DeltaEpochs. Measures the controller's
//                          ingest+partition seconds per mode (the O(churn)
//                          vs O(fleet) claim), peak RSS, and checks the
//                          two replays deliver byte-identical plan
//                          streams. Writes BENCH_fleet_delta.json.
//
// The churn sweep throttles planning with a tiny output queue (jobs defer
// deterministically), so the measured time is census adoption — partition,
// dirty marking, state reconciliation — not TurboCA.

#include <chrono>
#include <cstdint>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json_writer.hpp"
#include "common/stats.hpp"
#include "exec/task_pool.hpp"
#include "fleet/controller.hpp"
#include "scenario/fleet_harness.hpp"

using namespace w11;

namespace {

// Keyed off NDEBUG like bench_main.hpp's build_type() (not included here —
// it drags in google-benchmark): the committed perf JSON must never be
// regenerated from an unoptimized build.
const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
  return os.str();
}

// ---------------------------------------------------------------------------
// Worker sweep (BENCH_fleet.json)

scenario::FleetScenarioConfig fleet_config(exec::TaskPool* pool) {
  scenario::FleetScenarioConfig cfg;
  // ~640 campuses × avg 16 APs ≈ 10k APs.
  cfg.population.campuses = 640;
  cfg.population.aps_min = 10;
  cfg.population.aps_max = 22;
  cfg.population.seed = 20170901;  // the paper's dataset era
  cfg.controller.seed = 7;
  cfg.controller.pool = pool;
  cfg.polls = 3;
  cfg.churn_fraction = 0.25;
  return cfg;
}

struct WorkerRun {
  int workers = 0;
  double wall_s = 0.0;
  double cpu_s = 0.0;
  scenario::FleetScenarioResult r;
};

WorkerRun run_at(int workers) {
  exec::TaskPool pool(static_cast<std::size_t>(workers));
  WorkerRun out;
  out.workers = workers;
  const auto wall0 = std::chrono::steady_clock::now();
  const std::clock_t cpu0 = std::clock();
  out.r = scenario::run_fleet_scenario(fleet_config(&pool));
  out.cpu_s = static_cast<double>(std::clock() - cpu0) /
              static_cast<double>(CLOCKS_PER_SEC);
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall0)
                   .count();
  return out;
}

int run_worker_sweep() {
  print_banner("fleet",
               "Fleet-scale sharded planning: 10k+ APs per cycle, 1-8 workers");

  const std::vector<int> worker_counts = {1, 2, 4, 8};
  std::vector<WorkerRun> runs;
  for (const int w : worker_counts) runs.push_back(run_at(w));

  const auto& base = runs.front().r;
  TablePrinter t({"workers", "wall s", "cpu s", "cpu share", "aps/sec",
                  "plan p50 ms", "plan p95 ms", "ingest rows/s", "deferred"});
  for (const WorkerRun& run : runs) {
    Samples lat;
    for (double s : run.r.plan_seconds) lat.add(s * 1e3);
    t.add_row(run.workers, run.wall_s, run.cpu_s, run.cpu_s / run.wall_s,
              static_cast<double>(run.r.stats.aps_planned) / run.wall_s,
              lat.quantile(0.50), lat.quantile(0.95),
              static_cast<double>(run.r.telemetry_rows) / run.wall_s,
              run.r.stats.jobs_deferred);
  }
  t.print();
  std::cout << "  population: " << base.fleet_aps << " APs in "
            << base.campuses << " campuses; " << base.stats.plans_delivered
            << " plans delivered over 3 polls; digest "
            << hex64(base.digest) << "\n";

  bench::paper_note(
      "TurboCA plans centrally from fleet-wide scan telemetry (§4.4); NodeP "
      "couples only through contender edges, so interference-isolated "
      "campuses plan independently — the fleet is embarrassingly shardable "
      "once partitioned");
  bench::shape_check("population meets the fleet bar (>= 10k APs)",
                     base.fleet_aps >= 10000);
  bool digest_identical = true;
  for (const WorkerRun& run : runs)
    digest_identical = digest_identical && run.r.digest == base.digest &&
                       run.r.final_plan == base.final_plan &&
                       run.r.netp_log_sum == base.netp_log_sum;
  bench::shape_check(
      "delivered plan stream is byte-identical at 1/2/4/8 workers",
      digest_identical);
  bench::shape_check("no jobs deferred (output queue sized for the fleet)",
                     runs.back().r.stats.jobs_deferred == 0);
  const double speedup = runs.front().wall_s / runs.back().wall_s;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 2) {
    bench::shape_check("8 workers beat 1 worker on wall clock (speedup > 1.3x)",
                       speedup > 1.3);
  } else {
    // One execution lane total: speedup is physically impossible, so the
    // scaling claim degrades to "sharding costs nothing when it can't help".
    bench::shape_check(
        "single-core substrate: 8-worker overhead stays bounded (< 25%)",
        runs.back().wall_s < runs.front().wall_s * 1.25);
  }
  bench::shape_check(
      "spectrum churn leaves the stats caches warm (hit rate > 25%)",
      base.stats.cache_hits * 4 >
          base.stats.cache_hits + base.stats.cache_misses);
  bool health_clean = true;
  for (const WorkerRun& run : runs)
    health_clean = health_clean && run.r.health.epochs_dropped == 0 &&
                   run.r.health.plans_delivered ==
                       run.r.stats.plans_delivered;
  bench::shape_check(
      "pipeline health is clean at every worker count (no epochs dropped; "
      "health() agrees with the delivery stats)",
      health_clean);

  // --- JSON artifact -------------------------------------------------------
  if (std::string(build_type()) != "release") {
    std::cout << "\n  debug build: refusing to write BENCH_fleet.json\n";
    return bench::finish();
  }
  {
    std::ofstream os("BENCH_fleet.json");
    json::Writer w(os);
    w.begin_object();
    w.field("bench", "fleet");
    w.field("build_type", build_type());
    w.field("fleet_aps", static_cast<std::int64_t>(base.fleet_aps));
    w.field("campuses", static_cast<std::int64_t>(base.campuses));
    w.field("polls", static_cast<std::int64_t>(3));
    w.field("digest", hex64(base.digest));
    w.field("digest_identical_across_workers", digest_identical);
    w.field("speedup_8w_over_1w", speedup);
    w.field("hardware_concurrency", static_cast<std::int64_t>(hw));
    w.key("workers").begin_array();
    for (const WorkerRun& run : runs) {
      Samples lat;
      for (double s : run.r.plan_seconds) lat.add(s * 1e3);
      w.begin_object();
      w.field("workers", static_cast<std::int64_t>(run.workers));
      w.field("wall_s", run.wall_s);
      w.field("cpu_s", run.cpu_s);
      w.field("cpu_share", run.cpu_s / run.wall_s);
      w.field("aps_planned", run.r.stats.aps_planned);
      w.field("aps_per_sec",
              static_cast<double>(run.r.stats.aps_planned) / run.wall_s);
      w.field("plans_delivered", run.r.stats.plans_delivered);
      w.field("plan_latency_ms_p50", lat.quantile(0.50));
      w.field("plan_latency_ms_p95", lat.quantile(0.95));
      w.field("telemetry_rows", run.r.telemetry_rows);
      w.field("ingest_rows_per_sec",
              static_cast<double>(run.r.telemetry_rows) / run.wall_s);
      w.field("jobs_deferred", run.r.stats.jobs_deferred);
      w.field("epochs_dropped", run.r.health.epochs_dropped);
      w.field("epochs_dropped_rate", run.r.health.epochs_dropped_rate);
      w.field("ingest_high_water", run.r.health.ingest_high_water);
      w.field("output_high_water", run.r.health.output_high_water);
      w.field("cache_hit_ratio", run.r.health.cache_hit_ratio);
      w.field("cache_hits", run.r.stats.cache_hits);
      w.field("cache_misses", run.r.stats.cache_misses);
      w.field("cache_evictions", run.r.stats.cache_evictions);
      w.field("digest", hex64(run.r.digest));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::cout << "\n  wrote BENCH_fleet.json\n";
  }
  return bench::finish();
}

// ---------------------------------------------------------------------------
// Churn sweep (BENCH_fleet_delta.json)

// Peak resident set (VmHWM) in KiB from /proc/self/status; 0 if unreadable.
std::size_t peak_rss_kib() {
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmHWM:") {
      std::size_t kib = 0;
      in >> kib;
      return kib;
    }
    in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  }
  return 0;
}

// Reset the VmHWM watermark so per-run peaks are independent (Linux
// clear_refs; returns false where unsupported, in which case readings are
// process-monotonic and runs must be ordered cheapest-first).
bool reset_peak_rss() {
  std::ofstream out("/proc/self/clear_refs");
  if (!out) return false;
  out << "5";
  out.flush();
  return out.good();
}

struct ChurnRun {
  double churn = 0.0;
  bool use_deltas = false;
  double ingest_steady_s = 0.0;   // census adoption seconds, polls 2..N
  std::uint64_t aps_repart = 0;   // scans re-partitioned, polls 2..N
  std::uint64_t campuses_repart = 0;
  std::uint64_t deltas_adopted = 0;
  std::size_t fleet_aps = 0;
  std::size_t peak_rss_kib = 0;
  std::uint64_t digest = 0;
};

constexpr int kChurnPolls = 6;  // 1 full census + 5 steady-state cycles

ChurnRun run_churn(double churn, bool use_deltas, bool rss_resettable) {
  exec::TaskPool pool(1);
  scenario::FleetPopulationConfig pop;
  // ~6250 campuses × avg 16 APs ≈ 100k APs.
  pop.campuses = 6250;
  pop.aps_min = 10;
  pop.aps_max = 22;
  pop.seed = 20170901;
  fleet::FleetController::Config ccfg;
  ccfg.seed = 7;
  ccfg.pool = &pool;
  // Throttle planning to a trickle: this sweep measures census adoption,
  // and deferred jobs are deterministic, so both replay modes plan the
  // same handful of campuses and stay digest-comparable.
  ccfg.output_capacity = 8;
  fleet::FleetController ctl(ccfg);

  ChurnRun out;
  out.churn = churn;
  out.use_deltas = use_deltas;
  std::vector<ApScan> scans = scenario::make_fleet_scans(pop, Time{});
  std::uint32_t next_id = scans.back().id.value() + 1;
  if (rss_resettable) reset_peak_rss();

  double ingest_first = 0.0;
  std::uint64_t aps_first = 0, campuses_first = 0;
  Time prev{};
  for (int p = 0; p < kChurnPolls; ++p) {
    const Time t = time::nanos((p + 1) * time::minutes(15).ns());
    if (p == 0) {
      for (ApScan& s : scans) s.taken_at = t;
      ctl.offer_epoch(fleet::ScanEpoch{t, scans});
    } else {
      fleet::DeltaEpoch d = scenario::evolve_population(
          scans, pop, churn, churn / 10.0,
          pop.seed ^ static_cast<std::uint64_t>(p), next_id, prev, t);
      if (use_deltas) {
        ctl.offer_delta(std::move(d));
      } else {
        ctl.offer_epoch(fleet::ScanEpoch{t, scans});
      }
    }
    ctl.tick(t);
    if (p == 0) {
      ingest_first = ctl.stats().ingest_seconds;
      aps_first = ctl.stats().aps_repartitioned;
      campuses_first = ctl.stats().campuses_repartitioned;
    }
    prev = t;
  }
  out.ingest_steady_s = ctl.stats().ingest_seconds - ingest_first;
  out.aps_repart = ctl.stats().aps_repartitioned - aps_first;
  out.campuses_repart = ctl.stats().campuses_repartitioned - campuses_first;
  out.deltas_adopted = ctl.stats().deltas_adopted;
  out.fleet_aps = ctl.fleet_aps();
  out.peak_rss_kib = peak_rss_kib();
  out.digest = ctl.plan_digest();
  return out;
}

int run_churn_sweep() {
  print_banner("fleet --churn",
               "Delta-epoch ingestion: O(churn) vs O(fleet) census adoption "
               "at 100k APs");

  const std::vector<double> churn_levels = {0.001, 0.01, 0.1};
  const bool rss_resettable = reset_peak_rss();

  // Delta runs first: where the watermark can't be reset, readings are
  // process-monotonic, so the cheap (delta) runs must come before the
  // expensive (full) ones for "delta peak <= full peak" to be honest.
  std::vector<ChurnRun> deltas, fulls;
  for (const double c : churn_levels)
    deltas.push_back(run_churn(c, /*use_deltas=*/true, rss_resettable));
  for (const double c : churn_levels)
    fulls.push_back(run_churn(c, /*use_deltas=*/false, rss_resettable));

  TablePrinter t({"churn", "mode", "ingest s (5 cycles)", "aps repart",
                  "campuses repart", "peak RSS MiB"});
  for (std::size_t i = 0; i < churn_levels.size(); ++i) {
    t.add_row(churn_levels[i], "delta", deltas[i].ingest_steady_s,
              deltas[i].aps_repart, deltas[i].campuses_repart,
              static_cast<double>(deltas[i].peak_rss_kib) / 1024.0);
    t.add_row(churn_levels[i], "full", fulls[i].ingest_steady_s,
              fulls[i].aps_repart, fulls[i].campuses_repart,
              static_cast<double>(fulls[i].peak_rss_kib) / 1024.0);
  }
  t.print();
  std::cout << "  population: " << fulls[0].fleet_aps
            << " APs; 1 full census + " << (kChurnPolls - 1)
            << " churn cycles per run; VmHWM reset "
            << (rss_resettable ? "supported" : "unsupported (monotonic)")
            << "\n";

  bench::paper_note(
      "fleet-wide scan collection feeds central planning (§4.4); a delta "
      "census format makes the steady-state planning cycle O(churn) — only "
      "campuses the churn touched are re-partitioned and re-planned");
  bench::shape_check("population meets the fleet bar (>= 100k APs)",
                     fulls[0].fleet_aps >= 100000);
  bool digests_match = true;
  for (std::size_t i = 0; i < churn_levels.size(); ++i)
    digests_match = digests_match && deltas[i].digest == fulls[i].digest;
  bench::shape_check(
      "delta replay delivers the full replay's exact plan stream (digests "
      "match at every churn level)",
      digests_match);
  bool adopted_all = true;
  for (const ChurnRun& r : deltas)
    adopted_all = adopted_all && r.deltas_adopted == kChurnPolls - 1;
  bench::shape_check("every delta was adopted (no base mismatches)",
                     adopted_all);
  const double speedup_low =
      fulls[0].ingest_steady_s / std::max(deltas[0].ingest_steady_s, 1e-9);
  const double speedup_mid =
      fulls[1].ingest_steady_s / std::max(deltas[1].ingest_steady_s, 1e-9);
  bench::shape_check(
      "delta ingest+partition >= 5x faster than full at 0.1% churn",
      speedup_low >= 5.0);
  bench::shape_check(
      "delta ingest+partition >= 5x faster than full at 1% churn",
      speedup_mid >= 5.0);
  bool rss_bounded = true;
  for (std::size_t i = 0; i < churn_levels.size(); ++i)
    rss_bounded = rss_bounded &&
                  deltas[i].peak_rss_kib <= fulls[i].peak_rss_kib;
  bench::shape_check("delta path peak RSS never exceeds the full path's",
                     rss_bounded);
  std::cout << "  speedup: " << std::fixed << std::setprecision(1)
            << speedup_low << "x at 0.1% churn, " << speedup_mid
            << "x at 1% churn, "
            << fulls[2].ingest_steady_s /
                   std::max(deltas[2].ingest_steady_s, 1e-9)
            << "x at 10% churn\n";

  // --- JSON artifact -------------------------------------------------------
  if (std::string(build_type()) != "release") {
    std::cout << "\n  debug build: refusing to write BENCH_fleet_delta.json\n";
    return bench::finish();
  }
  {
    std::ofstream os("BENCH_fleet_delta.json");
    json::Writer w(os);
    w.begin_object();
    w.field("bench", "fleet_delta");
    w.field("build_type", build_type());
    w.field("fleet_aps", static_cast<std::int64_t>(fulls[0].fleet_aps));
    w.field("polls", static_cast<std::int64_t>(kChurnPolls));
    w.field("steady_cycles", static_cast<std::int64_t>(kChurnPolls - 1));
    w.field("digests_match_full_vs_delta", digests_match);
    w.field("rss_watermark_resettable", rss_resettable);
    w.field("hardware_concurrency",
            static_cast<std::int64_t>(std::thread::hardware_concurrency()));
    w.key("churn_levels").begin_array();
    for (std::size_t i = 0; i < churn_levels.size(); ++i) {
      w.begin_object();
      w.field("churn", churn_levels[i]);
      w.field("ingest_speedup",
              fulls[i].ingest_steady_s /
                  std::max(deltas[i].ingest_steady_s, 1e-9));
      for (const ChurnRun* r : {&deltas[i], &fulls[i]}) {
        w.key(r->use_deltas ? "delta" : "full").begin_object();
        w.field("ingest_steady_s", r->ingest_steady_s);
        w.field("aps_repartitioned", r->aps_repart);
        w.field("campuses_repartitioned", r->campuses_repart);
        w.field("peak_rss_kib", static_cast<std::int64_t>(r->peak_rss_kib));
        w.field("digest", hex64(r->digest));
        w.end_object();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::cout << "\n  wrote BENCH_fleet_delta.json\n";
  }
  return bench::finish();
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--churn") return run_churn_sweep();
  return run_worker_sweep();
}
