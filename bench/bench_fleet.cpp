// Fleet-scale planning throughput (DESIGN.md §15): a ≥10k-AP synthetic
// continental population driven through the sharded pipeline — partition
// into campuses, cadence-schedule, plan on a TaskPool, stream plans out
// through the bounded queues into per-campus PlanStores and batched
// telemetry — at 1/2/4/8 workers. Reports APs planned per second, p50/p95
// per-campus plan latency, and telemetry ingest rate, in wall-clock and
// CPU-share terms, and checks the determinism contract: the delivered plan
// stream (digest) is byte-identical at every worker count.

#include <chrono>
#include <cstdint>
#include <ctime>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json_writer.hpp"
#include "common/stats.hpp"
#include "exec/task_pool.hpp"
#include "scenario/fleet_harness.hpp"

using namespace w11;

namespace {

// Keyed off NDEBUG like bench_main.hpp's build_type() (not included here —
// it drags in google-benchmark): the committed perf JSON must never be
// regenerated from an unoptimized build.
const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

scenario::FleetScenarioConfig fleet_config(exec::TaskPool* pool) {
  scenario::FleetScenarioConfig cfg;
  // ~640 campuses × avg 16 APs ≈ 10k APs.
  cfg.population.campuses = 640;
  cfg.population.aps_min = 10;
  cfg.population.aps_max = 22;
  cfg.population.seed = 20170901;  // the paper's dataset era
  cfg.controller.seed = 7;
  cfg.controller.pool = pool;
  cfg.polls = 3;
  cfg.churn_fraction = 0.25;
  return cfg;
}

struct WorkerRun {
  int workers = 0;
  double wall_s = 0.0;
  double cpu_s = 0.0;
  scenario::FleetScenarioResult r;
};

WorkerRun run_at(int workers) {
  exec::TaskPool pool(static_cast<std::size_t>(workers));
  WorkerRun out;
  out.workers = workers;
  const auto wall0 = std::chrono::steady_clock::now();
  const std::clock_t cpu0 = std::clock();
  out.r = scenario::run_fleet_scenario(fleet_config(&pool));
  out.cpu_s = static_cast<double>(std::clock() - cpu0) /
              static_cast<double>(CLOCKS_PER_SEC);
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall0)
                   .count();
  return out;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
  return os.str();
}

}  // namespace

int main() {
  print_banner("fleet",
               "Fleet-scale sharded planning: 10k+ APs per cycle, 1-8 workers");

  const std::vector<int> worker_counts = {1, 2, 4, 8};
  std::vector<WorkerRun> runs;
  for (const int w : worker_counts) runs.push_back(run_at(w));

  const auto& base = runs.front().r;
  TablePrinter t({"workers", "wall s", "cpu s", "cpu share", "aps/sec",
                  "plan p50 ms", "plan p95 ms", "ingest rows/s", "deferred"});
  for (const WorkerRun& run : runs) {
    Samples lat;
    for (double s : run.r.plan_seconds) lat.add(s * 1e3);
    t.add_row(run.workers, run.wall_s, run.cpu_s, run.cpu_s / run.wall_s,
              static_cast<double>(run.r.stats.aps_planned) / run.wall_s,
              lat.quantile(0.50), lat.quantile(0.95),
              static_cast<double>(run.r.telemetry_rows) / run.wall_s,
              run.r.stats.jobs_deferred);
  }
  t.print();
  std::cout << "  population: " << base.fleet_aps << " APs in "
            << base.campuses << " campuses; " << base.stats.plans_delivered
            << " plans delivered over 3 polls; digest "
            << hex64(base.digest) << "\n";

  bench::paper_note(
      "TurboCA plans centrally from fleet-wide scan telemetry (§4.4); NodeP "
      "couples only through contender edges, so interference-isolated "
      "campuses plan independently — the fleet is embarrassingly shardable "
      "once partitioned");
  bench::shape_check("population meets the fleet bar (>= 10k APs)",
                     base.fleet_aps >= 10000);
  bool digest_identical = true;
  for (const WorkerRun& run : runs)
    digest_identical = digest_identical && run.r.digest == base.digest &&
                       run.r.final_plan == base.final_plan &&
                       run.r.netp_log_sum == base.netp_log_sum;
  bench::shape_check(
      "delivered plan stream is byte-identical at 1/2/4/8 workers",
      digest_identical);
  bench::shape_check("no jobs deferred (output queue sized for the fleet)",
                     runs.back().r.stats.jobs_deferred == 0);
  const double speedup = runs.front().wall_s / runs.back().wall_s;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 2) {
    bench::shape_check("8 workers beat 1 worker on wall clock (speedup > 1.3x)",
                       speedup > 1.3);
  } else {
    // One execution lane total: speedup is physically impossible, so the
    // scaling claim degrades to "sharding costs nothing when it can't help".
    bench::shape_check(
        "single-core substrate: 8-worker overhead stays bounded (< 25%)",
        runs.back().wall_s < runs.front().wall_s * 1.25);
  }
  bench::shape_check(
      "spectrum churn leaves the stats caches warm (hit rate > 25%)",
      base.stats.cache_hits * 4 >
          base.stats.cache_hits + base.stats.cache_misses);

  // --- JSON artifact -------------------------------------------------------
  if (std::string(build_type()) != "release") {
    std::cout << "\n  debug build: refusing to write BENCH_fleet.json\n";
    return bench::finish();
  }
  {
    std::ofstream os("BENCH_fleet.json");
    json::Writer w(os);
    w.begin_object();
    w.field("bench", "fleet");
    w.field("build_type", build_type());
    w.field("fleet_aps", static_cast<std::int64_t>(base.fleet_aps));
    w.field("campuses", static_cast<std::int64_t>(base.campuses));
    w.field("polls", static_cast<std::int64_t>(3));
    w.field("digest", hex64(base.digest));
    w.field("digest_identical_across_workers", digest_identical);
    w.field("speedup_8w_over_1w", speedup);
    w.field("hardware_concurrency", static_cast<std::int64_t>(hw));
    w.key("workers").begin_array();
    for (const WorkerRun& run : runs) {
      Samples lat;
      for (double s : run.r.plan_seconds) lat.add(s * 1e3);
      w.begin_object();
      w.field("workers", static_cast<std::int64_t>(run.workers));
      w.field("wall_s", run.wall_s);
      w.field("cpu_s", run.cpu_s);
      w.field("cpu_share", run.cpu_s / run.wall_s);
      w.field("aps_planned", run.r.stats.aps_planned);
      w.field("aps_per_sec",
              static_cast<double>(run.r.stats.aps_planned) / run.wall_s);
      w.field("plans_delivered", run.r.stats.plans_delivered);
      w.field("plan_latency_ms_p50", lat.quantile(0.50));
      w.field("plan_latency_ms_p95", lat.quantile(0.95));
      w.field("telemetry_rows", run.r.telemetry_rows);
      w.field("ingest_rows_per_sec",
              static_cast<double>(run.r.telemetry_rows) / run.wall_s);
      w.field("jobs_deferred", run.r.stats.jobs_deferred);
      w.field("cache_hits", run.r.stats.cache_hits);
      w.field("cache_misses", run.r.stats.cache_misses);
      w.field("cache_evictions", run.r.stats.cache_evictions);
      w.field("digest", hex64(run.r.digest));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::cout << "\n  wrote BENCH_fleet.json\n";
  }
  return bench::finish();
}
