// Flowsim engine benchmarks (google-benchmark): the event-engine overhaul's
// before/after pairs (DESIGN.md §11). Every hot structure the overhaul
// touched is measured against its preserved predecessor:
//
//   * event queue schedule/run and steady-state churn — arena engine vs the
//     kReference (pre-overhaul priority_queue/shared_ptr) engine
//   * TcpReceiver out-of-order reassembly (flat interval vector)
//   * FastACK table ops (flat retx cache / pending-ack queue)
//   * an end-to-end FastACK testbed run on both engines
//
// Results are written to BENCH_flowsim.json unless the caller passes its
// own --benchmark_out. EXPERIMENTS.md records the measured numbers.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench_main.hpp"

#include "core/fastack/agent.hpp"
#include "net/tcp_receiver.hpp"
#include "scenario/testbed.hpp"
#include "sim/simulator.hpp"

namespace w11 {
namespace {

// --- event queue: schedule + drain (BM_EventQueueScheduleRun successor) ----
// Same shape as the old micro-bench: 1000 one-shot events scheduled then
// drained, fresh simulator per iteration.

void schedule_run_1000(Simulator::Engine engine, benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(engine);
    for (int i = 0; i < 1000; ++i)
      sim.schedule_at(time::micros(i), [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.processed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_EventQueueScheduleRunArena(benchmark::State& state) {
  schedule_run_1000(Simulator::Engine::kArena, state);
}
BENCHMARK(BM_EventQueueScheduleRunArena);

void BM_EventQueueScheduleRunReference(benchmark::State& state) {
  schedule_run_1000(Simulator::Engine::kReference, state);
}
BENCHMARK(BM_EventQueueScheduleRunReference);

// --- event queue: steady-state timer churn ---------------------------------
// The simulator's real workload: a bounded population of self-rescheduling
// timers (MAC backoff, delayed ACKs, wire arrivals). Slot recycling and SBO
// callbacks make this allocation-free on the arena engine.

void steady_churn(Simulator::Engine engine, benchmark::State& state) {
  const int kTimers = 64;
  Simulator sim(engine);
  std::uint64_t fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    sim.schedule_after(time::micros(1 + (fired % 7)), tick);
  };
  for (int i = 0; i < kTimers; ++i)
    sim.schedule_at(time::nanos(i), tick);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) sim.step();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_EventQueueSteadyChurnArena(benchmark::State& state) {
  steady_churn(Simulator::Engine::kArena, state);
}
BENCHMARK(BM_EventQueueSteadyChurnArena);

void BM_EventQueueSteadyChurnReference(benchmark::State& state) {
  steady_churn(Simulator::Engine::kReference, state);
}
BENCHMARK(BM_EventQueueSteadyChurnReference);

// --- event queue: cancellation-heavy (retired timers) ----------------------
// Timers are mostly cancelled, not fired (every ACK retires a retransmit
// timer). O(1) generation-checked cancel vs shared_ptr flag allocation.

void cancel_heavy(Simulator::Engine engine, benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(engine);
    std::vector<EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i)
      handles.push_back(sim.schedule_at(time::micros(i), [] {}));
    for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
    sim.run();
    benchmark::DoNotOptimize(sim.processed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_EventQueueCancelHeavyArena(benchmark::State& state) {
  cancel_heavy(Simulator::Engine::kArena, state);
}
BENCHMARK(BM_EventQueueCancelHeavyArena);

void BM_EventQueueCancelHeavyReference(benchmark::State& state) {
  cancel_heavy(Simulator::Engine::kReference, state);
}
BENCHMARK(BM_EventQueueCancelHeavyReference);

// --- TcpReceiver: out-of-order reassembly (flat interval vector) -----------
// Segments arrive pairwise swapped, so every second segment opens a hole
// and every other one closes it — constant insert/absorb pressure on ooo_.

void BM_TcpReceiverOutOfOrder(benchmark::State& state) {
  Simulator sim;
  std::uint64_t acks = 0;
  TcpReceiver rx(sim, FlowId{1}, {},
                 [&](TcpSegment) { ++acks; });
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) {
      TcpSegment hi;
      hi.flow = FlowId{1};
      hi.seq = seq + 1460;
      hi.payload = 1460;
      rx.on_data(hi);  // hole: [seq, seq+1460) still missing
      TcpSegment lo;
      lo.flow = FlowId{1};
      lo.seq = seq;
      lo.payload = 1460;
      rx.on_data(lo);  // closes it
      seq += 2 * 1460;
    }
    sim.run();
  }
  benchmark::DoNotOptimize(acks);
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_TcpReceiverOutOfOrder);

// --- FastACK table ops (flat retx cache / q_seq / tcp_pending) -------------
// Steady-state per-segment agent cost with a deep cache: data in, 802.11
// delivery, client ACK lagging 64 segments behind so the retransmission
// cache holds 64 entries and eviction continuously pops the prefix.

void BM_FastAckTableOps(benchmark::State& state) {
  Simulator sim;
  mac::Medium medium(sim, {}, Rng(1));
  AccessPoint::Config acfg;
  acfg.id = ApId{0};
  AccessPoint ap(sim, medium, acfg, Rng(2));
  ClientStation::Config ccfg;
  ccfg.id = StationId{1};
  ccfg.pos = Position{5, 0};
  ClientStation client(sim, medium, ccfg, Rng(3));
  ap.associate(&client);
  fastack::FastAckAgent agent(sim, ap, {});
  ap.set_interceptor(&agent);
  ap.set_wire_out([](TcpSegment) {});

  const std::uint64_t kLag = 64 * 1460;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    TcpSegment seg;
    seg.flow = FlowId{1};
    seg.dst_station = StationId{1};
    seg.seq = seq;
    seg.payload = 1460;
    benchmark::DoNotOptimize(agent.on_downlink_data(seg));
    agent.on_80211_delivered(seg);
    if (seq >= kLag) {
      TcpSegment ack;
      ack.flow = FlowId{1};
      ack.is_ack = true;
      ack.ack = seq - kLag + 1460;
      ack.rwnd = 1 << 20;
      benchmark::DoNotOptimize(agent.on_uplink_ack(ack));
    }
    seq += 1460;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastAckTableOps);

// --- end-to-end: FastACK testbed run, arena vs reference engine ------------
// The headline A/B: a full contended-cell FastACK scenario. Items = events
// executed, so items/sec is end-to-end engine throughput.

void testbed_fastack(Simulator::Engine engine, benchmark::State& state) {
  double thpt = 0.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    scenario::TestbedConfig cfg;
    cfg.engine = engine;
    cfg.seed = 1;
    cfg.n_clients_per_ap = 8;
    cfg.fastack = {true};
    cfg.duration = time::seconds(2);
    cfg.warmup = time::millis(500);
    scenario::Testbed tb(cfg);
    tb.run();
    thpt = tb.aggregate_throughput_mbps();
    events += tb.simulator().processed_events();
    benchmark::DoNotOptimize(thpt);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["throughput_mbps"] = thpt;
}

void BM_TestbedFastAckArena(benchmark::State& state) {
  testbed_fastack(Simulator::Engine::kArena, state);
}
BENCHMARK(BM_TestbedFastAckArena)->Unit(benchmark::kMillisecond);

void BM_TestbedFastAckReference(benchmark::State& state) {
  testbed_fastack(Simulator::Engine::kReference, state);
}
BENCHMARK(BM_TestbedFastAckReference)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace w11

// Shared benchmark main with a default JSON report so the engine speedup
// numbers land on disk on every plain run.
int main(int argc, char** argv) {
  return w11::bench::run_benchmark_main(argc, argv, "BENCH_flowsim.json");
}
