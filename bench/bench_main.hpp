#pragma once
// Shared google-benchmark main for the perf benches (bench_flowsim,
// bench_micro_perf). Separate from bench_util.hpp because including
// <benchmark/benchmark.h> drags in a static initializer that every
// includer must link against — the figure benches don't use the library.

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "obs/gate.hpp"

#if W11_OBS
#include "obs/export.hpp"
#include "obs/trace.hpp"
#endif

namespace w11::bench {

// Optimization level of this binary. Keyed off NDEBUG (what -DCMAKE_BUILD_TYPE
// =Release/RelWithDebInfo define and Debug does not) — the committed perf
// JSONs must never be regenerated from an unoptimized build again.
inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

// BENCHMARK_MAIN() semantics plus a default JSON report
// (--benchmark_out=<default_out>) when the caller did not pass its own, so
// the recorded numbers land on disk on every plain run. Two guardrails on
// the recorded numbers:
//   * every report carries a "w11_build_type" context tag, and
//   * a debug build REFUSES to write the default JSON (it still runs, and
//     still honors an explicit --benchmark_out, which stays debug-tagged) —
//     so an unoptimized run cannot silently overwrite the committed
//     release numbers.
// With W11_TRACE set, the obs tracer/metrics run for the process and the
// trace/metrics artifacts export on exit (same writers the testbed uses).
inline int run_benchmark_main(int argc, char** argv, const char* default_out) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = std::string("--benchmark_out=") + default_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).starts_with("--benchmark_out=")) has_out = true;
  benchmark::AddCustomContext("w11_build_type", build_type());
  const bool is_debug = std::string(build_type()) == "debug";
  if (!has_out && is_debug) {
    std::fprintf(stderr,
                 "=========================================================\n"
                 "W11 BENCH: DEBUG BUILD — refusing to write %s.\n"
                 "Timings from unoptimized code are not comparable; rebuild\n"
                 "with -DCMAKE_BUILD_TYPE=Release to record numbers (or pass\n"
                 "an explicit --benchmark_out=<file> to force a debug JSON).\n"
                 "=========================================================\n",
                 default_out);
  } else if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
#if W11_OBS
  const bool tracing = obs::enable_from_env();
#endif
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
#if W11_OBS
  if (tracing)
    obs::export_global(obs::trace_out_path("w11_bench_trace.json"));
#endif
  return 0;
}

}  // namespace w11::bench
