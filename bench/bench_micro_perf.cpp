// Micro-benchmarks (google-benchmark): costs of the hot paths — event
// queue, MCS selection, NodeP evaluation, NBO scaling (indexed vs
// reference), FastACK datapath, LittleTable ingest/query — to back
// DESIGN.md's complexity claims. Results are also written to
// BENCH_planner.json (ops/sec + items processed) unless the caller passes
// its own --benchmark_out.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_main.hpp"
#include "core/fastack/agent.hpp"
#include "core/turboca/plan_context.hpp"
#include "exec/task_pool.hpp"
#include "core/turboca/reference.hpp"
#include "core/turboca/turboca.hpp"
#include "flowsim/network.hpp"
#include "flowsim/scan_index.hpp"
#include "phy/mcs.hpp"
#include "sim/simulator.hpp"
#include "telemetry/littletable.hpp"
#include "workload/topology.hpp"

namespace w11 {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1000; ++i)
      sim.schedule_at(time::micros(i), [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.processed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_McsSelect(benchmark::State& state) {
  double snr = 3.0;
  for (auto _ : state) {
    snr = snr > 40.0 ? 3.0 : snr + 0.37;
    benchmark::DoNotOptimize(mcs::select(snr, ChannelWidth::MHz80, 3));
  }
}
BENCHMARK(BM_McsSelect);

void BM_PacketErrorRate(benchmark::State& state) {
  double snr = 5.0;
  for (auto _ : state) {
    snr = snr > 35.0 ? 5.0 : snr + 0.13;
    benchmark::DoNotOptimize(mcs::packet_error_rate({7, 2}, snr, 1500));
  }
}
BENCHMARK(BM_PacketErrorRate);

std::vector<ApScan> campus_scans(int n_aps) {
  workload::CampusConfig cc;
  cc.n_aps = n_aps;
  cc.buildings = std::max(2, n_aps / 10);
  cc.seed = 5;
  auto net = workload::make_campus(cc);
  return net->scan();
}

void BM_NodePEvaluation(benchmark::State& state) {
  const auto scans = campus_scans(40);
  turboca::TurboCA tca({}, Rng(1));
  ChannelPlan plan;
  for (const auto& s : scans) plan[s.id] = s.current;
  std::size_t i = 0;
  for (auto _ : state) {
    const ApScan& s = scans[i++ % scans.size()];
    benchmark::DoNotOptimize(tca.node_p_log(s, s.current, scans, plan, {}));
  }
}
BENCHMARK(BM_NodePEvaluation);

// One NBO sweep on the production (ScanIndex + PlanContext) path. The index
// is built once per scan epoch, as the services do.
void BM_NboSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const turboca::Params params;
  const flowsim::ScanIndex index(campus_scans(n), params.neighbor_rssi_floor);
  turboca::TurboCA tca(params, Rng(2));
  ChannelPlan plan;
  for (const auto& s : index.scans()) plan[s.id] = s.current;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tca.nbo(index, plan, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NboSweep)->Arg(40)->Arg(200)->Arg(600)->Complexity();

// The 600-AP sweep at explicit worker counts: the scaling curve of the
// speculative NBO executor (DESIGN.md §10). Wall-clock (UseRealTime)
// because the work fans out across pool threads; the plan is bit-identical
// at every Arg by construction (tests/test_planner_golden). On a 1-core
// container the counts >1 measure overhead only — the speedup column is
// meaningful on real multi-core hardware (e.g. 4-core CI runners).
void BM_NboSweepThreads(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const turboca::Params params;
  exec::TaskPool pool(workers);
  const flowsim::ScanIndex index(campus_scans(600),
                                 params.neighbor_rssi_floor, &pool);
  turboca::TurboCA tca(params, Rng(2));
  tca.set_pool(&pool);
  ChannelPlan plan;
  for (const auto& s : index.scans()) plan[s.id] = s.current;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tca.nbo(index, plan, 0));
  }
  state.SetItemsProcessed(state.iterations() * 600);
  const turboca::TurboCA::SweepStats& st = tca.sweep_stats();
  state.counters["spec_batches"] =
      benchmark::Counter(static_cast<double>(st.batches));
  state.counters["mean_batch"] =
      st.batches ? static_cast<double>(st.picks) /
                       static_cast<double>(st.batches)
                 : 0.0;
  state.counters["max_batch"] =
      benchmark::Counter(static_cast<double>(st.max_batch));
}
BENCHMARK(BM_NboSweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The same sweep on the preserved reference evaluator — the before/after
// pair behind the speedup claim in DESIGN.md §9.
void BM_NboSweepReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto scans = campus_scans(n);
  turboca::ReferenceEvaluator ref({}, Rng(2));
  ChannelPlan plan;
  for (const auto& s : scans) plan[s.id] = s.current;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.nbo(scans, plan, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NboSweepReference)->Arg(40)->Arg(200)->Arg(600)->Complexity();

// The batched SoA kernel's own-term pass (DESIGN.md §14): all candidates of
// one AP scored in a single score block walk. Counters report the
// per-candidate cost and throughput the tentpole claims.
void BM_ScoreCandidates(benchmark::State& state) {
  const turboca::Params params;
  const flowsim::ScanIndex index(campus_scans(200),
                                 params.neighbor_rssi_floor);
  const turboca::PlanContext ctx(index, params, {});
  const turboca::PsiSet psi(index.size());
  std::vector<double> out;
  std::size_t i = 0;
  std::int64_t cands_scored = 0;
  for (auto _ : state) {
    const std::size_t target = i++ % index.size();
    out.resize(index.candidates(target).size());
    ctx.score_candidates(target, out, &psi);
    benchmark::DoNotOptimize(out.data());
    cands_scored += static_cast<std::int64_t>(out.size());
  }
  state.SetItemsProcessed(cands_scored);
  state.counters["candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(cands_scored), benchmark::Counter::kIsRate);
  state.counters["ns_per_candidate"] = benchmark::Counter(
      static_cast<double>(cands_scored) * 1e-9,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ScoreCandidates);

// One full batched NodeP evaluation of a move: own term for every candidate
// plus every affected neighbor's term under each trial — exactly what one
// ACC pick pays, minus the argmax. The before/after partner of
// BM_NodePEvaluation (one scalar node_p_log call per iteration there).
void BM_NodePBatch(benchmark::State& state) {
  const turboca::Params params;
  const flowsim::ScanIndex index(campus_scans(200),
                                 params.neighbor_rssi_floor);
  const turboca::PlanContext ctx(index, params, {});
  const turboca::PsiSet psi(index.size());
  std::vector<double> out;
  std::size_t i = 0;
  std::int64_t terms_scored = 0;  // (candidate, AP-term) evaluations
  for (auto _ : state) {
    const std::size_t target = i++ % index.size();
    out.resize(index.candidates(target).size());
    ctx.score_candidates(target, out, &psi);
    std::int64_t aps = 1;
    for (const flowsim::ScanIndex::Neighbor& nb : index.neighbors(target)) {
      if (psi.contains(nb.index)) continue;
      ctx.add_neighbor_scores(nb.index, target, &psi, out);
      ++aps;
    }
    benchmark::DoNotOptimize(out.data());
    terms_scored += aps * static_cast<std::int64_t>(out.size());
  }
  state.SetItemsProcessed(terms_scored);
  state.counters["node_p_per_sec"] = benchmark::Counter(
      static_cast<double>(terms_scored), benchmark::Counter::kIsRate);
  state.counters["ns_per_node_p"] = benchmark::Counter(
      static_cast<double>(terms_scored) * 1e-9,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_NodePBatch);

// Steady-state ACC cost against a warm PlanContext: candidate trial moves
// evaluated incrementally (mover + overlap-affected neighbors only).
void BM_AccIncremental(benchmark::State& state) {
  const turboca::Params params;
  const flowsim::ScanIndex index(campus_scans(200),
                                 params.neighbor_rssi_floor);
  turboca::TurboCA tca(params, Rng(3));
  turboca::PlanContext ctx(index, params, {});
  benchmark::DoNotOptimize(ctx.net_p_log());  // warm the term cache
  const turboca::PsiSet psi(index.size());
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t target = i++ % index.size();
    const Channel best = tca.acc(ctx, target, psi);
    benchmark::DoNotOptimize(best);
    ctx.set(target, best);
    benchmark::DoNotOptimize(ctx.net_p_log());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccIncremental);

// Cost of flattening one scan epoch (amortized over every evaluation the
// planner stack makes against it).
void BM_ScanIndexBuild(benchmark::State& state) {
  const auto scans = campus_scans(static_cast<int>(state.range(0)));
  const turboca::Params params;
  for (auto _ : state) {
    const flowsim::ScanIndex index(scans, params.neighbor_rssi_floor);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanIndexBuild)->Arg(200);

// Fleet-cadence index rebuild with the service-style ScanStatsCache: every
// firing after the first finds all APs' spectrum content unchanged, so the
// aggregate fill is pure row copies. stats_hit_rate proves the cache is
// actually serving (1.0 = every AP row after warmup came from the cache).
void BM_ScanIndexBuildCached(benchmark::State& state) {
  const auto scans = campus_scans(static_cast<int>(state.range(0)));
  const turboca::Params params;
  flowsim::ScanStatsCache cache;
  {  // warm firing, as a long-lived service's first run
    const flowsim::ScanIndex warm(scans, params.neighbor_rssi_floor, nullptr,
                                  &cache);
    benchmark::DoNotOptimize(warm.size());
  }
  const std::uint64_t warm_misses = cache.stats().misses;
  for (auto _ : state) {
    const flowsim::ScanIndex index(scans, params.neighbor_rssi_floor, nullptr,
                                   &cache);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  const flowsim::ScanStatsCache::Stats& cs = cache.stats();
  state.counters["stats_hits"] =
      benchmark::Counter(static_cast<double>(cs.hits));
  state.counters["stats_misses"] =
      benchmark::Counter(static_cast<double>(cs.misses));
  state.counters["stats_hit_rate"] =
      cs.hits + (cs.misses - warm_misses)
          ? static_cast<double>(cs.hits) /
                static_cast<double>(cs.hits + cs.misses - warm_misses)
          : 0.0;
}
BENCHMARK(BM_ScanIndexBuildCached)->Arg(200);

void BM_FlowsimEvaluate(benchmark::State& state) {
  workload::CampusConfig cc;
  cc.n_aps = static_cast<int>(state.range(0));
  cc.seed = 7;
  auto net = workload::make_campus(cc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->evaluate().total_throughput_mbps);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowsimEvaluate)->Arg(25)->Arg(50)->Arg(100)->Complexity();

// FastACK datapath: case-(iii) data + 802.11 ack + suppressed client ack —
// the steady-state per-segment cost.
void BM_FastAckDatapath(benchmark::State& state) {
  Simulator sim;
  mac::Medium medium(sim, {}, Rng(1));
  AccessPoint::Config acfg;
  acfg.id = ApId{0};
  AccessPoint ap(sim, medium, acfg, Rng(2));
  ClientStation::Config ccfg;
  ccfg.id = StationId{1};
  ccfg.pos = Position{5, 0};
  ClientStation client(sim, medium, ccfg, Rng(3));
  ap.associate(&client);
  fastack::FastAckAgent agent(sim, ap, {});
  ap.set_interceptor(&agent);
  ap.set_wire_out([](TcpSegment) {});

  std::uint64_t seq = 0;
  for (auto _ : state) {
    TcpSegment seg;
    seg.flow = FlowId{1};
    seg.dst_station = StationId{1};
    seg.seq = seq;
    seg.payload = 1460;
    benchmark::DoNotOptimize(agent.on_downlink_data(seg));
    agent.on_80211_delivered(seg);
    TcpSegment ack;
    ack.flow = FlowId{1};
    ack.is_ack = true;
    ack.ack = seq + 1460;
    ack.rwnd = 1 << 20;
    benchmark::DoNotOptimize(agent.on_uplink_ack(ack));
    seq += 1460;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastAckDatapath);

void BM_LittleTableInsert(benchmark::State& state) {
  telemetry::LittleTable t("bench", {"a", "b", "c"});
  std::int64_t i = 0;
  for (auto _ : state) {
    t.insert(static_cast<std::uint32_t>(i % 64), time::seconds(i), {1.0, 2.0, 3.0});
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LittleTableInsert);

// Batched ingestion: one reserve + bulk append per polling interval versus
// a per-row insert loop (the before/after pair for the collector path).
void BM_LittleTableBatchAppend(benchmark::State& state) {
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  telemetry::LittleTable t("bench", {"a", "b", "c"});
  std::int64_t tick = 0;
  for (auto _ : state) {
    std::vector<telemetry::LittleTable::Row> batch;
    batch.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i)
      batch.push_back(telemetry::LittleTable::Row{
          static_cast<std::uint32_t>(i), time::seconds(tick), {1.0, 2.0, 3.0}});
    t.append(std::move(batch));
    ++tick;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_LittleTableBatchAppend)->Arg(64)->Arg(600);

void BM_LittleTableAggregate(benchmark::State& state) {
  telemetry::LittleTable t("bench", {"a"});
  for (std::int64_t i = 0; i < 100'000; ++i)
    t.insert(static_cast<std::uint32_t>(i % 64), time::seconds(i), {1.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.aggregate("a", telemetry::LittleTable::Agg::kMean,
                                         Time{0}, time::seconds(100'000),
                                         time::hours(1)));
  }
}
BENCHMARK(BM_LittleTableAggregate);

}  // namespace
}  // namespace w11

// Shared benchmark main with a default JSON report so the planner speedup
// numbers land on disk on every plain run.
int main(int argc, char** argv) {
  return w11::bench::run_benchmark_main(argc, argv, "BENCH_planner.json");
}
