// Plan-rollout resilience sweep: the controller→AP apply pipeline driven
// through the full scenario harness (campus network, TurboCA, telemetry,
// lossy control channel, staged waves with auto-revert) at increasing fault
// intensity. Reports what the robustness bar demands — every run converges
// with zero half-applied APs — plus the revert-rate-vs-intensity and
// convergence-time curves EXPERIMENTS.md records, and writes them to
// BENCH_rollout.json for the CI artifact.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/json_writer.hpp"
#include "common/stats.hpp"
#include "exec/task_pool.hpp"
#include "fault/fault_plan.hpp"
#include "scenario/rollout_harness.hpp"

using namespace w11;

namespace {

scenario::RolloutScenarioConfig sweep_config(std::uint64_t net_seed,
                                             std::uint64_t plan_seed,
                                             int n_events) {
  scenario::RolloutScenarioConfig cfg;
  cfg.n_aps = 12;
  cfg.net_seed = net_seed;
  cfg.ctrl_seed = plan_seed * 1000 + net_seed;
  cfg.horizon = time::hours(4);
  cfg.poll = time::minutes(1);
  cfg.channel.loss = 0.05;
  cfg.backoff.ack_timeout = time::millis(500);
  cfg.backoff.initial = time::millis(500);
  cfg.backoff.cap = time::seconds(10);
  // Bounded attempts: an AP unreachable through the whole retry budget
  // exhausts its wave and forces a revert — that is the knob that turns
  // fault intensity into a revert rate instead of an ever-longer stall.
  cfg.backoff.max_attempts = 6;
  cfg.rollout.canary = 2;
  cfg.rollout.validate_window = time::minutes(2);
  cfg.rollout.watchdog = time::minutes(10);
  if (n_events > 0) {
    fault::FaultPlan::RandomConfig rc;
    rc.horizon = cfg.horizon;
    rc.n_aps = cfg.n_aps;
    rc.n_links = cfg.n_aps;
    rc.n_events = n_events;
    rc.max_outage = time::minutes(3);
    cfg.faults = fault::FaultPlan::random(plan_seed, rc);
    // Random outages almost never land inside a wave's ~20 s apply window,
    // so the revert axis of the sweep is driven deterministically: one
    // fleet-wide control partition per 8 intensity points, opened just as
    // a growth wave launches (waves go out at validate_window boundaries
    // after the 15-minute planner firings). The partition outlasts the
    // bounded retry budget, the wave exhausts, and the rollout reverts —
    // then heals, replans, and converges.
    for (int j = 0; j < n_events / 8; ++j) {
      const Time at =
          time::minutes(15 * (j + 1) + 2) - time::seconds(10);
      for (int link = 0; link < cfg.n_aps; ++link)
        cfg.faults.link_outage(at, link, time::seconds(70));
    }
  }
  return cfg;
}

struct IntensityRow {
  int n_events = 0;
  int runs = 0;
  int converged = 0;
  int half_applied = 0;
  std::uint64_t rollouts = 0;
  std::uint64_t committed = 0;
  std::uint64_t reverted = 0;
  std::uint64_t retries = 0;
  std::uint64_t exhausted = 0;
  std::uint64_t replans = 0;
  Samples convergence_s;  // per completed rollout, across the cell's runs
};

}  // namespace

int main() {
  print_banner("rollout",
               "Resilient plan rollout: convergence & revert rate vs faults");

  const std::vector<int> intensities = {0, 4, 8, 16, 32};
  const std::vector<std::uint64_t> net_seeds = {1, 2};
  const std::vector<std::uint64_t> plan_seeds = {61, 62, 63};
  const std::size_t cell = net_seeds.size() * plan_seeds.size();

  // Every (intensity, net seed, plan seed) world is independent — shard the
  // whole sweep across the pool and fold results back in index order.
  exec::TaskPool& pool = exec::TaskPool::global();
  const auto results = pool.parallel_map<scenario::RolloutScenarioResult>(
      intensities.size() * cell, [&](std::size_t i) {
        const int n_events = intensities[i / cell];
        const std::uint64_t ns = net_seeds[(i % cell) / plan_seeds.size()];
        const std::uint64_t ps = plan_seeds[i % plan_seeds.size()];
        return scenario::run_rollout_scenario(sweep_config(ns, ps, n_events));
      });

  std::vector<IntensityRow> rows;
  for (std::size_t ii = 0; ii < intensities.size(); ++ii) {
    IntensityRow row;
    row.n_events = intensities[ii];
    for (std::size_t k = 0; k < cell; ++k) {
      const auto& r = results[ii * cell + k];
      ++row.runs;
      row.converged += r.converged ? 1 : 0;
      row.half_applied += r.half_applied;
      row.rollouts += r.rollout.rollouts_started;
      row.committed += r.rollout.committed;
      row.reverted += r.rollout.reverted;
      row.retries += r.apply.retries;
      row.exhausted += r.apply.exhausted;
      row.replans += static_cast<std::uint64_t>(r.requested_replans);
      for (double s : r.convergence_s) row.convergence_s.add(s);
    }
    rows.push_back(std::move(row));
  }

  TablePrinter t({"fault events", "runs", "converged", "half-applied",
                  "rollouts", "committed", "reverted", "revert rate",
                  "conv p50 s", "conv p95 s", "retries", "replans"});
  int all_runs = 0, all_converged = 0, all_half = 0;
  std::uint64_t faulty_retries = 0, total_reverted = 0;
  std::uint64_t quiet_reverted = 0;
  for (const auto& r : rows) {
    const double rate =
        r.rollouts > 0
            ? static_cast<double>(r.reverted) / static_cast<double>(r.rollouts)
            : 0.0;
    t.add_row(r.n_events, r.runs, r.converged, r.half_applied, r.rollouts,
              r.committed, r.reverted, rate, r.convergence_s.quantile(0.50),
              r.convergence_s.quantile(0.95), r.retries, r.replans);
    all_runs += r.runs;
    all_converged += r.converged;
    all_half += r.half_applied;
    total_reverted += r.reverted;
    if (r.n_events == 0) quiet_reverted += r.reverted;
    if (r.n_events > 0) faulty_retries += r.retries;
  }
  t.print();

  bench::paper_note(
      "plans are computed centrally and pushed to APs that may be offline or "
      "mid-evacuation (§4.5); a rollout must end fully applied or fully "
      "reverted — a half-applied fleet is the failure mode");
  bench::shape_check(
      "every run at every fault intensity converges with zero half-applied "
      "APs",
      all_converged == all_runs && all_half == 0);
  bench::shape_check("a fault-free fleet never reverts", quiet_reverted == 0);
  bench::shape_check("faults actually bite: retries observed under fault load",
                     faulty_retries > 0);
  bench::shape_check(
      "fault load produces reverts somewhere in the sweep (the revert path "
      "is exercised, not just compiled)",
      total_reverted > 0);

  // Reproducibility twins on different pool lanes: byte-identical audits.
  const auto twins = pool.parallel_map<scenario::RolloutScenarioResult>(
      2, [&](std::size_t) {
        return scenario::run_rollout_scenario(sweep_config(1, 62, 16));
      });
  const bool twin_ok = twins[0].audit_jsonl == twins[1].audit_jsonl &&
                       twins[0].final_plan == twins[1].final_plan &&
                       twins[0].fault_log == twins[1].fault_log;
  bench::shape_check(
      "a rollout run is byte-identical from its seeds (audit JSONL, final "
      "plan, fault log)",
      twin_ok);

  // --- fleet health engine + flight recorder demo --------------------------
  // Sequential on purpose: a health run owns the process-global
  // tracer/metrics registries, so it must never share them with a
  // concurrent twin. The faulty shape above guarantees reverts, so the
  // recorder dumps postmortems — and they must be byte-identical whether
  // the planner scored on 1 worker or 4.
  auto health_cfg = [](exec::TaskPool* p) {
    scenario::RolloutScenarioConfig cfg = sweep_config(1, 62, 16);
    cfg.health = true;
    cfg.pool = p;
    return cfg;
  };
  exec::TaskPool hp1(1);
  exec::TaskPool hp4(4);
  const auto h1 = scenario::run_rollout_scenario(health_cfg(&hp1));
  const auto h4 = scenario::run_rollout_scenario(health_cfg(&hp4));
  const bool postmortems_ok = !h1.postmortems.empty() &&
                              h1.postmortems == h4.postmortems &&
                              h1.health_events_jsonl == h4.health_events_jsonl;
  bench::shape_check(
      "auto-revert chaos dumps postmortem bundles, byte-identical at 1 vs 4 "
      "planner workers",
      postmortems_ok);
  bench::shape_check(
      "SLO burn-rate alerting paged on the reverts and recovered after",
      h1.health_breaches > 0 && h1.health_recoveries > 0);
  std::cout << "  health: " << h1.health_breaches << " breaches, "
            << h1.health_recoveries << " recoveries, "
            << h1.postmortems.size() << " postmortems retained ("
            << h1.rollout_health.reverted << " reverts, revert rate "
            << h1.rollout_health.revert_rate << ")\n";

  // --- JSON artifact -------------------------------------------------------
  {
    std::ofstream os("BENCH_rollout.json");
    json::Writer w(os);
    w.begin_object();
    w.field("bench", "rollout");
    w.field("runs", static_cast<std::int64_t>(all_runs));
    w.field("twin_audit_identical", twin_ok);
    w.key("health").begin_object();
    w.field("breaches", h1.health_breaches);
    w.field("recoveries", h1.health_recoveries);
    w.field("health_rows", h1.health_rows);
    w.field("postmortems", static_cast<std::uint64_t>(h1.postmortems.size()));
    w.field("postmortems_identical_across_workers", postmortems_ok);
    w.field("reverted", h1.rollout_health.reverted);
    w.end_object();
    w.key("intensities").begin_array();
    for (const auto& r : rows) {
      w.begin_object();
      w.field("fault_events", static_cast<std::int64_t>(r.n_events));
      w.field("runs", static_cast<std::int64_t>(r.runs));
      w.field("converged", static_cast<std::int64_t>(r.converged));
      w.field("half_applied", static_cast<std::int64_t>(r.half_applied));
      w.field("rollouts", r.rollouts);
      w.field("committed", r.committed);
      w.field("reverted", r.reverted);
      w.field("revert_rate",
              r.rollouts > 0 ? static_cast<double>(r.reverted) /
                                   static_cast<double>(r.rollouts)
                             : 0.0);
      w.field("convergence_s_p50", r.convergence_s.quantile(0.50));
      w.field("convergence_s_p95", r.convergence_s.quantile(0.95));
      w.field("retries", r.retries);
      w.field("exhausted", r.exhausted);
      w.field("replans", r.replans);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::cout << "\n  wrote BENCH_rollout.json\n";
  }
  return bench::finish();
}
