// Related-work comparison (§5.3): baseline TCP vs TCP-Snoop vs FastACK.
//
// The paper positions FastACK against Snoop: both cache packets at the AP
// and retransmit locally, but Snoop only *hides wireless losses* from the
// sender's congestion control, while FastACK additionally accelerates the
// ACK clock to drive aggregation. Expected signature on a lossy cell:
//
//   * sender-visible loss events: baseline >> Snoop ≈ FastACK
//   * A-MPDU aggregation:         FastACK >> Snoop ≈ baseline
//   * throughput:                 FastACK > Snoop >= baseline

#include <iostream>

#include "bench_util.hpp"
#include "scenario/testbed.hpp"

using namespace w11;

namespace {

struct Outcome {
  double throughput = 0.0;
  double mean_ampdu = 0.0;
  std::uint64_t sender_loss_events = 0;  // fast retransmits + RTOs
  std::uint64_t local_retx = 0;
};

Outcome run(scenario::TcpAccel accel) {
  scenario::TestbedConfig cfg;
  cfg.n_clients_per_ap = 12;
  cfg.duration = time::seconds(6);
  cfg.accel = {accel};
  // A lossy cell: clients toward the edge with deep fading, plus the
  // paper's 1.5 % bad-hint rate.
  cfg.client_min_dist_m = 15.0;
  cfg.client_max_dist_m = 40.0;
  cfg.rate_control.fading_sigma = 3.0;
  cfg.bad_hint_rate = 0.015;
  cfg.seed = 37;
  scenario::Testbed tb(cfg);
  tb.run();

  Outcome out;
  out.throughput = tb.aggregate_throughput_mbps();
  for (double a : tb.mean_ampdu_per_client(0)) out.mean_ampdu += a;
  out.mean_ampdu /= cfg.n_clients_per_ap;
  for (int c = 0; c < cfg.n_clients_per_ap; ++c) {
    const auto& s = tb.sender(0, c).stats();
    out.sender_loss_events += s.fast_retransmits + s.rto_events;
  }
  if (accel == scenario::TcpAccel::kSnoop)
    out.local_retx = tb.snoop_agent(0)->stats().local_retransmits;
  if (accel == scenario::TcpAccel::kFastAck)
    out.local_retx = tb.agent(0)->stats().local_retransmits;
  return out;
}

}  // namespace

int main() {
  print_banner("Related work (§5.3)", "baseline TCP vs TCP-Snoop vs FastACK on a lossy cell");

  const Outcome base = run(scenario::TcpAccel::kNone);
  const Outcome snoop = run(scenario::TcpAccel::kSnoop);
  const Outcome fast = run(scenario::TcpAccel::kFastAck);

  TablePrinter t({"scheme", "throughput (Mbps)", "mean A-MPDU",
                  "sender loss events", "AP local retx"});
  t.add_row("baseline TCP", base.throughput, base.mean_ampdu,
            base.sender_loss_events, base.local_retx);
  t.add_row("TCP-Snoop", snoop.throughput, snoop.mean_ampdu,
            snoop.sender_loss_events, snoop.local_retx);
  t.add_row("FastACK", fast.throughput, fast.mean_ampdu,
            fast.sender_loss_events, fast.local_retx);
  t.print();

  bench::paper_note("Snoop hides wireless loss from cwnd; FastACK additionally accelerates the ACK clock to drive aggregation (its motivation, §5.3)");
  bench::shape_check("Snoop shields the sender from loss events vs baseline",
                     snoop.sender_loss_events < base.sender_loss_events);
  // Note: on a loss-crushed cell Snoop *does* lift aggregation indirectly —
  // keeping cwnd open keeps queues deeper — but it stops well short of
  // FastACK, which is the paper's point: loss-hiding is necessary but the
  // ACK clock is the binding constraint.
  bench::shape_check("aggregation ordering baseline < Snoop < FastACK",
                     base.mean_ampdu < snoop.mean_ampdu &&
                         snoop.mean_ampdu < fast.mean_ampdu);
  bench::shape_check("FastACK's aggregation far exceeds both",
                     fast.mean_ampdu > 1.5 * snoop.mean_ampdu &&
                         fast.mean_ampdu > 1.5 * base.mean_ampdu);
  bench::shape_check("throughput: FastACK > Snoop and FastACK > baseline",
                     fast.throughput > snoop.throughput &&
                         fast.throughput > base.throughput);
  bench::shape_check("Snoop does not hurt throughput",
                     snoop.throughput > 0.85 * base.throughput);
  return bench::finish();
}
