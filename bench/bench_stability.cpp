// §4.3.1 "Performance vs. Stability": why TurboCA deliberately damps
// channel churn instead of chasing the instantaneous optimum.
//
// Three policies run the same churning day on the same campus:
//   * chase    — TurboCA with the switch penalty removed: every 15-minute
//                run is free to re-plan from scratch (the "continued
//                iterations to follow the optimal assignment" of §4.7);
//   * turboca  — the shipped configuration (penalty + schedule);
//   * static   — plan once at midnight, never again.
//
// Expected: `chase` wins on raw plan quality but racks up client
// disruption (non-CSA clients rescan ~5-8 s per switch); `static` never
// disrupts anyone but degrades as interference shifts; TurboCA lands near
// `chase` on performance at a fraction of the disruption — the paper's
// design argument.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/turboca/hopping.hpp"
#include "core/turboca/service.hpp"
#include "exec/task_pool.hpp"
#include "workload/topology.hpp"
#include "workload/traffic.hpp"

using namespace w11;

namespace {

struct Outcome {
  double mean_latency_ms = 0.0;
  double mean_fulfilment = 0.0;  // served / offered during business hours
  int switches = 0;
  double disruption_client_s = 0.0;
};

enum class Policy { kChase, kTurboCa, kStatic, kHopping };

Outcome run(Policy policy, std::uint64_t seed = 71) {
  workload::CampusConfig cc;
  cc.n_aps = 50;
  cc.buildings = 6;
  cc.seed = seed;
  cc.clients_per_ap_mean = 8.0;
  cc.offered_per_client_mbps = 3.0;
  cc.interferers_per_building = 5.0;
  auto net = workload::make_campus(cc);

  turboca::NetworkHooks hooks;
  hooks.scan = [&net] { return net->scan(); };
  hooks.current_plan = [&net] { return net->current_plan(); };
  hooks.apply_plan = [&net](const ChannelPlan& p) { net->apply_plan(p); };

  turboca::Params params;
  if (policy == Policy::kChase) {
    params.switch_penalty = 0.0;
    params.switch_penalty_24ghz = 0.0;
    params.switch_penalty_high_util = 0.0;
  }
  turboca::TurboCaService svc(params, {}, hooks, Rng(seed ^ 55));
  turboca::HoppingCaService hopper({}, hooks, Rng(seed ^ 56));
  net->set_load_factor(workload::diurnal_factor(0.0));  // midnight: idle
  if (policy == Policy::kHopping) {
    hopper.hop_now();
  } else {
    svc.run_now({2, 1, 0});  // everyone starts from a sane midnight plan
  }

  Outcome out;
  Rng churn(seed ^ 99);
  int samples = 0;
  int switches_at_8am = 0;
  double disruption_at_8am = 0.0;
  for (int step = 0; step < 96; ++step) {
    const double hour = step * 0.25;
    net->set_load_factor(workload::diurnal_factor(hour));
    if (step % 4 == 0) net->mutate_interferers(churn);  // hourly churn
    if (policy == Policy::kHopping) {
      hopper.advance_to(time::minutes(15 * step));
    } else if (policy != Policy::kStatic) {
      svc.advance_to(time::minutes(15 * step));
    }
    if (step == 32) {  // 8:00 — stability is measured while clients are on
      switches_at_8am = net->total_switches();
      disruption_at_8am = net->disruption_client_seconds();
    }

    if (hour >= 9.0 && hour < 18.0 && step % 4 == 0) {
      const auto ev = net->evaluate();
      auto lat = net->sample_tcp_latency(ev, 10, 0.0);
      out.mean_latency_ms += lat.mean();
      out.mean_fulfilment += ev.total_offered_mbps > 0
                                 ? ev.total_throughput_mbps / ev.total_offered_mbps
                                 : 1.0;
      ++samples;
    }
  }
  out.mean_latency_ms /= samples;
  out.mean_fulfilment /= samples;
  // Business-hours churn is what §4.3.1 cares about: overnight moves are
  // free (clients idle), so count from 8:00 on.
  out.switches = net->total_switches() - switches_at_8am;
  out.disruption_client_s = net->disruption_client_seconds() - disruption_at_8am;
  return out;
}

}  // namespace

int main() {
  print_banner("§4.3.1", "Performance vs stability: chase vs TurboCA vs static");

  // One policy per task: the four simulated days are independent (each
  // builds its own campus and RNGs), so they shard across the pool and the
  // results land in policy order regardless of completion order.
  exec::TaskPool& pool = exec::TaskPool::global();
  const std::vector<Policy> policies = {Policy::kChase, Policy::kTurboCa,
                                        Policy::kStatic, Policy::kHopping};
  const std::vector<Outcome> outcomes = pool.parallel_map<Outcome>(
      policies.size(), [&](std::size_t i) { return run(policies[i]); });
  const Outcome& chase = outcomes[0];
  const Outcome& turbo = outcomes[1];
  const Outcome& fixed = outcomes[2];
  const Outcome& hopping = outcomes[3];

  TablePrinter t({"policy", "mean latency (ms)", "demand fulfilment",
                  "channel switches", "client disruption (s)"});
  t.add_row("chase optimum", chase.mean_latency_ms, chase.mean_fulfilment,
            chase.switches, chase.disruption_client_s);
  t.add_row("TurboCA", turbo.mean_latency_ms, turbo.mean_fulfilment,
            turbo.switches, turbo.disruption_client_s);
  t.add_row("static plan", fixed.mean_latency_ms, fixed.mean_fulfilment,
            fixed.switches, fixed.disruption_client_s);
  t.add_row("channel hopping", hopping.mean_latency_ms, hopping.mean_fulfilment,
            hopping.switches, hopping.disruption_client_s);
  t.print();

  bench::paper_note("\"such optimality is transient... continued iterations sacrifice stability\" (§4.7); TurboCA balances the two");
  bench::shape_check("chasing the optimum churns materially more than TurboCA",
                     chase.switches > static_cast<int>(1.3 * turbo.switches));
  bench::shape_check("TurboCA's client disruption is materially lower than chasing",
                     turbo.disruption_client_s < 0.8 * chase.disruption_client_s);
  bench::shape_check("TurboCA's performance is within 15% of the chased optimum",
                     turbo.mean_latency_ms < 1.15 * chase.mean_latency_ms ||
                         turbo.mean_fulfilment > 0.85 * chase.mean_fulfilment);
  bench::shape_check("a static plan underperforms under churn",
                     fixed.mean_latency_ms > turbo.mean_latency_ms ||
                         fixed.mean_fulfilment < turbo.mean_fulfilment);
  // §4.2 category (iii): oblivious hopping churns every period and pays the
  // full disruption bill without measurement-driven gains.
  bench::shape_check("oblivious hopping disrupts clients far more than TurboCA",
                     hopping.disruption_client_s > 2.0 * turbo.disruption_client_s);
  bench::shape_check("TurboCA outperforms oblivious hopping",
                     turbo.mean_latency_ms < hopping.mean_latency_ms ||
                         turbo.mean_fulfilment > hopping.mean_fulfilment);
  bench::shape_check("a static plan disrupts least (only the midnight rollout)",
                     fixed.disruption_client_s <= turbo.disruption_client_s &&
                         fixed.switches <= turbo.switches);

  // Multi-seed stability: the §4.3.1 argument must hold across campuses,
  // not on one lucky seed. One campus/seed per task; per-task accumulators
  // merge in seed order (Chan et al.), so the aggregate is identical at any
  // worker count.
  const std::vector<std::uint64_t> seeds = {71, 101, 131, 161, 191, 221};
  struct SeedStats {
    RunningStats turbo_fulfilment, turbo_disruption;
    RunningStats chase_fulfilment, chase_disruption;
  };
  const std::vector<SeedStats> per_seed = pool.parallel_map<SeedStats>(
      seeds.size(), [&](std::size_t i) {
        SeedStats s;
        const Outcome t = run(Policy::kTurboCa, seeds[i]);
        const Outcome c = run(Policy::kChase, seeds[i]);
        s.turbo_fulfilment.add(t.mean_fulfilment);
        s.turbo_disruption.add(t.disruption_client_s);
        s.chase_fulfilment.add(c.mean_fulfilment);
        s.chase_disruption.add(c.disruption_client_s);
        return s;
      });
  SeedStats agg;
  for (const SeedStats& s : per_seed) {
    agg.turbo_fulfilment.merge(s.turbo_fulfilment);
    agg.turbo_disruption.merge(s.turbo_disruption);
    agg.chase_fulfilment.merge(s.chase_fulfilment);
    agg.chase_disruption.merge(s.chase_disruption);
  }

  TablePrinter ms({"metric (6 seeds)", "TurboCA mean", "chase mean"});
  ms.add_row("demand fulfilment", agg.turbo_fulfilment.mean(),
             agg.chase_fulfilment.mean());
  ms.add_row("client disruption (s)", agg.turbo_disruption.mean(),
             agg.chase_disruption.mean());
  ms.print();

  bench::shape_check("across seeds, TurboCA disrupts less than chasing on average",
                     agg.turbo_disruption.mean() <
                         0.8 * agg.chase_disruption.mean());
  bench::shape_check("across seeds, TurboCA fulfilment stays within 15% of chase",
                     agg.turbo_fulfilment.mean() >
                         0.85 * agg.chase_fulfilment.mean());
  return bench::finish();
}
