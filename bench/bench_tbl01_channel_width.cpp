// Table 1: administrator-configured channel width on 80 MHz-capable APs,
// fleet-wide vs networks larger than 10 APs, prior to TurboCA.
//
// Paper: 20 MHz 14.9 % / 17.3 %, 40 MHz 19.1 % / 19.4 %, 80 MHz 66.0 % /
// 63.3 % — i.e. ~34 % of APs are manually narrowed, slightly more in large
// networks where contention makes 80 MHz hurt.

#include <array>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "workload/device_population.hpp"

using namespace w11;

int main() {
  print_banner("Table 1", "Configured channel width, all APs vs large networks");

  constexpr int kAps = 300'000;
  auto shares = [&](bool large) {
    Rng rng(large ? 11 : 7);
    double w[3] = {0, 0, 0};
    for (int i = 0; i < kAps; ++i) {
      switch (workload::sample_configured_width(large, rng)) {
        case ChannelWidth::MHz20: w[0] += 1; break;
        case ChannelWidth::MHz40: w[1] += 1; break;
        default: w[2] += 1; break;
      }
    }
    for (double& x : w) x /= kAps;
    return std::array<double, 3>{w[0], w[1], w[2]};
  };
  const auto all = shares(false);
  const auto large = shares(true);

  TablePrinter t({"Channel Width", "All APs", "Large Networks(>10 APs)",
                  "paper all", "paper large"});
  t.add_row("20MHz", all[0], large[0], 0.149, 0.173);
  t.add_row("40MHz", all[1], large[1], 0.191, 0.194);
  t.add_row("80MHz", all[2], large[2], 0.660, 0.633);
  t.print();

  bench::paper_note("34% of 80MHz-capable APs manually narrowed; 37% in large networks");
  bench::shape_check("80MHz majority in both populations",
                     all[2] > 0.5 && large[2] > 0.5);
  bench::shape_check("large networks narrow more",
                     (1.0 - large[2]) > (1.0 - all[2]));
  return bench::finish();
}
