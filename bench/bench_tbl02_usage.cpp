// Table 2: daily and peak-hour usage under ReservedCA vs TurboCA for UNet
// (university) and MNet (museum).
//
// Paper (TB at full scale): UNet daily 11.3 vs 10.7 (uplink-limited — no
// algorithm effect), MNet daily 0.562 vs 0.564 with peak-hour usage
// 0.0588 -> 0.0748 TB (+27 %) because MNet's air, not its uplink, is the
// bottleneck. σ_daily is small everywhere. We run 1/5-scale deployments, so
// absolute numbers are ~1/5 of the paper's; the shape targets are the
// ratios.

#include <iostream>

#include "bench_util.hpp"
#include "deployment.hpp"

using namespace w11;
using bench::Algorithm;
using bench::Deployment;

int main() {
  print_banner("Table 2", "Daily and peak-hour usage (GB), ReservedCA vs TurboCA");

  const auto u_rca = bench::run_deployment(Deployment::kUNet, Algorithm::kReservedCA);
  const auto u_tca = bench::run_deployment(Deployment::kUNet, Algorithm::kTurboCA);
  const auto m_rca = bench::run_deployment(Deployment::kMNet, Algorithm::kReservedCA);
  const auto m_tca = bench::run_deployment(Deployment::kMNet, Algorithm::kTurboCA);

  TablePrinter t({"Network", "algo", "daily (GB)", "sigma_daily", "peak hour (GB)",
                  "switches"});
  t.add_row("UNet", "ReservedCA", u_rca.mean_daily_gb(), u_rca.sigma_daily_gb(),
            u_rca.peak_hour_usage_gb, u_rca.channel_switches);
  t.add_row("UNet", "TurboCA", u_tca.mean_daily_gb(), u_tca.sigma_daily_gb(),
            u_tca.peak_hour_usage_gb, u_tca.channel_switches);
  t.add_row("MNet", "ReservedCA", m_rca.mean_daily_gb(), m_rca.sigma_daily_gb(),
            m_rca.peak_hour_usage_gb, m_rca.channel_switches);
  t.add_row("MNet", "TurboCA", m_tca.mean_daily_gb(), m_tca.sigma_daily_gb(),
            m_tca.peak_hour_usage_gb, m_tca.channel_switches);
  t.print();

  const double unet_daily_ratio = u_tca.mean_daily_gb() / u_rca.mean_daily_gb();
  const double mnet_peak_gain =
      100.0 * (m_tca.peak_hour_usage_gb - m_rca.peak_hour_usage_gb) /
      m_rca.peak_hour_usage_gb;
  std::cout << "  UNet daily ratio (TurboCA/ReservedCA) = " << unet_daily_ratio
            << "  (paper: ~0.95, i.e. no change — uplink-limited)\n";
  std::cout << "  MNet peak-hour gain = " << mnet_peak_gain
            << " %  (paper: +27 %)\n";

  bench::paper_note("UNet unchanged (uplink caps it); MNet peak +27% under TurboCA");
  bench::shape_check("UNet daily usage essentially unchanged (|delta| < 10%)",
                     unet_daily_ratio > 0.90 && unet_daily_ratio < 1.10);
  bench::shape_check("MNet peak-hour usage improves by tens of percent",
                     mnet_peak_gain > 10.0);
  bench::shape_check("sigma_daily small relative to daily usage (both nets)",
                     u_tca.sigma_daily_gb() < 0.15 * u_tca.mean_daily_gb() &&
                         m_tca.sigma_daily_gb() < 0.15 * m_tca.mean_daily_gb());
  return bench::finish();
}
