#pragma once
// Shared reporting helpers for the reproduction benches.
//
// Every bench prints (a) the series/rows the paper reports, and (b) a
// "shape check" block comparing the paper's qualitative claim with the
// measured value, so EXPERIMENTS.md can be filled from bench output alone.

#include <iostream>
#include <string>

#include "common/stats.hpp"
#include "common/table_printer.hpp"

namespace w11::bench {

inline int g_checks_failed = 0;

// Record a qualitative shape check: prints PASS/FAIL and tracks failures
// (the bench still exits 0 — absolute numbers are substrate-dependent, and
// a FAIL is a flag for investigation, not a build breaker).
inline void shape_check(const std::string& claim, bool ok) {
  std::cout << (ok ? "  [shape PASS] " : "  [shape FAIL] ") << claim << "\n";
  if (!ok) ++g_checks_failed;
}

inline void paper_note(const std::string& note) {
  std::cout << "  [paper] " << note << "\n";
}

// Print a CDF as (value, percentile) rows.
inline void print_cdf(const std::string& label, const Samples& s,
                      std::initializer_list<double> qs = {0.1, 0.25, 0.5, 0.75,
                                                          0.9, 0.99}) {
  std::cout << "  CDF " << label << " (n=" << s.count() << "):";
  for (double q : qs)
    std::cout << "  p" << static_cast<int>(q * 100) << "=" << s.quantile(q);
  std::cout << "\n";
}

inline int finish() {
  if (g_checks_failed > 0) {
    std::cout << "\n" << g_checks_failed
              << " shape check(s) FAILED — see lines above.\n";
  } else {
    std::cout << "\nAll shape checks passed.\n";
  }
  return 0;  // never fail the bench run over calibration drift
}

}  // namespace w11::bench
