#pragma once
// The §4.6 deployment experiment: UNet (university, uplink-limited) and
// MNet (museum, medium-limited), run over a multi-day diurnal timeline
// under either ReservedCA or TurboCA. Shared by the Table 2, Fig. 8 and
// Fig. 9 benches so all three report from the same runs.
//
// Scale note (documented in DESIGN.md): the paper's UNet is ~600 APs and
// MNet ~300; we run 1/5-scale topologies (120 / 60 APs) with uplink and
// load scaled accordingly — channel-plan dynamics are preserved, wall-clock
// stays bench-friendly.

#include <memory>

#include "common/stats.hpp"
#include "core/turboca/service.hpp"
#include "workload/topology.hpp"
#include "workload/traffic.hpp"

namespace w11::bench {

enum class Deployment { kUNet, kMNet };
enum class Algorithm { kReservedCA, kTurboCA };

struct DeploymentResult {
  std::vector<double> daily_usage_gb;  // per simulated day
  double peak_hour_usage_gb = 0.0;
  Samples tcp_latency_ms;      // business-hours samples
  Samples bitrate_efficiency;  // business-hours samples
  int channel_switches = 0;

  [[nodiscard]] double mean_daily_gb() const {
    double s = 0;
    for (double d : daily_usage_gb) s += d;
    return daily_usage_gb.empty() ? 0.0 : s / static_cast<double>(daily_usage_gb.size());
  }
  [[nodiscard]] double sigma_daily_gb() const {
    RunningStats rs;
    for (double d : daily_usage_gb) rs.add(d);
    return rs.stddev();
  }
};

inline std::unique_ptr<flowsim::Network> make_deployment(Deployment d) {
  workload::CampusConfig cc;
  if (d == Deployment::kUNet) {
    cc.n_aps = 120;  // 1/5 of ~600
    cc.buildings = 14;
    cc.campus_size_m = 700.0;
    cc.clients_per_ap_mean = 8.0;
    cc.offered_per_client_mbps = 1.2;
    cc.interferers_per_building = 1.0;
    // The WAN uplink, not the air, is UNet's bottleneck (§4.6.2).
    cc.uplink_capacity = RateMbps{400.0};
    cc.seed = 601;
  } else {
    cc.n_aps = 60;  // 1/5 of ~300
    cc.buildings = 4;  // museum wings: dense, strongly coupled
    cc.campus_size_m = 220.0;
    cc.building_size_m = 80.0;
    cc.clients_per_ap_mean = 10.0;
    cc.offered_per_client_mbps = 3.0;
    cc.interferers_per_building = 3.0;
    cc.seed = 301;
  }
  return workload::make_campus(cc);
}

// Run `days` simulated days under the given algorithm. Metrics are sampled
// every 15 minutes; business hours are 9:00-18:00.
inline DeploymentResult run_deployment(Deployment dep, Algorithm algo,
                                       int days = 3, std::uint64_t seed = 97) {
  auto net = make_deployment(dep);
  turboca::NetworkHooks hooks;
  hooks.scan = [&net] { return net->scan(); };
  hooks.current_plan = [&net] { return net->current_plan(); };
  hooks.apply_plan = [&net](const ChannelPlan& p) { net->apply_plan(p); };

  std::unique_ptr<turboca::TurboCaService> turbo;
  std::unique_ptr<turboca::ReservedCaService> reserved;
  if (algo == Algorithm::kTurboCA) {
    turbo = std::make_unique<turboca::TurboCaService>(
        turboca::Params{}, turboca::TurboCaService::Schedule{}, hooks, Rng(seed));
  } else {
    reserved = std::make_unique<turboca::ReservedCaService>(
        turboca::ReservedCaService::Config{}, turboca::Params{}, hooks,
        Rng(seed));
  }

  DeploymentResult res;
  Rng churn_rng(seed + 1);
  Rng sample_rng(seed + 2);
  const int switches_before = net->total_switches();

  for (int day = 0; day < days; ++day) {
    double day_gb = 0.0;
    for (int step = 0; step < 96; ++step) {  // 15-minute steps
      const double hour = step * 0.25;
      const Time now = time::hours(24 * day) + time::minutes(15 * step);

      net->set_load_factor(workload::diurnal_factor(hour));
      // RF churn: the interference landscape shifts every 2 hours.
      if (step % 8 == 0) net->mutate_interferers(churn_rng);
      // One radar event per day (11:00): an AP occupying a DFS channel must
      // vacate to its non-DFS fallback immediately (§4.5.2); the next CA
      // run re-optimizes around it.
      if (step == 44) {
        for (const auto& ap : net->aps()) {
          if (ap.channel.is_dfs()) {
            net->radar_event(ap.id);
            break;
          }
        }
      }

      if (turbo) turbo->advance_to(now);
      if (reserved) reserved->advance_to(now);

      const auto ev = net->evaluate();
      day_gb += ev.total_throughput_mbps * 900.0 / 8e3;  // Mbps*s -> GB

      const bool business = hour >= 9.0 && hour < 18.0;
      if (business && step % 4 == 0) {
        res.peak_hour_usage_gb =
            std::max(res.peak_hour_usage_gb, ev.total_throughput_mbps * 3600.0 / 8e3);
        auto lat = net->sample_tcp_latency(ev, 4);
        for (double v : lat.sorted()) res.tcp_latency_ms.add(v);
        auto eff = net->sample_bitrate_efficiency(ev);
        // Subsample efficiency to keep memory flat.
        for (std::size_t i = 0; i < eff.count(); i += 7)
          res.bitrate_efficiency.add(eff.sorted()[i]);
      }
    }
    res.daily_usage_gb.push_back(day_gb);
  }
  res.channel_switches = net->total_switches() - switches_before;
  return res;
}

}  // namespace w11::bench
