#pragma once
// Fleet builder for the §3 population-level figures: a collection of
// enterprise networks (>=10 APs each) modelled per band, with device mixes,
// offered loads and external interference shaped like the field.
//
// Density calibration: the paper's Fig. 3 (median 7 same-channel
// interferers at 2.4 GHz over 3 channels, 5 at 5 GHz over the ~4 commonly
// used non-DFS 40 MHz bonds) implies a typical AP hears ~20 same-network
// APs. Buildings are therefore packed so carrier-sense neighborhoods are
// that large, while offered loads stay light (Fig. 2's 3 % median 5 GHz
// utilization).

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "flowsim/network.hpp"
#include "flowsim/scan_index.hpp"
#include "workload/topology.hpp"

namespace w11::bench {

// One planner-ready scan epoch of a network: census taken once, flattened
// with the contender floor the evaluating engine will use.
inline flowsim::ScanIndex snapshot_index(flowsim::Network& net,
                                         Dbm contender_rssi_floor) {
  return flowsim::ScanIndex(net.scan(), contender_rssi_floor);
}

struct FleetConfig {
  int networks = 30;
  Band band = Band::G5;
  std::uint64_t seed = 1;
};

inline std::vector<std::unique_ptr<flowsim::Network>> make_fleet(
    const FleetConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<std::unique_ptr<flowsim::Network>> fleet;
  const bool g24 = cfg.band == Band::G2_4;
  for (int n = 0; n < cfg.networks; ++n) {
    workload::CampusConfig cc;
    cc.band = cfg.band;
    cc.n_aps = static_cast<int>(rng.uniform_int(12, 60));
    cc.buildings = std::max(2, cc.n_aps / 16);
    cc.building_size_m = 60.0;
    // Tight building grid: most of a building's APs carrier-sense each
    // other and part of the next building over. 2.4 GHz propagates further,
    // so those deployments are spaced a touch wider to match Fig. 3.
    cc.campus_size_m = (g24 ? 115.0 : 90.0) *
                       std::ceil(std::sqrt(static_cast<double>(cc.buildings)));
    // 2.4-only devices are ~40 % of the population but generate less
    // traffic (phones, IoT); 5 GHz carries the heavy flows — yet both
    // bands run light most of the day (Fig. 2).
    cc.clients_per_ap_mean = g24 ? 3.0 : 5.0;
    cc.offered_per_client_mbps = g24 ? 0.12 : 0.08;
    // Non-WiFi + neighbour interference is far denser at 2.4 GHz.
    cc.interferers_per_building = g24 ? 1.5 : 0.3;
    cc.seed = rng.engine()();
    auto net = workload::make_campus(cc);
    Rng crng(rng.engine()());
    // 2.4 GHz: the three non-overlapping channels. 5 GHz: 40 MHz bonds —
    // the most common production choice (Table 1 40/80 mix, DFS avoided).
    workload::randomize_channels(
        *net, g24 ? ChannelWidth::MHz20 : ChannelWidth::MHz40, crng);
    fleet.push_back(std::move(net));
  }
  return fleet;
}

}  // namespace w11::bench
