file(REMOVE_RECURSE
  "CMakeFiles/bench_24ghz_planning.dir/bench_24ghz_planning.cpp.o"
  "CMakeFiles/bench_24ghz_planning.dir/bench_24ghz_planning.cpp.o.d"
  "bench_24ghz_planning"
  "bench_24ghz_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_24ghz_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
