# Empty compiler generated dependencies file for bench_24ghz_planning.
# This may be replaced when dependencies are built.
