
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig01_client_capabilities.cpp" "bench/CMakeFiles/bench_fig01_client_capabilities.dir/bench_fig01_client_capabilities.cpp.o" "gcc" "bench/CMakeFiles/bench_fig01_client_capabilities.dir/bench_fig01_client_capabilities.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/w11_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/turboca/CMakeFiles/w11_turboca.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/w11_fastack.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/w11_snoop.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/w11_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/w11_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/flowsim/CMakeFiles/w11_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/wlan/CMakeFiles/w11_wlan.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/w11_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/w11_net.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/w11_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/w11_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/w11_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
