file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_client_capabilities.dir/bench_fig01_client_capabilities.cpp.o"
  "CMakeFiles/bench_fig01_client_capabilities.dir/bench_fig01_client_capabilities.cpp.o.d"
  "bench_fig01_client_capabilities"
  "bench_fig01_client_capabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_client_capabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
