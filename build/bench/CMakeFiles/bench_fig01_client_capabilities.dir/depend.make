# Empty dependencies file for bench_fig01_client_capabilities.
# This may be replaced when dependencies are built.
