# Empty compiler generated dependencies file for bench_fig02_channel_utilization.
# This may be replaced when dependencies are built.
