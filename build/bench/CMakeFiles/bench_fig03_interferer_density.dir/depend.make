# Empty dependencies file for bench_fig03_interferer_density.
# This may be replaced when dependencies are built.
