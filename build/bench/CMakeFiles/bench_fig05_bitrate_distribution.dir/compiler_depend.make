# Empty compiler generated dependencies file for bench_fig05_bitrate_distribution.
# This may be replaced when dependencies are built.
