file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_ap_snapshot.dir/bench_fig06_ap_snapshot.cpp.o"
  "CMakeFiles/bench_fig06_ap_snapshot.dir/bench_fig06_ap_snapshot.cpp.o.d"
  "bench_fig06_ap_snapshot"
  "bench_fig06_ap_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_ap_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
