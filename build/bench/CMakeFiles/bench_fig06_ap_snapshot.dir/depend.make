# Empty dependencies file for bench_fig06_ap_snapshot.
# This may be replaced when dependencies are built.
