file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_rssi_peak.dir/bench_fig07_rssi_peak.cpp.o"
  "CMakeFiles/bench_fig07_rssi_peak.dir/bench_fig07_rssi_peak.cpp.o.d"
  "bench_fig07_rssi_peak"
  "bench_fig07_rssi_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_rssi_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
