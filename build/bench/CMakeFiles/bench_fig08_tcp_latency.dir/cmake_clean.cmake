file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_tcp_latency.dir/bench_fig08_tcp_latency.cpp.o"
  "CMakeFiles/bench_fig08_tcp_latency.dir/bench_fig08_tcp_latency.cpp.o.d"
  "bench_fig08_tcp_latency"
  "bench_fig08_tcp_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_tcp_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
