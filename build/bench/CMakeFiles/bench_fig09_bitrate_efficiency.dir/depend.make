# Empty dependencies file for bench_fig09_bitrate_efficiency.
# This may be replaced when dependencies are built.
