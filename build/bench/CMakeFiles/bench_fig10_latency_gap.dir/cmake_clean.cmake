file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_latency_gap.dir/bench_fig10_latency_gap.cpp.o"
  "CMakeFiles/bench_fig10_latency_gap.dir/bench_fig10_latency_gap.cpp.o.d"
  "bench_fig10_latency_gap"
  "bench_fig10_latency_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_latency_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
