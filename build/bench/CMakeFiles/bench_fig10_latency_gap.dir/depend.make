# Empty dependencies file for bench_fig10_latency_gap.
# This may be replaced when dependencies are built.
