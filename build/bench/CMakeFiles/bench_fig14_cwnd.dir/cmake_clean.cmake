file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cwnd.dir/bench_fig14_cwnd.cpp.o"
  "CMakeFiles/bench_fig14_cwnd.dir/bench_fig14_cwnd.cpp.o.d"
  "bench_fig14_cwnd"
  "bench_fig14_cwnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cwnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
