file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_aggregation.dir/bench_fig15_aggregation.cpp.o"
  "CMakeFiles/bench_fig15_aggregation.dir/bench_fig15_aggregation.cpp.o.d"
  "bench_fig15_aggregation"
  "bench_fig15_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
