file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_multi_ap.dir/bench_fig18_multi_ap.cpp.o"
  "CMakeFiles/bench_fig18_multi_ap.dir/bench_fig18_multi_ap.cpp.o.d"
  "bench_fig18_multi_ap"
  "bench_fig18_multi_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_multi_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
