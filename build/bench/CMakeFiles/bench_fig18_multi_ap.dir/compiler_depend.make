# Empty compiler generated dependencies file for bench_fig18_multi_ap.
# This may be replaced when dependencies are built.
