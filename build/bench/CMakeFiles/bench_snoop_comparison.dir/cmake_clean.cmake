file(REMOVE_RECURSE
  "CMakeFiles/bench_snoop_comparison.dir/bench_snoop_comparison.cpp.o"
  "CMakeFiles/bench_snoop_comparison.dir/bench_snoop_comparison.cpp.o.d"
  "bench_snoop_comparison"
  "bench_snoop_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snoop_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
