# Empty compiler generated dependencies file for bench_snoop_comparison.
# This may be replaced when dependencies are built.
