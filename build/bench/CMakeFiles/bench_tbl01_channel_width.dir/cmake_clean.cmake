file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl01_channel_width.dir/bench_tbl01_channel_width.cpp.o"
  "CMakeFiles/bench_tbl01_channel_width.dir/bench_tbl01_channel_width.cpp.o.d"
  "bench_tbl01_channel_width"
  "bench_tbl01_channel_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl01_channel_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
