# Empty compiler generated dependencies file for bench_tbl01_channel_width.
# This may be replaced when dependencies are built.
