file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl02_usage.dir/bench_tbl02_usage.cpp.o"
  "CMakeFiles/bench_tbl02_usage.dir/bench_tbl02_usage.cpp.o.d"
  "bench_tbl02_usage"
  "bench_tbl02_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl02_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
