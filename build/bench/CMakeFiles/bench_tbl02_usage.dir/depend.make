# Empty dependencies file for bench_tbl02_usage.
# This may be replaced when dependencies are built.
