file(REMOVE_RECURSE
  "CMakeFiles/channel_planning.dir/channel_planning.cpp.o"
  "CMakeFiles/channel_planning.dir/channel_planning.cpp.o.d"
  "channel_planning"
  "channel_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
