# Empty dependencies file for channel_planning.
# This may be replaced when dependencies are built.
