file(REMOVE_RECURSE
  "CMakeFiles/fastack_deep_dive.dir/fastack_deep_dive.cpp.o"
  "CMakeFiles/fastack_deep_dive.dir/fastack_deep_dive.cpp.o.d"
  "fastack_deep_dive"
  "fastack_deep_dive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastack_deep_dive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
