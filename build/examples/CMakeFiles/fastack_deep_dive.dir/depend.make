# Empty dependencies file for fastack_deep_dive.
# This may be replaced when dependencies are built.
