file(REMOVE_RECURSE
  "CMakeFiles/office_day.dir/office_day.cpp.o"
  "CMakeFiles/office_day.dir/office_day.cpp.o.d"
  "office_day"
  "office_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
