# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("phy")
subdirs("mac")
subdirs("net")
subdirs("wlan")
subdirs("flowsim")
subdirs("telemetry")
subdirs("workload")
subdirs("core")
subdirs("scenario")
