file(REMOVE_RECURSE
  "CMakeFiles/w11_common.dir/stats.cpp.o"
  "CMakeFiles/w11_common.dir/stats.cpp.o.d"
  "libw11_common.a"
  "libw11_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
