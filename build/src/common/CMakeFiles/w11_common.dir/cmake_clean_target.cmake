file(REMOVE_RECURSE
  "libw11_common.a"
)
