# Empty dependencies file for w11_common.
# This may be replaced when dependencies are built.
