file(REMOVE_RECURSE
  "CMakeFiles/w11_fastack.dir/fastack/agent.cpp.o"
  "CMakeFiles/w11_fastack.dir/fastack/agent.cpp.o.d"
  "CMakeFiles/w11_fastack.dir/fastack/trace.cpp.o"
  "CMakeFiles/w11_fastack.dir/fastack/trace.cpp.o.d"
  "libw11_fastack.a"
  "libw11_fastack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_fastack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
