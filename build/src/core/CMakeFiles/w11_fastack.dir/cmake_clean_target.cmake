file(REMOVE_RECURSE
  "libw11_fastack.a"
)
