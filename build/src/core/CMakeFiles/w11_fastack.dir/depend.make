# Empty dependencies file for w11_fastack.
# This may be replaced when dependencies are built.
