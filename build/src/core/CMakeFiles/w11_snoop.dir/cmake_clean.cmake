file(REMOVE_RECURSE
  "CMakeFiles/w11_snoop.dir/snoop/snoop_agent.cpp.o"
  "CMakeFiles/w11_snoop.dir/snoop/snoop_agent.cpp.o.d"
  "libw11_snoop.a"
  "libw11_snoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_snoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
