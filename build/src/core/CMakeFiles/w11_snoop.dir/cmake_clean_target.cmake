file(REMOVE_RECURSE
  "libw11_snoop.a"
)
