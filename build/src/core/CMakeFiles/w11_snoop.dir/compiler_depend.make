# Empty compiler generated dependencies file for w11_snoop.
# This may be replaced when dependencies are built.
