file(REMOVE_RECURSE
  "CMakeFiles/w11_turboca.dir/hopping.cpp.o"
  "CMakeFiles/w11_turboca.dir/hopping.cpp.o.d"
  "CMakeFiles/w11_turboca.dir/service.cpp.o"
  "CMakeFiles/w11_turboca.dir/service.cpp.o.d"
  "CMakeFiles/w11_turboca.dir/turboca.cpp.o"
  "CMakeFiles/w11_turboca.dir/turboca.cpp.o.d"
  "libw11_turboca.a"
  "libw11_turboca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_turboca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
