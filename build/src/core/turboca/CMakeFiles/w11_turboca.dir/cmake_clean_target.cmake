file(REMOVE_RECURSE
  "libw11_turboca.a"
)
