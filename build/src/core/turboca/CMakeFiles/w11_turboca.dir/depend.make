# Empty dependencies file for w11_turboca.
# This may be replaced when dependencies are built.
