file(REMOVE_RECURSE
  "CMakeFiles/w11_flowsim.dir/network.cpp.o"
  "CMakeFiles/w11_flowsim.dir/network.cpp.o.d"
  "libw11_flowsim.a"
  "libw11_flowsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_flowsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
