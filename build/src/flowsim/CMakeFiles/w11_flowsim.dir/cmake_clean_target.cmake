file(REMOVE_RECURSE
  "libw11_flowsim.a"
)
