# Empty compiler generated dependencies file for w11_flowsim.
# This may be replaced when dependencies are built.
