
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/aggregation.cpp" "src/mac/CMakeFiles/w11_mac.dir/aggregation.cpp.o" "gcc" "src/mac/CMakeFiles/w11_mac.dir/aggregation.cpp.o.d"
  "/root/repo/src/mac/medium.cpp" "src/mac/CMakeFiles/w11_mac.dir/medium.cpp.o" "gcc" "src/mac/CMakeFiles/w11_mac.dir/medium.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/w11_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/w11_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/w11_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
