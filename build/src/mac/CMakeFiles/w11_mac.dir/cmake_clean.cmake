file(REMOVE_RECURSE
  "CMakeFiles/w11_mac.dir/aggregation.cpp.o"
  "CMakeFiles/w11_mac.dir/aggregation.cpp.o.d"
  "CMakeFiles/w11_mac.dir/medium.cpp.o"
  "CMakeFiles/w11_mac.dir/medium.cpp.o.d"
  "libw11_mac.a"
  "libw11_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
