file(REMOVE_RECURSE
  "libw11_mac.a"
)
