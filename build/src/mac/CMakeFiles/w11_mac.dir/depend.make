# Empty dependencies file for w11_mac.
# This may be replaced when dependencies are built.
