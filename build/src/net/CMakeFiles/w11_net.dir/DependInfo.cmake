
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/tcp_receiver.cpp" "src/net/CMakeFiles/w11_net.dir/tcp_receiver.cpp.o" "gcc" "src/net/CMakeFiles/w11_net.dir/tcp_receiver.cpp.o.d"
  "/root/repo/src/net/tcp_sender.cpp" "src/net/CMakeFiles/w11_net.dir/tcp_sender.cpp.o" "gcc" "src/net/CMakeFiles/w11_net.dir/tcp_sender.cpp.o.d"
  "/root/repo/src/net/wired_link.cpp" "src/net/CMakeFiles/w11_net.dir/wired_link.cpp.o" "gcc" "src/net/CMakeFiles/w11_net.dir/wired_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/w11_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/w11_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
