file(REMOVE_RECURSE
  "CMakeFiles/w11_net.dir/tcp_receiver.cpp.o"
  "CMakeFiles/w11_net.dir/tcp_receiver.cpp.o.d"
  "CMakeFiles/w11_net.dir/tcp_sender.cpp.o"
  "CMakeFiles/w11_net.dir/tcp_sender.cpp.o.d"
  "CMakeFiles/w11_net.dir/wired_link.cpp.o"
  "CMakeFiles/w11_net.dir/wired_link.cpp.o.d"
  "libw11_net.a"
  "libw11_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
