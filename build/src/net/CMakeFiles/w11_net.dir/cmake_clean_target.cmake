file(REMOVE_RECURSE
  "libw11_net.a"
)
