# Empty dependencies file for w11_net.
# This may be replaced when dependencies are built.
