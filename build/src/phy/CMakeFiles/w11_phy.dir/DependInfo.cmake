
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/w11_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/w11_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/mcs.cpp" "src/phy/CMakeFiles/w11_phy.dir/mcs.cpp.o" "gcc" "src/phy/CMakeFiles/w11_phy.dir/mcs.cpp.o.d"
  "/root/repo/src/phy/propagation.cpp" "src/phy/CMakeFiles/w11_phy.dir/propagation.cpp.o" "gcc" "src/phy/CMakeFiles/w11_phy.dir/propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/w11_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
