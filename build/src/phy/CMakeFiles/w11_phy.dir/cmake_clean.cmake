file(REMOVE_RECURSE
  "CMakeFiles/w11_phy.dir/channel.cpp.o"
  "CMakeFiles/w11_phy.dir/channel.cpp.o.d"
  "CMakeFiles/w11_phy.dir/mcs.cpp.o"
  "CMakeFiles/w11_phy.dir/mcs.cpp.o.d"
  "CMakeFiles/w11_phy.dir/propagation.cpp.o"
  "CMakeFiles/w11_phy.dir/propagation.cpp.o.d"
  "libw11_phy.a"
  "libw11_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
