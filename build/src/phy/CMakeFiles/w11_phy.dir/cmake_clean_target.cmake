file(REMOVE_RECURSE
  "libw11_phy.a"
)
