# Empty compiler generated dependencies file for w11_phy.
# This may be replaced when dependencies are built.
