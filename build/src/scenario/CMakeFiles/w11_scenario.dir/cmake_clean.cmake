file(REMOVE_RECURSE
  "CMakeFiles/w11_scenario.dir/testbed.cpp.o"
  "CMakeFiles/w11_scenario.dir/testbed.cpp.o.d"
  "libw11_scenario.a"
  "libw11_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
