file(REMOVE_RECURSE
  "libw11_scenario.a"
)
