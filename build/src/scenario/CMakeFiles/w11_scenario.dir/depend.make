# Empty dependencies file for w11_scenario.
# This may be replaced when dependencies are built.
