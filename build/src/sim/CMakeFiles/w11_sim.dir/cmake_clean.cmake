file(REMOVE_RECURSE
  "CMakeFiles/w11_sim.dir/simulator.cpp.o"
  "CMakeFiles/w11_sim.dir/simulator.cpp.o.d"
  "libw11_sim.a"
  "libw11_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
