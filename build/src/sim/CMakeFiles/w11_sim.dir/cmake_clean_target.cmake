file(REMOVE_RECURSE
  "libw11_sim.a"
)
