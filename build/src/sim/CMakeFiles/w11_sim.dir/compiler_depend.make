# Empty compiler generated dependencies file for w11_sim.
# This may be replaced when dependencies are built.
