file(REMOVE_RECURSE
  "CMakeFiles/w11_telemetry.dir/littletable.cpp.o"
  "CMakeFiles/w11_telemetry.dir/littletable.cpp.o.d"
  "libw11_telemetry.a"
  "libw11_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
