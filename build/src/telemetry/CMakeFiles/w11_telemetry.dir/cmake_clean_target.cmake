file(REMOVE_RECURSE
  "libw11_telemetry.a"
)
