# Empty compiler generated dependencies file for w11_telemetry.
# This may be replaced when dependencies are built.
