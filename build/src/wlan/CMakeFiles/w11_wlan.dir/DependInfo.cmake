
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wlan/access_point.cpp" "src/wlan/CMakeFiles/w11_wlan.dir/access_point.cpp.o" "gcc" "src/wlan/CMakeFiles/w11_wlan.dir/access_point.cpp.o.d"
  "/root/repo/src/wlan/client.cpp" "src/wlan/CMakeFiles/w11_wlan.dir/client.cpp.o" "gcc" "src/wlan/CMakeFiles/w11_wlan.dir/client.cpp.o.d"
  "/root/repo/src/wlan/rate_control.cpp" "src/wlan/CMakeFiles/w11_wlan.dir/rate_control.cpp.o" "gcc" "src/wlan/CMakeFiles/w11_wlan.dir/rate_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/w11_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/w11_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/w11_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/w11_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/w11_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
