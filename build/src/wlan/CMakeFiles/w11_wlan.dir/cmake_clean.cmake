file(REMOVE_RECURSE
  "CMakeFiles/w11_wlan.dir/access_point.cpp.o"
  "CMakeFiles/w11_wlan.dir/access_point.cpp.o.d"
  "CMakeFiles/w11_wlan.dir/client.cpp.o"
  "CMakeFiles/w11_wlan.dir/client.cpp.o.d"
  "CMakeFiles/w11_wlan.dir/rate_control.cpp.o"
  "CMakeFiles/w11_wlan.dir/rate_control.cpp.o.d"
  "libw11_wlan.a"
  "libw11_wlan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_wlan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
