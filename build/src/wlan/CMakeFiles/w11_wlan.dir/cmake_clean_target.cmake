file(REMOVE_RECURSE
  "libw11_wlan.a"
)
