# Empty compiler generated dependencies file for w11_wlan.
# This may be replaced when dependencies are built.
