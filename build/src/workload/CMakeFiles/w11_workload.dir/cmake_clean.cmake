file(REMOVE_RECURSE
  "CMakeFiles/w11_workload.dir/device_population.cpp.o"
  "CMakeFiles/w11_workload.dir/device_population.cpp.o.d"
  "CMakeFiles/w11_workload.dir/topology.cpp.o"
  "CMakeFiles/w11_workload.dir/topology.cpp.o.d"
  "CMakeFiles/w11_workload.dir/traffic.cpp.o"
  "CMakeFiles/w11_workload.dir/traffic.cpp.o.d"
  "libw11_workload.a"
  "libw11_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w11_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
