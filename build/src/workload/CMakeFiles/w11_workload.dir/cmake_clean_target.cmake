file(REMOVE_RECURSE
  "libw11_workload.a"
)
