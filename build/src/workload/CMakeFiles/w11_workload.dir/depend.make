# Empty dependencies file for w11_workload.
# This may be replaced when dependencies are built.
