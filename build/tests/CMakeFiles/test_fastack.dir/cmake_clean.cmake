file(REMOVE_RECURSE
  "CMakeFiles/test_fastack.dir/test_fastack.cpp.o"
  "CMakeFiles/test_fastack.dir/test_fastack.cpp.o.d"
  "test_fastack"
  "test_fastack.pdb"
  "test_fastack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
