# Empty dependencies file for test_fastack.
# This may be replaced when dependencies are built.
