# Empty dependencies file for test_hopping.
# This may be replaced when dependencies are built.
