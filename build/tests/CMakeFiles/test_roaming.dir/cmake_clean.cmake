file(REMOVE_RECURSE
  "CMakeFiles/test_roaming.dir/test_roaming.cpp.o"
  "CMakeFiles/test_roaming.dir/test_roaming.cpp.o.d"
  "test_roaming"
  "test_roaming.pdb"
  "test_roaming[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
