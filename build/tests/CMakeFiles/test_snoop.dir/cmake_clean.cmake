file(REMOVE_RECURSE
  "CMakeFiles/test_snoop.dir/test_snoop.cpp.o"
  "CMakeFiles/test_snoop.dir/test_snoop.cpp.o.d"
  "test_snoop"
  "test_snoop.pdb"
  "test_snoop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
