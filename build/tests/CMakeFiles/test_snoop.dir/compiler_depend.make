# Empty compiler generated dependencies file for test_snoop.
# This may be replaced when dependencies are built.
