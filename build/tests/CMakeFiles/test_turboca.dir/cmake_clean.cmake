file(REMOVE_RECURSE
  "CMakeFiles/test_turboca.dir/test_turboca.cpp.o"
  "CMakeFiles/test_turboca.dir/test_turboca.cpp.o.d"
  "test_turboca"
  "test_turboca.pdb"
  "test_turboca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turboca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
