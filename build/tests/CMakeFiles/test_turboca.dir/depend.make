# Empty dependencies file for test_turboca.
# This may be replaced when dependencies are built.
