file(REMOVE_RECURSE
  "CMakeFiles/test_wlan.dir/test_wlan.cpp.o"
  "CMakeFiles/test_wlan.dir/test_wlan.cpp.o.d"
  "test_wlan"
  "test_wlan.pdb"
  "test_wlan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wlan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
