# Empty compiler generated dependencies file for test_wlan.
# This may be replaced when dependencies are built.
