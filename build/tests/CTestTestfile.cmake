# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_phy[1]_include.cmake")
include("/root/repo/build/tests/test_mac[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_wlan[1]_include.cmake")
include("/root/repo/build/tests/test_fastack[1]_include.cmake")
include("/root/repo/build/tests/test_turboca[1]_include.cmake")
include("/root/repo/build/tests/test_flowsim[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_snoop[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_roaming[1]_include.cmake")
include("/root/repo/build/tests/test_hopping[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
