// Channel planning walkthrough: build a campus network, watch TurboCA plan
// it (vs the ReservedCA baseline), inspect the resulting channel layout,
// and handle a radar event on a DFS channel.
//
//   $ ./channel_planning [n_aps]

#include <cstdlib>
#include <iostream>
#include <map>

#include "common/table_printer.hpp"
#include "core/turboca/service.hpp"
#include "obs/audit.hpp"
#include "workload/topology.hpp"

using namespace w11;

namespace {

void report(const char* tag, flowsim::Network& net) {
  const auto ev = net.evaluate();
  auto lat = net.sample_tcp_latency(ev, 20, 0.0);
  std::map<std::string, int> channel_histogram;
  for (const auto& ap : net.aps()) ++channel_histogram[ap.channel.to_string()];

  std::cout << "\n--- " << tag << " ---\n";
  std::cout << "  served " << ev.total_throughput_mbps << " / offered "
            << ev.total_offered_mbps << " Mbps, median AP TCP latency "
            << lat.median() << " ms, switches so far " << net.total_switches()
            << "\n  channel layout:";
  int shown = 0;
  for (const auto& [ch, count] : channel_histogram) {
    std::cout << "  " << ch << " x" << count;
    if (++shown % 5 == 0) std::cout << "\n                 ";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int n_aps = argc > 1 ? std::atoi(argv[1]) : 60;

  workload::CampusConfig cc;
  cc.n_aps = n_aps;
  cc.buildings = std::max(2, n_aps / 10);
  cc.seed = 42;
  auto net = workload::make_campus(cc);
  std::cout << "Campus: " << net->ap_count()
            << " APs, fresh deployment (everyone on channel 36/20MHz).\n";

  turboca::NetworkHooks hooks;
  hooks.scan = [&net] { return net->scan(); };
  hooks.current_plan = [&net] { return net->current_plan(); };
  hooks.apply_plan = [&net](const ChannelPlan& p) { net->apply_plan(p); };

  report("before any planning", *net);

  // The baseline: sequential, isolated, fixed-width assignment.
  {
    turboca::ReservedCaService reserved({}, {}, hooks, Rng(7));
    reserved.run_now();
    report("after ReservedCA (fixed 40MHz, isolated per-AP)", *net);
  }

  // TurboCA: NetP-driven randomized sweeps, full i=2,1,0 schedule. The
  // attached audit records every ACC pick's NodeP term breakdown; the
  // decision table below explains each committed channel switch by the
  // per-width airtime/quality/penalty movement behind it (DESIGN.md §12).
  turboca::TurboCaService turbo({}, {}, hooks, Rng(8));
  obs::PlanAudit audit;
  turbo.engine().set_audit(&audit);
  turbo.run_now({2, 1, 0});
  report("after TurboCA (channel-bonding aware, NetP-optimized)", *net);
  std::cout << "  TurboCA NetP(log) = " << turbo.stats().last_netp_log
            << ", plans applied = " << turbo.stats().plans_applied << "\n";

  std::cout << "\n--- planner decision audit (switches only) ---\n";
  audit.write_table(std::cout, /*switches_only=*/true);

  // Radar! Any AP sitting on a DFS channel must vacate to its fallback.
  for (const auto& ap : net->aps()) {
    if (ap.channel.is_dfs()) {
      std::cout << "\nRadar event at " << ap.id << " on " << ap.channel
                << " -> falls back to ";
      net->radar_event(ap.id);
      std::cout << net->aps()[ap.id.value()].channel << "\n";
      break;
    }
  }

  // The 15-minute tier re-optimizes around the displaced AP.
  turbo.run_now({0});
  report("after post-radar TurboCA touch-up", *net);
  return 0;
}
