// FastACK deep dive: run the same contended cell with baseline TCP and
// with FastACK, then dissect *why* it wins — cwnd traces rendered as ASCII
// timelines, per-flow aggregation, and the agent's internal counters
// (fast ACKs, suppressions, local retransmissions, holes).
//
//   $ ./fastack_deep_dive

#include <iostream>
#include <string>

#include "common/table_printer.hpp"
#include "scenario/testbed.hpp"

using namespace w11;

namespace {

// Render a cwnd trace as a 60-column ASCII sparkline (0..770 segments).
std::string sparkline(const std::vector<std::pair<Time, double>>& trace,
                      Time span) {
  static const char* kLevels = " .:-=+*#%@";
  std::string out(60, ' ');
  if (trace.empty()) return out;
  for (std::size_t col = 0; col < out.size(); ++col) {
    const Time at = span * static_cast<std::int64_t>(col) / 60;
    double value = trace.front().second;
    for (const auto& [t, cw] : trace) {
      if (t > at) break;
      value = cw;
    }
    const int level =
        std::clamp(static_cast<int>(value / 770.0 * 9.99), 0, 9);
    out[col] = kLevels[level];
  }
  return out;
}

}  // namespace

int main() {
  constexpr int kClients = 10;
  constexpr auto kDuration = time::seconds(6);

  for (const bool fastack : {false, true}) {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = kClients;
    cfg.duration = kDuration;
    cfg.warmup = time::seconds(0);
    cfg.fastack = {fastack};
    cfg.bad_hint_rate = 0.015;  // the paper's observed bad-hint rate
    cfg.seed = 5;
    scenario::Testbed tb(cfg);
    for (int c = 0; c < kClients; ++c) tb.sender(0, c).enable_cwnd_trace();
    tb.run();

    std::cout << "\n================ "
              << (fastack ? "FastACK enabled" : "baseline TCP")
              << " ================\n";
    std::cout << "aggregate throughput: " << tb.aggregate_throughput_mbps()
              << " Mbps\n\ncwnd over time (each row = one flow; ' '=0 ... '@'=770 segs):\n";
    for (int c = 0; c < kClients; ++c) {
      std::cout << "  flow " << c << " |"
                << sparkline(tb.sender(0, c).cwnd_trace(), kDuration) << "|\n";
    }

    TablePrinter t({"flow", "cwnd (segs)", "mean A-MPDU", "RTOs",
                    "fast retx", "srtt (ms)"});
    const auto ampdu = tb.mean_ampdu_per_client(0);
    for (int c = 0; c < kClients; ++c) {
      const TcpSender& s = tb.sender(0, c);
      t.add_row(c, s.cwnd_segments(), ampdu[static_cast<std::size_t>(c)],
                s.stats().rto_events, s.stats().fast_retransmits,
                s.smoothed_rtt().ms());
    }
    t.print();

    if (fastack) {
      const auto& st = tb.agent(0)->stats();
      std::cout << "\nFastACK agent counters:\n"
                << "  fast ACKs sent:          " << st.fast_acks_sent << "\n"
                << "  client ACKs suppressed:  " << st.client_acks_suppressed << "\n"
                << "  local retransmissions:   " << st.local_retransmits
                << "   (cache served; the sender never saw the loss)\n"
                << "  upstream holes detected: " << st.holes_detected
                << "   (dup-ACKs emulated: " << st.hole_dupacks_sent << ")\n"
                << "  spurious retx dropped:   " << st.spurious_retx_dropped << "\n"
                << "  window updates sent:     " << st.window_updates_sent << "\n";
    }
  }
  std::cout << "\nNote how baseline windows wander near the floor while every\n"
               "FastACK window pins at the 770-segment cap — that queue depth\n"
               "is what buys the larger aggregates and the throughput gap.\n";
  return 0;
}
