// A day in the life of an office network: diurnal load, a lunch-time
// burst, TurboCA quietly re-planning in the background, and the telemetry
// pipeline (LittleTable) answering dashboard-style queries afterwards.
//
//   $ ./office_day

#include <iostream>

#include "common/table_printer.hpp"
#include "core/turboca/service.hpp"
#include "telemetry/collector.hpp"
#include "workload/topology.hpp"
#include "workload/traffic.hpp"

using namespace w11;

int main() {
  workload::OfficeConfig oc;
  oc.n_aps = 20;
  oc.n_clients = 160;
  oc.seed = 9;
  auto net = workload::make_office(oc);
  std::cout << "Office floor: " << net->ap_count() << " APs, 160 clients.\n";

  turboca::NetworkHooks hooks;
  hooks.scan = [&net] { return net->scan(); };
  hooks.current_plan = [&net] { return net->current_plan(); };
  hooks.apply_plan = [&net](const ChannelPlan& p) { net->apply_plan(p); };
  turboca::TurboCaService turbo({}, {}, hooks, Rng(12));

  telemetry::NetworkCollector collector;
  const workload::BurstEvent lunch_burst{12.5, 0.5, 2.5};
  Rng jitter(13);

  // Simulate a weekday in 15-minute polling intervals (the backend cadence
  // of §2.2): load follows the diurnal curve, TurboCA runs its schedule,
  // and every interval lands in LittleTable.
  for (int step = 0; step < 96; ++step) {
    const double hour = step * 0.25;
    net->set_load_factor(workload::diurnal_factor(hour) *
                         workload::burst_factor(lunch_burst, hour) *
                         jitter.lognormal(0.0, 0.25));
    turbo.advance_to(time::minutes(15 * step));
    collector.record(*net, net->evaluate(), time::minutes(15 * step));
  }

  // Dashboard queries, straight off the time-series store.
  using Agg = telemetry::LittleTable::Agg;
  const auto& tbl = collector.net_stats();
  TablePrinter t({"hour", "usage (GB)", "peak Mbps in hour"});
  const auto sums = tbl.aggregate("total_throughput_mbps", Agg::kMean, Time{0},
                                  time::hours(24), time::hours(1));
  const auto peaks = tbl.aggregate("total_throughput_mbps", Agg::kMax, Time{0},
                                   time::hours(24), time::hours(1));
  for (std::size_t i = 0; i < sums.size(); ++i) {
    t.add_row(sums[i].first.sec() / 3600.0, sums[i].second * 3600.0 / 8e3,
              peaks[i].second);
  }
  t.print();

  std::cout << "\nTurboCA over the day: " << turbo.stats().runs << " runs, "
            << turbo.stats().plans_applied << " plans applied, "
            << turbo.stats().channel_switches << " channel switches.\n";
  std::cout << "Telemetry rows: " << collector.ap_stats().row_count()
            << " ap_stats, " << collector.net_stats().row_count()
            << " network_stats.\n";

  // Retention pass: keep only business hours, like a nightly trim job.
  auto& ap_tbl = collector.ap_stats();
  const std::size_t before = ap_tbl.row_count();
  ap_tbl.trim_before(time::hours(8));
  std::cout << "Retention trim before 08:00 dropped " << before - ap_tbl.row_count()
            << " rows.\n";
  return 0;
}
