// Quickstart: simulate a single 802.11ac AP serving downlink TCP to a
// handful of clients, with and without the FastACK agent, and print the
// headline numbers. ~30 lines of actual API usage.
//
//   $ ./quickstart [n_clients]

#include <cstdlib>
#include <iostream>

#include "common/table_printer.hpp"
#include "scenario/testbed.hpp"

using namespace w11;

int main(int argc, char** argv) {
  const int n_clients = argc > 1 ? std::atoi(argv[1]) : 10;

  std::cout << "Simulating one 802.11ac wave-2 AP (80 MHz), " << n_clients
            << " clients, saturating downlink TCP...\n\n";

  TablePrinter table({"configuration", "throughput (Mbps)", "mean A-MPDU",
                      "AP TCP latency (ms)", "fast ACKs sent"});

  for (const bool fastack : {false, true}) {
    scenario::TestbedConfig cfg;
    cfg.n_clients_per_ap = n_clients;
    cfg.duration = time::seconds(5);
    cfg.fastack = {fastack};
    scenario::Testbed tb(cfg);
    tb.run();

    double ampdu = 0.0;
    for (const double a : tb.mean_ampdu_per_client(0)) ampdu += a;
    ampdu /= n_clients;

    table.add_row(fastack ? "FastACK" : "baseline TCP",
                  tb.aggregate_throughput_mbps(), ampdu,
                  tb.ap(0).stats().tcp_latency.count()
                      ? tb.ap(0).stats().tcp_latency.mean()
                      : 0.0,
                  fastack ? tb.agent(0)->stats().fast_acks_sent : 0);
  }
  table.print();

  std::cout << "\nFastACK converts 802.11 ACKs into early TCP ACKs, keeping\n"
               "the sender clocked and the AP's aggregation queues full\n"
               "(IMC'17, \"Measurement-based, Practical Techniques to\n"
               "Improve 802.11ac Performance\", section 5).\n";
  return 0;
}
