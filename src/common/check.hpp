#pragma once
// Precondition / invariant checking.
//
// W11_CHECK is always on (including release builds): simulation correctness
// depends on these invariants and the cost is negligible relative to event
// processing. Violations indicate programming errors, so they throw
// std::logic_error rather than returning recoverable status.

#include <sstream>
#include <stdexcept>
#include <string>

namespace w11::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

}  // namespace w11::detail

#define W11_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::w11::detail::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define W11_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream w11_check_os;                                      \
      w11_check_os << msg;                                                  \
      ::w11::detail::check_failed(#expr, __FILE__, __LINE__,                \
                                  w11_check_os.str());                      \
    }                                                                       \
  } while (false)
