#pragma once
// Strong identifier types for network entities.
//
// Each id is a distinct type over the same integer representation so that an
// AP id can never be passed where a station id is expected. Ids are dense
// small integers assigned by the owning container.

#include <cstdint>
#include <compare>
#include <functional>
#include <ostream>

namespace w11 {

template <class Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;
  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << Tag::prefix() << id.value_;
  }

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

 private:
  std::uint32_t value_ = kInvalid;
};

struct ApTag { static constexpr const char* prefix() { return "ap"; } };
struct StationTag { static constexpr const char* prefix() { return "sta"; } };
struct FlowTag { static constexpr const char* prefix() { return "flow"; } };
struct NetworkTag { static constexpr const char* prefix() { return "net"; } };

using ApId = Id<ApTag>;
using StationId = Id<StationTag>;
using FlowId = Id<FlowTag>;
using NetworkId = Id<NetworkTag>;

}  // namespace w11

template <class Tag>
struct std::hash<w11::Id<Tag>> {
  std::size_t operator()(w11::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
