#pragma once
// Minimal streaming JSON writer shared by every artifact emitter in the
// tree: the observability exporters (Chrome trace / JSONL / metrics dumps,
// src/obs/export.*), the planner audit dump, and the bench harness.
//
// Output is byte-deterministic: keys are emitted in call order, integers
// are emitted as integers, and doubles go through a fixed "%.*g" format so
// the same value always serializes to the same bytes — the trace golden
// tests (tests/test_obs.cpp) diff whole files for equality.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace w11::json {

// Escape per RFC 8259 minimal rules (quote, backslash, control chars).
inline void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

// Structured writer: begin_object/begin_array push a scope, key() names the
// next value inside an object, value() emits scalars. Commas and nesting
// are handled by the scope stack.
class Writer {
 public:
  explicit Writer(std::ostream& os, int double_digits = 17)
      : os_(os), digits_(double_digits) {}

  Writer& begin_object() { open('{'); return *this; }
  Writer& end_object() { close('}'); return *this; }
  Writer& begin_array() { open('['); return *this; }
  Writer& end_array() { close(']'); return *this; }

  Writer& key(std::string_view k) {
    comma();
    write_escaped(os_, k);
    os_ << ':';
    pending_value_ = true;
    return *this;
  }

  Writer& value(std::string_view v) { comma(); write_escaped(os_, v); return *this; }
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(bool v) { comma(); os_ << (v ? "true" : "false"); return *this; }
  Writer& value(std::int64_t v) { comma(); os_ << v; return *this; }
  Writer& value(std::uint64_t v) { comma(); os_ << v; return *this; }
  Writer& value(std::int32_t v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& value(double v) {
    comma();
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g", digits_, v);
    os_ << buf;
    return *this;
  }

  // key/value in one call, for flat records.
  template <typename T>
  Writer& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void open(char c) {
    comma();
    os_ << c;
    scopes_.push_back(false);
  }
  void close(char c) {
    scopes_.pop_back();
    os_ << c;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // value follows its key, no comma
      return;
    }
    if (!scopes_.empty()) {
      if (scopes_.back()) os_ << ',';
      scopes_.back() = true;
    }
  }

  std::ostream& os_;
  int digits_;
  std::vector<bool> scopes_;  // per scope: "an element was emitted"
  bool pending_value_ = false;
};

}  // namespace w11::json
