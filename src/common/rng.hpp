#pragma once
// Deterministic random number generation.
//
// Every stochastic component takes an explicit Rng (or a seed) so that tests
// and benchmarks are reproducible. There is deliberately no global generator.

#include <cstdint>
#include <random>

namespace w11 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  // Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  [[nodiscard]] double normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  [[nodiscard]] double lognormal(double mu, double sigma) {
    std::lognormal_distribution<double> d(mu, sigma);
    return d(engine_);
  }

  [[nodiscard]] double exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(engine_);
  }

  [[nodiscard]] std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  // Weighted index selection: probability of i proportional to weights[i].
  // Zero / negative weights are treated as zero; if all weights are zero the
  // choice is uniform.
  template <class Container>
  [[nodiscard]] std::size_t weighted_index(const Container& weights) {
    double total = 0.0;
    for (double w : weights) total += (w > 0.0 ? w : 0.0);
    if (total <= 0.0) return index(weights.size());
    double pick = uniform(0.0, total);
    std::size_t i = 0;
    for (double w : weights) {
      const double ww = (w > 0.0 ? w : 0.0);
      if (pick < ww) return i;
      pick -= ww;
      ++i;
    }
    return weights.size() - 1;  // floating-point edge: return last
  }

  // Derive an independent child generator (for per-entity streams).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace w11
