#pragma once
// Deterministic random number generation.
//
// Every stochastic component takes an explicit Rng (or a seed) so that tests
// and benchmarks are reproducible. There is deliberately no global generator.
//
// Threading rules (DESIGN.md §10): an Rng is single-owner, single-thread
// state. It is move-only — copying a generator silently *shares* its future
// draw sequence between two owners, which is exactly the bug that breaks
// determinism the first time the copies land on different threads. Parallel
// work derives independent per-task generators with fork(stream_id), which
// depends only on (root seed, stream id) — never on how many draws the
// parent has made — so results cannot depend on worker interleaving.

#include <cstdint>
#include <random>

namespace w11 {

namespace rng_detail {

// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation used to
// derive child seeds. Constexpr so seed derivation is a pure function.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Child seed for (root seed, stream id). Shared by Rng::fork(stream_id) and
// exec::ShardRng so both derive the identical per-stream generator.
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  return splitmix64(seed ^ splitmix64(stream ^ 0xa076'1d64'78bd'642fULL));
}

}  // namespace rng_detail

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  // Move-only: see the threading rules above. Pass an Rng by reference, move
  // it into its owner, or derive an independent child with fork().
  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  // Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  [[nodiscard]] double normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  [[nodiscard]] double lognormal(double mu, double sigma) {
    std::lognormal_distribution<double> d(mu, sigma);
    return d(engine_);
  }

  [[nodiscard]] double exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(engine_);
  }

  [[nodiscard]] std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  // Weighted index selection: probability of i proportional to weights[i].
  // Zero / negative weights are treated as zero; if all weights are zero the
  // choice is uniform.
  template <class Container>
  [[nodiscard]] std::size_t weighted_index(const Container& weights) {
    double total = 0.0;
    for (double w : weights) total += (w > 0.0 ? w : 0.0);
    if (total <= 0.0) return index(weights.size());
    double pick = uniform(0.0, total);
    std::size_t i = 0;
    for (double w : weights) {
      const double ww = (w > 0.0 ? w : 0.0);
      if (pick < ww) return i;
      pick -= ww;
      ++i;
    }
    return weights.size() - 1;  // floating-point edge: return last
  }

  // Derive an independent child generator by drawing from this one. The
  // child depends on the parent's draw position — use only where the fork
  // itself is part of a single-threaded deterministic sequence (per-entity
  // streams set up at construction time).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  // Derive the independent child generator for `stream_id`. Depends only on
  // (seed(), stream_id) — not on how many draws this generator has made —
  // so per-task streams are identical no matter when or on which worker a
  // task forks them. Distinct stream ids give decorrelated streams; the
  // same id always gives the same stream (callers own id uniqueness).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    return Rng(rng_detail::mix_seed(seed_, stream_id));
  }

  // The seed this generator was constructed with (stable across draws).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace w11
