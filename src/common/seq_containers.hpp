#pragma once
// Flat containers for sequence-number-keyed datapath state.
//
// The TCP/FastACK hot paths are dominated by three access patterns that
// node-based std::map/std::set serve with a pointer chase and an allocation
// per entry:
//
//   * append at the tail (sequence numbers arrive mostly in order),
//   * evict a prefix (cumulative ACKs retire the oldest entries),
//   * point/range lookup by sequence number.
//
// SeqRing serves exactly those: a sorted vector with a head offset, so
// prefix eviction is a pointer bump and tail append is a push_back; the
// occasional out-of-order insert (an end-to-end retransmission refreshing
// an evicted range) pays a memmove, which is still cheaper than a rebalance
// for the sizes involved. Storage is compacted lazily once the dead prefix
// outweighs the live entries.
//
// RangeQueue and IntervalVec are the same idea for range-valued state: the
// FastACK q_seq set (ordered unique ranges consumed from the front) and the
// TCP receiver's out-of-order reassembly map (disjoint merged intervals).

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace w11 {

// Sorted (sequence -> value) flat ring. Iterators are vector iterators over
// the live [head, end) window; they invalidate on any mutation.
template <typename V>
class SeqRing {
 public:
  using Entry = std::pair<std::uint64_t, V>;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  [[nodiscard]] std::size_t size() const { return v_.size() - head_; }
  [[nodiscard]] bool empty() const { return head_ == v_.size(); }

  void clear() {
    v_.clear();
    head_ = 0;
  }

  [[nodiscard]] const_iterator begin() const { return v_.begin() + gap(); }
  [[nodiscard]] const_iterator end() const { return v_.end(); }

  [[nodiscard]] const Entry& front() const { return v_[head_]; }

  void pop_front() {
    ++head_;
    compact_if_stale();
  }

  // Insert `val` at `key`, overwriting an existing entry.
  void insert_or_assign(std::uint64_t key, V val) {
    if (v_.size() > head_ && v_.back().first < key) {  // common case: append
      v_.emplace_back(key, std::move(val));
      return;
    }
    auto it = lower_bound_mut(key);
    if (it != v_.end() && it->first == key) {
      it->second = std::move(val);
    } else {
      v_.insert(it, Entry{key, std::move(val)});
    }
  }

  // First entry with key > `key` (std::map::upper_bound semantics).
  [[nodiscard]] const_iterator upper_bound(std::uint64_t key) const {
    return std::upper_bound(
        begin(), end(), key,
        [](std::uint64_t k, const Entry& e) { return k < e.first; });
  }

  [[nodiscard]] const_iterator lower_bound(std::uint64_t key) const {
    return std::lower_bound(
        begin(), end(), key,
        [](const Entry& e, std::uint64_t k) { return e.first < k; });
  }

 private:
  [[nodiscard]] std::ptrdiff_t gap() const {
    return static_cast<std::ptrdiff_t>(head_);
  }

  [[nodiscard]] typename std::vector<Entry>::iterator lower_bound_mut(
      std::uint64_t key) {
    return std::lower_bound(
        v_.begin() + gap(), v_.end(), key,
        [](const Entry& e, std::uint64_t k) { return e.first < k; });
  }

  void compact_if_stale() {
    if (head_ >= 64 && head_ * 2 >= v_.size()) {
      v_.erase(v_.begin(), v_.begin() + gap());
      head_ = 0;
    }
  }

  std::vector<Entry> v_;
  std::size_t head_ = 0;
};

// Ordered set of unique [start, end) ranges consumed strictly from the
// front — std::set<Range> semantics for the FastACK pending-ack queue.
// Ranges may overlap; exact duplicates are collapsed.
template <typename Range>
class RangeQueue {
 public:
  [[nodiscard]] std::size_t size() const { return v_.size() - head_; }
  [[nodiscard]] bool empty() const { return head_ == v_.size(); }

  void clear() {
    v_.clear();
    head_ = 0;
  }

  [[nodiscard]] const Range& front() const { return v_[head_]; }

  void pop_front() {
    ++head_;
    if (head_ >= 32 && head_ * 2 >= v_.size()) {
      v_.erase(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  void insert(Range r) {
    const auto live = v_.begin() + static_cast<std::ptrdiff_t>(head_);
    if (v_.end() != live && v_.back() < r) {  // common case: append
      v_.push_back(r);
      return;
    }
    auto it = std::lower_bound(live, v_.end(), r);
    if (it != v_.end() && *it == r) return;  // set semantics
    v_.insert(it, r);
  }

 private:
  std::vector<Range> v_;
  std::size_t head_ = 0;
};

// Sorted vector of disjoint byte intervals [start, end), merged on insert —
// the TCP receiver's out-of-order reassembly state. Holes are few at any
// instant, so front erasure by memmove beats per-node allocation.
class IntervalVec {
 public:
  struct Interval {
    std::uint64_t start;
    std::uint64_t end;
  };
  using const_iterator = std::vector<Interval>::const_iterator;

  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] const_iterator begin() const { return v_.begin(); }
  [[nodiscard]] const_iterator end() const { return v_.end(); }
  void clear() { v_.clear(); }

  // Merge [start, end) in, coalescing with any overlapping or touching
  // neighbours (same outcome as the former std::map merge loop).
  void insert(std::uint64_t start, std::uint64_t end) {
    auto it = std::lower_bound(
        v_.begin(), v_.end(), start,
        [](const Interval& iv, std::uint64_t s) { return iv.start < s; });
    if (it != v_.begin() && std::prev(it)->end >= start) --it;
    auto last = it;
    while (last != v_.end() && last->start <= end) {
      start = std::min(start, last->start);
      end = std::max(end, last->end);
      ++last;
    }
    if (it == last) {
      v_.insert(it, Interval{start, end});
    } else {
      it->start = start;
      it->end = end;
      v_.erase(it + 1, last);
    }
  }

  // Consume every interval reachable from `cursor` (start <= cursor),
  // advancing it past their ends — the in-order delivery absorb step.
  [[nodiscard]] std::uint64_t absorb(std::uint64_t cursor) {
    auto it = v_.begin();
    while (it != v_.end() && it->start <= cursor) {
      cursor = std::max(cursor, it->end);
      ++it;
    }
    v_.erase(v_.begin(), it);
    return cursor;
  }

  // Total buffered bytes.
  [[nodiscard]] std::uint64_t held_bytes() const {
    std::uint64_t held = 0;
    for (const Interval& iv : v_) held += iv.end - iv.start;
    return held;
  }

 private:
  std::vector<Interval> v_;
};

}  // namespace w11
