#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace w11 {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  n_ += other.n_;
  const auto n = static_cast<double>(n_);
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  data_.push_back(x);
  sorted_ = false;
}

void Samples::add_all(const std::vector<double>& xs) {
  data_.insert(data_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
}

double Samples::quantile(double q) const {
  W11_CHECK_MSG(!data_.empty(), "quantile of empty sample set");
  W11_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (data_.size() == 1) return data_[0];
  const double pos = q * static_cast<double>(data_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data_[lo] * (1.0 - frac) + data_[hi] * frac;
}

double Samples::mean() const {
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : data_) sum += x;
  return sum / static_cast<double>(data_.size());
}

double Samples::cdf_at(double x) const {
  if (data_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(data_.begin(), data_.end(), x);
  return static_cast<double>(it - data_.begin()) / static_cast<double>(data_.size());
}

std::vector<std::pair<double, double>> Samples::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (data_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

const std::vector<double>& Samples::sorted() const {
  ensure_sorted();
  return data_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  W11_CHECK(hi > lo);
  W11_CHECK(bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace w11
