#pragma once
// Statistical accumulators used by telemetry and benchmarks.

#include <cstddef>
#include <string>
#include <vector>

namespace w11 {

// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  // Fold another accumulator into this one (Chan et al.'s pairwise
  // combine). Exact for count/sum/min/max; mean and M2 match a single
  // stream that saw both sequences up to floating-point re-association,
  // which is what lets sharded workers accumulate locally and reduce in
  // deterministic shard order.
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// A sample set with quantile queries and CDF export. Samples are stored and
// sorted lazily on first query.
class Samples {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  // Quantile q in [0,1], linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }
  // Fraction of samples <= x (empirical CDF evaluated at x).
  [[nodiscard]] double cdf_at(double x) const;
  // (value, cumulative fraction) pairs at `points` evenly spaced quantiles.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(std::size_t points = 50) const;
  [[nodiscard]] const std::vector<double>& sorted() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
};

// Fixed-bin histogram over [lo, hi); out-of-range values clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::size_t count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double fraction(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Jain's fairness index: (Σx)² / (n·Σx²). 1.0 = perfectly fair.
[[nodiscard]] double jain_fairness(const std::vector<double>& xs);

}  // namespace w11
