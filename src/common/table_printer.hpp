#pragma once
// Console table/series printer shared by benches and examples, so every
// reproduction binary reports in a consistent, paper-like format.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace w11 {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  template <class... Cells>
  void add_row(const Cells&... cells) {
    std::vector<std::string> row;
    (row.push_back(to_cell(cells)), ...);
    for (std::size_t i = 0; i < row.size() && i < widths_.size(); ++i)
      widths_[i] = std::max(widths_[i], row[i].size());
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os = std::cout) const {
    print_row(os, headers_);
    std::size_t total = 0;
    for (auto w : widths_) total += w + 3;
    os << std::string(total, '-') << '\n';
    for (const auto& r : rows_) print_row(os, r);
  }

 private:
  template <class T>
  static std::string to_cell(const T& v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(3) << v;
    return os.str();
  }
  static std::string to_cell(const std::string& v) { return v; }
  static std::string to_cell(const char* v) { return v; }
  static std::string to_cell(int v) { return std::to_string(v); }
  static std::string to_cell(std::size_t v) { return std::to_string(v); }

  void print_row(std::ostream& os, const std::vector<std::string>& row) const {
    for (std::size_t i = 0; i < row.size(); ++i)
      os << std::left << std::setw(static_cast<int>(widths_[i]) + 3) << row[i];
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

// Header banner for a reproduction binary.
inline void print_banner(const std::string& id, const std::string& caption) {
  std::cout << "\n=== " << id << ": " << caption << " ===\n";
}

}  // namespace w11
