#pragma once
// Strong time type for the simulator.
//
// All simulation timestamps and durations are expressed in integer
// nanoseconds wrapped in a single strong type, `Time`. Using one type for
// both points and durations keeps arithmetic ergonomic (the simulator epoch
// is t = 0), while the wrapper prevents accidental mixing with raw integers
// or with wall-clock types.

#include <cstdint>
#include <compare>
#include <ostream>

namespace w11 {

class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t nanos) : ns_(nanos) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Time& operator+=(Time rhs) { ns_ += rhs.ns_; return *this; }
  constexpr Time& operator-=(Time rhs) { ns_ -= rhs.ns_; return *this; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }
  friend constexpr std::int64_t operator/(Time a, Time b) { return a.ns_ / b.ns_; }
  friend constexpr auto operator<=>(Time, Time) = default;

  friend std::ostream& operator<<(std::ostream& os, Time t) {
    return os << t.ns_ << "ns";
  }

 private:
  std::int64_t ns_ = 0;
};

// Duration factories. `t = 3 * time::Milli` style is avoided in favour of
// explicit constructor helpers so every call site names its unit.
namespace time {
constexpr Time nanos(std::int64_t v) { return Time{v}; }
constexpr Time micros(std::int64_t v) { return Time{v * 1'000}; }
constexpr Time millis(std::int64_t v) { return Time{v * 1'000'000}; }
constexpr Time seconds(std::int64_t v) { return Time{v * 1'000'000'000}; }
constexpr Time minutes(std::int64_t v) { return seconds(v * 60); }
constexpr Time hours(std::int64_t v) { return minutes(v * 60); }
// Fractional-second helper for rate arithmetic (rounds to nearest ns).
constexpr Time from_sec(double s) {
  return Time{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}
constexpr Time kForever{INT64_MAX};
}  // namespace time

}  // namespace w11
