#pragma once
// Data-size and data-rate strong types.
//
// Bytes is an integer byte count; RateMbps a floating-point link/PHY rate.
// The two interact through airtime computations: `transmit_time(bytes, rate)`.

#include <cstdint>
#include <compare>
#include <ostream>

#include "common/time.hpp"

namespace w11 {

class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t count) : count_(count) {}

  [[nodiscard]] constexpr std::int64_t count() const { return count_; }
  [[nodiscard]] constexpr double kilobytes() const { return static_cast<double>(count_) / 1e3; }
  [[nodiscard]] constexpr double megabytes() const { return static_cast<double>(count_) / 1e6; }
  [[nodiscard]] constexpr double gigabytes() const { return static_cast<double>(count_) / 1e9; }
  [[nodiscard]] constexpr double terabytes() const { return static_cast<double>(count_) / 1e12; }
  [[nodiscard]] constexpr std::int64_t bits() const { return count_ * 8; }

  constexpr Bytes& operator+=(Bytes rhs) { count_ += rhs.count_; return *this; }
  constexpr Bytes& operator-=(Bytes rhs) { count_ -= rhs.count_; return *this; }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.count_ + b.count_}; }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes{a.count_ - b.count_}; }
  friend constexpr Bytes operator*(Bytes a, std::int64_t k) { return Bytes{a.count_ * k}; }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;

  friend std::ostream& operator<<(std::ostream& os, Bytes b) {
    return os << b.count_ << "B";
  }

 private:
  std::int64_t count_ = 0;
};

namespace units {
constexpr Bytes bytes(std::int64_t v) { return Bytes{v}; }
constexpr Bytes kilobytes(std::int64_t v) { return Bytes{v * 1'000}; }
constexpr Bytes megabytes(std::int64_t v) { return Bytes{v * 1'000'000}; }
constexpr Bytes gigabytes(std::int64_t v) { return Bytes{v * 1'000'000'000}; }
}  // namespace units

// A data rate in megabits per second. PHY rates, TCP goodput, and uplink
// capacities all use this type.
class RateMbps {
 public:
  constexpr RateMbps() = default;
  constexpr explicit RateMbps(double mbps) : mbps_(mbps) {}

  [[nodiscard]] constexpr double mbps() const { return mbps_; }
  [[nodiscard]] constexpr double bits_per_sec() const { return mbps_ * 1e6; }
  [[nodiscard]] constexpr bool positive() const { return mbps_ > 0.0; }

  friend constexpr RateMbps operator*(RateMbps r, double k) { return RateMbps{r.mbps_ * k}; }
  friend constexpr RateMbps operator*(double k, RateMbps r) { return RateMbps{r.mbps_ * k}; }
  friend constexpr RateMbps operator+(RateMbps a, RateMbps b) { return RateMbps{a.mbps_ + b.mbps_}; }
  friend constexpr auto operator<=>(RateMbps, RateMbps) = default;

  friend std::ostream& operator<<(std::ostream& os, RateMbps r) {
    return os << r.mbps_ << "Mbps";
  }

 private:
  double mbps_ = 0.0;
};

// Time needed to serialize `size` at `rate`. Returns kForever for zero rate.
constexpr Time transmit_time(Bytes size, RateMbps rate) {
  if (!rate.positive()) return time::kForever;
  const double seconds = static_cast<double>(size.bits()) / rate.bits_per_sec();
  return time::from_sec(seconds);
}

// dBm power value; used for TX power, RSSI and noise floor.
using Dbm = double;
// Relative dB value (SNR, path loss).
using Db = double;

}  // namespace w11
