#include "core/fastack/agent.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/gate.hpp"

namespace w11::fastack {

FastAckAgent::FastAckAgent(Simulator& sim, AccessPoint& ap, Config cfg)
    : sim_(sim), ap_(ap), cfg_(cfg), trace_(cfg.trace_capacity) {}

FlowState& FastAckAgent::state_for(const TcpSegment& seg) {
  auto it = flows_.find(seg.flow);
  if (it == flows_.end()) {
    if (flows_.size() >= cfg_.max_flows) {
      gc_idle_flows();
      if (flows_.size() >= cfg_.max_flows) evict_for_capacity();
    }
    it = flows_.try_emplace(seg.flow).first;
  }
  FlowState& s = it->second;
  if (!s.initialized) {
    s.initialized = true;
    s.client = seg.dst_station;
    s.seq_exp = s.seq_fack = s.seq_tcp = s.last_client_ack = seg.seq;
    s.seq_high = seg.seq;
    s.client_rwnd = cfg_.initial_client_rwnd;
    trace(seg.flow, TraceEvent::kFlowCreated, seg.seq);
  }
  s.last_activity = sim_.now();
  return s;
}

void FastAckAgent::activate_bypass(FlowId flow, FlowState& s) {
  if (s.bypassed) return;
  s.bypassed = true;
  // Free the heavy per-flow state: a bypassed flow needs none of it, and a
  // soak under repeated faults must stay memory-bounded.
  s.retx_cache.clear();
  s.q_seq.clear();
  s.holes_vec.clear();
  ++stats_.bypass_activations;
  trace(flow, TraceEvent::kBypassActivated, s.seq_fack, s.seq_exp);
  W11_TRACE_EVENT_AT(sim_.now(), ::w11::obs::TraceKind::kFastAckBypass,
                     sim_.processed_events(), s.seq_fack, s.seq_exp);
  W11_COUNT("fastack.bypass_activations");
}

bool FastAckAgent::validate(FlowId flow, FlowState& s) {
  if (s.bypassed) return false;
  // The structural invariants of Table 3: the AP can never have fast-acked
  // bytes the sender has not delivered to it, nor expect a sequence beyond
  // the highest it has seen.
  const bool ok = s.seq_fack <= s.seq_exp && s.seq_exp <= s.seq_high;
  if (ok) return true;
  if (!cfg_.bypass_on_anomaly) {
    W11_CHECK_MSG(false, "FastACK invariant violated on flow "
                             << flow.value() << ": fack=" << s.seq_fack
                             << " exp=" << s.seq_exp
                             << " high=" << s.seq_high);
  }
  activate_bypass(flow, s);
  return false;
}

TcpInterceptor::DataAction FastAckAgent::on_downlink_data(TcpSegment& seg) {
  FlowState& s = state_for(seg);
  if (!validate(seg.flow, s)) {
    // Bypass: plain forwarding, no caching, no synthesized ACKs. The
    // sender's own machinery provides all recovery.
    ++stats_.bypassed_segments;
    return DataAction::kForward;
  }
  const std::uint64_t seq_in = seg.seq;
  const std::uint64_t end = seg.seq_end();

  // Case (i): entirely below the fast-ACK point — the sender retransmitted
  // data we already acknowledged on its behalf. Spurious; drop.
  if (end <= s.seq_fack) {
    ++stats_.spurious_retx_dropped;
    trace(seg.flow, TraceEvent::kDataSpurious, seq_in, seg.payload);
    return DataAction::kDrop;
  }

  // Case (ii): below the expected sequence — an end-to-end retransmission.
  // Refresh the cache, clear any hole it fills, and forward with priority so
  // it jumps the queue (§5.4 case ii).
  if (seq_in < s.seq_exp) {
    if (s.retx_cache.size() < cfg_.retx_cache_segments) {
      s.retx_cache.insert_or_assign(seq_in, seg);
    }
    std::erase_if(s.holes_vec,
                  [&](const Hole& h) { return h.start >= seq_in && h.end <= end; });
    ++stats_.e2e_retx_prioritized;
    trace(seg.flow, TraceEvent::kDataRetransmit, seq_in, seg.payload);
    // An end-to-end retransmission means the sender timed out — its clock
    // stopped because the client fell behind the fast-ACK point (bytes the
    // cache alone can supply, §5.5.1). Heal from the client's real ACK
    // point, not just the sender's view.
    if (s.seq_tcp < s.seq_fack) local_retransmit(seg.flow, s, s.seq_tcp);
    return DataAction::kForwardPriority;
  }

  // Case (iv): beyond the expected sequence — something upstream dropped
  // [seq_exp, seq_in). Record the hole and emulate the client's duplicate
  // ACKs so the sender fast-retransmits instead of waiting for an RTO
  // (§5.5.3). Then fall through to case (iii) handling.
  if (seq_in > s.seq_exp) {
    s.holes_vec.push_back(Hole{s.seq_exp, seq_in});
    ++stats_.holes_detected;
    trace(seg.flow, TraceEvent::kHoleDetected, s.seq_exp, seq_in - s.seq_exp);
    if (cfg_.emulate_hole_dupacks) {
      for (int i = 0; i < 3; ++i) {
        TcpSegment dup;
        dup.flow = seg.flow;
        dup.dst_station = s.client;
        dup.is_ack = true;
        dup.ack = s.seq_fack;
        dup.rwnd = advertised_window(s);
        dup.sacks.push_back(SackBlock{seq_in, end});
        dup.sent_at = sim_.now();
        ++stats_.hole_dupacks_sent;
        trace(seg.flow, TraceEvent::kHoleDupAck, s.seq_fack);
        W11_TRACE_EVENT_AT(sim_.now(),
                           ::w11::obs::TraceKind::kFastAckHoleDupAck,
                           sim_.processed_events(), s.seq_fack, seq_in);
        W11_COUNT("fastack.hole_dupacks");
        ap_.send_to_wire(std::move(dup));
      }
    }
  }

  // Case (iii): in-order (or first-past-a-hole) data: cache and forward.
  if (s.retx_cache.size() < cfg_.retx_cache_segments) {
    s.retx_cache.insert_or_assign(seq_in, seg);
  } else {
    ++stats_.cache_overflow;
  }
  s.seq_exp = end;
  s.seq_high = std::max(s.seq_high, end);
  trace(seg.flow, TraceEvent::kDataInOrder, seq_in, seg.payload);
  return DataAction::kForward;
}

void FastAckAgent::on_80211_delivered(const TcpSegment& seg) {
  const auto it = flows_.find(seg.flow);
  if (it == flows_.end()) return;
  FlowState& s = it->second;
  s.last_activity = sim_.now();
  if (!validate(seg.flow, s)) return;

  if (!cfg_.require_contiguity) {
    // Naive mode (ablation D4): acknowledge whatever the air delivered,
    // even past missing MPDUs.
    if (seg.seq_end() > s.seq_fack) {
      s.seq_fack = seg.seq_end();
      emit_fast_ack(seg.flow, s, /*window_update_only=*/false);
    }
    return;
  }

  s.q_seq.insert(AckedRange{seg.seq, seg.seq_end()});
  trace(seg.flow, TraceEvent::kAirAck, seg.seq, seg.payload);
  drain_q_seq(seg.flow, s);
}

void FastAckAgent::drain_q_seq(FlowId flow, FlowState& s) {
  // Fast-ack the contiguous prefix of 802.11-acked ranges (§5.4): ranges
  // whose start is at or below seq_fack extend it; a gap stops the drain
  // until the missing 802.11 ACK arrives.
  bool advanced = false;
  while (!s.q_seq.empty()) {
    const AckedRange r = s.q_seq.front();
    if (r.end <= s.seq_fack) {
      s.q_seq.pop_front();  // stale duplicate (e.g. local retransmission)
      continue;
    }
    if (r.start <= s.seq_fack) {
      s.seq_fack = r.end;
      s.q_seq.pop_front();
      advanced = true;
      continue;
    }
    break;  // contiguity broken
  }
  if (advanced) emit_fast_ack(flow, s, /*window_update_only=*/false);
}

bool FastAckAgent::on_uplink_ack(const TcpSegment& ack) {
  const auto it = flows_.find(ack.flow);
  if (it == flows_.end()) return false;  // not a fast-acked flow
  FlowState& s = it->second;
  s.last_activity = sim_.now();
  if (!validate(ack.flow, s)) return false;  // bypass: ACK passes upstream
  s.client_rwnd = ack.rwnd;

  if (ack.ack > s.seq_tcp) {
    s.seq_tcp = ack.ack;
    s.last_client_ack = ack.ack;
    s.client_dupacks = 0;
    // Evict acknowledged segments from the retransmission cache; the ring
    // is seq-ordered, so retired entries form a strict prefix.
    while (!s.retx_cache.empty() &&
           s.retx_cache.front().second.seq_end() <= s.seq_tcp) {
      s.retx_cache.pop_front();
      ++stats_.cache_evictions;
    }
    // A suppressed client ACK may carry the window update that un-sticks a
    // stalled sender; re-advertise if the window meaningfully reopened.
    // (Needed in both rwnd modes — suppression eats the client's update.)
    if (cfg_.emit_window_updates && cfg_.suppress_client_acks &&
        s.last_advertised_rwnd < 1460 && advertised_window(s) >= 1460) {
      emit_fast_ack(ack.flow, s, /*window_update_only=*/true);
    }
    // Stall heal: the client is advancing but still behind the fast-ACK
    // point with its window collapsed — it is buffering out-of-order data
    // it cannot consume because bytes only our cache still has are missing.
    // The stalled sender generates (almost) no arrivals, so the dup-ACK
    // trigger starves; chain the next cached burst off this ACK instead so
    // recovery clocks itself until the window reopens.
    if (s.seq_tcp < s.seq_fack &&
        advertised_window(s) < cfg_.stall_rwnd_bytes) {
      local_retransmit(ack.flow, s, s.seq_tcp);
    }
  } else if (ack.ack == s.last_client_ack && !ack.has_payload()) {
    // Duplicate ACK from the client: it is missing data the AP already
    // fast-acked (wireless loss or a bad 802.11 hint). Serve it locally
    // from the cache — never bother the sender (§5.5.1).
    ++s.client_dupacks;
    trace(ack.flow, TraceEvent::kClientDupAck, ack.ack,
          static_cast<std::uint64_t>(s.client_dupacks));
    if (s.client_dupacks >= cfg_.local_retx_dupack_threshold) {
      local_retransmit(ack.flow, s, ack.ack);
    }
  }
  if (s.client_dupacks == 0 && s.seq_tcp > s.seq_fack) {
    // Naive-mode bookkeeping: never let the fast-ACK point fall behind what
    // the client has actually acknowledged.
    s.seq_fack = s.seq_tcp;
  }

  if (!cfg_.suppress_client_acks) {
    trace(ack.flow, TraceEvent::kClientAckPassed, ack.ack);
    return false;
  }
  ++stats_.client_acks_suppressed;
  trace(ack.flow, TraceEvent::kClientAckSuppressed, ack.ack);
  W11_TRACE_EVENT_AT(sim_.now(), ::w11::obs::TraceKind::kFastAckSuppress,
                     sim_.processed_events(), ack.ack, ack.rwnd);
  W11_COUNT("fastack.acks_suppressed");
  return true;
}

void FastAckAgent::on_mpdu_dropped(const TcpSegment& seg) {
  // 802.11 retries exhausted: the fast-ACK point stalls here, no fast ACKs
  // flow, and the sender's RTO eventually drives an end-to-end
  // retransmission (case ii). Deliberately nothing to do (§5.5.1,
  // "timeout-based retransmissions").
  trace(seg.flow, TraceEvent::kMpduDropped, seg.seq, seg.payload);
}

bool FastAckAgent::retx_rate_limited(const FlowState& s,
                                     std::uint64_t from_seq) const {
  return from_seq < s.local_retx_horizon &&
         sim_.now() - s.local_retx_at < cfg_.local_retx_holdoff;
}

void FastAckAgent::local_retransmit(FlowId flow, FlowState& s,
                                    std::uint64_t from_seq) {
  if (retx_rate_limited(s, from_seq)) return;  // copies already in flight

  // Find the cached segment covering `from_seq`.
  auto it = s.retx_cache.upper_bound(from_seq);
  if (it != s.retx_cache.begin()) {
    const auto prev = std::prev(it);  // flat ring: random-access iterator
    if (prev->second.seq_end() > from_seq) it = prev;
  }
  if (it == s.retx_cache.end() || it->first > from_seq) {
    // Cache miss (overflow or the byte was never seen); the sender's own
    // machinery must recover.
    return;
  }
  // Re-inject a bounded burst of consecutive cached segments, but never
  // past the fast-ACK point (beyond it the sender is still in charge).
  int injected = 0;
  for (; it != s.retx_cache.end() && injected < cfg_.local_retx_burst &&
         it->first < s.seq_fack;
       ++it) {
    TcpSegment copy = it->second;
    copy.dst_station = s.client;
    ++stats_.local_retransmits;
    ++injected;
    s.local_retx_horizon = std::max(s.local_retx_horizon, copy.seq_end());
    trace(flow, TraceEvent::kLocalRetransmit, copy.seq, copy.payload);
    ap_.inject_downlink(std::move(copy), /*priority=*/true);
  }
  if (injected > 0) {
    s.local_retx_at = sim_.now();
    W11_TRACE_EVENT_AT(sim_.now(), ::w11::obs::TraceKind::kFastAckCacheServe,
                       sim_.processed_events(), from_seq,
                       static_cast<std::uint64_t>(injected));
    W11_COUNT_N("fastack.cache_served_segments", injected);
  }
}

std::uint64_t FastAckAgent::advertised_window(const FlowState& s) const {
  if (!cfg_.rewrite_rwnd) return s.client_rwnd;
  const std::uint64_t out = s.outstanding_bytes();
  return s.client_rwnd > out ? s.client_rwnd - out : 0;
}

void FastAckAgent::emit_fast_ack(FlowId flow, FlowState& s,
                                 bool window_update_only) {
  TcpSegment ack;
  ack.flow = flow;
  ack.dst_station = s.client;
  ack.is_ack = true;
  ack.ack = s.seq_fack;
  ack.rwnd = advertised_window(s);
  ack.sent_at = sim_.now();
  s.last_advertised_rwnd = ack.rwnd;
  if (window_update_only) {
    ++stats_.window_updates_sent;
    trace(flow, TraceEvent::kWindowUpdate, ack.ack, ack.rwnd);
    W11_TRACE_EVENT_AT(sim_.now(),
                       ::w11::obs::TraceKind::kFastAckWindowUpdate,
                       sim_.processed_events(), ack.ack, ack.rwnd);
    W11_COUNT("fastack.window_updates");
  } else {
    ++stats_.fast_acks_sent;
    trace(flow, TraceEvent::kFastAck, ack.ack, ack.rwnd);
    W11_TRACE_EVENT_AT(sim_.now(), ::w11::obs::TraceKind::kFastAckSynth,
                       sim_.processed_events(), ack.ack, ack.rwnd);
    W11_COUNT("fastack.acks_synthesized");
  }
  ap_.send_to_wire(std::move(ack));
}

std::optional<FlowState> FastAckAgent::export_flow(FlowId flow) {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) return std::nullopt;
  FlowState out = std::move(it->second);
  flows_.erase(it);
  return out;
}

void FastAckAgent::import_flow(FlowId flow, FlowState state) {
  // Pending 802.11-ack ranges belong to the roam-from AP's air; they will
  // never be acknowledged here, so fast-acking resumes from seq_fack as new
  // MPDUs are delivered by this AP.
  state.q_seq.clear();
  state.client_dupacks = 0;
  state.last_activity = sim_.now();
  if (flows_.find(flow) == flows_.end() && flows_.size() >= cfg_.max_flows) {
    gc_idle_flows();
    if (flows_.size() >= cfg_.max_flows) evict_for_capacity();
  }
  FlowState& s = flows_[flow] = std::move(state);
  // A torn transfer (roam racing a crash) can deliver corrupt state; catch
  // it at the border instead of letting it poison the fast path.
  validate(flow, s);
}

void FastAckAgent::crash_reset() {
  stats_.flows_lost_to_crash += flows_.size();
  flows_.clear();
}

void FastAckAgent::gc_idle_flows() {
  const Time now = sim_.now();
  std::vector<FlowId> victims;
  for (const auto& [flow, s] : flows_) {
    if (now - s.last_activity > cfg_.flow_idle_timeout) victims.push_back(flow);
  }
  // Sorted eviction keeps the trace (and any tie-breaking) deterministic
  // regardless of hash-table iteration order.
  std::sort(victims.begin(), victims.end(),
            [](FlowId a, FlowId b) { return a.value() < b.value(); });
  for (FlowId flow : victims) {
    trace(flow, TraceEvent::kFlowEvicted, flows_[flow].seq_fack);
    flows_.erase(flow);
    ++stats_.flows_evicted_idle;
  }
}

void FastAckAgent::evict_for_capacity() {
  if (flows_.empty()) return;
  auto victim = flows_.begin();
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    if (it->second.last_activity < victim->second.last_activity ||
        (it->second.last_activity == victim->second.last_activity &&
         it->first.value() < victim->first.value()))
      victim = it;
  }
  trace(victim->first, TraceEvent::kFlowEvicted, victim->second.seq_fack);
  flows_.erase(victim);
  ++stats_.flows_evicted_capacity;
}

void FastAckAgent::inject_anomaly(FlowId flow) {
  const auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  // Push the fast-ACK point past the delivery horizon — a state no correct
  // execution can reach. The next datapath event trips validate().
  it->second.seq_fack = it->second.seq_exp + 1'000'000;
}

const FlowState* FastAckAgent::flow_state(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? nullptr : &it->second;
}

}  // namespace w11::fastack
