#pragma once
// The FastACK agent (§5.2, §5.4, §5.5).
//
// Runs on the AP and plugs into its datapath via wlan::TcpInterceptor.
// On every 802.11 ACK for a downlink TCP data MPDU it synthesizes the
// corresponding cumulative TCP ACK toward the sender ("fast ACK"),
// suppresses the client's own (now duplicate) TCP ACKs, serves client
// loss-recovery from a local retransmission cache, rewrites the advertised
// receive window to account for bytes the AP holds, and emulates duplicate
// ACKs for holes caused by upstream drops.
//
// Every knob the paper discusses — and every design decision DESIGN.md
// marks as an ablation candidate — is switchable in Config.

#include <optional>
#include <unordered_map>

#include "common/ids.hpp"
#include "core/fastack/flow_state.hpp"
#include "core/fastack/trace.hpp"
#include "net/tcp_segment.hpp"
#include "sim/simulator.hpp"
#include "wlan/access_point.hpp"
#include "wlan/interceptor.hpp"

namespace w11::fastack {

class FastAckAgent : public TcpInterceptor {
 public:
  struct Config {
    // Cache at most this many segments per flow; overflow disables local
    // retransmission for the overflowed bytes (sender RTO covers them).
    std::size_t retx_cache_segments = 4096;
    // §5.5.2 receive-window rewriting: rx'win = rxwin − outbytes.
    bool rewrite_rwnd = true;
    // Emit a pure window-update ACK when a suppressed client ACK reopens a
    // window the sender last saw as (nearly) closed. Engineering addition;
    // without it the sender could deadlock on a zero window because the
    // client ACK carrying the update is dropped at the AP.
    bool emit_window_updates = true;
    // §5.5.3 duplicate-ACK emulation for upstream holes.
    bool emulate_hole_dupacks = true;
    // Suppress the client's own TCP ACKs (ablation D6).
    bool suppress_client_acks = true;
    // Only fast-ack contiguous 802.11-acked prefixes (ablation D4). When
    // false the agent naively acks every delivered MPDU's end, which can
    // acknowledge past holes.
    bool require_contiguity = true;
    // Local retransmission fires after this many duplicate client ACKs.
    int local_retx_dupack_threshold = 1;
    // At most this many cached segments are re-injected per trigger, and a
    // given byte range is not re-injected again within the holdoff — this
    // keeps dup-ACK bursts from flooding the downlink queue with copies.
    int local_retx_burst = 64;
    Time local_retx_holdoff = time::millis(100);
    // Client receive window assumed until the first client ACK reveals the
    // real one (a deployed agent learns it from the SYN handshake, which
    // this model does not carry).
    std::uint64_t initial_client_rwnd = 1 << 20;
    // Debug switches (paper fn. 9): record every datapath event into a
    // bounded ring for tests and live debugging.
    bool trace_enabled = false;
    std::size_t trace_capacity = 4096;
    // --- graceful degradation (§5.5.4 corner cases) ----------------------
    // On an invariant anomaly (corrupt imported state, bookkeeping gone
    // wrong) the flow drops to bypass: plain forwarding, sender-driven
    // recovery, counted in FlowStats. With this off the agent fails hard
    // (W11_CHECK) instead — the debug-build stance.
    bool bypass_on_anomaly = true;
    // Hard cap on tracked flows; creating a flow past the cap first evicts
    // idle flows, then the least-recently-active one. A deployed AP serves
    // a churning client population forever — the table must be bounded.
    std::size_t max_flows = 4096;
    // A flow without datapath activity for this long is dead weight (the
    // client roamed away, the connection closed — the agent never sees FIN
    // in this model) and is collected by gc_idle_flows().
    Time flow_idle_timeout = time::seconds(60);
    // Stall-heal trigger: a client ACK that advances while still behind the
    // fast-ACK point, with the rewritten (sender-visible) window collapsed
    // below this, is wedged on bytes only the cache still has — the sender
    // believes them delivered and its window is shut, so the dup-ACK path
    // will starve (no new arrivals means no new client ACKs). Each such ACK
    // pulls the next cached burst, making recovery self-clocking (§5.5.1).
    std::uint64_t stall_rwnd_bytes = 3 * 1460;
  };

  FastAckAgent(Simulator& sim, AccessPoint& ap, Config cfg);

  // TcpInterceptor ------------------------------------------------------
  DataAction on_downlink_data(TcpSegment& seg) override;
  bool on_uplink_ack(const TcpSegment& ack) override;
  void on_80211_delivered(const TcpSegment& seg) override;
  void on_mpdu_dropped(const TcpSegment& seg) override;

  // Roaming (§5.5.4) ----------------------------------------------------
  // Extract a flow's state — including the retransmission cache — for
  // transfer to the roam-to AP's agent, and install state arriving from a
  // roam-from AP. The paper requires such a mechanism for controller-less
  // roaming but leaves it unspecified; this is the minimal faithful one.
  [[nodiscard]] std::optional<FlowState> export_flow(FlowId flow);
  // Imported state is validated; state that fails its invariants (a torn
  // transfer, a crashed source AP) installs the flow in bypass mode instead
  // of poisoning the fast path.
  void import_flow(FlowId flow, FlowState state);

  // Degradation & lifecycle ---------------------------------------------
  // AP crash/reboot: the in-memory flow table is gone. Flows re-create on
  // the next segment; clients recover via normal end-to-end TCP.
  void crash_reset();
  // Evict flows idle longer than flow_idle_timeout. Called lazily when the
  // table is full; harnesses may also call it periodically.
  void gc_idle_flows();
  // Corrupt a flow's bookkeeping (fault-injection hook): the next datapath
  // event on the flow trips invariant validation and activates bypass.
  void inject_anomaly(FlowId flow);

  // Introspection -------------------------------------------------------
  [[nodiscard]] const FlowState* flow_state(FlowId flow) const;
  [[nodiscard]] const FlowStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t tracked_flows() const { return flows_.size(); }
  [[nodiscard]] const TraceRing& trace_ring() const { return trace_; }
  [[nodiscard]] TraceRing& trace_ring() { return trace_; }

 private:
  FlowState& state_for(const TcpSegment& seg);
  // Invariant validation: true iff the flow is healthy and accelerated.
  // A violated invariant activates bypass (or fails hard when
  // bypass_on_anomaly is off).
  bool validate(FlowId flow, FlowState& s);
  void activate_bypass(FlowId flow, FlowState& s);
  void evict_for_capacity();
  void drain_q_seq(FlowId flow, FlowState& s);
  void emit_fast_ack(FlowId flow, FlowState& s, bool window_update_only);
  void local_retransmit(FlowId flow, FlowState& s, std::uint64_t from_seq);
  [[nodiscard]] bool retx_rate_limited(const FlowState& s,
                                       std::uint64_t from_seq) const;
  [[nodiscard]] std::uint64_t advertised_window(const FlowState& s) const;

  void trace(FlowId flow, TraceEvent event, std::uint64_t seq,
             std::uint64_t extra = 0) {
    if (cfg_.trace_enabled)
      trace_.record(TraceRecord{sim_.now(), flow, event, seq, extra});
  }

  Simulator& sim_;
  AccessPoint& ap_;
  Config cfg_;
  std::unordered_map<FlowId, FlowState> flows_;
  FlowStats stats_;
  TraceRing trace_;
};

}  // namespace w11::fastack
