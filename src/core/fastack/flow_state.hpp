#pragma once
// Per-flow FastACK state, Table 3 of the paper.
//
//   holes_vec — TCP holes (upstream losses) observed at the AP
//   seq_high  — highest TCP data sequence seen from the sender
//   seq_exp   — next expected TCP data sequence from the sender
//   seq_fack  — cumulative fast-ACK point (last byte fast-acked + 1)
//   seq_tcp   — cumulative ACK point confirmed by the client's own TCP
//   q_seq     — 802.11-acked segment ranges awaiting contiguous fast-ACK
//
// Invariant maintained throughout: seq_fack <= seq_exp (the AP can never
// fast-ack bytes the sender has not yet delivered to it), and
// seq_tcp <= seq_fack whenever the client is behind the fast-ACK point.

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/seq_containers.hpp"
#include "common/time.hpp"
#include "net/tcp_segment.hpp"

namespace w11::fastack {

struct Hole {
  std::uint64_t start = 0;
  std::uint64_t end = 0;  // exclusive
  friend constexpr auto operator<=>(const Hole&, const Hole&) = default;
};

// A segment range acknowledged at the 802.11 layer, pending fast-ACK.
struct AckedRange {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  friend constexpr auto operator<=>(const AckedRange&, const AckedRange&) = default;
};

struct FlowState {
  StationId client;
  bool initialized = false;

  // Safe-disable bypass (§5.5.4 spirit): when an invariant anomaly is
  // detected — corrupt imported state after a roam/crash, or internal
  // bookkeeping gone wrong — the flow stops being accelerated and every
  // packet passes through untouched. The sender's normal TCP recovery takes
  // over; correctness is preserved at the cost of acceleration.
  bool bypassed = false;

  // Last datapath event touching this flow (drives idle-flow eviction).
  Time last_activity{};

  std::vector<Hole> holes_vec;
  std::uint64_t seq_high = 0;
  std::uint64_t seq_exp = 0;
  std::uint64_t seq_fack = 0;
  std::uint64_t seq_tcp = 0;
  // Ordered unique ranges consumed from the front as contiguity resolves;
  // flat storage since ranges arrive almost sorted and leave strictly
  // front-first.
  RangeQueue<AckedRange> q_seq;

  // Retransmission cache: segment start -> cached copy, as a sorted flat
  // ring of trivially-copyable segments. Entries are evicted front-first
  // when the client's real TCP ACK (seq_tcp) passes them.
  SeqRing<TcpSegment> retx_cache;

  // Client-side flow-control bookkeeping (§5.5.2).
  std::uint64_t client_rwnd = 0;
  std::uint64_t last_advertised_rwnd = 0;

  // Duplicate-ACK tracking for local retransmissions.
  std::uint64_t last_client_ack = 0;
  int client_dupacks = 0;
  // Local-retransmission rate limiting: bytes already re-injected and when,
  // so a dup-ACK burst cannot flood the downlink queue with copies.
  std::uint64_t local_retx_horizon = 0;
  Time local_retx_at{};

  [[nodiscard]] std::uint64_t outstanding_bytes() const {
    return seq_high > seq_tcp ? seq_high - seq_tcp : 0;
  }
};

struct FlowStats {
  std::uint64_t fast_acks_sent = 0;
  std::uint64_t window_updates_sent = 0;
  std::uint64_t local_retransmits = 0;
  std::uint64_t holes_detected = 0;
  std::uint64_t hole_dupacks_sent = 0;
  std::uint64_t spurious_retx_dropped = 0;
  std::uint64_t e2e_retx_prioritized = 0;
  std::uint64_t client_acks_suppressed = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_overflow = 0;
  // Graceful-degradation counters.
  std::uint64_t bypass_activations = 0;    // flows dropped to plain forwarding
  std::uint64_t bypassed_segments = 0;     // data segments passed through
  std::uint64_t flows_evicted_idle = 0;    // idle-timeout GC
  std::uint64_t flows_evicted_capacity = 0;  // table hit max_flows
  std::uint64_t flows_lost_to_crash = 0;   // crash_reset() state loss
};

}  // namespace w11::fastack
