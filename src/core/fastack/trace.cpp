#include "core/fastack/trace.hpp"

#include <sstream>

namespace w11::fastack {

std::string TraceRecord::to_string() const {
  std::ostringstream os;
  os << at.ms() << "ms " << flow << " " << fastack::to_string(event)
     << " seq=" << seq;
  if (extra != 0) os << " extra=" << extra;
  return os.str();
}

void TraceRing::dump(std::ostream& os) const {
  for (const TraceRecord& r : snapshot()) os << r.to_string() << "\n";
  if (dropped_ > 0) os << "(" << dropped_ << " older records evicted)\n";
}

}  // namespace w11::fastack
