#pragma once
// FastACK event tracing — the "debug switches" of the paper's fn. 9.
//
// A bounded ring of typed datapath events per agent. Cheap enough to leave
// compiled in (an enum + three integers per event), enabled per agent at
// runtime; tests assert on event sequences and operators debug live flows
// by dumping the ring.

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace w11::fastack {

enum class TraceEvent : std::uint8_t {
  kFlowCreated,
  kDataInOrder,       // case (iii)
  kDataRetransmit,    // case (ii)
  kDataSpurious,      // case (i) dropped
  kHoleDetected,      // case (iv)
  kHoleDupAck,
  kAirAck,            // 802.11 ack absorbed into q_seq
  kFastAck,
  kWindowUpdate,
  kClientAckSuppressed,
  kClientAckPassed,
  kClientDupAck,
  kLocalRetransmit,
  kMpduDropped,
  kBypassActivated,   // invariant anomaly -> plain forwarding
  kFlowEvicted,       // idle-timeout or capacity GC
};

[[nodiscard]] constexpr const char* to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kFlowCreated: return "flow-created";
    case TraceEvent::kDataInOrder: return "data-in-order";
    case TraceEvent::kDataRetransmit: return "data-e2e-retx";
    case TraceEvent::kDataSpurious: return "data-spurious-dropped";
    case TraceEvent::kHoleDetected: return "hole-detected";
    case TraceEvent::kHoleDupAck: return "hole-dupack";
    case TraceEvent::kAirAck: return "80211-ack";
    case TraceEvent::kFastAck: return "fast-ack";
    case TraceEvent::kWindowUpdate: return "window-update";
    case TraceEvent::kClientAckSuppressed: return "client-ack-suppressed";
    case TraceEvent::kClientAckPassed: return "client-ack-passed";
    case TraceEvent::kClientDupAck: return "client-dupack";
    case TraceEvent::kLocalRetransmit: return "local-retx";
    case TraceEvent::kMpduDropped: return "mpdu-dropped";
    case TraceEvent::kBypassActivated: return "bypass-activated";
    case TraceEvent::kFlowEvicted: return "flow-evicted";
  }
  return "?";
}

struct TraceRecord {
  Time at{};
  FlowId flow;
  TraceEvent event{};
  std::uint64_t seq = 0;    // event-specific sequence / ack number
  std::uint64_t extra = 0;  // event-specific (length, window, count)

  [[nodiscard]] std::string to_string() const;
};

// Fixed-capacity ring buffer of trace records. Oldest entries are evicted
// once capacity is reached; `dropped()` reports how many.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(TraceRecord r) {
    if (records_.size() < capacity_) {
      records_.push_back(r);
    } else {
      records_[head_] = r;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  // Records in chronological order.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i)
      out.push_back(records_[(head_ + i) % records_.size()]);
    return out;
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear() {
    records_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  void dump(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> records_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace w11::fastack
