#include "core/snoop/snoop_agent.hpp"

#include <algorithm>

namespace w11::snoop {

SnoopAgent::SnoopAgent(Simulator& sim, AccessPoint& ap, Config cfg)
    : sim_(sim), ap_(ap), cfg_(cfg) {}

TcpInterceptor::DataAction SnoopAgent::on_downlink_data(TcpSegment& seg) {
  SnoopFlow& f = flows_[seg.flow];
  if (!f.initialized) {
    f.initialized = true;
    f.client = seg.dst_station;
    f.seq_exp = seg.seq;
    f.last_ack = seg.seq;
  }
  // Cache every (re)transmission not yet acknowledged by the client.
  if (f.cache.size() < cfg_.cache_segments) f.cache[seg.seq] = seg;
  const bool retransmission = seg.seq < f.seq_exp;
  f.seq_exp = std::max(f.seq_exp, seg.seq_end());
  // Sender retransmissions jump the queue, same as FastACK's case (ii).
  return retransmission ? DataAction::kForwardPriority : DataAction::kForward;
}

bool SnoopAgent::on_uplink_ack(const TcpSegment& ack) {
  const auto it = flows_.find(ack.flow);
  if (it == flows_.end()) return false;
  SnoopFlow& f = it->second;

  if (ack.ack > f.last_ack) {
    // New ACK: evict covered segments, pass it to the sender untouched.
    f.last_ack = ack.ack;
    f.dupacks = 0;
    for (auto c = f.cache.begin(); c != f.cache.end();) {
      if (c->second.seq_end() <= ack.ack) {
        c = f.cache.erase(c);
        ++stats_.cache_evictions;
      } else {
        break;
      }
    }
    ++stats_.acks_passed;
    return false;
  }

  if (ack.ack == f.last_ack && !ack.has_payload()) {
    // Duplicate ACK for data we hold: retransmit locally and SUPPRESS it so
    // the sender's congestion window never learns about the wireless loss —
    // Snoop's whole trick.
    ++f.dupacks;
    if (f.dupacks >= cfg_.dupack_threshold && f.cache.contains(ack.ack)) {
      local_retransmit(f, ack.ack);
      ++stats_.dupacks_suppressed;
      return true;
    }
    // Dup-ACK for data we no longer hold: the sender must handle it.
    ++stats_.acks_passed;
    return false;
  }
  ++stats_.acks_passed;
  return false;
}

void SnoopAgent::local_retransmit(SnoopFlow& f, std::uint64_t from_seq) {
  if (from_seq < f.retx_horizon && sim_.now() - f.retx_at < cfg_.retx_holdoff)
    return;
  auto it = f.cache.lower_bound(from_seq);
  int injected = 0;
  for (; it != f.cache.end() && injected < cfg_.retx_burst; ++it) {
    TcpSegment copy = it->second;
    copy.dst_station = f.client;
    ++stats_.local_retransmits;
    ++injected;
    f.retx_horizon = std::max(f.retx_horizon, copy.seq_end());
    ap_.inject_downlink(std::move(copy), /*priority=*/true);
  }
  if (injected > 0) f.retx_at = sim_.now();
}

void SnoopAgent::on_80211_delivered(const TcpSegment& seg) {
  // Snoop keys its cache on client TCP ACKs, not link-layer ACKs.
  (void)seg;
}

void SnoopAgent::on_mpdu_dropped(const TcpSegment& seg) {
  // Retry exhaustion: the client will dup-ACK when later data lands, and
  // the cache will serve it; nothing to do eagerly.
  (void)seg;
}

const SnoopFlow* SnoopAgent::flow(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second;
}

}  // namespace w11::snoop
