#pragma once
// TCP-Snoop baseline (Balakrishnan et al., 1995) — the closest prior work
// the paper compares FastACK against (§5.3).
//
// Snoop also caches downlink TCP data at the AP and performs local
// retransmissions over the wireless link, but its goal is narrower: hide
// wireless losses from the sender's congestion control. It does NOT
// generate early acknowledgments — the sender still waits for the client's
// real TCP ACKs, so it gains none of FastACK's aggregation benefits. The
// mechanical differences:
//
//   * duplicate ACKs from the client for data in the cache are *suppressed*
//     and answered by a local retransmission (sender never sees them);
//   * non-duplicate client ACKs pass through unchanged;
//   * no fast ACKs, no rwnd rewriting, no hole dup-ACK emulation.
//
// Implemented against the same TcpInterceptor interface so benches can
// swap baseline / Snoop / FastACK on an identical AP.

#include <map>
#include <unordered_map>

#include "common/ids.hpp"
#include "net/tcp_segment.hpp"
#include "sim/simulator.hpp"
#include "wlan/access_point.hpp"
#include "wlan/interceptor.hpp"

namespace w11::snoop {

struct SnoopFlow {
  bool initialized = false;
  StationId client;
  std::uint64_t seq_exp = 0;   // next expected from the sender
  std::uint64_t last_ack = 0;  // client's cumulative ACK point
  int dupacks = 0;
  // Cache of un-ACKed segments: start seq -> copy.
  std::map<std::uint64_t, TcpSegment> cache;
  // Rate limiting, same motivation as FastACK's.
  std::uint64_t retx_horizon = 0;
  Time retx_at{};
};

struct SnoopStats {
  std::uint64_t local_retransmits = 0;
  std::uint64_t dupacks_suppressed = 0;
  std::uint64_t acks_passed = 0;
  std::uint64_t cache_evictions = 0;
};

class SnoopAgent : public TcpInterceptor {
 public:
  struct Config {
    std::size_t cache_segments = 4096;
    int dupack_threshold = 1;   // Snoop retransmits on the first dup-ACK
    int retx_burst = 64;
    Time retx_holdoff = time::millis(100);
  };

  SnoopAgent(Simulator& sim, AccessPoint& ap, Config cfg);

  DataAction on_downlink_data(TcpSegment& seg) override;
  bool on_uplink_ack(const TcpSegment& ack) override;
  void on_80211_delivered(const TcpSegment& seg) override;
  void on_mpdu_dropped(const TcpSegment& seg) override;

  [[nodiscard]] const SnoopStats& stats() const { return stats_; }
  [[nodiscard]] const SnoopFlow* flow(FlowId id) const;

 private:
  void local_retransmit(SnoopFlow& f, std::uint64_t from_seq);

  Simulator& sim_;
  AccessPoint& ap_;
  Config cfg_;
  std::unordered_map<FlowId, SnoopFlow> flows_;
  SnoopStats stats_;
};

}  // namespace w11::snoop
