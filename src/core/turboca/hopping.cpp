#include "core/turboca/hopping.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "flowsim/scan_index.hpp"

namespace w11::turboca {

HoppingCaService::HoppingCaService(Config cfg, NetworkHooks hooks, Rng rng)
    : cfg_(cfg), hooks_(std::move(hooks)), rng_(std::move(rng)) {
  W11_CHECK(hooks_.scan && hooks_.current_plan && hooks_.apply_plan);
  W11_CHECK(cfg_.sequence_length >= 1);
}

void HoppingCaService::build_sequences(const std::vector<ApScan>& scans) {
  for (const ApScan& s : scans) {
    if (sequences_.contains(s.id)) continue;
    auto catalog = channels::candidate_set(s.band, cfg_.width, cfg_.allow_dfs);
    std::erase_if(catalog,
                  [&](const Channel& c) { return c.width != cfg_.width; });
    if (catalog.empty())
      catalog = channels::candidate_set(s.band, cfg_.width, cfg_.allow_dfs);
    std::shuffle(catalog.begin(), catalog.end(), rng_.engine());
    const auto len = std::min<std::size_t>(
        catalog.size(), static_cast<std::size_t>(cfg_.sequence_length));
    sequences_[s.id] = {catalog.begin(),
                        catalog.begin() + static_cast<std::ptrdiff_t>(len)};
    cursor_[s.id] = 0;
  }
}

void HoppingCaService::advance_to(Time now) {
  if (last_hop_ >= Time{0} && now - last_hop_ < cfg_.hop_period) return;
  last_hop_ = now;
  hop_now();
}

void HoppingCaService::hop_now() {
  // One immutable index per hop epoch (hopping needs no contender floor —
  // it never scores NodeP — but shares the epoch-ownership convention of
  // the planner stack).
  const flowsim::ScanIndex index(hooks_.scan());
  if (index.size() == 0) return;
  build_sequences(index.scans());

  ChannelPlan plan = hooks_.current_plan();
  int switches = 0;
  for (const ApScan& s : index.scans()) {
    auto& seq = sequences_.at(s.id);
    auto& cur = cursor_.at(s.id);
    const Channel next = seq[cur % seq.size()];
    ++cur;
    if (plan[s.id] != next) ++switches;
    plan[s.id] = next;
  }
  ++stats_.hops_executed;
  stats_.channel_switches += switches;
  hooks_.apply_plan(plan);
}

}  // namespace w11::turboca
