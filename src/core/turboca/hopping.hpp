#pragma once
// Channel-hopping baseline (§4.2 category iii — e.g. SSCH, IQ-Hopping).
//
// Each AP hops through a per-AP pseudo-random sequence of channels on a
// fixed period, harvesting channel diversity without any measurement. The
// paper's critique, which the stability bench quantifies: hopping needs
// accurate knowledge of interferers to pick good sequences, and it ignores
// the client-side cost of every switch — "it does not take into account
// the side effects associated with a channel switch" (said of IQ-Hopping).

#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/turboca/service.hpp"
#include "flowsim/scan.hpp"

namespace w11::turboca {

class HoppingCaService {
 public:
  struct Config {
    Time hop_period = time::minutes(15);
    ChannelWidth width = ChannelWidth::MHz20;
    bool allow_dfs = false;
    // Sequence length per AP; every AP permutes the catalog independently.
    int sequence_length = 8;
  };

  struct Stats {
    int hops_executed = 0;
    int channel_switches = 0;
  };

  HoppingCaService(Config cfg, NetworkHooks hooks, Rng rng);

  void advance_to(Time now);
  void hop_now();

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void build_sequences(const std::vector<ApScan>& scans);

  Config cfg_;
  NetworkHooks hooks_;
  Rng rng_;
  Time last_hop_{time::nanos(-1)};
  std::unordered_map<ApId, std::vector<Channel>> sequences_;
  std::unordered_map<ApId, std::size_t> cursor_;
  Stats stats_;
};

}  // namespace w11::turboca
