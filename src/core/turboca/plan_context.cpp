#include "core/turboca/plan_context.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace w11::turboca {

PlanContext::PlanContext(const flowsim::ScanIndex& index, const Params& params,
                         const ChannelPlan& initial)
    : index_(&index), params_(params) {
  // The contender floor is baked into the index's adjacency; a mismatched
  // pairing would silently mis-count contenders.
  W11_CHECK(index.contender_rssi_floor() == params_.neighbor_rssi_floor);

  const std::size_t n = index.size();
  plan_.reserve(n);
  plan_ord_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ApScan& s = index.scan(i);
    const auto it = initial.find(s.id);
    plan_.push_back(it != initial.end() ? it->second : s.current);
    plan_ord_.push_back(channels::ordinal(plan_.back()));
  }
  for (const auto& [id, c] : initial)
    if (!index.find(id)) extras_.emplace(id, c);

  term_.assign(n, 0.0);
  dirty_.assign(n, 1);
  dirty_list_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    dirty_list_[i] = static_cast<std::uint32_t>(i);
  touched_.assign(n, 0);
}

void PlanContext::mark_dirty(std::size_t i) {
  if (!dirty_[i]) {
    dirty_[i] = 1;
    dirty_list_.push_back(static_cast<std::uint32_t>(i));
  }
}

void PlanContext::set(std::size_t i, const Channel& c) {
  if (plan_[i] == c) return;
  if (round_active_ && !touched_[i]) {
    touched_[i] = 1;
    touched_list_.push_back(static_cast<std::uint32_t>(i));
    undo_.emplace_back(static_cast<std::uint32_t>(i), plan_[i]);
  }
  plan_[i] = c;
  plan_ord_[i] = channels::ordinal(c);
  mark_dirty(i);
  for (std::uint32_t d : index_->dependents(i)) mark_dirty(d);
}

double PlanContext::net_p_log() {
  for (std::uint32_t i : dirty_list_) {
    term_[i] = node_p_log(i, plan_[i]);
    dirty_[i] = 0;
  }
  dirty_list_.clear();
  double total = 0.0;
  for (double t : term_) total += t;
  return total;
}

double PlanContext::node_p_log(std::size_t i, const Channel& c,
                               const PsiSet* psi,
                               const TrialMove* trial) const {
  const int c_ord = channels::ordinal(c);
  const double total_load = index_->total_load(i);
  double log_p = 0.0;
  const int cw = static_cast<int>(c.width);
  for (int b = 0; b <= cw; ++b) {
    double load = index_->load_at(i, static_cast<ChannelWidth>(b), c.width);
    if (total_load <= 0.0) load = params_.empty_ap_load;
    if (load <= 0.0) continue;
    const double metric =
        channel_metric(i, c, c_ord, static_cast<ChannelWidth>(b), psi, trial);
    log_p += load * (metric > 1e-12 ? std::log(metric) : kNodePLogFloor);
  }
  return log_p;
}

double PlanContext::node_p_log_terms(std::size_t i, const Channel& c,
                                     std::vector<obs::NodePTerm>* out) const {
  // Mirrors node_p_log exactly (same loop, same floor) and additionally
  // captures the per-width breakdown; keep the two in lockstep.
  const int c_ord = channels::ordinal(c);
  const double total_load = index_->total_load(i);
  double log_p = 0.0;
  const int cw = static_cast<int>(c.width);
  for (int b = 0; b <= cw; ++b) {
    double load = index_->load_at(i, static_cast<ChannelWidth>(b), c.width);
    if (total_load <= 0.0) load = params_.empty_ap_load;
    if (load <= 0.0) continue;
    obs::NodePTerm term;
    const double metric = channel_metric(i, c, c_ord,
                                         static_cast<ChannelWidth>(b), nullptr,
                                         nullptr, &term);
    const double log_term =
        load * (metric > 1e-12 ? std::log(metric) : kNodePLogFloor);
    log_p += log_term;
    if (out != nullptr) {
      term.width_mhz = width_mhz(static_cast<ChannelWidth>(b));
      term.load = load;
      term.metric = metric;
      term.log_term = log_term;
      out->push_back(term);
    }
  }
  return log_p;
}

double PlanContext::channel_metric(std::size_t i, const Channel& c, int c_ord,
                                   ChannelWidth b, const PsiSet* psi,
                                   const TrialMove* trial,
                                   obs::NodePTerm* detail) const {
  const flowsim::ScanIndex& index = *index_;
  const ApScan& a = index.scan(i);

  // The b-wide sub-channel of c and its precomputed spectrum aggregates.
  Channel sub;
  int sub_ord;
  if (c_ord >= 0) {
    sub_ord = channels::sub_channel_ordinal(c_ord, b);
    sub = channels::by_ordinal(sub_ord);
  } else {
    sub = channels::sub_channel(c, b);
    sub_ord = channels::ordinal(sub);
  }
  const flowsim::ScanIndex::ChannelStats st =
      sub_ord >= 0 ? index.stats(i, sub_ord)
                   : flowsim::ScanIndex::compute_stats(a, sub);

  // Same-network contenders whose planned channel overlaps the sub-channel.
  int contenders = 0;
  for (const flowsim::ScanIndex::Neighbor& nb : index.neighbors(i)) {
    if (!nb.contender) continue;
    if (psi && psi->contains(nb.index)) continue;  // ψ: presume they move
    const bool is_trial = trial && nb.index == trial->index;
    const int po = is_trial ? trial->ordinal : plan_ord_[nb.index];
    bool overlaps;
    if (po >= 0 && sub_ord >= 0) {
      overlaps = channels::overlaps_ordinal(po, sub_ord);
    } else {
      const Channel& pc = is_trial ? trial->channel : plan_[nb.index];
      overlaps = pc.overlaps(sub);
    }
    if (overlaps) ++contenders;
  }

  const double airtime =
      std::clamp((1.0 - st.external_util) / (1.0 + contenders), 0.0, 1.0);

  double penalty = 0.0;
  if (c != a.current) {
    penalty = params_.switch_penalty;
    if (a.band == Band::G2_4) penalty = params_.switch_penalty_24ghz;
    if (a.utilization_current > params_.high_util_threshold)
      penalty = std::max(penalty, params_.switch_penalty_high_util);
    if (!a.has_clients) penalty = 0.0;  // nothing to disrupt
  }

  if (detail != nullptr) {
    detail->airtime = airtime;
    detail->quality = st.quality;
    detail->penalty = penalty;
    detail->contenders = contenders;
  }

  // capacity(c,b) scales with bandwidth (achievable rate ∝ width); keeping
  // the metric rate-like (able to exceed 1) is what makes wider channels
  // win when airtime is available and lose when contention eats the gain.
  return static_cast<double>(width_mhz(b)) * (airtime * st.quality - penalty);
}

void PlanContext::begin_round() {
  W11_CHECK(!round_active_);
  round_active_ = true;
}

void PlanContext::commit_round() {
  W11_CHECK(round_active_);
  round_active_ = false;
  undo_.clear();
  for (std::uint32_t i : touched_list_) touched_[i] = 0;
  touched_list_.clear();
}

void PlanContext::rollback_round() {
  W11_CHECK(round_active_);
  round_active_ = false;  // cleared first so set() does not re-log
  for (const auto& [i, prev] : undo_) set(i, prev);
  undo_.clear();
  for (std::uint32_t i : touched_list_) touched_[i] = 0;
  touched_list_.clear();
}

ChannelPlan PlanContext::snapshot() const {
  ChannelPlan out = extras_;
  for (std::size_t i = 0; i < plan_.size(); ++i)
    out[index_->scan(i).id] = plan_[i];
  return out;
}

}  // namespace w11::turboca
