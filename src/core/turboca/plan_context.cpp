#include "core/turboca/plan_context.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/check.hpp"

// The kernel's bit-for-bit equivalence with the scalar/reference paths
// (golden suites, audit parity) dies under value-unsafe FP.
#ifdef __FAST_MATH__
#error "plan_context.cpp must not be compiled with -ffast-math (determinism)"
#endif

namespace w11::turboca {

PlanContext::PlanContext(const flowsim::ScanIndex& index, const Params& params,
                         const ChannelPlan& initial)
    : index_(&index), params_(params) {
  // The contender floor is baked into the index's adjacency; a mismatched
  // pairing would silently mis-count contenders.
  W11_CHECK(index.contender_rssi_floor() == params_.neighbor_rssi_floor);

  const std::size_t n = index.size();
  plan_.reserve(n);
  plan_ord_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ApScan& s = index.scan(i);
    const auto it = initial.find(s.id);
    plan_.push_back(it != initial.end() ? it->second : s.current);
    plan_ord_.push_back(channels::ordinal(plan_.back()));
  }
  for (const auto& [id, c] : initial)
    if (!index.find(id)) extras_.emplace(id, c);

  term_.assign(n, 0.0);
  dirty_.assign(n, 1);
  dirty_list_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    dirty_list_[i] = static_cast<std::uint32_t>(i);
  touched_.assign(n, 0);

  // Plan-invariant kernel companions (see header): per-candidate switch
  // penalties (exactly channel_metric's penalty branch, hoisted out of the
  // per-width loop it never varied across) and per-term effective loads
  // (the empty-AP substitution folded in).
  cand_penalty_.resize(index.candidate_slots());
  for (std::size_t i = 0; i < n; ++i) {
    const ApScan& a = index.scan(i);
    const std::vector<Channel>& cands = index.candidates(i);
    const std::uint32_t base = index.candidate_base(i);
    for (std::size_t k = 0; k < cands.size(); ++k) {
      const Channel& c = cands[k];
      double penalty = 0.0;
      if (c != a.current) {
        penalty = params_.switch_penalty;
        if (a.band == Band::G2_4) penalty = params_.switch_penalty_24ghz;
        if (a.utilization_current > params_.high_util_threshold)
          penalty = std::max(penalty, params_.switch_penalty_high_util);
        if (!a.has_clients) penalty = 0.0;  // nothing to disrupt
      }
      cand_penalty_[base + k] = penalty;
    }
  }
  {
    const std::size_t slots = index.candidate_slots();
    std::size_t total_terms = 0;
    if (slots > 0) {
      // Global sentinel: the final entry of the offset array.
      total_terms = index.score_block(n - 1)
                        .term_begin[index.candidates(n - 1).size()];
    }
    term_eff_load_.resize(total_terms);
    for (std::size_t i = 0; i < n; ++i) {
      const flowsim::ScanIndex::ScoreBlock blk = index.score_block(i);
      const bool empty = index.total_load(i) <= 0.0;
      const std::uint32_t tb = blk.term_begin[0];
      const std::uint32_t te = blk.term_begin[index.candidates(i).size()];
      for (std::uint32_t t = tb; t < te; ++t)
        term_eff_load_[t] = empty ? params_.empty_ap_load : blk.load[t];
    }
  }
}

void PlanContext::mark_dirty(std::size_t i) {
  if (!dirty_[i]) {
    dirty_[i] = 1;
    dirty_list_.push_back(static_cast<std::uint32_t>(i));
  }
}

void PlanContext::set(std::size_t i, const Channel& c) {
  if (plan_[i] == c) return;
  if (round_active_ && !touched_[i]) {
    touched_[i] = 1;
    touched_list_.push_back(static_cast<std::uint32_t>(i));
    undo_.emplace_back(static_cast<std::uint32_t>(i), plan_[i]);
  }
  plan_[i] = c;
  plan_ord_[i] = channels::ordinal(c);
  mark_dirty(i);
  for (std::uint32_t d : index_->dependents(i)) mark_dirty(d);
}

double PlanContext::net_p_log() {
  for (std::uint32_t i : dirty_list_) {
    term_[i] = node_p_log(i, plan_[i]);
    dirty_[i] = 0;
  }
  dirty_list_.clear();
  double total = 0.0;
  for (double t : term_) total += t;
  return total;
}

double PlanContext::node_p_log(std::size_t i, const Channel& c,
                               const PsiSet* psi,
                               const TrialMove* trial) const {
  const int c_ord = channels::ordinal(c);
  const double total_load = index_->total_load(i);
  double log_p = 0.0;
  const int cw = static_cast<int>(c.width);
  for (int b = 0; b <= cw; ++b) {
    double load = index_->load_at(i, static_cast<ChannelWidth>(b), c.width);
    if (total_load <= 0.0) load = params_.empty_ap_load;
    if (load <= 0.0) continue;
    const double metric =
        channel_metric(i, c, c_ord, static_cast<ChannelWidth>(b), psi, trial);
    log_p += load * (metric > 1e-12 ? std::log(metric) : kNodePLogFloor);
  }
  return log_p;
}

double PlanContext::node_p_log_terms(std::size_t i, const Channel& c,
                                     std::vector<obs::NodePTerm>* out) const {
  // Mirrors node_p_log exactly (same loop, same floor) and additionally
  // captures the per-width breakdown; keep the two in lockstep.
  const int c_ord = channels::ordinal(c);
  const double total_load = index_->total_load(i);
  double log_p = 0.0;
  const int cw = static_cast<int>(c.width);
  for (int b = 0; b <= cw; ++b) {
    double load = index_->load_at(i, static_cast<ChannelWidth>(b), c.width);
    if (total_load <= 0.0) load = params_.empty_ap_load;
    if (load <= 0.0) continue;
    obs::NodePTerm term;
    const double metric = channel_metric(i, c, c_ord,
                                         static_cast<ChannelWidth>(b), nullptr,
                                         nullptr, &term);
    const double log_term =
        load * (metric > 1e-12 ? std::log(metric) : kNodePLogFloor);
    log_p += log_term;
    if (out != nullptr) {
      term.width_mhz = width_mhz(static_cast<ChannelWidth>(b));
      term.load = load;
      term.metric = metric;
      term.log_term = log_term;
      out->push_back(term);
    }
  }
  return log_p;
}

double PlanContext::channel_metric(std::size_t i, const Channel& c, int c_ord,
                                   ChannelWidth b, const PsiSet* psi,
                                   const TrialMove* trial,
                                   obs::NodePTerm* detail) const {
  const flowsim::ScanIndex& index = *index_;
  const ApScan& a = index.scan(i);

  // The b-wide sub-channel of c and its precomputed spectrum aggregates.
  Channel sub;
  int sub_ord;
  if (c_ord >= 0) {
    sub_ord = channels::sub_channel_ordinal(c_ord, b);
    sub = channels::by_ordinal(sub_ord);
  } else {
    sub = channels::sub_channel(c, b);
    sub_ord = channels::ordinal(sub);
  }
  const flowsim::ScanIndex::ChannelStats st =
      sub_ord >= 0 ? index.stats(i, sub_ord)
                   : flowsim::ScanIndex::compute_stats(a, sub);

  // Same-network contenders whose planned channel overlaps the sub-channel.
  int contenders = 0;
  for (const flowsim::ScanIndex::Neighbor& nb : index.neighbors(i)) {
    if (!nb.contender) continue;
    if (psi && psi->contains(nb.index)) continue;  // ψ: presume they move
    const bool is_trial = trial && nb.index == trial->index;
    const int po = is_trial ? trial->ordinal : plan_ord_[nb.index];
    bool overlaps;
    if (po >= 0 && sub_ord >= 0) {
      overlaps = channels::overlaps_ordinal(po, sub_ord);
    } else {
      const Channel& pc = is_trial ? trial->channel : plan_[nb.index];
      overlaps = pc.overlaps(sub);
    }
    if (overlaps) ++contenders;
  }

  const double airtime =
      std::clamp((1.0 - st.external_util) / (1.0 + contenders), 0.0, 1.0);

  double penalty = 0.0;
  if (c != a.current) {
    penalty = params_.switch_penalty;
    if (a.band == Band::G2_4) penalty = params_.switch_penalty_24ghz;
    if (a.utilization_current > params_.high_util_threshold)
      penalty = std::max(penalty, params_.switch_penalty_high_util);
    if (!a.has_clients) penalty = 0.0;  // nothing to disrupt
  }

  if (detail != nullptr) {
    detail->airtime = airtime;
    detail->quality = st.quality;
    detail->penalty = penalty;
    detail->contenders = contenders;
  }

  // capacity(c,b) scales with bandwidth (achievable rate ∝ width); keeping
  // the metric rate-like (able to exceed 1) is what makes wider channels
  // win when airtime is available and lose when contention eats the gain.
  return static_cast<double>(width_mhz(b)) * (airtime * st.quality - penalty);
}

double PlanContext::scalar_candidate_score(std::size_t i, std::size_t k,
                                           const PsiSet* psi,
                                           const TrialMove* trial) const {
  const std::vector<Channel>& cands = index_->candidates(i);
  if (trial != nullptr) return node_p_log(i, cands[k], psi, trial);
  const TrialMove self{i, cands[k], index_->candidate_ordinals(i)[k]};
  return node_p_log(i, cands[k], psi, &self);
}

void PlanContext::score_candidates(std::size_t i, std::span<double> out,
                                   const PsiSet* psi) const {
  const flowsim::ScanIndex& index = *index_;
  const std::vector<Channel>& cands = index.candidates(i);
  const std::vector<int>& ords = index.candidate_ordinals(i);
  W11_CHECK(out.size() == cands.size());

  if (index.has_self_neighbor(i)) {
    // Degenerate input (an AP reporting itself as a neighbor): the
    // self-trial actually bites, and per candidate at that — keep the
    // scalar loop, which handles it exactly.
    for (std::size_t k = 0; k < cands.size(); ++k)
      out[k] = scalar_candidate_score(i, k, psi, nullptr);
    return;
  }

  // Contender counts per catalog sub-channel, built in ONE pass over the
  // neighbor list: each active contender's planned channel spreads through
  // its precomputed overlap mask (one increment per set bit). After this,
  // no per-candidate work ever touches the neighbor list again. Neighbors
  // planned off-catalog (rare) are kept aside and resolved per term.
  std::array<int, channels::kMaxCatalogOrdinals> cnt{};
  std::vector<const Channel*> off_catalog;
  const std::uint64_t* masks = channels::overlap_masks();
  for (const flowsim::ScanIndex::Neighbor& nb : index.neighbors(i)) {
    if (!nb.contender) continue;
    if (psi != nullptr && psi->contains(nb.index)) continue;
    const int po = plan_ord_[nb.index];
    if (po >= 0) {
      for (std::uint64_t m = masks[po]; m != 0; m &= m - 1)
        ++cnt[static_cast<std::size_t>(std::countr_zero(m))];
    } else {
      off_catalog.push_back(&plan_[nb.index]);
    }
  }

  // The batched pass: per candidate, walk its contiguous term slice; every
  // input is a flat array read and the arithmetic is the scalar metric's,
  // expression for expression — bit-identical results, no map lookups, no
  // geometry calls.
  const flowsim::ScanIndex::ScoreBlock blk = index.score_block(i);
  const std::uint32_t base = index.candidate_base(i);
  for (std::size_t k = 0; k < cands.size(); ++k) {
    if (ords[k] < 0) {
      out[k] = scalar_candidate_score(i, k, psi, nullptr);
      continue;
    }
    const double penalty = cand_penalty_[base + k];
    double log_p = 0.0;
    const std::uint32_t te = blk.term_begin[k + 1];
    for (std::uint32_t t = blk.term_begin[k]; t < te; ++t) {
      const double load = term_eff_load_[t];
      if (load <= 0.0) continue;
      const std::size_t s = static_cast<std::size_t>(blk.sub[t]);
      int contenders = cnt[s];
      for (const Channel* pc : off_catalog)
        if (pc->overlaps(channels::by_ordinal(static_cast<int>(s))))
          ++contenders;
      const double airtime =
          std::clamp((1.0 - blk.ext[t]) / (1.0 + contenders), 0.0, 1.0);
      const double metric = blk.width[t] * (airtime * blk.qual[t] - penalty);
      log_p += load * (metric > 1e-12 ? std::log(metric) : kNodePLogFloor);
    }
    out[k] = log_p;
  }
}

void PlanContext::add_neighbor_scores(std::size_t nb, std::size_t target,
                                      const PsiSet* psi,
                                      std::span<double> inout) const {
  const flowsim::ScanIndex& index = *index_;
  const std::vector<Channel>& cands = index.candidates(target);
  const std::vector<int>& ords = index.candidate_ordinals(target);
  W11_CHECK(inout.size() == cands.size());

  const int nc_ord = plan_ord_[nb];
  if (nb == target || nc_ord < 0) {
    // Scalar fallback: a self-affected AP (degenerate self-neighbor input,
    // where the evaluated channel is the trial channel itself) or a plan
    // channel outside the catalog.
    for (std::size_t k = 0; k < cands.size(); ++k) {
      const TrialMove trial{target, cands[k], ords[k]};
      const Channel& nc = nb == target ? cands[k] : plan_[nb];
      inout[k] += node_p_log(nb, nc, psi, &trial);
    }
    return;
  }

  // The neighbor's sub-channel geometry and base contender counts (with the
  // target's contribution split out) are computed once; each candidate then
  // costs one mask probe per width term.
  const Channel& nc = plan_[nb];
  const int cw = static_cast<int>(nc.width);
  const std::int16_t* sub_row =
      channels::sub_channel_table() +
      static_cast<std::size_t>(nc_ord) * channels::sub_channel_stride();
  const std::uint64_t* masks = channels::overlap_masks();
  std::int16_t subs[4];
  std::uint64_t sub_mask[4];
  for (int b = 0; b <= cw; ++b) {
    subs[b] = sub_row[b];
    sub_mask[b] = masks[subs[b]];
  }

  int base_cnt[4] = {0, 0, 0, 0};
  int t_mult = 0;  // multiplicity of `target` among nb's active contenders
  for (const flowsim::ScanIndex::Neighbor& e : index.neighbors(nb)) {
    if (!e.contender) continue;
    if (psi != nullptr && psi->contains(e.index)) continue;
    if (e.index == target) {
      ++t_mult;
      continue;
    }
    const int po = plan_ord_[e.index];
    if (po >= 0) {
      for (int b = 0; b <= cw; ++b)
        base_cnt[b] += static_cast<int>((sub_mask[b] >> po) & 1u);
    } else {
      const Channel& pc = plan_[e.index];
      for (int b = 0; b <= cw; ++b)
        if (pc.overlaps(channels::by_ordinal(subs[b]))) ++base_cnt[b];
    }
  }

  // Per width term, the two possible log contributions: target's trial
  // channel overlapping this sub-channel (+t_mult contenders) or not.
  // Exactly the scalar metric arithmetic; only the contender count varies.
  const ApScan& a = index.scan(nb);
  double penalty = 0.0;
  if (nc != a.current) {
    penalty = params_.switch_penalty;
    if (a.band == Band::G2_4) penalty = params_.switch_penalty_24ghz;
    if (a.utilization_current > params_.high_util_threshold)
      penalty = std::max(penalty, params_.switch_penalty_high_util);
    if (!a.has_clients) penalty = 0.0;  // nothing to disrupt
  }
  const double total_load = index.total_load(nb);
  double lt_without[4];
  double lt_with[4];
  bool live[4] = {false, false, false, false};
  for (int b = 0; b <= cw; ++b) {
    double load = index.load_at(nb, static_cast<ChannelWidth>(b), nc.width);
    if (total_load <= 0.0) load = params_.empty_ap_load;
    if (load <= 0.0) continue;
    live[b] = true;
    const flowsim::ScanIndex::ChannelStats& st = index.stats(nb, subs[b]);
    const double width =
        static_cast<double>(width_mhz(static_cast<ChannelWidth>(b)));
    {
      const double airtime =
          std::clamp((1.0 - st.external_util) / (1.0 + base_cnt[b]), 0.0, 1.0);
      const double metric = width * (airtime * st.quality - penalty);
      lt_without[b] =
          load * (metric > 1e-12 ? std::log(metric) : kNodePLogFloor);
    }
    if (t_mult > 0) {
      const int contenders = base_cnt[b] + t_mult;
      const double airtime =
          std::clamp((1.0 - st.external_util) / (1.0 + contenders), 0.0, 1.0);
      const double metric = width * (airtime * st.quality - penalty);
      lt_with[b] = load * (metric > 1e-12 ? std::log(metric) : kNodePLogFloor);
    } else {
      lt_with[b] = lt_without[b];
    }
  }

  for (std::size_t k = 0; k < cands.size(); ++k) {
    const int ord = ords[k];
    if (ord < 0) {
      const TrialMove trial{target, cands[k], ord};
      inout[k] += node_p_log(nb, nc, psi, &trial);
      continue;
    }
    double sum = 0.0;
    for (int b = 0; b <= cw; ++b) {
      if (!live[b]) continue;
      const bool overlaps_trial = ((sub_mask[b] >> ord) & 1u) != 0;
      sum += overlaps_trial ? lt_with[b] : lt_without[b];
    }
    inout[k] += sum;
  }
}

void PlanContext::begin_round() {
  W11_CHECK(!round_active_);
  round_active_ = true;
}

void PlanContext::commit_round() {
  W11_CHECK(round_active_);
  round_active_ = false;
  undo_.clear();
  for (std::uint32_t i : touched_list_) touched_[i] = 0;
  touched_list_.clear();
}

void PlanContext::rollback_round() {
  W11_CHECK(round_active_);
  round_active_ = false;  // cleared first so set() does not re-log
  for (const auto& [i, prev] : undo_) set(i, prev);
  undo_.clear();
  for (std::uint32_t i : touched_list_) touched_[i] = 0;
  touched_list_.clear();
}

ChannelPlan PlanContext::snapshot() const {
  ChannelPlan out = extras_;
  for (std::size_t i = 0; i < plan_.size(); ++i)
    out[index_->scan(i).id] = plan_[i];
  return out;
}

}  // namespace w11::turboca
