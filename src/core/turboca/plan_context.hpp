#pragma once
// PlanContext: the incremental NetP evaluation layer TurboCA runs on.
//
// A PlanContext binds one ScanIndex (a scan epoch) to one evolving channel
// plan, stored densely by AP index. It caches every AP's NodeP term and,
// on a single-AP move, invalidates only the mover and the APs whose
// contention counts can change (the index's reverse contender edges), so
// the ΔNetP of a move costs O(degree) term recomputes instead of a full
// network rescan. Summation always runs over all cached terms in scan
// order, so results stay bit-for-bit identical to the reference evaluator.
//
// Ownership / invalidation rules:
//   * ScanIndex outlives the PlanContext and never changes; a new scan
//     epoch means a new index and new contexts (services rebuild both per
//     firing).
//   * Only set() mutates the plan; it is the single invalidation point.
//   * begin_round()/commit_round()/rollback_round() bracket one NBO sweep:
//     rollback restores every channel the sweep touched (and re-dirties
//     exactly those terms), which is how TurboCA::run discards a
//     non-improving proposal without rescoring the network.

#include <cstdint>
#include <span>
#include <vector>

#include "core/turboca/turboca.hpp"
#include "flowsim/scan_index.hpp"
#include "obs/audit.hpp"

namespace w11::turboca {

// O(1) membership set over AP indices (the ψ of ACC), epoch-stamped so
// clear() is O(1) — replaces the per-iteration std::set rebuild the old
// NBO group-drain loop paid.
class PsiSet {
 public:
  explicit PsiSet(std::size_t n) : stamp_(n, 0) {}

  void clear() {
    if (++token_ == 0) {  // stamp wrap: reset lazily
      std::fill(stamp_.begin(), stamp_.end(), 0);
      token_ = 1;
    }
  }
  void insert(std::size_t i) { stamp_[i] = token_; }
  void erase(std::size_t i) { stamp_[i] = 0; }
  [[nodiscard]] bool contains(std::size_t i) const {
    return stamp_[i] == token_;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t token_ = 1;
};

class PlanContext {
 public:
  // A candidate assignment being evaluated but not (yet) committed: ACC
  // scores target-moves-to-c by overriding the target's plan entry without
  // touching the context.
  struct TrialMove {
    std::size_t index;
    Channel channel;
    int ordinal;  // channels::ordinal(channel), -1 if non-catalog
  };

  PlanContext(const flowsim::ScanIndex& index, const Params& params,
              const ChannelPlan& initial);

  [[nodiscard]] const flowsim::ScanIndex& index() const { return *index_; }
  [[nodiscard]] const Params& params() const { return params_; }

  [[nodiscard]] const Channel& channel_of(std::size_t i) const {
    return plan_[i];
  }

  // Assign AP i's channel; no-op when unchanged. Marks the mover and every
  // dependent NodeP term dirty, and records the first touch per round for
  // rollback.
  void set(std::size_t i, const Channel& c);

  // log NetP of the current plan: recomputes only dirty terms, then sums
  // all cached terms in scan order (bit-identical to a full rescore).
  [[nodiscard]] double net_p_log();

  // log NodeP of AP i operating on channel c against the current plan,
  // with ψ excluded from contention and an optional uncommitted trial move
  // overriding one AP's planned channel.
  [[nodiscard]] double node_p_log(std::size_t i, const Channel& c,
                                  const PsiSet* psi = nullptr,
                                  const TrialMove* trial = nullptr) const;

  // node_p_log with the §4.4 per-width term breakdown appended to `out`
  // (when non-null). Arithmetic is identical to node_p_log — the audit
  // (DESIGN.md §12) sees exactly the numbers the optimizer used. This stays
  // on the scalar path deliberately; the kernel parity suite
  // (tests/test_score_kernel.cpp) pins it against score_candidates.
  [[nodiscard]] double node_p_log_terms(std::size_t i, const Channel& c,
                                        std::vector<obs::NodePTerm>* out) const;

  // ---- batched SoA scoring kernel (DESIGN.md §14) -----------------------
  // One pass over AP i's ScanIndex score block evaluating log NodeP for
  // EVERY candidate channel at once: the ψ overlay and the plan's contender
  // counts are applied once per sub-channel instead of once per (candidate,
  // width, neighbor) probe. out[k] must equal — bit for bit —
  //   node_p_log(i, candidates(i)[k], psi, &TrialMove{i, cand_k, ord_k})
  // (the self-trial is what ACC passes; it only differs from a plain
  // node_p_log when an AP degenerately reports itself as a neighbor, in
  // which case the kernel falls back to the scalar loop). out.size() must
  // be candidates(i).size().
  void score_candidates(std::size_t i, std::span<double> out,
                        const PsiSet* psi = nullptr) const;

  // The ACC neighbor leg, batched over trial channels: adds
  //   node_p_log(nb, channel_of(nb), psi, &TrialMove{target, cand_k, ord_k})
  // to inout[k] for every candidate k of `target`. The neighbor's base
  // contender counts and per-width log terms are computed once; per
  // candidate the only varying input is whether the target's trial channel
  // overlaps each sub-channel — one mask probe selecting between the
  // with/without-target log term. Bit-identical to the scalar sum.
  void add_neighbor_scores(std::size_t nb, std::size_t target,
                           const PsiSet* psi, std::span<double> inout) const;

  void begin_round();
  void commit_round();
  void rollback_round();

  // The plan as a ChannelPlan map: every indexed AP's dense entry plus any
  // entries of the initial plan whose APs are absent from this epoch.
  [[nodiscard]] ChannelPlan snapshot() const;

 private:
  [[nodiscard]] double channel_metric(std::size_t i, const Channel& c,
                                      int c_ord, ChannelWidth b,
                                      const PsiSet* psi,
                                      const TrialMove* trial,
                                      obs::NodePTerm* detail = nullptr) const;
  void mark_dirty(std::size_t i);

  // Scalar fallback for one candidate slot of the batched kernel (rare
  // paths: non-catalog candidate or plan channel, self-reporting AP).
  [[nodiscard]] double scalar_candidate_score(std::size_t i, std::size_t k,
                                              const PsiSet* psi,
                                              const TrialMove* trial) const;

  const flowsim::ScanIndex* index_;
  Params params_;
  std::vector<Channel> plan_;
  std::vector<int> plan_ord_;
  // Kernel SoA companions, aligned to the index's candidate slots / term
  // arrays: switch penalties depend only on (scan, params, candidate) and
  // effective loads fold the empty-AP rule in — both are plan-invariant, so
  // they are built once here and never touched by set().
  std::vector<double> cand_penalty_;  // per candidate slot
  std::vector<double> term_eff_load_;  // per term, empty_ap_load applied
  ChannelPlan extras_;  // initial-plan entries for APs not in the index
  std::vector<double> term_;
  std::vector<char> dirty_;
  std::vector<std::uint32_t> dirty_list_;
  bool round_active_ = false;
  std::vector<std::pair<std::uint32_t, Channel>> undo_;  // first touches
  std::vector<char> touched_;
  std::vector<std::uint32_t> touched_list_;
};

}  // namespace w11::turboca
