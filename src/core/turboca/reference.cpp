#include "core/turboca/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

// The oracle side of the golden plan-equivalence suite; value-unsafe FP
// breaks the bit-for-bit contract from this end too.
#ifdef __FAST_MATH__
#error "reference.cpp must not be compiled with -ffast-math (determinism)"
#endif

namespace w11::turboca {

namespace {

// The b-wide channel containing `c`'s primary 20 MHz sub-channel, resolved
// by catalog walk exactly as the original planner did.
Channel sub_channel(const Channel& c, ChannelWidth b) {
  if (b == c.width) return c;
  const Channel prim = c.primary20();
  if (b == ChannelWidth::MHz20) return prim;
  for (const Channel& cand : channels::us_catalog(c.band, b)) {
    for (int comp : cand.components())
      if (comp == prim.number) return cand;
  }
  return prim;  // no bonded container exists; degrade to primary
}

const ApScan* find_scan(const std::vector<ApScan>& scans, ApId id) {
  for (const auto& s : scans)
    if (s.id == id) return &s;
  return nullptr;
}

Channel planned_channel(const ApScan& s, const ChannelPlan& plan) {
  const auto it = plan.find(s.id);
  return it != plan.end() ? it->second : s.current;
}

double channel_metric(const Params& params, const ApScan& a, const Channel& c,
                      ChannelWidth b, const std::vector<ApScan>& scans,
                      const ChannelPlan& plan, const std::set<ApId>& ignore) {
  const Channel sub = sub_channel(c, b);

  // External (non-network) utilization on the sub-channel: worst component.
  double ext = 0.0;
  double quality = 1.0;
  int comps = 0;
  for (int comp : sub.components()) {
    const auto u = a.external_util.find(comp);
    if (u != a.external_util.end()) ext = std::max(ext, u->second);
    const auto q = a.quality.find(comp);
    quality += (q != a.quality.end() ? q->second : 1.0);
    ++comps;
  }
  quality = (quality - 1.0) / std::max(comps, 1);

  // Same-network contenders whose planned channel overlaps the sub-channel.
  int contenders = 0;
  for (const NeighborReport& nb : a.neighbors) {
    if (nb.rssi < params.neighbor_rssi_floor) continue;
    if (ignore.contains(nb.id)) continue;  // ψ: presume they will move
    const ApScan* ns = find_scan(scans, nb.id);
    if (ns == nullptr) continue;
    if (planned_channel(*ns, plan).overlaps(sub)) ++contenders;
  }

  const double airtime =
      std::clamp((1.0 - ext) / (1.0 + contenders), 0.0, 1.0);

  double penalty = 0.0;
  if (c != a.current) {
    penalty = params.switch_penalty;
    if (a.band == Band::G2_4) penalty = params.switch_penalty_24ghz;
    if (a.utilization_current > params.high_util_threshold)
      penalty = std::max(penalty, params.switch_penalty_high_util);
    if (!a.has_clients) penalty = 0.0;  // nothing to disrupt
  }

  return static_cast<double>(width_mhz(b)) * (airtime * quality - penalty);
}

std::vector<Channel> candidates_for(const ApScan& a) {
  // §4.5.2: an AP with connected clients must not move to a DFS channel
  // (the CAC would strand them); DFS-incapable hardware never can.
  const bool allow_dfs = a.dfs_capable && !a.has_clients;
  std::vector<Channel> cands =
      channels::candidate_set(a.band, a.max_width, allow_dfs);
  if (std::find(cands.begin(), cands.end(), a.current) == cands.end())
    cands.push_back(a.current);
  return cands;
}

}  // namespace

namespace reference {

double node_p_log(const Params& params, const ApScan& a, const Channel& c,
                  const std::vector<ApScan>& scans, const ChannelPlan& plan,
                  const std::set<ApId>& ignore) {
  double log_p = 0.0;
  for (ChannelWidth b : widths_up_to(c.width)) {
    double load = 0.0;
    for (const auto& [w, l] : a.load_by_width) {
      if (std::min(w, c.width) == b) load += l;
    }
    if (a.total_load() <= 0.0) load = params.empty_ap_load;
    if (load <= 0.0) continue;
    const double metric = channel_metric(params, a, c, b, scans, plan, ignore);
    log_p += load * (metric > 1e-12 ? std::log(metric) : kNodePLogFloor);
  }
  return log_p;
}

double net_p_log(const Params& params, const std::vector<ApScan>& scans,
                 const ChannelPlan& plan) {
  double total = 0.0;
  const std::set<ApId> none;
  for (const ApScan& s : scans)
    total += node_p_log(params, s, planned_channel(s, plan), scans, plan, none);
  return total;
}

Channel acc(const Params& params, const ApScan& target,
            const std::vector<ApScan>& scans, const ChannelPlan& plan,
            const std::set<ApId>& psi) {
  // Only target and its neighbors change NodeP when target moves (§4.4.2).
  std::vector<const ApScan*> affected;
  for (const NeighborReport& nb : target.neighbors) {
    if (psi.contains(nb.id)) continue;
    if (const ApScan* s = find_scan(scans, nb.id)) affected.push_back(s);
  }

  Channel best = target.current;
  double best_score = -std::numeric_limits<double>::infinity();
  ChannelPlan working = plan;
  for (const Channel& c : candidates_for(target)) {
    working[target.id] = c;
    double score = node_p_log(params, target, c, scans, working, psi);
    for (const ApScan* nb : affected)
      score += node_p_log(params, *nb, planned_channel(*nb, working), scans,
                          working, psi);
    // Deterministic tie-break preferring the incumbent channel (stability).
    if (score > best_score + 1e-9 ||
        (std::abs(score - best_score) <= 1e-9 && c == target.current)) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

}  // namespace reference

ChannelPlan ReferenceEvaluator::nbo(const std::vector<ApScan>& scans,
                                    const ChannelPlan& current,
                                    int hop_limit) {
  // Algorithm 1, original shape — including the per-iteration ψ rebuild.
  ChannelPlan pcp = current;

  std::vector<ApId> s_set;  // S <- V
  for (const auto& s : scans) s_set.push_back(s.id);

  std::unordered_map<ApId, const ApScan*> by_id;
  for (const auto& s : scans) by_id[s.id] = &s;

  while (!s_set.empty()) {
    const std::size_t pick = rng_.index(s_set.size());
    const ApId n = s_set[pick];

    const std::set<ApId> hood = hop_neighborhood(scans, n, hop_limit);
    std::vector<ApId> group;
    for (ApId id : s_set)
      if (hood.contains(id)) group.push_back(id);

    std::erase_if(s_set, [&](ApId id) { return hood.contains(id); });

    while (!group.empty()) {
      std::size_t mi;
      if (params_.load_weighted_pick) {
        std::vector<double> weights;
        weights.reserve(group.size());
        for (ApId id : group) {
          const ApScan* s = by_id.at(id);
          weights.push_back(0.05 + s->total_load());
        }
        mi = rng_.weighted_index(weights);
      } else {
        mi = rng_.index(group.size());
      }
      const ApId m = group[mi];
      group.erase(group.begin() + static_cast<std::ptrdiff_t>(mi));

      const std::set<ApId> psi(group.begin(), group.end());
      const ApScan* ms = by_id.at(m);
      pcp[m] = reference::acc(params_, *ms, scans, pcp, psi);
    }
  }
  return pcp;
}

TurboCA::RunResult ReferenceEvaluator::run(const std::vector<ApScan>& scans,
                                           const ChannelPlan& current,
                                           int hop_limit) {
  const int n = static_cast<int>(scans.size());
  const int rounds = std::clamp(n / params_.runs_divisor, params_.runs_min,
                                params_.runs_max);

  TurboCA::RunResult result;
  result.plan = current;
  result.netp_log = reference::net_p_log(params_, scans, current);

  for (int r = 0; r < rounds; ++r) {
    const ChannelPlan proposal = nbo(scans, result.plan, hop_limit);
    const double netp = reference::net_p_log(params_, scans, proposal);
    if (netp > result.netp_log + 1e-9) {
      result.plan = proposal;
      result.netp_log = netp;
      result.improved = true;
    }
  }
  return result;
}

}  // namespace w11::turboca
