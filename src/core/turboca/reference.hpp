#pragma once
// ReferenceEvaluator: the pre-ScanIndex planner evaluation path, preserved
// verbatim for equivalence testing.
//
// This is the original TurboCA implementation — linear find_scan per
// neighbor lookup, catalog walks per sub-channel resolution, a full
// ChannelPlan copy per ACC call and a full rescore per NetP — kept as the
// behavioural oracle: the golden-determinism tests assert that the
// PlanContext/ScanIndex engine reproduces it bit-for-bit, and the perf
// benches measure the speedup against it. Do not optimize this file.

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/turboca/turboca.hpp"
#include "flowsim/scan.hpp"
#include "phy/channel.hpp"

namespace w11::turboca::reference {

// Free-function forms of the reference metrics (no state beyond Params) —
// also the implementation behind TurboCA's scan-vector node_p_log, which
// must keep working for APs that are not part of any index.
[[nodiscard]] double node_p_log(const Params& params, const ApScan& a,
                                const Channel& c,
                                const std::vector<ApScan>& scans,
                                const ChannelPlan& plan,
                                const std::set<ApId>& ignore);
[[nodiscard]] double net_p_log(const Params& params,
                               const std::vector<ApScan>& scans,
                               const ChannelPlan& plan);
[[nodiscard]] Channel acc(const Params& params, const ApScan& target,
                          const std::vector<ApScan>& scans,
                          const ChannelPlan& plan, const std::set<ApId>& psi);

}  // namespace w11::turboca::reference

namespace w11::turboca {

class ReferenceEvaluator {
 public:
  ReferenceEvaluator(Params params, Rng rng)
      : params_(params), rng_(std::move(rng)) {}

  [[nodiscard]] double node_p_log(const ApScan& a, const Channel& c,
                                  const std::vector<ApScan>& scans,
                                  const ChannelPlan& plan,
                                  const std::set<ApId>& ignore) const {
    return reference::node_p_log(params_, a, c, scans, plan, ignore);
  }

  [[nodiscard]] double net_p_log(const std::vector<ApScan>& scans,
                                 const ChannelPlan& plan) const {
    return reference::net_p_log(params_, scans, plan);
  }

  [[nodiscard]] Channel acc(const ApScan& target,
                            const std::vector<ApScan>& scans,
                            const ChannelPlan& plan,
                            const std::set<ApId>& psi) const {
    return reference::acc(params_, target, scans, plan, psi);
  }

  [[nodiscard]] ChannelPlan nbo(const std::vector<ApScan>& scans,
                                const ChannelPlan& current, int hop_limit);

  [[nodiscard]] TurboCA::RunResult run(const std::vector<ApScan>& scans,
                                       const ChannelPlan& current,
                                       int hop_limit);

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
  mutable Rng rng_;
};

}  // namespace w11::turboca
