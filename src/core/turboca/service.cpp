#include "core/turboca/service.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/turboca/plan_context.hpp"
#include "flowsim/scan_index.hpp"

namespace w11::turboca {

namespace {

// Drop scans whose snapshot is older than `max_age` relative to `now`.
// Unstamped scans (taken_at == 0, e.g. hand-built or recorded data) are
// always kept. Returns how many entries were removed.
std::size_t drop_stale_scans(std::vector<ApScan>& scans, Time now,
                             Time max_age) {
  if (max_age == time::kForever) return 0;
  const std::size_t before = scans.size();
  std::erase_if(scans, [&](const ApScan& s) {
    return s.taken_at != Time{} && now - s.taken_at > max_age;
  });
  return before - scans.size();
}

}  // namespace

TurboCaService::TurboCaService(Params params, Schedule schedule,
                               NetworkHooks hooks, Rng rng)
    : engine_(params, std::move(rng)), schedule_(schedule),
      hooks_(std::move(hooks)) {
  W11_CHECK(hooks_.scan && hooks_.current_plan && hooks_.apply_plan);
}

void TurboCaService::advance_to(Time now) {
  // Clock weirdness (NTP steps, a restarted poller replaying old
  // timestamps): a rewound clock is counted and ignored. Anchors only ever
  // move forward, so fire-once semantics hold across the rewind.
  if (now < now_) {
    ++stats_.clock_anomalies;
    return;
  }
  now_ = now;
  // Slowest tier first; each tier's run already ends in i = 0, so a firing
  // of a slower tier also satisfies the faster ones. A skipped firing
  // (degraded scans) leaves the anchors untouched: the tier retries at the
  // next poll tick instead of silently losing a whole period.
  if (now - last_slow_ >= schedule_.slow) {
    if (run_now({2, 1, 0})) {
      last_slow_ = last_medium_ = last_fast_ = now;
      replan_pending_ = false;  // every tier ends with i = 0
    }
    return;
  }
  if (now - last_medium_ >= schedule_.medium) {
    if (run_now({1, 0})) {
      last_medium_ = last_fast_ = now;
      replan_pending_ = false;
    }
    return;
  }
  if (now - last_fast_ >= schedule_.fast) {
    if (run_now({0})) {
      last_fast_ = now;
      replan_pending_ = false;
    }
    return;
  }
  // Out-of-band request (post-revert): one forced i = 0 pass, off-cadence.
  // Clearing the flag only on success keeps it sticky across degraded-scan
  // skips; the fast anchor also advances so the regular firing does not
  // immediately duplicate the forced one.
  if (replan_pending_) {
    if (run_now({0})) {
      last_fast_ = now;
      replan_pending_ = false;
      ++stats_.requested_replans;
    }
  }
}

bool TurboCaService::run_now(const std::vector<int>& levels) {
  std::vector<ApScan> scans = hooks_.scan();
  if (scans.empty()) {
    ++stats_.empty_scan_skips;
    return false;
  }
  // A partially-fresh census still plans for the fresh APs; only an
  // all-stale census (a wedged collector replaying its cache) skips.
  drop_stale_scans(scans, now_, schedule_.max_scan_age);
  if (scans.empty()) {
    ++stats_.stale_scan_skips;
    return false;
  }
  // One index per firing, shared across all hop tiers of the schedule; the
  // service-lifetime stats cache carries unchanged spectrum rows between
  // firings.
  const flowsim::ScanIndex index(std::move(scans),
                                 engine_.params().neighbor_rssi_floor,
                                 /*pool=*/nullptr, &stats_cache_);
  ChannelPlan plan = hooks_.current_plan();
  bool improved = false;
  double netp = 0.0;
  for (int level : levels) {
    const TurboCA::RunResult r = engine_.run(index, plan, level);
    plan = r.plan;
    netp = r.netp_log;
    improved = improved || r.improved;
  }
  ++stats_.runs;
  stats_.last_netp_log = netp;
  if (improved) {
    const ChannelPlan before = hooks_.current_plan();
    int switches = 0;
    for (const auto& [id, ch] : plan) {
      const auto it = before.find(id);
      if (it == before.end() || it->second != ch) ++switches;
    }
    stats_.channel_switches += switches;
    ++stats_.plans_applied;
    hooks_.apply_plan(plan);
  }
  return true;
}

ReservedCaService::ReservedCaService(Config cfg, Params params,
                                     NetworkHooks hooks, Rng rng)
    : cfg_(cfg), engine_(params, std::move(rng)), hooks_(std::move(hooks)) {
  W11_CHECK(hooks_.scan && hooks_.current_plan && hooks_.apply_plan);
}

void ReservedCaService::advance_to(Time now) {
  if (now < now_) {
    ++stats_.clock_anomalies;
    return;
  }
  now_ = now;
  if (now - last_run_ < cfg_.period) return;
  if (run_now()) last_run_ = now;
}

bool ReservedCaService::run_now() {
  std::vector<ApScan> scans = hooks_.scan();
  if (scans.empty()) {
    ++stats_.empty_scan_skips;
    return false;
  }
  drop_stale_scans(scans, now_, cfg_.max_scan_age);
  if (scans.empty()) {
    ++stats_.stale_scan_skips;
    return false;
  }
  const flowsim::ScanIndex index(std::move(scans),
                                 engine_.params().neighbor_rssi_floor,
                                 /*pool=*/nullptr, &stats_cache_);
  PlanContext ctx(index, engine_.params(), hooks_.current_plan());

  // Sequential sweep: each AP takes its isolated best channel given
  // everyone else's *current* choice — the locally-optimal trap of §4.3.2.
  // Each score is evaluated against the plan *before* the AP's own trial
  // (no TrialMove), matching the isolated-decision model.
  for (std::size_t i = 0; i < index.size(); ++i) {
    const ApScan& s = index.scan(i);
    // Keep the width fixed: candidates at exactly the configured width
    // (or 20 MHz on 2.4 GHz). The clamp only shapes candidate generation;
    // NodeP never reads max_width.
    const ChannelWidth fixed_width = std::min(s.max_width, cfg_.fixed_width);
    Channel best = s.current;
    double best_score = -std::numeric_limits<double>::infinity();
    const bool allow_dfs = s.dfs_capable && !s.has_clients;
    std::vector<Channel> cands;
    if (s.band == Band::G2_4) {
      cands = channels::us_catalog(Band::G2_4, ChannelWidth::MHz20);
    } else {
      cands = channels::us_catalog(Band::G5, fixed_width);
      std::erase_if(cands, [&](const Channel& c) {
        return !allow_dfs && c.is_dfs();
      });
      if (cands.empty())
        cands = channels::candidate_set(Band::G5, fixed_width, allow_dfs);
    }
    if (std::find(cands.begin(), cands.end(), s.current) == cands.end())
      cands.push_back(s.current);
    for (const Channel& c : cands) {
      const double score = ctx.node_p_log(i, c);
      if (score > best_score + 1e-9) {
        best_score = score;
        best = c;
      }
    }
    ctx.set(i, best);
  }
  const ChannelPlan plan = ctx.snapshot();

  const ChannelPlan before = hooks_.current_plan();
  int switches = 0;
  for (const auto& [id, ch] : plan) {
    const auto it = before.find(id);
    if (it == before.end() || it->second != ch) ++switches;
  }
  stats_.channel_switches += switches;
  ++stats_.runs;
  hooks_.apply_plan(plan);
  return true;
}

}  // namespace w11::turboca
