#pragma once
// Channel-assignment services: TurboCA's run-time schedule (§4.4.4) and the
// ReservedCA baseline it replaced (§4.6.1).
//
// Both are driven by a coarse wall-clock tick (the experiment harness calls
// advance_to(t) as its timeline progresses) and consume fresh ApScans at
// each firing. TurboCA fires NBO(i=0) every 15 minutes, NBO(i=1)+NBO(i=0)
// every 3 hours, and NBO(i=2,1,0) daily. ReservedCA re-plans every 5 hours
// by sequentially assigning each AP its isolated best channel at a fixed
// width.

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/turboca/turboca.hpp"
#include "flowsim/scan.hpp"
#include "flowsim/scan_index.hpp"

namespace w11::turboca {

// Supplies scans / current plan and applies accepted plans. Decouples the
// services from flowsim so they can run against recorded data too.
struct NetworkHooks {
  std::function<std::vector<ApScan>()> scan;
  std::function<ChannelPlan()> current_plan;
  std::function<void(const ChannelPlan&)> apply_plan;
};

class TurboCaService {
 public:
  struct Schedule {
    Time fast = time::minutes(15);   // NBO(0)
    Time medium = time::hours(3);    // NBO(1), NBO(0)
    Time slow = time::hours(24);     // NBO(2), NBO(1), NBO(0)
    // Scans older than this (by their taken_at stamp, relative to the
    // advance_to clock) are rejected: re-planning a live network from a
    // wedged collector's cache is worse than skipping the firing. Unstamped
    // scans (taken_at == 0) are always accepted.
    Time max_scan_age = time::kForever;
  };

  struct Stats {
    int runs = 0;
    int plans_applied = 0;
    int channel_switches = 0;
    double last_netp_log = 0.0;
    // Graceful-degradation counters: firings skipped because the scan feed
    // was down (empty) or wedged (stale), and advance_to calls observed
    // with a non-monotonic clock.
    int empty_scan_skips = 0;
    int stale_scan_skips = 0;
    int clock_anomalies = 0;
    int requested_replans = 0;  // request_replan() firings actually run
  };

  TurboCaService(Params params, Schedule schedule, NetworkHooks hooks, Rng rng);

  // Advance the service's clock, firing every due schedule tier. Tiers due
  // at the same instant run slowest-first so each run ends with i = 0
  // (§4.4.4: "All schedules end with i = 0"). Time moving backwards is
  // tolerated: the call is counted and ignored, and fire-once semantics
  // hold — a rewound clock never re-fires a tier already run.
  void advance_to(Time now);

  // Run one full pass with hop limits `levels` (e.g. {2,1,0}) immediately.
  // Returns false if the firing was skipped (empty or stale scans).
  bool run_now(const std::vector<int>& levels);

  // Ask for an out-of-band NBO(0) pass at the next advance_to tick,
  // regardless of tier anchors — the rollout coordinator calls this after
  // an auto-revert so the planner reacts to the regression (or the radar
  // strike behind it) now instead of up to 15 minutes later. Sticky until
  // a firing actually runs (degraded scans keep it pending).
  void request_replan() { replan_pending_ = true; }
  [[nodiscard]] bool replan_pending() const { return replan_pending_; }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  // The underlying optimizer — exposed so callers can attach observability
  // sinks (obs::PlanAudit via set_audit) or a TaskPool to the engine the
  // service fires.
  [[nodiscard]] TurboCA& engine() { return engine_; }

  // Cross-epoch spectrum-aggregate reuse: the service owns one cache for
  // its lifetime and threads it through every per-firing ScanIndex build,
  // so APs whose spectrum content is unchanged between firings skip the
  // aggregate recompute. hits/misses live in its Stats.
  [[nodiscard]] const flowsim::ScanStatsCache& scan_stats_cache() const {
    return stats_cache_;
  }

 private:
  TurboCA engine_;
  Schedule schedule_;
  NetworkHooks hooks_;
  flowsim::ScanStatsCache stats_cache_;
  Time last_fast_{};
  Time last_medium_{};
  Time last_slow_{};
  Time now_{};  // clock high-water mark from advance_to
  bool replan_pending_ = false;
  Stats stats_;
};

// ReservedCA (§4.6.1): sequential, per-AP isolated maximization at a fixed
// channel width, every 5 hours. Its key limitations — no neighbor-aware
// NetP, no width adaptation, slow cadence — are exactly what TurboCA fixes.
class ReservedCaService {
 public:
  struct Config {
    Time period = time::hours(5);
    ChannelWidth fixed_width = ChannelWidth::MHz40;
    Time max_scan_age = time::kForever;  // see TurboCaService::Schedule
  };

  struct Stats {
    int runs = 0;
    int channel_switches = 0;
    int empty_scan_skips = 0;
    int stale_scan_skips = 0;
    int clock_anomalies = 0;
  };

  ReservedCaService(Config cfg, Params params, NetworkHooks hooks, Rng rng);

  // Tolerates a non-monotonic clock like TurboCaService::advance_to.
  void advance_to(Time now);
  // Returns false if the firing was skipped (empty or stale scans).
  bool run_now();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const flowsim::ScanStatsCache& scan_stats_cache() const {
    return stats_cache_;
  }

 private:
  Config cfg_;
  TurboCA engine_;  // reuses NodeP for the isolated per-AP score
  NetworkHooks hooks_;
  flowsim::ScanStatsCache stats_cache_;
  Time last_run_{};
  Time now_{};
  Stats stats_;
};

}  // namespace w11::turboca
