#include "core/turboca/turboca.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <unordered_map>

#include "common/check.hpp"

namespace w11::turboca {

namespace {

constexpr double kLogFloor = -40.0;  // log of an effectively-zero metric

// The b-wide channel containing `c`'s primary 20 MHz sub-channel.
Channel sub_channel(const Channel& c, ChannelWidth b) {
  if (b == c.width) return c;
  const Channel prim = c.primary20();
  if (b == ChannelWidth::MHz20) return prim;
  for (const Channel& cand : channels::us_catalog(c.band, b)) {
    for (int comp : cand.components())
      if (comp == prim.number) return cand;
  }
  return prim;  // no bonded container exists; degrade to primary
}

const ApScan* find_scan(const std::vector<ApScan>& scans, ApId id) {
  for (const auto& s : scans)
    if (s.id == id) return &s;
  return nullptr;
}

Channel planned_channel(const ApScan& s, const ChannelPlan& plan) {
  const auto it = plan.find(s.id);
  return it != plan.end() ? it->second : s.current;
}

}  // namespace

TurboCA::TurboCA(Params params, Rng rng)
    : params_(params), rng_(std::move(rng)) {}

double TurboCA::channel_metric(const ApScan& a, const Channel& c,
                               ChannelWidth b, const std::vector<ApScan>& scans,
                               const ChannelPlan& plan,
                               const std::set<ApId>& ignore) const {
  const Channel sub = sub_channel(c, b);

  // External (non-network) utilization on the sub-channel: worst component.
  double ext = 0.0;
  double quality = 1.0;
  int comps = 0;
  for (int comp : sub.components()) {
    const auto u = a.external_util.find(comp);
    if (u != a.external_util.end()) ext = std::max(ext, u->second);
    const auto q = a.quality.find(comp);
    quality += (q != a.quality.end() ? q->second : 1.0);
    ++comps;
  }
  quality = (quality - 1.0) / std::max(comps, 1);

  // Same-network contenders whose planned channel overlaps the sub-channel.
  int contenders = 0;
  for (const NeighborReport& nb : a.neighbors) {
    if (nb.rssi < params_.neighbor_rssi_floor) continue;
    if (ignore.contains(nb.id)) continue;  // ψ: presume they will move
    const ApScan* ns = find_scan(scans, nb.id);
    if (ns == nullptr) continue;
    if (planned_channel(*ns, plan).overlaps(sub)) ++contenders;
  }

  const double airtime =
      std::clamp((1.0 - ext) / (1.0 + contenders), 0.0, 1.0);

  double penalty = 0.0;
  if (c != a.current) {
    penalty = params_.switch_penalty;
    if (a.band == Band::G2_4) penalty = params_.switch_penalty_24ghz;
    if (a.utilization_current > params_.high_util_threshold)
      penalty = std::max(penalty, params_.switch_penalty_high_util);
    if (!a.has_clients) penalty = 0.0;  // nothing to disrupt
  }

  // capacity(c,b) scales with bandwidth (achievable rate ∝ width); keeping
  // the metric rate-like (able to exceed 1) is what makes wider channels
  // win when airtime is available and lose when contention eats the gain.
  return static_cast<double>(width_mhz(b)) * (airtime * quality - penalty);
}

double TurboCA::node_p_log(const ApScan& a, const Channel& c,
                           const std::vector<ApScan>& scans,
                           const ChannelPlan& plan,
                           const std::set<ApId>& ignore) const {
  double log_p = 0.0;
  for (ChannelWidth b : widths_up_to(c.width)) {
    // load(b): clients whose *usable* width at this assignment is b, i.e.
    // min(client max width, cw). Clients wider than the candidate channel
    // still load its top layer — narrowing an AP never makes its clients
    // disappear from the metric. Clientless APs get a small uniform load
    // so they weakly prefer clean (and wide) channels.
    double load = 0.0;
    for (const auto& [w, l] : a.load_by_width) {
      if (std::min(w, c.width) == b) load += l;
    }
    if (a.total_load() <= 0.0) load = params_.empty_ap_load;
    if (load <= 0.0) continue;
    const double metric = channel_metric(a, c, b, scans, plan, ignore);
    log_p += load * (metric > 1e-12 ? std::log(metric) : kLogFloor);
  }
  return log_p;
}

double TurboCA::net_p_log(const std::vector<ApScan>& scans,
                          const ChannelPlan& plan) const {
  double total = 0.0;
  const std::set<ApId> none;
  for (const ApScan& s : scans)
    total += node_p_log(s, planned_channel(s, plan), scans, plan, none);
  return total;
}

std::vector<Channel> TurboCA::candidates_for(const ApScan& a) const {
  // §4.5.2: an AP with connected clients must not move to a DFS channel
  // (the CAC would strand them); DFS-incapable hardware never can.
  const bool allow_dfs = a.dfs_capable && !a.has_clients;
  std::vector<Channel> cands =
      channels::candidate_set(a.band, a.max_width, allow_dfs);
  // The current channel is always a candidate (e.g. the AP already sits on
  // a DFS channel it may keep).
  if (std::find(cands.begin(), cands.end(), a.current) == cands.end())
    cands.push_back(a.current);
  return cands;
}

Channel TurboCA::acc(const ApScan& target, const std::vector<ApScan>& scans,
                     const ChannelPlan& plan, const std::set<ApId>& psi) const {
  // Only target and its neighbors change NodeP when target moves (§4.4.2).
  std::vector<const ApScan*> affected;
  for (const NeighborReport& nb : target.neighbors) {
    if (psi.contains(nb.id)) continue;
    if (const ApScan* s = find_scan(scans, nb.id)) affected.push_back(s);
  }

  Channel best = target.current;
  double best_score = -std::numeric_limits<double>::infinity();
  ChannelPlan working = plan;
  for (const Channel& c : candidates_for(target)) {
    working[target.id] = c;
    double score = node_p_log(target, c, scans, working, psi);
    for (const ApScan* nb : affected)
      score +=
          node_p_log(*nb, planned_channel(*nb, working), scans, working, psi);
    // Deterministic tie-break preferring the incumbent channel (stability).
    if (score > best_score + 1e-9 ||
        (std::abs(score - best_score) <= 1e-9 && c == target.current)) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

std::set<ApId> hop_neighborhood(const std::vector<ApScan>& scans, ApId from,
                                int hops) {
  std::unordered_map<ApId, const ApScan*> by_id;
  for (const auto& s : scans) by_id[s.id] = &s;

  std::set<ApId> seen{from};
  std::queue<std::pair<ApId, int>> frontier;
  frontier.push({from, 0});
  while (!frontier.empty()) {
    const auto [id, depth] = frontier.front();
    frontier.pop();
    if (depth >= hops) continue;
    const auto it = by_id.find(id);
    if (it == by_id.end()) continue;
    for (const NeighborReport& nb : it->second->neighbors) {
      if (seen.insert(nb.id).second) frontier.push({nb.id, depth + 1});
    }
  }
  return seen;
}

ChannelPlan TurboCA::nbo(const std::vector<ApScan>& scans,
                         const ChannelPlan& current, int hop_limit) {
  // Algorithm 1. PCP starts from the *current* assignment so that
  // planned_channel() resolves unassigned APs to their live channel; the
  // explicit PCP-membership set tracks which APs have been (re)assigned.
  ChannelPlan pcp = current;

  std::vector<ApId> s_set;  // S <- V
  for (const auto& s : scans) s_set.push_back(s.id);

  std::unordered_map<ApId, const ApScan*> by_id;
  for (const auto& s : scans) by_id[s.id] = &s;

  while (!s_set.empty()) {
    // line 4: random unassigned AP n.
    const std::size_t pick = rng_.index(s_set.size());
    const ApId n = s_set[pick];

    // line 5: S_group = n + APs within i hops, still in S.
    const std::set<ApId> hood = hop_neighborhood(scans, n, hop_limit);
    std::vector<ApId> group;
    for (ApId id : s_set)
      if (hood.contains(id)) group.push_back(id);

    // line 6: S -= S_group.
    std::erase_if(s_set, [&](ApId id) { return hood.contains(id); });

    // lines 7-11: drain the group, load-weighted (§4.4.3: heavily loaded
    // APs pick earlier and get first choice of clean channels).
    while (!group.empty()) {
      std::size_t mi;
      if (params_.load_weighted_pick) {
        std::vector<double> weights;
        weights.reserve(group.size());
        for (ApId id : group) {
          const ApScan* s = by_id.at(id);
          weights.push_back(0.05 + s->total_load());
        }
        mi = rng_.weighted_index(weights);
      } else {
        mi = rng_.index(group.size());
      }
      const ApId m = group[mi];
      group.erase(group.begin() + static_cast<std::ptrdiff_t>(mi));

      const std::set<ApId> psi(group.begin(), group.end());
      const ApScan* ms = by_id.at(m);
      pcp[m] = acc(*ms, scans, pcp, psi);
    }
  }
  return pcp;
}

TurboCA::RunResult TurboCA::run(const std::vector<ApScan>& scans,
                                const ChannelPlan& current, int hop_limit) {
  const int n = static_cast<int>(scans.size());
  const int rounds = std::clamp(n / params_.runs_divisor, params_.runs_min,
                                params_.runs_max);

  RunResult result;
  result.plan = current;
  result.netp_log = net_p_log(scans, current);

  for (int r = 0; r < rounds; ++r) {
    // §4.4.4: whenever a run improves NetP, the proposal becomes the
    // baseline for following rounds.
    const ChannelPlan proposal = nbo(scans, result.plan, hop_limit);
    const double netp = net_p_log(scans, proposal);
    if (netp > result.netp_log + 1e-9) {
      result.plan = proposal;
      result.netp_log = netp;
      result.improved = true;
    }
  }
  return result;
}

}  // namespace w11::turboca
