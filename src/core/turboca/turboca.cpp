#include "core/turboca/turboca.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/check.hpp"
#include "core/turboca/plan_context.hpp"
#include "core/turboca/reference.hpp"

namespace w11::turboca {

TurboCA::TurboCA(Params params, Rng rng)
    : params_(params), rng_(std::move(rng)) {}

Channel TurboCA::acc(const PlanContext& ctx, std::size_t target,
                     const PsiSet& psi) const {
  const flowsim::ScanIndex& index = ctx.index();
  const ApScan& a = index.scan(target);

  // Only target and its neighbors change NodeP when target moves (§4.4.2).
  // Note: the affected list deliberately ignores the contender RSSI floor
  // (a sub-floor neighbor's own term can still shift if it hears us).
  std::vector<std::uint32_t> affected;
  affected.reserve(index.neighbors(target).size());
  for (const flowsim::ScanIndex::Neighbor& nb : index.neighbors(target)) {
    if (psi.contains(nb.index)) continue;
    affected.push_back(nb.index);
  }

  const std::vector<Channel>& cands = index.candidates(target);
  const std::vector<int>& cand_ords = index.candidate_ordinals(target);

  Channel best = a.current;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < cands.size(); ++k) {
    const Channel& c = cands[k];
    // Score the move target→c against the context without committing it.
    const PlanContext::TrialMove trial{target, c, cand_ords[k]};
    double score = ctx.node_p_log(target, c, &psi, &trial);
    for (std::uint32_t nbi : affected) {
      const Channel& nc = nbi == target ? c : ctx.channel_of(nbi);
      score += ctx.node_p_log(nbi, nc, &psi, &trial);
    }
    // Deterministic tie-break preferring the incumbent channel (stability).
    if (score > best_score + 1e-9 ||
        (std::abs(score - best_score) <= 1e-9 && c == a.current)) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

void TurboCA::nbo_sweep(PlanContext& ctx, int hop_limit) {
  // Algorithm 1, applied to `ctx` in place. Draws the exact RNG sequence of
  // the reference NBO so plans stay bit-identical.
  const flowsim::ScanIndex& index = ctx.index();
  const std::size_t n = index.size();

  std::vector<std::uint32_t> s_set(n);  // S <- V
  for (std::size_t i = 0; i < n; ++i) s_set[i] = static_cast<std::uint32_t>(i);

  // Token-stamped BFS scratch (one allocation per sweep, O(1) reset).
  std::vector<std::uint32_t> visited(n, 0);
  std::uint32_t token = 0;
  std::vector<std::pair<std::uint32_t, int>> frontier;

  PsiSet psi(n);
  std::vector<std::uint32_t> group;
  std::vector<double> weights;

  while (!s_set.empty()) {
    // line 4: random unassigned AP n.
    const std::size_t pick = rng_.index(s_set.size());
    const std::uint32_t seed = s_set[pick];

    // line 5: hop-limited neighborhood of the seed (BFS over the epoch's
    // adjacency; absent neighbor ids can never enter S, so skipping them
    // here matches the id-based reference BFS).
    ++token;
    frontier.clear();
    visited[seed] = token;
    frontier.emplace_back(seed, 0);
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const auto [v, depth] = frontier[head];
      if (depth >= hop_limit) continue;
      for (const flowsim::ScanIndex::Neighbor& nb : index.neighbors(v)) {
        if (visited[nb.index] != token) {
          visited[nb.index] = token;
          frontier.emplace_back(nb.index, depth + 1);
        }
      }
    }

    // line 5/6: S_group = S ∩ hood, S -= S_group.
    group.clear();
    for (std::uint32_t i : s_set)
      if (visited[i] == token) group.push_back(i);
    std::erase_if(s_set, [&](std::uint32_t i) { return visited[i] == token; });

    // lines 7-11: drain the group, load-weighted (§4.4.3: heavily loaded
    // APs pick earlier and get first choice of clean channels). ψ is the
    // set of still-undrained group members; it shrinks by one erase per
    // pick instead of being rebuilt per iteration.
    psi.clear();
    for (std::uint32_t i : group) psi.insert(i);
    while (!group.empty()) {
      std::size_t mi;
      if (params_.load_weighted_pick) {
        weights.clear();
        weights.reserve(group.size());
        for (std::uint32_t i : group)
          weights.push_back(0.05 + index.total_load(i));
        mi = rng_.weighted_index(weights);
      } else {
        mi = rng_.index(group.size());
      }
      const std::uint32_t m = group[mi];
      group.erase(group.begin() + static_cast<std::ptrdiff_t>(mi));
      psi.erase(m);

      ctx.set(m, acc(ctx, m, psi));
    }
  }
}

ChannelPlan TurboCA::nbo(const flowsim::ScanIndex& index,
                         const ChannelPlan& current, int hop_limit) {
  PlanContext ctx(index, params_, current);
  nbo_sweep(ctx, hop_limit);
  return ctx.snapshot();
}

TurboCA::RunResult TurboCA::run(const flowsim::ScanIndex& index,
                                const ChannelPlan& current, int hop_limit) {
  const int n = static_cast<int>(index.size());
  const int rounds = std::clamp(n / params_.runs_divisor, params_.runs_min,
                                params_.runs_max);

  PlanContext ctx(index, params_, current);

  RunResult result;
  result.plan = current;
  result.netp_log = ctx.net_p_log();

  for (int r = 0; r < rounds; ++r) {
    // §4.4.4: whenever a round improves NetP, the proposal becomes the
    // baseline for following rounds; otherwise it is rolled back in place
    // (only the channels the sweep touched are restored and rescored).
    ctx.begin_round();
    nbo_sweep(ctx, hop_limit);
    const double netp = ctx.net_p_log();
    if (netp > result.netp_log + 1e-9) {
      ctx.commit_round();
      result.netp_log = netp;
      result.improved = true;
    } else {
      ctx.rollback_round();
    }
  }
  if (result.improved) result.plan = ctx.snapshot();
  return result;
}

// ---- scan-vector compatibility layer --------------------------------------

double TurboCA::node_p_log(const ApScan& a, const Channel& c,
                           const std::vector<ApScan>& scans,
                           const ChannelPlan& plan,
                           const std::set<ApId>& ignore) const {
  // `a` need not be (or match) any scan in `scans`, so this cannot go
  // through an index; the reference formula handles the general case.
  return reference::node_p_log(params_, a, c, scans, plan, ignore);
}

double TurboCA::net_p_log(const std::vector<ApScan>& scans,
                          const ChannelPlan& plan) const {
  const flowsim::ScanIndex index(scans, params_.neighbor_rssi_floor);
  PlanContext ctx(index, params_, plan);
  return ctx.net_p_log();
}

Channel TurboCA::acc(const ApScan& target, const std::vector<ApScan>& scans,
                     const ChannelPlan& plan, const std::set<ApId>& psi) const {
  const flowsim::ScanIndex index(scans, params_.neighbor_rssi_floor);
  const auto ti = index.find(target.id);
  W11_CHECK(ti.has_value());
  const PlanContext ctx(index, params_, plan);
  PsiSet pset(index.size());
  for (ApId id : psi) {
    // ψ ids absent from the epoch can never be contenders anyway.
    if (const auto i = index.find(id)) pset.insert(*i);
  }
  return acc(ctx, *ti, pset);
}

ChannelPlan TurboCA::nbo(const std::vector<ApScan>& scans,
                         const ChannelPlan& current, int hop_limit) {
  const flowsim::ScanIndex index(scans, params_.neighbor_rssi_floor);
  return nbo(index, current, hop_limit);
}

TurboCA::RunResult TurboCA::run(const std::vector<ApScan>& scans,
                                const ChannelPlan& current, int hop_limit) {
  const flowsim::ScanIndex index(scans, params_.neighbor_rssi_floor);
  return run(index, current, hop_limit);
}

std::set<ApId> hop_neighborhood(const std::vector<ApScan>& scans, ApId from,
                                int hops) {
  std::unordered_map<ApId, const ApScan*> by_id;
  for (const auto& s : scans) by_id[s.id] = &s;

  std::set<ApId> seen{from};
  std::queue<std::pair<ApId, int>> frontier;
  frontier.push({from, 0});
  while (!frontier.empty()) {
    const auto [id, depth] = frontier.front();
    frontier.pop();
    if (depth >= hops) continue;
    const auto it = by_id.find(id);
    if (it == by_id.end()) continue;
    for (const NeighborReport& nb : it->second->neighbors) {
      if (seen.insert(nb.id).second) frontier.push({nb.id, depth + 1});
    }
  }
  return seen;
}

}  // namespace w11::turboca
