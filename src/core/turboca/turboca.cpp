#include "core/turboca/turboca.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <queue>
#include <span>
#include <unordered_map>

#include "common/check.hpp"
#include "core/turboca/plan_context.hpp"
#include "core/turboca/reference.hpp"
#include "obs/audit.hpp"
#include "obs/gate.hpp"

namespace w11::turboca {

TurboCA::TurboCA(Params params, Rng rng)
    : params_(params), rng_(std::move(rng)) {}

Channel TurboCA::acc(const PlanContext& ctx, std::size_t target,
                     const PsiSet& psi) const {
  const flowsim::ScanIndex& index = ctx.index();
  const ApScan& a = index.scan(target);
  const std::vector<Channel>& cands = index.candidates(target);

  // All (channel, width) trials in two batched kernel passes (DESIGN.md
  // §14): the target's own term for every candidate at once, then one pass
  // per affected neighbor adding its term under each trial. Only target and
  // its neighbors change NodeP when target moves (§4.4.2); the affected
  // sweep deliberately ignores the contender RSSI floor (a sub-floor
  // neighbor's own term can still shift if it hears us). The batched sums
  // accumulate in the exact order the old per-candidate scalar loop did
  // (own term first, then neighbors in scan-report order), so scores — and
  // the selection below — are bit-identical to it. The kernel replaced the
  // candidate-level pool fan-out: one serial pass is now cheaper than
  // dispatch was.
  std::array<double, channels::kMaxCatalogOrdinals + 1> scores_buf;
  W11_CHECK(cands.size() <= scores_buf.size());
  const std::span<double> scores(scores_buf.data(), cands.size());
  ctx.score_candidates(target, scores, &psi);
  for (const flowsim::ScanIndex::Neighbor& nb : index.neighbors(target)) {
    if (psi.contains(nb.index)) continue;
    ctx.add_neighbor_scores(nb.index, target, &psi, scores);
  }

  Channel best = a.current;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < cands.size(); ++k) {
    // Deterministic tie-break preferring the incumbent channel (stability).
    if (scores[k] > best_score + 1e-9 ||
        (std::abs(scores[k] - best_score) <= 1e-9 && cands[k] == a.current)) {
      best_score = scores[k];
      best = cands[k];
    }
  }
  return best;
}

void TurboCA::plan_sweep(const flowsim::ScanIndex& index, int hop_limit,
                         std::vector<std::uint32_t>& order,
                         std::vector<std::uint32_t>& group_end) {
  // Algorithm 1's control flow, drawing the exact RNG sequence of the
  // reference NBO. Group membership and drain order depend only on the
  // epoch's adjacency and loads — never on the evolving plan — so the whole
  // schedule can be fixed up front and the ACC decisions executed after.
  const std::size_t n = index.size();
  order.clear();
  order.reserve(n);
  group_end.assign(n, 0);

  std::vector<std::uint32_t> s_set(n);  // S <- V
  for (std::size_t i = 0; i < n; ++i) s_set[i] = static_cast<std::uint32_t>(i);

  // Token-stamped BFS scratch (one allocation per sweep, O(1) reset).
  std::vector<std::uint32_t> visited(n, 0);
  std::uint32_t token = 0;
  std::vector<std::pair<std::uint32_t, int>> frontier;

  std::vector<std::uint32_t> group;
  std::vector<double> weights;

  while (!s_set.empty()) {
    // line 4: random unassigned AP n.
    const std::size_t pick = rng_.index(s_set.size());
    const std::uint32_t seed = s_set[pick];

    // line 5: hop-limited neighborhood of the seed (BFS over the epoch's
    // adjacency; absent neighbor ids can never enter S, so skipping them
    // here matches the id-based reference BFS).
    ++token;
    frontier.clear();
    visited[seed] = token;
    frontier.emplace_back(seed, 0);
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const auto [v, depth] = frontier[head];
      if (depth >= hop_limit) continue;
      for (const flowsim::ScanIndex::Neighbor& nb : index.neighbors(v)) {
        if (visited[nb.index] != token) {
          visited[nb.index] = token;
          frontier.emplace_back(nb.index, depth + 1);
        }
      }
    }

    // line 5/6: S_group = S ∩ hood, S -= S_group.
    group.clear();
    for (std::uint32_t i : s_set)
      if (visited[i] == token) group.push_back(i);
    std::erase_if(s_set, [&](std::uint32_t i) { return visited[i] == token; });

    // lines 7-11: fix the group's drain order, load-weighted (§4.4.3:
    // heavily loaded APs pick earlier and get first choice of clean
    // channels — the weights come from the static per-epoch loads).
    const std::size_t gb = order.size();
    while (!group.empty()) {
      std::size_t mi;
      if (params_.load_weighted_pick) {
        weights.clear();
        weights.reserve(group.size());
        for (std::uint32_t i : group)
          weights.push_back(0.05 + index.total_load(i));
        mi = rng_.weighted_index(weights);
      } else {
        mi = rng_.index(group.size());
      }
      order.push_back(group[mi]);
      group.erase(group.begin() + static_cast<std::ptrdiff_t>(mi));
    }
    for (std::size_t t = gb; t < order.size(); ++t)
      group_end[t] = static_cast<std::uint32_t>(order.size());
  }
}

void TurboCA::nbo_sweep(PlanContext& ctx, int hop_limit) {
  // Algorithm 1, applied to `ctx` in place: fix the drain schedule first
  // (all of the sweep's RNG), then execute the ACC decisions — serially, or
  // speculatively batched across the pool. Both executions are bit-for-bit
  // identical to the reference sweep.
  const flowsim::ScanIndex& index = ctx.index();
  const std::size_t n = index.size();
  if (n == 0) return;

  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> group_end;
  plan_sweep(index, hop_limit, order, group_end);

  exec::TaskPool& tp = pool();
  if (tp.workers() == 1 || exec::TaskPool::in_task() || n < 8) {
    // Serial execution. ψ (the still-undrained members of the current
    // group) starts as the whole group and shrinks by one erase per pick.
    PsiSet psi(n);
    std::size_t group_until = 0;
    for (std::size_t t = 0; t < order.size(); ++t) {
      if (t == group_until) {
        psi.clear();
        group_until = group_end[t];
        for (std::size_t u = t; u < group_until; ++u) psi.insert(order[u]);
      }
      psi.erase(order[t]);
      const Channel from = ctx.channel_of(order[t]);
      const Channel to = acc(ctx, order[t], psi);
      ctx.set(order[t], to);
      note_pick(ctx, order[t], t, from, to);
    }
    sweep_stats_.picks += order.size();
    sweep_stats_.batches += order.size();
    sweep_stats_.max_batch = std::max<std::uint64_t>(sweep_stats_.max_batch,
                                                     order.empty() ? 0 : 1);
    ++sweep_stats_.serial_sweeps;
    return;
  }

  // Speculative batched execution. A pick's ACC reads plan entries only
  // within two forward hops of its AP: its own term reads its contender
  // neighbors' channels, and each affected neighbor's term reads that
  // neighbor's contenders. So consecutive picks whose two-hop read sets
  // avoid every earlier in-batch mover see exactly the pre-batch plan the
  // serial execution would show them — score them concurrently, commit in
  // drain order, and the result is identical at any worker count.
  std::vector<char> write_mark(n, 0);
  auto reads_a_mover = [&](std::uint32_t ap) {
    if (write_mark[ap]) return true;
    for (const flowsim::ScanIndex::Neighbor& nb1 : index.neighbors(ap)) {
      if (write_mark[nb1.index]) return true;
      for (const flowsim::ScanIndex::Neighbor& nb2 :
           index.neighbors(nb1.index))
        if (write_mark[nb2.index]) return true;
    }
    return false;
  };

  // Per-lane ψ scratch: lane indices are unique within one parallel_for,
  // and this scratch never outlives the sweep.
  std::vector<PsiSet> psi_scratch;
  psi_scratch.reserve(static_cast<std::size_t>(tp.workers()));
  for (int l = 0; l < tp.workers(); ++l) psi_scratch.emplace_back(n);

  std::vector<Channel> results(n);
  std::size_t t = 0;
  while (t < order.size()) {
    std::size_t bend = t;
    do {
      write_mark[order[bend]] = 1;
      ++bend;
    } while (bend < order.size() && !reads_a_mover(order[bend]));

    tp.parallel_for(bend - t, [&](std::size_t k, int lane) {
      const std::size_t p = t + k;
      PsiSet& psi = psi_scratch[static_cast<std::size_t>(lane)];
      psi.clear();
      for (std::size_t u = p + 1; u < group_end[p]; ++u) psi.insert(order[u]);
      results[p] = acc(ctx, order[p], psi);
    });

    for (std::size_t p = t; p < bend; ++p) {
      const Channel from = ctx.channel_of(order[p]);
      ctx.set(order[p], results[p]);
      note_pick(ctx, order[p], p, from, results[p]);
      write_mark[order[p]] = 0;
    }
    W11_TRACE_EVENT(::w11::obs::TraceKind::kNboBatch, sweep_stats_.batches,
                    bend - t, 0);
    ++sweep_stats_.batches;
    sweep_stats_.max_batch =
        std::max<std::uint64_t>(sweep_stats_.max_batch, bend - t);
    t = bend;
  }
  sweep_stats_.picks += order.size();
}

void TurboCA::note_pick(const PlanContext& ctx, std::uint32_t ap,
                        std::size_t pick_pos, const Channel& from,
                        const Channel& to) {
  const bool switched = !(from == to);
  ++round_picks_;
  if (switched) ++round_switches_;
  // Ordinal: cumulative pick count (sweep_stats_.picks is bumped after the
  // sweep, so adding the in-sweep position keeps it strictly increasing).
  W11_TRACE_EVENT(::w11::obs::TraceKind::kNboPick,
                  sweep_stats_.picks + pick_pos, ap, switched ? 1 : 0);
  if (audit_ == nullptr) return;
  // Read-only re-evaluation at the serial commit point: both executors
  // reach here with the identical post-commit context, so the recorded
  // numbers are the same at any worker count.
  obs::PickRecord r;
  r.round = audit_round_;
  r.pick = static_cast<std::uint32_t>(pick_pos);
  r.ap_index = ap;
  r.ap_id = ctx.index().scan(ap).id.value();
  r.from = from.to_string();
  r.to = to.to_string();
  r.switched = switched;
  r.node_p_to = ctx.node_p_log_terms(ap, to, &r.terms_to);
  if (switched) {
    r.node_p_from = ctx.node_p_log_terms(ap, from, &r.terms_from);
  } else {
    r.node_p_from = r.node_p_to;
    r.terms_from = r.terms_to;
  }
  audit_->add_pick(std::move(r));
}

ChannelPlan TurboCA::nbo(const flowsim::ScanIndex& index,
                         const ChannelPlan& current, int hop_limit) {
  PlanContext ctx(index, params_, current);
  nbo_sweep(ctx, hop_limit);
  return ctx.snapshot();
}

TurboCA::RunResult TurboCA::run(const flowsim::ScanIndex& index,
                                const ChannelPlan& current, int hop_limit) {
  const int n = static_cast<int>(index.size());
  const int rounds = std::clamp(n / params_.runs_divisor, params_.runs_min,
                                params_.runs_max);

  PlanContext ctx(index, params_, current);

  RunResult result;
  result.plan = current;
  result.netp_log = ctx.net_p_log();

  for (int r = 0; r < rounds; ++r) {
    // §4.4.4: whenever a round improves NetP, the proposal becomes the
    // baseline for following rounds; otherwise it is rolled back in place
    // (only the channels the sweep touched are restored and rescored).
    audit_round_ = static_cast<std::uint32_t>(r);
    round_picks_ = 0;
    round_switches_ = 0;
    const double netp_before = result.netp_log;
    ctx.begin_round();
    nbo_sweep(ctx, hop_limit);
    const double netp = ctx.net_p_log();
    const bool accepted = netp > result.netp_log + 1e-9;
    if (accepted) {
      ctx.commit_round();
      result.netp_log = netp;
      result.improved = true;
    } else {
      ctx.rollback_round();
    }
    W11_TRACE_EVENT(::w11::obs::TraceKind::kNboRound,
                    static_cast<std::uint64_t>(r), round_picks_,
                    accepted ? 1 : 0);
    if (audit_ != nullptr) {
      obs::RoundRecord rr;
      rr.round = static_cast<std::uint32_t>(r);
      rr.hop_limit = hop_limit;
      rr.netp_before = netp_before;
      rr.netp_after = netp;
      rr.accepted = accepted;
      rr.picks = round_picks_;
      rr.switches = round_switches_;
      audit_->add_round(rr);
    }
  }
  if (result.improved) result.plan = ctx.snapshot();
  return result;
}

// ---- scan-vector compatibility layer --------------------------------------

double TurboCA::node_p_log(const ApScan& a, const Channel& c,
                           const std::vector<ApScan>& scans,
                           const ChannelPlan& plan,
                           const std::set<ApId>& ignore) const {
  // `a` need not be (or match) any scan in `scans`, so this cannot go
  // through an index; the reference formula handles the general case.
  return reference::node_p_log(params_, a, c, scans, plan, ignore);
}

double TurboCA::net_p_log(const std::vector<ApScan>& scans,
                          const ChannelPlan& plan) const {
  const flowsim::ScanIndex index(scans, params_.neighbor_rssi_floor);
  PlanContext ctx(index, params_, plan);
  return ctx.net_p_log();
}

Channel TurboCA::acc(const ApScan& target, const std::vector<ApScan>& scans,
                     const ChannelPlan& plan, const std::set<ApId>& psi) const {
  const flowsim::ScanIndex index(scans, params_.neighbor_rssi_floor);
  const auto ti = index.find(target.id);
  W11_CHECK(ti.has_value());
  const PlanContext ctx(index, params_, plan);
  PsiSet pset(index.size());
  for (ApId id : psi) {
    // ψ ids absent from the epoch can never be contenders anyway.
    if (const auto i = index.find(id)) pset.insert(*i);
  }
  return acc(ctx, *ti, pset);
}

ChannelPlan TurboCA::nbo(const std::vector<ApScan>& scans,
                         const ChannelPlan& current, int hop_limit) {
  const flowsim::ScanIndex index(scans, params_.neighbor_rssi_floor);
  return nbo(index, current, hop_limit);
}

TurboCA::RunResult TurboCA::run(const std::vector<ApScan>& scans,
                                const ChannelPlan& current, int hop_limit) {
  const flowsim::ScanIndex index(scans, params_.neighbor_rssi_floor);
  return run(index, current, hop_limit);
}

std::set<ApId> hop_neighborhood(const std::vector<ApScan>& scans, ApId from,
                                int hops) {
  std::unordered_map<ApId, const ApScan*> by_id;
  for (const auto& s : scans) by_id[s.id] = &s;

  std::set<ApId> seen{from};
  std::queue<std::pair<ApId, int>> frontier;
  frontier.push({from, 0});
  while (!frontier.empty()) {
    const auto [id, depth] = frontier.front();
    frontier.pop();
    if (depth >= hops) continue;
    const auto it = by_id.find(id);
    if (it == by_id.end()) continue;
    for (const NeighborReport& nb : it->second->neighbors) {
      if (seen.insert(nb.id).second) frontier.push({nb.id, depth + 1});
    }
  }
  return seen;
}

}  // namespace w11::turboca
