#pragma once
// TurboCA: channel-bonding-aware automatic channel assignment (§4.4).
//
// Metrics (log-space to stay numerically sane at 600 APs):
//
//   NodeP(c, cw) = Π_{b=20MHz}^{cw} channel_metric(c, b)^load(b)
//   channel_metric(c, b) = airtime(c, b) × capacity(c, b) − penalty_c
//   NetP = Π_{v ∈ V} NodeP(v)
//
//   airtime(c,b)  — expected airtime share on the b-wide sub-channel of c:
//                   the spectrum left over by external utilization, divided
//                   among this AP and same-network neighbors whose (planned)
//                   channel overlaps it.
//   capacity(c,b) — channel quality (non-WiFi interference) × width scaling.
//   penalty_c     — client disruption cost of switching to c; large on
//                   2.4 GHz and under >90 % utilization (§4.5.1); a DFS
//                   channel is excluded outright while clients are
//                   associated (§4.5.2).
//
// Optimizer: ACC(v, ψ) maximizes NetP over v's candidate channels while
// ignoring the APs in ψ; NBO (Algorithm 1) sweeps the network in random
// groups bounded by hop limit i; the service layer (service.hpp) runs the
// i = 0/1/2 cadence.
//
// Evaluation runs on the PlanContext layer (plan_context.hpp): the caller
// builds one flowsim::ScanIndex per scan epoch and every ACC/NBO/run call
// evaluates NodeP terms incrementally against it. The pre-index path is
// preserved in reference.hpp (ReferenceEvaluator) as the behavioural
// oracle; the two are bit-for-bit equivalent (tests/test_planner_golden).

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "exec/task_pool.hpp"
#include "flowsim/scan.hpp"
#include "flowsim/scan_index.hpp"
#include "phy/channel.hpp"

namespace w11::obs {
class PlanAudit;
}

namespace w11::turboca {

class PlanContext;
class PsiSet;

// log of an effectively-zero metric (shared by the indexed and reference
// evaluation paths — the two must stay bit-identical).
inline constexpr double kNodePLogFloor = -40.0;

struct Params {
  // Penalty subtracted from channel_metric when c differs from the current
  // assignment (client disruption on switch).
  double switch_penalty = 0.08;
  // §4.5.1: larger penalty on 2.4 GHz radios (poor client CSA support) and
  // when current-channel utilization exceeds the threshold.
  double switch_penalty_24ghz = 0.35;
  double high_util_threshold = 0.90;
  double switch_penalty_high_util = 0.30;
  // Baseline load for client-less APs so they weakly prefer clean channels.
  double empty_ap_load = 0.1;
  // Neighbors weaker than this RSSI are not counted as contenders.
  Dbm neighbor_rssi_floor = -85.0;
  // NBO rounds per schedule run: clamp(n_aps / divisor, min, max).
  int runs_divisor = 25;
  int runs_min = 3;
  int runs_max = 12;
  // Algorithm 1 line 8: weight the group-drain pick by AP load so heavily
  // loaded APs choose channels first (ablation D3 sets this false).
  bool load_weighted_pick = true;
};

class TurboCA {
 public:
  TurboCA(Params params, Rng rng);

  struct RunResult {
    ChannelPlan plan;
    double netp_log = 0.0;
    bool improved = false;
  };

  // Observability for the speculative NBO executor (DESIGN.md §10): how
  // much interleaving-safe parallelism the sweeps found. Cumulative; a
  // serial sweep counts as one single-pick batch per AP.
  struct SweepStats {
    std::uint64_t picks = 0;    // ACC decisions executed
    std::uint64_t batches = 0;  // speculative score-then-commit groups
    std::uint64_t max_batch = 0;
    std::uint64_t serial_sweeps = 0;  // sweeps that took the serial path
  };

  // Pool the planner fans work out on: ACC candidate trials, speculative
  // NBO proposal scoring. nullptr (default) = exec::TaskPool::global().
  // Plans are bit-for-bit identical at every worker count.
  void set_pool(exec::TaskPool* pool) { pool_ = pool; }
  [[nodiscard]] const SweepStats& sweep_stats() const { return sweep_stats_; }

  // Decision audit sink (DESIGN.md §12): when attached, every committed ACC
  // pick records its NodeP term breakdown (chosen vs. incumbent channel) and
  // every NBO round its NetP before/after. Recording is read-only — it
  // re-evaluates already-decided channels at serial commit points, draws no
  // RNG, and the resulting plans are bit-identical with or without it.
  void set_audit(obs::PlanAudit* audit) { audit_ = audit; }
  [[nodiscard]] obs::PlanAudit* audit() const { return audit_; }

  // ---- indexed API (the production path) --------------------------------
  // Callers build one flowsim::ScanIndex per scan epoch (with this
  // engine's neighbor_rssi_floor) and share it across calls.

  // ACC(v, ψ): best channel for the AP at `target` maximizing NetP over it
  // and its neighbors, ignoring ψ (§4.4.2). Evaluates trial moves against
  // `ctx` without mutating it.
  [[nodiscard]] Channel acc(const PlanContext& ctx, std::size_t target,
                            const PsiSet& psi) const;

  // NBO (Algorithm 1): one full sweep with hop limit `i`. `current`
  // supplies channels for APs not yet assigned in the proposed plan.
  [[nodiscard]] ChannelPlan nbo(const flowsim::ScanIndex& index,
                                const ChannelPlan& current, int hop_limit);

  // Multiple NBO rounds at the given hop limit; returns the best plan found
  // if it beats `current`, else `current` (§4.4.4). Non-improving rounds
  // are rolled back in place — only touched NodeP terms are rescored.
  [[nodiscard]] RunResult run(const flowsim::ScanIndex& index,
                              const ChannelPlan& current, int hop_limit);

  // ---- scan-vector API --------------------------------------------------
  // Compatibility overloads for callers holding raw scans; each call
  // builds a throwaway index (acc/nbo/run) or evaluates the reference
  // formula directly (node_p_log, which must accept an `a` that is not —
  // or differs from — any indexed scan).

  [[nodiscard]] double node_p_log(const ApScan& a, const Channel& c,
                                  const std::vector<ApScan>& scans,
                                  const ChannelPlan& plan,
                                  const std::set<ApId>& ignore) const;

  [[nodiscard]] double net_p_log(const std::vector<ApScan>& scans,
                                 const ChannelPlan& plan) const;

  // `target` must be an element of `scans` (matched by id).
  [[nodiscard]] Channel acc(const ApScan& target,
                            const std::vector<ApScan>& scans,
                            const ChannelPlan& plan,
                            const std::set<ApId>& psi) const;

  [[nodiscard]] ChannelPlan nbo(const std::vector<ApScan>& scans,
                                const ChannelPlan& current, int hop_limit);

  [[nodiscard]] RunResult run(const std::vector<ApScan>& scans,
                              const ChannelPlan& current, int hop_limit);

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  // One NBO sweep applied to `ctx` in place.
  void nbo_sweep(PlanContext& ctx, int hop_limit);

  // Per-commit bookkeeping (trace event, switch counting, audit record).
  // Called at the serial commit point of both sweep executors, after
  // ctx.set(); `from` is the channel the AP held before the pick.
  void note_pick(const PlanContext& ctx, std::uint32_t ap,
                 std::size_t pick_pos, const Channel& from, const Channel& to);

  // Algorithm 1's control flow without the ACC calls: draws the exact RNG
  // sequence of the reference sweep and emits the drain schedule.
  // order[t] is the t-th AP to pick a channel; group_end[t] is the end
  // (exclusive, as a position in `order`) of t's group, so ψ at pick t is
  // order[t+1 .. group_end[t]). Groups occupy contiguous position runs.
  void plan_sweep(const flowsim::ScanIndex& index, int hop_limit,
                  std::vector<std::uint32_t>& order,
                  std::vector<std::uint32_t>& group_end);

  [[nodiscard]] exec::TaskPool& pool() const {
    return pool_ ? *pool_ : exec::TaskPool::global();
  }

  Params params_;
  mutable Rng rng_;
  exec::TaskPool* pool_ = nullptr;
  SweepStats sweep_stats_;
  obs::PlanAudit* audit_ = nullptr;
  std::uint32_t audit_round_ = 0;   // NBO round within the current run()
  std::uint32_t round_picks_ = 0;   // picks committed in the current round
  std::uint32_t round_switches_ = 0;
};

// Hop-limited neighborhood over the scan graph: ids within `hops` of `from`
// (BFS on neighbor reports), including `from` itself.
[[nodiscard]] std::set<ApId> hop_neighborhood(const std::vector<ApScan>& scans,
                                              ApId from, int hops);

}  // namespace w11::turboca
