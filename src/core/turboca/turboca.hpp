#pragma once
// TurboCA: channel-bonding-aware automatic channel assignment (§4.4).
//
// Metrics (log-space to stay numerically sane at 600 APs):
//
//   NodeP(c, cw) = Π_{b=20MHz}^{cw} channel_metric(c, b)^load(b)
//   channel_metric(c, b) = airtime(c, b) × capacity(c, b) − penalty_c
//   NetP = Π_{v ∈ V} NodeP(v)
//
//   airtime(c,b)  — expected airtime share on the b-wide sub-channel of c:
//                   the spectrum left over by external utilization, divided
//                   among this AP and same-network neighbors whose (planned)
//                   channel overlaps it.
//   capacity(c,b) — channel quality (non-WiFi interference) × width scaling.
//   penalty_c     — client disruption cost of switching to c; large on
//                   2.4 GHz and under >90 % utilization (§4.5.1); a DFS
//                   channel is excluded outright while clients are
//                   associated (§4.5.2).
//
// Optimizer: ACC(v, ψ) maximizes NetP over v's candidate channels while
// ignoring the APs in ψ; NBO (Algorithm 1) sweeps the network in random
// groups bounded by hop limit i; the service layer (service.hpp) runs the
// i = 0/1/2 cadence.

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "flowsim/scan.hpp"
#include "phy/channel.hpp"

namespace w11::turboca {

struct Params {
  // Penalty subtracted from channel_metric when c differs from the current
  // assignment (client disruption on switch).
  double switch_penalty = 0.08;
  // §4.5.1: larger penalty on 2.4 GHz radios (poor client CSA support) and
  // when current-channel utilization exceeds the threshold.
  double switch_penalty_24ghz = 0.35;
  double high_util_threshold = 0.90;
  double switch_penalty_high_util = 0.30;
  // Baseline load for client-less APs so they weakly prefer clean channels.
  double empty_ap_load = 0.1;
  // Neighbors weaker than this RSSI are not counted as contenders.
  Dbm neighbor_rssi_floor = -85.0;
  // NBO rounds per schedule run: clamp(n_aps / divisor, min, max).
  int runs_divisor = 25;
  int runs_min = 3;
  int runs_max = 12;
  // Algorithm 1 line 8: weight the group-drain pick by AP load so heavily
  // loaded APs choose channels first (ablation D3 sets this false).
  bool load_weighted_pick = true;
};

class TurboCA {
 public:
  TurboCA(Params params, Rng rng);

  // log NodeP of AP `a` operating on channel `c`, with neighbor channels
  // resolved from `plan` (falling back to their scan's current channel) and
  // the APs in `ignore` excluded from contention counting (the ψ of ACC).
  [[nodiscard]] double node_p_log(const ApScan& a, const Channel& c,
                                  const std::vector<ApScan>& scans,
                                  const ChannelPlan& plan,
                                  const std::set<ApId>& ignore) const;

  // log NetP of a complete plan.
  [[nodiscard]] double net_p_log(const std::vector<ApScan>& scans,
                                 const ChannelPlan& plan) const;

  // ACC(v, ψ): best channel for `target` maximizing NetP over target and
  // its neighbors, ignoring ψ (§4.4.2).
  [[nodiscard]] Channel acc(const ApScan& target,
                            const std::vector<ApScan>& scans,
                            const ChannelPlan& plan,
                            const std::set<ApId>& psi) const;

  // NBO (Algorithm 1): one full sweep with hop limit `i`. `current` supplies
  // channels for APs not yet assigned in the proposed plan.
  [[nodiscard]] ChannelPlan nbo(const std::vector<ApScan>& scans,
                                const ChannelPlan& current, int hop_limit);

  // Multiple NBO rounds at the given hop limit; returns the best plan found
  // if it beats `current`, else `current` (§4.4.4).
  struct RunResult {
    ChannelPlan plan;
    double netp_log = 0.0;
    bool improved = false;
  };
  [[nodiscard]] RunResult run(const std::vector<ApScan>& scans,
                              const ChannelPlan& current, int hop_limit);

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  [[nodiscard]] double channel_metric(const ApScan& a, const Channel& c,
                                      ChannelWidth b,
                                      const std::vector<ApScan>& scans,
                                      const ChannelPlan& plan,
                                      const std::set<ApId>& ignore) const;
  [[nodiscard]] std::vector<Channel> candidates_for(const ApScan& a) const;

  Params params_;
  mutable Rng rng_;
};

// Hop-limited neighborhood over the scan graph: ids within `hops` of `from`
// (BFS on neighbor reports), including `from` itself.
[[nodiscard]] std::set<ApId> hop_neighborhood(const std::vector<ApScan>& scans,
                                              ApId from, int hops);

}  // namespace w11::turboca
