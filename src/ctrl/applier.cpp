#include "ctrl/applier.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "ctrl/control_channel.hpp"
#include "obs/gate.hpp"

namespace w11::ctrl {

Time backoff_delay(const Backoff& b, std::uint32_t ap, int attempt,
                   const exec::ShardRng& shards) {
  W11_CHECK(attempt >= 2);  // attempt 1 is the initial send, not a retry
  double delay_ns = static_cast<double>(b.initial.ns());
  for (int i = 2; i < attempt; ++i) {
    delay_ns *= b.multiplier;
    if (delay_ns >= static_cast<double>(b.cap.ns())) break;
  }
  delay_ns = std::min(delay_ns, static_cast<double>(b.cap.ns()));
  if (b.jitter_frac > 0.0) {
    // One independent stream per (AP, attempt): the derivation is
    // Rng::fork(stream_id), so the jitter sequence for an AP is fixed by
    // (root seed, AP) alone — independent of interleaving or worker count.
    Rng rng = shards.rng_for((static_cast<std::uint64_t>(ap) << 32) |
                             static_cast<std::uint32_t>(attempt));
    delay_ns *= rng.uniform(1.0 - b.jitter_frac, 1.0 + b.jitter_frac);
  }
  return time::nanos(static_cast<std::int64_t>(delay_ns));
}

PlanApplier::PlanApplier(Simulator& sim, ControlChannel& channel,
                         Backoff backoff, Hooks hooks, std::uint64_t seed)
    : sim_(sim), channel_(channel), backoff_(backoff),
      hooks_(std::move(hooks)), shards_(seed) {
  W11_CHECK(hooks_.apply != nullptr);
  W11_CHECK(backoff_.multiplier >= 1.0);
  W11_CHECK(backoff_.jitter_frac >= 0.0 && backoff_.jitter_frac < 1.0);
  channel_.set_reconnect_listener(
      [this](std::uint32_t ap) { on_reconnect(ap); });
}

void PlanApplier::begin_wave(std::vector<Target> targets,
                             std::uint64_t version,
                             std::function<void()> on_done) {
  W11_CHECK_MSG(active_ == 0, "previous wave still has non-terminal APs");
  ++gen_;
  ++stats_.waves;
  version_ = version;
  tasks_.clear();
  task_of_ap_.clear();
  wave_applied_ = 0;
  wave_exhausted_ = 0;
  on_done_ = std::move(on_done);

  tasks_.reserve(targets.size());
  for (const Target& t : targets) {
    W11_CHECK_MSG(!task_of_ap_.contains(t.ap), "duplicate AP in wave");
    task_of_ap_[t.ap] = tasks_.size();
    Task task;
    task.ap = t.ap;
    task.target = t.channel;
    task.started = sim_.now();
    tasks_.push_back(std::move(task));
  }
  active_ = tasks_.size();
  for (std::size_t i = 0; i < tasks_.size(); ++i) attempt(i);
  check_done();  // an empty wave completes immediately
}

void PlanApplier::attempt(std::size_t idx) {
  Task& t = tasks_[idx];
  t.state = ApState::kInFlight;
  ++t.attempts;
  ++stats_.commands_sent;
  if (t.attempts > 1) ++stats_.retries;
  W11_COUNT("ctrl.commands_sent");
  const std::uint64_t gen = gen_;
  channel_.send(t.ap, [this, gen, idx] { on_ack(gen, idx); });
  t.timer.cancel();
  t.timer = sim_.schedule_after(backoff_.ack_timeout,
                                [this, gen, idx] { on_timeout(gen, idx); });
}

void PlanApplier::on_ack(std::uint64_t gen, std::size_t idx) {
  if (gen != gen_) {
    // The wave moved on (cancelled or superseded) while this command was in
    // flight — e.g. the AP sat out a partition. Reject: the AP keeps its
    // channel rather than applying a stale plan version.
    ++stats_.stale_rejected;
    W11_COUNT("ctrl.stale_rejected");
    return;
  }
  Task& t = tasks_[idx];
  if (t.state == ApState::kApplied || t.state == ApState::kCancelled ||
      t.state == ApState::kExhausted)
    return;  // duplicate ack for an already-terminal task
  ++stats_.acks;
  t.timer.cancel();
  const bool switched = hooks_.apply(t.ap, t.target);
  if (!switched) ++stats_.noops;
  ++stats_.applied;
  ++wave_applied_;
  W11_COUNT("ctrl.applies");
  W11_HISTOGRAM("ctrl.apply_latency_ms", (sim_.now() - t.started).ms());
  W11_TRACE_EVENT(::w11::obs::TraceKind::kRolloutApply, t.ap,
                  static_cast<std::uint64_t>(t.attempts), switched ? 1 : 0);
  finish(t, ApState::kApplied);
}

void PlanApplier::on_timeout(std::uint64_t gen, std::size_t idx) {
  if (gen != gen_) return;
  Task& t = tasks_[idx];
  if (t.state != ApState::kInFlight) return;
  ++stats_.timeouts;
  W11_COUNT("ctrl.timeouts");
  if (backoff_.max_attempts > 0 && t.attempts >= backoff_.max_attempts) {
    ++stats_.exhausted;
    ++wave_exhausted_;
    finish(t, ApState::kExhausted);
    return;
  }
  t.state = ApState::kBackoff;
  const Time delay = backoff_delay(backoff_, t.ap, t.attempts + 1, shards_);
  t.timer = sim_.schedule_after(delay, [this, gen, idx] {
    if (gen != gen_) return;
    if (tasks_[idx].state == ApState::kBackoff) attempt(idx);
  });
}

void PlanApplier::on_reconnect(std::uint32_t ap) {
  // Apply-on-reconnect: an AP coming back from a partition should not wait
  // out a (possibly near-cap) backoff — re-send its pending command now.
  const auto it = task_of_ap_.find(ap);
  if (it == task_of_ap_.end()) return;
  Task& t = tasks_[it->second];
  if (t.state != ApState::kBackoff) return;
  t.timer.cancel();
  ++stats_.reconnect_kicks;
  W11_COUNT("ctrl.reconnect_kicks");
  attempt(it->second);
}

void PlanApplier::finish(Task& t, ApState terminal) {
  t.timer.cancel();
  t.state = terminal;
  W11_CHECK(active_ > 0);
  --active_;
  check_done();
}

void PlanApplier::check_done() {
  if (active_ != 0 || !on_done_) return;
  // Fire via the simulator so completion ordering is deterministic and the
  // callback never re-enters the coordinator inside an applier frame.
  sim_.schedule_after(Time{0}, [fn = std::move(on_done_)] { fn(); });
  on_done_ = nullptr;
}

void PlanApplier::cancel_wave() {
  on_done_ = nullptr;
  ++gen_;  // voids every in-flight ack and pending timer of this wave
  for (Task& t : tasks_) {
    if (t.state == ApState::kApplied || t.state == ApState::kCancelled ||
        t.state == ApState::kExhausted)
      continue;
    t.timer.cancel();
    t.state = ApState::kCancelled;
    ++stats_.cancelled;
    W11_CHECK(active_ > 0);
    --active_;
  }
}

void PlanApplier::cancel_ap(std::uint32_t ap) {
  const auto it = task_of_ap_.find(ap);
  if (it == task_of_ap_.end()) return;
  Task& t = tasks_[it->second];
  if (t.state == ApState::kApplied || t.state == ApState::kCancelled ||
      t.state == ApState::kExhausted)
    return;
  ++stats_.cancelled;
  finish(t, ApState::kCancelled);
}

std::vector<std::uint32_t> PlanApplier::applied_aps() const {
  std::vector<std::uint32_t> out;
  for (const Task& t : tasks_)
    if (t.state == ApState::kApplied) out.push_back(t.ap);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace w11::ctrl
