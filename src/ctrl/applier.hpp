#pragma once
// PlanApplier: delivers one wave of per-AP channel-switch commands over the
// lossy control channel and drives each AP to a terminal state.
//
// Per-AP state machine:
//
//   kInFlight --ack--> kApplied                  (terminal)
//      |  ^
//   timeout |  retry (capped exponential backoff, deterministic jitter,
//      v  |   or immediately on the AP's reconnect)
//   kBackoff --attempts exhausted--> kExhausted  (terminal)
//
//   any non-terminal --cancel_wave/cancel_ap--> kCancelled (terminal)
//
// Commands carry the wave's generation; an ack arriving after the wave was
// cancelled (the AP was offline or the command slow while the controller
// moved on — e.g. to a revert) is rejected as stale and the AP does NOT
// switch. That is the staleness-rejection half of apply-on-reconnect: an AP
// reappearing after a partition only ever applies the controller's *current*
// intent, never a superseded plan version.
//
// Backoff jitter is drawn from an exec::ShardRng stream keyed by
// (AP, attempt) — the Rng::fork(stream_id) derivation — so retry timing is a
// pure function of (seed, AP, attempt): no wall clock, byte-identical
// schedules at any worker count (tests/test_exec.cpp pins this).

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "exec/shard_rng.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace w11::ctrl {

class ControlChannel;

struct Backoff {
  Time ack_timeout = time::millis(500);  // per-attempt apply deadline
  Time initial = time::millis(200);      // first retry delay
  double multiplier = 2.0;
  Time cap = time::seconds(10);
  double jitter_frac = 0.25;  // delay scaled by uniform [1-f, 1+f)
  int max_attempts = 0;       // 0 = retry until cancelled (watchdog bounds it)
};

// The retry delay before attempt `attempt` (attempt 2 is the first retry).
// Pure function of (policy, shards.root_seed(), ap, attempt) — exposed so
// the determinism tests exercise the exact production derivation.
[[nodiscard]] Time backoff_delay(const Backoff& b, std::uint32_t ap,
                                 int attempt, const exec::ShardRng& shards);

class PlanApplier {
 public:
  enum class ApState : std::uint8_t {
    kInFlight,
    kBackoff,
    kApplied,    // terminal: AP acked, hook ran
    kExhausted,  // terminal: max_attempts hit
    kCancelled,  // terminal: wave cancelled / AP pulled from the wave
  };

  struct Target {
    std::uint32_t ap = 0;
    Channel channel;
  };

  struct Hooks {
    // Perform the switch on the AP (fires at ack time). Returns whether the
    // channel actually changed.
    std::function<bool(std::uint32_t ap, const Channel& c)> apply;
  };

  struct Stats {
    std::uint64_t waves = 0;
    std::uint64_t commands_sent = 0;
    std::uint64_t acks = 0;
    std::uint64_t applied = 0;   // targets that reached kApplied
    std::uint64_t noops = 0;     // acked commands that changed nothing
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t stale_rejected = 0;   // acks for a cancelled generation
    std::uint64_t reconnect_kicks = 0;  // backoffs cut short by reconnect
    std::uint64_t exhausted = 0;
    std::uint64_t cancelled = 0;
  };

  PlanApplier(Simulator& sim, ControlChannel& channel, Backoff backoff,
              Hooks hooks, std::uint64_t seed);

  // Start applying `targets` (all APs must be distinct) as plan `version`.
  // `on_done` fires exactly once — via a scheduled event, never inline —
  // when every target is terminal. Any previous wave must be terminal or
  // cancelled first.
  void begin_wave(std::vector<Target> targets, std::uint64_t version,
                  std::function<void()> on_done);

  // Cancel every non-terminal target; in-flight acks become stale. The
  // pending on_done is dropped (the canceller knows the wave is over).
  void cancel_wave();

  // Pull one AP out of the current wave (radar pinned it elsewhere).
  void cancel_ap(std::uint32_t ap);

  [[nodiscard]] bool wave_active() const { return active_ > 0; }
  [[nodiscard]] std::uint64_t wave_version() const { return version_; }
  // Terminal tallies for the current/last wave.
  [[nodiscard]] int wave_applied() const { return wave_applied_; }
  [[nodiscard]] int wave_exhausted() const { return wave_exhausted_; }
  [[nodiscard]] std::size_t wave_size() const { return tasks_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // APs the current wave has driven to kApplied (ascending AP order).
  [[nodiscard]] std::vector<std::uint32_t> applied_aps() const;

 private:
  struct Task {
    std::uint32_t ap = 0;
    Channel target;
    ApState state = ApState::kInFlight;
    int attempts = 0;
    Time started{};
    EventHandle timer;  // ack timeout (kInFlight) or retry (kBackoff)
  };

  void attempt(std::size_t idx);
  void on_ack(std::uint64_t gen, std::size_t idx);
  void on_timeout(std::uint64_t gen, std::size_t idx);
  void on_reconnect(std::uint32_t ap);
  void finish(Task& t, ApState terminal);
  void check_done();

  Simulator& sim_;
  ControlChannel& channel_;
  Backoff backoff_;
  Hooks hooks_;
  exec::ShardRng shards_;

  std::uint64_t gen_ = 0;      // wave generation; stale acks check this
  std::uint64_t version_ = 0;  // plan version the wave carries
  std::vector<Task> tasks_;
  std::unordered_map<std::uint32_t, std::size_t> task_of_ap_;
  std::size_t active_ = 0;  // non-terminal tasks
  int wave_applied_ = 0;
  int wave_exhausted_ = 0;
  std::function<void()> on_done_;
  Stats stats_;
};

}  // namespace w11::ctrl
