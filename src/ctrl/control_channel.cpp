#include "ctrl/control_channel.hpp"

#include "common/check.hpp"

namespace w11::ctrl {

ControlChannel::ControlChannel(Simulator& sim, Config cfg, std::uint64_t seed,
                               int n_aps)
    : sim_(sim), cfg_(cfg), shards_(seed),
      online_(static_cast<std::size_t>(n_aps), true),
      send_seq_(static_cast<std::size_t>(n_aps), 0) {
  W11_CHECK(n_aps > 0);
  W11_CHECK(cfg_.loss >= 0.0 && cfg_.loss < 1.0);
  W11_CHECK(cfg_.delay >= Time{0} && cfg_.jitter >= Time{0});
}

bool ControlChannel::send(std::uint32_t ap, std::function<void()> on_delivered) {
  W11_CHECK(ap < online_.size());
  ++stats_.sent;
  if (!online_[ap]) {
    ++stats_.dropped_offline;
    return false;
  }
  // One independent stream per (AP, send). The stream id packs the AP into
  // the high bits so distinct APs can never collide within 2^32 sends.
  Rng rng = shards_.rng_for((static_cast<std::uint64_t>(ap) << 32) |
                            send_seq_[ap]++);
  if (cfg_.loss > 0.0 && rng.bernoulli(cfg_.loss)) {
    ++stats_.lost;
    return false;
  }
  Time delay = cfg_.delay;
  if (cfg_.jitter > Time{0})
    delay += time::nanos(rng.uniform_int(0, cfg_.jitter.ns() - 1));
  sim_.schedule_after(delay, [this, cb = std::move(on_delivered)] {
    ++stats_.delivered;
    cb();
  });
  return true;
}

void ControlChannel::set_online(std::uint32_t ap, bool up) {
  W11_CHECK(ap < online_.size());
  if (online_[ap] == up) return;
  online_[ap] = up;
  ++stats_.offline_transitions;
  if (up && on_reconnect_) on_reconnect_(ap);
}

bool ControlChannel::online(std::uint32_t ap) const {
  W11_CHECK(ap < online_.size());
  return online_[ap];
}

}  // namespace w11::ctrl
