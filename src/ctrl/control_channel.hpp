#pragma once
// Simulated controller→AP control channel.
//
// The cloud controller's channel-switch commands ride the same WAN as
// everything else: they are lost, delayed, and — when an AP is offline,
// rebooting, or partitioned — silently dropped. This models exactly that,
// on the discrete-event Simulator: send() either schedules the delivery
// callback after a (deterministically jittered) propagation delay or drops
// the command, and per-AP online state is toggled by fault injection
// (FaultKind::kLinkDown/kLinkUp targeting the AP's control link).
//
// Determinism: every loss/delay draw comes from an exec::ShardRng stream
// keyed by (AP index, per-AP send sequence) — the same derivation rule as
// Rng::fork(stream_id) — so the channel's behavior is a pure function of
// (seed, send sequence), independent of wall clock and worker count.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"
#include "exec/shard_rng.hpp"
#include "sim/simulator.hpp"

namespace w11::ctrl {

class ControlChannel {
 public:
  struct Config {
    double loss = 0.0;             // per-command loss probability
    Time delay = time::millis(20);  // command + ack round trip, fixed part
    Time jitter = time::millis(10); // uniform [0, jitter) added per command
  };

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;          // random loss draws
    std::uint64_t dropped_offline = 0;  // sends while the AP was offline
    std::uint64_t offline_transitions = 0;
  };

  ControlChannel(Simulator& sim, Config cfg, std::uint64_t seed, int n_aps);

  // Send one command to `ap`. If it survives (AP online, loss draw passes),
  // `on_delivered` runs after delay+jitter sim time; otherwise the command
  // vanishes (the sender learns only via its own timeout). Returns whether
  // the command got through the loss stage (test observability only — a
  // real controller cannot see this).
  bool send(std::uint32_t ap, std::function<void()> on_delivered);

  // Partition / flap injection. Going offline drops nothing retroactively:
  // commands already in flight still deliver (they were on the wire).
  // Coming online fires the reconnect listener (apply-on-reconnect).
  void set_online(std::uint32_t ap, bool up);
  [[nodiscard]] bool online(std::uint32_t ap) const;

  // Observer for kLinkUp transitions; at most one (the PlanApplier).
  void set_reconnect_listener(std::function<void(std::uint32_t ap)> fn) {
    on_reconnect_ = std::move(fn);
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Simulator& sim_;
  Config cfg_;
  exec::ShardRng shards_;
  std::vector<bool> online_;
  std::vector<std::uint32_t> send_seq_;  // per-AP command counter
  std::function<void(std::uint32_t)> on_reconnect_;
  Stats stats_;
};

}  // namespace w11::ctrl
