#include "ctrl/fanout.hpp"

#include <utility>

#include "obs/gate.hpp"

namespace w11::ctrl {

std::uint64_t PlanFanout::commit(std::uint32_t campus_key, ChannelPlan plan,
                                 double netp_log, Time at) {
  auto it = stores_.find(campus_key);
  if (it == stores_.end()) {
    it = stores_.emplace(campus_key, PlanStore(cfg_.max_history)).first;
    ++stats_.campuses_seen;
    W11_COUNT("ctrl.fanout.campus");
  }
  const std::uint64_t version = it->second.commit(std::move(plan), netp_log, at);
  if (cfg_.mark_good_on_commit) it->second.mark_good(version);
  ++stats_.plans_committed;
  W11_COUNT("ctrl.fanout.commit");
  return version;
}

const PlanStore* PlanFanout::store(std::uint32_t campus_key) const {
  const auto it = stores_.find(campus_key);
  return it == stores_.end() ? nullptr : &it->second;
}

PlanStore* PlanFanout::store_mut(std::uint32_t campus_key) {
  const auto it = stores_.find(campus_key);
  return it == stores_.end() ? nullptr : &it->second;
}

}  // namespace w11::ctrl
