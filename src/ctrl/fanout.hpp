#pragma once
// PlanFanout: fleet-scale plan distribution into per-campus PlanStores.
//
// The PR-6 rollout pipeline (plan_store/applier/rollout) manages *one*
// network's version history. At fleet scale the controller emits a stream
// of per-campus plans; the fanout routes each into its campus's own
// versioned PlanStore — one last-known-good pointer per campus, exactly as
// the backend shards its plan state — so a campus rollout coordinator (or
// a test) can pick up any campus's history independently.
//
// Commits are versioned per campus; `mark_good_on_commit` (default)
// promotes each commit immediately, modelling the fleet store of record.
// Leave it false when a RolloutCoordinator drives promotion per campus.

#include <cstdint>
#include <map>

#include "common/time.hpp"
#include "ctrl/plan_store.hpp"
#include "flowsim/scan.hpp"

namespace w11::ctrl {

class PlanFanout {
 public:
  struct Config {
    std::size_t max_history = 4;  // per-campus PlanStore window
    bool mark_good_on_commit = true;
  };

  struct Stats {
    std::uint64_t plans_committed = 0;
    std::uint64_t campuses_seen = 0;
  };

  PlanFanout() = default;
  explicit PlanFanout(Config cfg) : cfg_(cfg) {}

  // Commit one campus plan; returns the campus-local version number.
  std::uint64_t commit(std::uint32_t campus_key, ChannelPlan plan,
                       double netp_log, Time at);

  // nullptr until the campus's first commit.
  [[nodiscard]] const PlanStore* store(std::uint32_t campus_key) const;
  [[nodiscard]] PlanStore* store_mut(std::uint32_t campus_key);
  [[nodiscard]] std::size_t campus_count() const { return stores_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Config cfg_{};
  std::map<std::uint32_t, PlanStore> stores_;  // key-ordered
  Stats stats_;
};

}  // namespace w11::ctrl
