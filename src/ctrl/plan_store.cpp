#include "ctrl/plan_store.hpp"

#include "common/check.hpp"

namespace w11::ctrl {

PlanStore::PlanStore(std::size_t max_history) : max_history_(max_history) {
  W11_CHECK(max_history_ >= 2);  // a candidate plus its last-known-good
}

std::uint64_t PlanStore::commit(ChannelPlan plan, double netp_log, Time at) {
  const std::uint64_t v = next_++;
  history_.push_back(PlanVersion{v, std::move(plan), netp_log, at});
  evict();
  return v;
}

void PlanStore::mark_good(std::uint64_t version) {
  W11_CHECK_MSG(get(version) != nullptr,
                "mark_good on a version outside the history window");
  good_ = version;
  evict();  // the previous good may now be evictable
}

const PlanVersion* PlanStore::get(std::uint64_t version) const {
  for (const PlanVersion& pv : history_)
    if (pv.version == version) return &pv;
  return nullptr;
}

const PlanVersion* PlanStore::last_known_good() const {
  return good_ == 0 ? nullptr : get(good_);
}

void PlanStore::evict() {
  while (history_.size() > max_history_) {
    // Never evict the last-known-good: auto-revert must always have a
    // target, no matter how many candidates churned past it.
    if (history_.front().version == good_) {
      if (history_.size() == 1) return;
      // Pin the good version by rotating it past the next-oldest entry.
      PlanVersion pinned = std::move(history_.front());
      history_.pop_front();
      history_.pop_front();  // the actual eviction victim
      history_.push_front(std::move(pinned));
    } else {
      history_.pop_front();
    }
  }
}

}  // namespace w11::ctrl
