#pragma once
// Versioned plan store with a last-known-good pointer.
//
// The paper's TurboCA runs in the cloud (§4.5): plans are computed centrally
// and pushed to APs that may be offline, mid-reboot, or mid-DFS-evacuation
// when the push arrives. That makes "the current plan" a distributed fiction
// — what actually exists is a sequence of *versions*, of which exactly one
// has been fully applied and validated (the last-known-good), and at most
// one is in flight. The store owns that sequence: the planner commits
// candidate versions, the rollout coordinator promotes a version to
// last-known-good only after every wave applied and telemetry validated,
// and auto-revert targets whatever was good before the rollout started.

#include <cstdint>
#include <deque>

#include "common/time.hpp"
#include "flowsim/scan.hpp"

namespace w11::ctrl {

struct PlanVersion {
  std::uint64_t version = 0;  // monotone, 1-based; 0 = "no plan"
  ChannelPlan plan;
  double netp_log = 0.0;  // planner's score at commit time (worker-invariant)
  Time created_at{};
};

class PlanStore {
 public:
  // History is bounded: versions older than the window are dropped, except
  // the last-known-good, which is pinned until superseded.
  explicit PlanStore(std::size_t max_history = 16);

  // Record a new candidate version (does NOT make it good). Returns the
  // assigned version number.
  std::uint64_t commit(ChannelPlan plan, double netp_log, Time at);

  // Promote `version` to last-known-good (rollout fully applied and
  // validated). The version must still be in the history window.
  void mark_good(std::uint64_t version);

  [[nodiscard]] const PlanVersion* get(std::uint64_t version) const;
  // nullptr until the first mark_good().
  [[nodiscard]] const PlanVersion* last_known_good() const;
  [[nodiscard]] std::uint64_t last_known_good_version() const { return good_; }
  [[nodiscard]] std::uint64_t latest_version() const { return next_ - 1; }
  [[nodiscard]] std::size_t size() const { return history_.size(); }

 private:
  void evict();

  std::size_t max_history_;
  std::uint64_t next_ = 1;
  std::uint64_t good_ = 0;  // 0 = none yet
  std::deque<PlanVersion> history_;  // ascending by version
};

}  // namespace w11::ctrl
