#include "ctrl/rollout.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/json_writer.hpp"
#include "obs/gate.hpp"

namespace w11::ctrl {

const char* to_string(RolloutState s) {
  switch (s) {
    case RolloutState::kIdle: return "idle";
    case RolloutState::kApplying: return "applying";
    case RolloutState::kValidating: return "validating";
    case RolloutState::kReverting: return "reverting";
    case RolloutState::kDone: return "done";
  }
  return "?";
}

const char* to_string(RolloutOutcome o) {
  switch (o) {
    case RolloutOutcome::kNone: return "none";
    case RolloutOutcome::kCommitted: return "committed";
    case RolloutOutcome::kReverted: return "reverted";
  }
  return "?";
}

const char* to_string(RevertReason r) {
  switch (r) {
    case RevertReason::kNone: return "none";
    case RevertReason::kTelemetry: return "telemetry";
    case RevertReason::kNetP: return "netp";
    case RevertReason::kRadar: return "radar";
    case RevertReason::kWatchdog: return "watchdog";
    case RevertReason::kExhausted: return "exhausted";
  }
  return "?";
}

namespace {
const char* to_string(RolloutAudit::Record::Kind k) {
  using Kind = RolloutAudit::Record::Kind;
  switch (k) {
    case Kind::kStart: return "rollout_start";
    case Kind::kWave: return "wave";
    case Kind::kWaveDone: return "wave_done";
    case Kind::kValidate: return "validate";
    case Kind::kRevert: return "revert";
    case Kind::kDone: return "rollout_done";
  }
  return "?";
}
}  // namespace

void RolloutAudit::write_jsonl(std::ostream& os) const {
  write_jsonl(os, time::nanos(std::numeric_limits<std::int64_t>::min()),
              time::nanos(std::numeric_limits<std::int64_t>::max()));
}

void RolloutAudit::write_jsonl(std::ostream& os, Time from, Time to) const {
  using Kind = Record::Kind;
  for (const Record& r : records_) {
    if (r.at_ns < from.ns() || r.at_ns > to.ns()) continue;
    json::Writer w(os);
    w.begin_object();
    w.field("event", to_string(r.kind));
    w.field("t_ns", r.at_ns);
    w.field("version", r.version);
    switch (r.kind) {
      case Kind::kStart:
        w.field("switches", r.n_aps);
        break;
      case Kind::kWave:
        w.field("wave", r.wave);
        w.field("aps", r.n_aps);
        break;
      case Kind::kWaveDone:
        w.field("wave", r.wave);
        w.field("applied", r.applied);
        w.field("exhausted", r.exhausted);
        break;
      case Kind::kValidate:
        w.field("wave", r.wave);
        w.field("util_checked", r.util_checked);
        w.field("util_base", r.util_base);
        w.field("util_now", r.util_now);
        w.field("netp_base", r.netp_base);
        w.field("netp_now", r.netp_now);
        w.field("ok", r.ok);
        break;
      case Kind::kRevert:
        w.field("wave", r.wave);
        w.field("reason", ctrl::to_string(r.reason));
        w.field("aps_touched", r.n_aps);
        break;
      case Kind::kDone:
        w.field("outcome", ctrl::to_string(r.outcome));
        w.field("applied", r.applied);
        w.field("convergence_ns", r.convergence_ns);
        break;
    }
    w.end_object();
    os << '\n';
  }
}

std::string RolloutAudit::jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

RolloutCoordinator::RolloutCoordinator(Simulator& sim, PlanApplier& applier,
                                       PlanStore& store, Config cfg,
                                       Hooks hooks)
    : sim_(sim), applier_(applier), store_(store), cfg_(cfg),
      hooks_(std::move(hooks)) {
  W11_CHECK(cfg_.canary >= 1);
  W11_CHECK(cfg_.wave_growth >= 1);
  W11_CHECK(hooks_.netp_log != nullptr);
  W11_CHECK(hooks_.mean_utilization != nullptr);
  W11_CHECK(hooks_.channel_of != nullptr);
}

bool RolloutCoordinator::start(std::uint64_t version) {
  if (active()) return false;
  const PlanVersion* pv = store_.get(version);
  if (pv == nullptr) return false;
  // Without a last-known-good there is nothing safe to revert to; the
  // harness bootstraps by committing + marking the initial plan good.
  if (store_.last_known_good() == nullptr) return false;

  // The switch set: APs whose current channel differs from the plan. APs
  // radar-pinned by an earlier rollout are unpinned here — this version was
  // planned after the strike, so its assignment supersedes the fallback.
  std::vector<PlanApplier::Target> switches;
  for (const auto& [ap, ch] : pv->plan) {
    radar_pinned_.erase(ap.value());
    if (hooks_.channel_of(ap.value()) != ch)
      switches.push_back({ap.value(), ch});
  }

  ++stats_.rollouts_started;
  ++rollout_ord_;
  ++epoch_;
  version_ = version;
  started_ = sim_.now();
  state_ = RolloutState::kApplying;
  outcome_ = RolloutOutcome::kNone;
  revert_reason_ = RevertReason::kNone;
  wave_idx_ = 0;
  revert_rounds_ = 0;
  touched_.clear();
  baseline_netp_ = hooks_.netp_log();
  baseline_util_ =
      hooks_.mean_utilization(sim_.now() - cfg_.validate_window, sim_.now());

  audit_.add({RolloutAudit::Record::Kind::kStart, sim_.now().ns(), version_, 0,
              static_cast<std::uint32_t>(switches.size())});

  if (switches.empty()) {
    // Nothing to move: the plan is already live (common when the planner
    // re-emits an unchanged assignment). Commit directly.
    done(RolloutOutcome::kCommitted);
    return true;
  }

  // Wave schedule: canary, then geometric growth until the set is covered.
  waves_.clear();
  std::size_t next = 0;
  std::size_t wave_cap = static_cast<std::size_t>(cfg_.canary);
  while (next < switches.size()) {
    const std::size_t n = std::min(wave_cap, switches.size() - next);
    waves_.emplace_back(switches.begin() + static_cast<std::ptrdiff_t>(next),
                        switches.begin() +
                            static_cast<std::ptrdiff_t>(next + n));
    next += n;
    wave_cap *= static_cast<std::size_t>(cfg_.wave_growth);
  }

  watchdog_.cancel();
  watchdog_ = sim_.schedule_after(cfg_.watchdog, [this, e = epoch_] {
    if (e != epoch_) return;
    if (state_ == RolloutState::kApplying ||
        state_ == RolloutState::kValidating)
      revert(RevertReason::kWatchdog);
  });
  launch_wave();
  return true;
}

void RolloutCoordinator::launch_wave() {
  W11_CHECK(wave_idx_ < waves_.size());
  // Drop APs radar-pinned since the schedule was built — they sit on their
  // DFS fallback until the next replan, never mid-rollout retargets.
  std::vector<PlanApplier::Target> targets;
  for (const PlanApplier::Target& t : waves_[wave_idx_])
    if (!radar_pinned_.contains(t.ap)) targets.push_back(t);
  for (const PlanApplier::Target& t : targets) touched_.push_back(t.ap);

  ++stats_.waves_started;
  audit_.add({RolloutAudit::Record::Kind::kWave, sim_.now().ns(), version_,
              static_cast<std::uint32_t>(wave_idx_),
              static_cast<std::uint32_t>(targets.size())});
  W11_TRACE_EVENT(::w11::obs::TraceKind::kRolloutWave, wave_idx_,
                  targets.size(), version_);
  W11_COUNT("ctrl.waves");
  applier_.begin_wave(std::move(targets), version_, [this, e = epoch_] {
    if (e == epoch_) on_wave_done();
  });
}

void RolloutCoordinator::on_wave_done() {
  RolloutAudit::Record r{RolloutAudit::Record::Kind::kWaveDone, sim_.now().ns(),
                         version_, static_cast<std::uint32_t>(wave_idx_)};
  r.applied = static_cast<std::uint32_t>(applier_.wave_applied());
  r.exhausted = static_cast<std::uint32_t>(applier_.wave_exhausted());
  audit_.add(r);
  if (applier_.wave_exhausted() > 0) {
    revert(RevertReason::kExhausted);
    return;
  }
  state_ = RolloutState::kValidating;
  validate_timer_.cancel();
  validate_timer_ = sim_.schedule_after(cfg_.validate_window,
                                        [this, e = epoch_] {
                                          if (e == epoch_) validate();
                                        });
}

void RolloutCoordinator::validate() {
  ++stats_.validations;
  const double netp_now = hooks_.netp_log();
  const double util_now =
      hooks_.mean_utilization(sim_.now() - cfg_.validate_window, sim_.now());
  const bool util_checked =
      !std::isnan(baseline_util_) && !std::isnan(util_now);
  if (!util_checked) ++stats_.validations_no_data;

  // A wave regresses if utilization climbed or the planner score dropped
  // beyond tolerance. Missing telemetry (kTelemetryDrop faults) skips the
  // utilization gate rather than failing it — absence of evidence.
  const bool util_bad =
      util_checked && (util_now - baseline_util_ > cfg_.util_regression_tol);
  const bool netp_bad = baseline_netp_ - netp_now > cfg_.netp_regression_tol;
  const bool ok = !util_bad && !netp_bad;

  RolloutAudit::Record r{RolloutAudit::Record::Kind::kValidate, sim_.now().ns(),
                         version_, static_cast<std::uint32_t>(wave_idx_)};
  r.util_base = std::isnan(baseline_util_) ? 0.0 : baseline_util_;
  r.util_now = std::isnan(util_now) ? 0.0 : util_now;
  r.netp_base = baseline_netp_;
  r.netp_now = netp_now;
  r.util_checked = util_checked;
  r.ok = ok;
  audit_.add(r);

  if (!ok) {
    revert(util_bad ? RevertReason::kTelemetry : RevertReason::kNetP);
    return;
  }
  ++wave_idx_;
  if (wave_idx_ >= waves_.size()) {
    done(RolloutOutcome::kCommitted);
    return;
  }
  state_ = RolloutState::kApplying;
  launch_wave();
}

void RolloutCoordinator::notify_radar(std::uint32_t ap) {
  radar_pinned_.insert(ap);
  ++stats_.radar_pins;
  if (!active()) return;
  if (state_ == RolloutState::kReverting) {
    // The revert must not fight the evacuation: drop the struck AP from the
    // revert wave; it stays on its DFS fallback.
    applier_.cancel_ap(ap);
    return;
  }
  revert(RevertReason::kRadar);
}

void RolloutCoordinator::revert(RevertReason reason) {
  W11_CHECK(state_ == RolloutState::kApplying ||
            state_ == RolloutState::kValidating);
  revert_reason_ = reason;
  switch (reason) {
    case RevertReason::kTelemetry: ++stats_.reverts_telemetry; break;
    case RevertReason::kNetP: ++stats_.reverts_netp; break;
    case RevertReason::kRadar: ++stats_.reverts_radar; break;
    case RevertReason::kWatchdog: ++stats_.reverts_watchdog; break;
    case RevertReason::kExhausted: ++stats_.reverts_exhausted; break;
    case RevertReason::kNone: break;
  }
  ++epoch_;  // voids pending wave/validate/watchdog closures
  validate_timer_.cancel();
  watchdog_.cancel();
  applier_.cancel_wave();
  state_ = RolloutState::kReverting;

  audit_.add({RolloutAudit::Record::Kind::kRevert, sim_.now().ns(), version_,
              static_cast<std::uint32_t>(wave_idx_),
              static_cast<std::uint32_t>(touched_.size()), 0, 0, 0.0, 0.0,
              0.0, 0.0, false, false, reason});
  W11_TRACE_EVENT(::w11::obs::TraceKind::kRolloutRevert, rollout_ord_,
                  static_cast<std::uint64_t>(reason), touched_.size());
  W11_COUNT("ctrl.reverts");

  const PlanVersion* good = store_.last_known_good();
  W11_CHECK(good != nullptr);

  // Re-target every AP this rollout touched that is (a) not radar-pinned
  // and (b) not already on its last-known-good channel. Touched APs that
  // never applied (lost command, cancelled) fall out via (b) — they never
  // moved.
  std::vector<PlanApplier::Target> targets;
  for (const std::uint32_t ap : touched_) {
    if (radar_pinned_.contains(ap)) continue;
    const auto it = good->plan.find(ApId(ap));
    if (it == good->plan.end()) continue;
    if (hooks_.channel_of(ap) == it->second) continue;
    targets.push_back({ap, it->second});
  }
  applier_.begin_wave(std::move(targets), good->version, [this, e = epoch_] {
    if (e == epoch_) on_revert_done();
  });
}

void RolloutCoordinator::on_revert_done() {
  // With bounded apply attempts a revert wave can itself exhaust (the AP is
  // hard-down); re-issue for the stragglers a few times before accepting —
  // the post-revert replan re-covers whatever is left.
  const PlanVersion* good = store_.last_known_good();
  std::vector<PlanApplier::Target> stragglers;
  for (const std::uint32_t ap : touched_) {
    if (radar_pinned_.contains(ap)) continue;
    const auto it = good->plan.find(ApId(ap));
    if (it == good->plan.end()) continue;
    if (hooks_.channel_of(ap) == it->second) continue;
    stragglers.push_back({ap, it->second});
  }
  if (!stragglers.empty() && revert_rounds_ < kMaxRevertRounds) {
    ++revert_rounds_;
    ++epoch_;
    applier_.begin_wave(std::move(stragglers), good->version,
                        [this, e = epoch_] {
                          if (e == epoch_) on_revert_done();
                        });
    return;
  }
  if (hooks_.request_replan) {
    hooks_.request_replan();
    ++stats_.replans_requested;
  }
  done(RolloutOutcome::kReverted);
}

void RolloutCoordinator::done(RolloutOutcome outcome) {
  ++epoch_;
  watchdog_.cancel();
  validate_timer_.cancel();
  state_ = RolloutState::kDone;
  outcome_ = outcome;
  last_convergence_ = sim_.now() - started_;
  if (outcome == RolloutOutcome::kCommitted) {
    ++stats_.committed;
    store_.mark_good(version_);
  } else {
    ++stats_.reverted;
  }
  RolloutAudit::Record r{RolloutAudit::Record::Kind::kDone, sim_.now().ns(),
                         version_};
  r.applied = static_cast<std::uint32_t>(touched_.size());
  r.outcome = outcome;
  r.convergence_ns = last_convergence_.ns();
  audit_.add(r);
  W11_HISTOGRAM("ctrl.rollout_convergence_s", last_convergence_.sec());
}

}  // namespace w11::ctrl
