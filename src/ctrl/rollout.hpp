#pragma once
// RolloutCoordinator: staged canary rollout of a plan version with
// telemetry-gated waves, auto-revert to last-known-good, and a watchdog
// that guarantees convergence (fully applied or fully reverted — never a
// fleet stuck half-and-half).
//
// Rollout state machine (DESIGN.md §13):
//
//            start(v)
//   kIdle ----------> kApplying --wave done--> kValidating
//     ^                  |  ^                     |    |
//     |                  |  +----- next wave -----+    | regression /
//     |        exhausted |                             | radar / watchdog
//     |                  v                             v
//     |             kReverting <-----------------------+
//     |                  |
//     +---- kDone <------+-- revert wave done (outcome kReverted,
//           ^                i=0 replan requested)
//           +--- last wave validated (outcome kCommitted, mark_good)
//
// Wave gating reads utilization back through the telemetry/ LittleTable
// pipeline (hooks.mean_utilization) and the planner's NetP estimate; either
// regressing beyond tolerance reverts the *whole* rollout, in the spirit of
// WACA's (arXiv 2008.11978) warning that plans validated against one
// occupancy epoch can regress on the next. A DFS radar strike mid-rollout
// also reverts: the struck AP is pinned to its §4.5.2 fallback (never
// re-targeted by the revert) and an immediate i=0 replan is requested once
// the revert converges.

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "ctrl/applier.hpp"
#include "ctrl/plan_store.hpp"
#include "sim/simulator.hpp"

namespace w11::json {
class Writer;
}

namespace w11::ctrl {

enum class RolloutState : std::uint8_t {
  kIdle,
  kApplying,
  kValidating,
  kReverting,
  kDone,
};
enum class RolloutOutcome : std::uint8_t { kNone, kCommitted, kReverted };
enum class RevertReason : std::uint8_t {
  kNone,
  kTelemetry,  // utilization regressed vs the pre-rollout baseline
  kNetP,       // planner score regressed
  kRadar,      // DFS radar landed mid-wave
  kWatchdog,   // convergence deadline expired
  kExhausted,  // a wave ran out of apply attempts
};

[[nodiscard]] const char* to_string(RolloutState s);
[[nodiscard]] const char* to_string(RolloutOutcome o);
[[nodiscard]] const char* to_string(RevertReason r);

// Deterministic audit trail of every rollout decision — wave launches,
// validation verdicts (with the numbers they were made on), revert causes,
// terminal outcomes. Sim-time stamped, worker-count invariant, exported as
// JSONL for regression diffing (the chaos soak compares bytes at 1 vs 4
// workers).
class RolloutAudit {
 public:
  struct Record {
    enum class Kind : std::uint8_t {
      kStart, kWave, kWaveDone, kValidate, kRevert, kDone,
    } kind = Kind::kStart;
    std::int64_t at_ns = 0;
    std::uint64_t version = 0;
    std::uint32_t wave = 0;
    std::uint32_t n_aps = 0;       // start: fleet switches; wave: wave size
    std::uint32_t applied = 0;     // wave_done / done
    std::uint32_t exhausted = 0;   // wave_done
    double util_base = 0.0, util_now = 0.0;  // validate
    double netp_base = 0.0, netp_now = 0.0;  // validate
    bool util_checked = false;  // validate: telemetry had data in the window
    bool ok = false;            // validate verdict
    RevertReason reason = RevertReason::kNone;  // revert
    RolloutOutcome outcome = RolloutOutcome::kNone;  // done
    std::int64_t convergence_ns = 0;                 // done
  };

  void add(Record r) { records_.push_back(r); }
  void clear() { records_.clear(); }
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

  // One JSON object per line; byte-deterministic (common/json_writer rules).
  void write_jsonl(std::ostream& os) const;
  // Records with at_ns in [from, to] only — the flight recorder's
  // postmortem window cut.
  void write_jsonl(std::ostream& os, Time from, Time to) const;
  [[nodiscard]] std::string jsonl() const;

 private:
  std::vector<Record> records_;
};

class RolloutCoordinator {
 public:
  struct Config {
    int canary = 2;       // wave 0 size (clamped to the switch set)
    int wave_growth = 3;  // wave n is canary * growth^n APs
    // Telemetry soak per wave before the regression gate fires.
    Time validate_window = time::seconds(30);
    // Wave fails if mean utilization rose by more than this (absolute).
    double util_regression_tol = 0.10;
    // ... or log-NetP dropped by more than this.
    double netp_regression_tol = 1.0;
    // Forward-progress deadline: a rollout still applying/validating when
    // this expires is reverted. (A revert in progress is exempt — it always
    // converges once the control channel heals, and aborting it is the one
    // thing that *could* strand the fleet half-applied.)
    Time watchdog = time::minutes(10);
  };

  struct Hooks {
    // Planner score of the *current* network state; worker-count invariant.
    std::function<double()> netp_log;
    // Mean utilization over [from, to] read back through LittleTable;
    // NaN = no rows in the window (telemetry dropped) — the gate is skipped.
    std::function<double(Time from, Time to)> mean_utilization;
    // Fired once per reverted rollout, after the revert wave converged:
    // re-plan now (i = 0) instead of waiting out the 15-min cadence.
    std::function<void()> request_replan;
    // Current channel of an AP (selects the switch set and revert targets).
    std::function<Channel(std::uint32_t ap)> channel_of;
  };

  // Condensed health snapshot for bench mains and the fleet health engine
  // (plain types only — no obs dependency).
  struct Health {
    std::uint64_t rollouts_started = 0;
    std::uint64_t committed = 0;
    std::uint64_t reverted = 0;
    double revert_rate = 0.0;  // reverted / completed rollouts
    std::uint64_t reverts_watchdog = 0;
    std::uint64_t radar_pins = 0;
    double last_convergence_s = 0.0;
    bool active = false;
  };

  struct Stats {
    std::uint64_t rollouts_started = 0;
    std::uint64_t committed = 0;
    std::uint64_t reverted = 0;
    std::uint64_t waves_started = 0;
    std::uint64_t validations = 0;
    std::uint64_t validations_no_data = 0;  // gate skipped: no telemetry rows
    std::uint64_t reverts_telemetry = 0;
    std::uint64_t reverts_netp = 0;
    std::uint64_t reverts_radar = 0;
    std::uint64_t reverts_watchdog = 0;
    std::uint64_t reverts_exhausted = 0;
    std::uint64_t radar_pins = 0;
    std::uint64_t replans_requested = 0;
  };

  RolloutCoordinator(Simulator& sim, PlanApplier& applier, PlanStore& store,
                     Config cfg, Hooks hooks);

  // Roll out `version` (must be in the store) across its plan's APs.
  // Returns false — and does nothing — if a rollout is already active or
  // the store has no last-known-good to revert to.
  bool start(std::uint64_t version);

  // A radar event landed on `ap`. Mid-rollout this reverts; the struck AP
  // is pinned (excluded from revert targeting — it sits on its DFS
  // fallback until the post-revert replan reassigns it).
  void notify_radar(std::uint32_t ap);

  [[nodiscard]] RolloutState state() const { return state_; }
  [[nodiscard]] bool active() const {
    return state_ != RolloutState::kIdle && state_ != RolloutState::kDone;
  }
  [[nodiscard]] RolloutOutcome outcome() const { return outcome_; }
  [[nodiscard]] RevertReason revert_reason() const { return revert_reason_; }
  [[nodiscard]] std::uint64_t target_version() const { return version_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] Health health() const {
    Health h;
    h.rollouts_started = stats_.rollouts_started;
    h.committed = stats_.committed;
    h.reverted = stats_.reverted;
    const std::uint64_t done = stats_.committed + stats_.reverted;
    h.revert_rate =
        done > 0 ? static_cast<double>(stats_.reverted) / static_cast<double>(done)
                 : 0.0;
    h.reverts_watchdog = stats_.reverts_watchdog;
    h.radar_pins = stats_.radar_pins;
    h.last_convergence_s = last_convergence_.sec();
    h.active = active();
    return h;
  }
  [[nodiscard]] RolloutAudit& audit() { return audit_; }
  [[nodiscard]] const RolloutAudit& audit() const { return audit_; }
  // Sim time from start() to terminal, for the last completed rollout.
  [[nodiscard]] Time last_convergence() const { return last_convergence_; }
  // APs pinned to their DFS fallback by mid-rollout radar (cleared when a
  // later rollout commits a plan covering them).
  [[nodiscard]] const std::set<std::uint32_t>& radar_pinned() const {
    return radar_pinned_;
  }

 private:
  void launch_wave();
  void on_wave_done();
  void validate();
  void revert(RevertReason reason);
  void on_revert_done();
  void done(RolloutOutcome outcome);

  Simulator& sim_;
  PlanApplier& applier_;
  PlanStore& store_;
  Config cfg_;
  Hooks hooks_;

  RolloutState state_ = RolloutState::kIdle;
  RolloutOutcome outcome_ = RolloutOutcome::kNone;
  RevertReason revert_reason_ = RevertReason::kNone;
  std::uint64_t version_ = 0;
  std::uint64_t rollout_ord_ = 0;  // trace ordinal per rollout
  Time started_{};
  Time last_convergence_{};
  double baseline_util_ = 0.0;
  double baseline_netp_ = 0.0;
  std::vector<std::vector<PlanApplier::Target>> waves_;
  std::size_t wave_idx_ = 0;
  static constexpr int kMaxRevertRounds = 8;
  int revert_rounds_ = 0;
  std::vector<std::uint32_t> touched_;  // APs in waves launched so far
  std::set<std::uint32_t> radar_pinned_;
  EventHandle watchdog_;
  EventHandle validate_timer_;
  std::uint64_t epoch_ = 0;  // guards stale watchdog/validate closures
  Stats stats_;
  RolloutAudit audit_;
};

}  // namespace w11::ctrl
