#pragma once
// ShardRng: per-task seed derivation for pool-sharded work (DESIGN.md §10).
//
// Sharded runs (one campus / seed / proposal per task) must stay
// reproducible no matter which worker runs which task in what order. A
// ShardRng pins one root seed and hands every task the generator derived
// from its *stream id* — a stable, caller-chosen identity such as the shard
// index — via the same mix Rng::fork(stream_id) uses. No draw ever touches
// shared generator state, so a fleet run's results are a pure function of
// (root seed, shard id), independent of worker count and interleaving.

#include <cstdint>

#include "common/rng.hpp"

namespace w11::exec {

class ShardRng {
 public:
  explicit ShardRng(std::uint64_t root_seed) : root_(root_seed) {}
  // Shards under an existing generator's identity (its construction seed;
  // unaffected by draws the root has made).
  explicit ShardRng(const Rng& root) : root_(root.seed()) {}

  [[nodiscard]] std::uint64_t root_seed() const { return root_; }

  // The seed task `stream_id` derives its generator from.
  [[nodiscard]] std::uint64_t seed_for(std::uint64_t stream_id) const {
    return rng_detail::mix_seed(root_, stream_id);
  }

  // The task's independent generator; equals Rng(root).fork(stream_id).
  [[nodiscard]] Rng rng_for(std::uint64_t stream_id) const {
    return Rng(seed_for(stream_id));
  }

 private:
  std::uint64_t root_;
};

}  // namespace w11::exec
