#include "exec/task_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/check.hpp"

namespace w11::exec {

namespace {
// Set while a thread is executing a chunk of any pool; nested parallel
// calls observe it and run inline.
thread_local bool tl_in_task = false;
}  // namespace

// One parallel_for invocation. Lives on the caller's stack; chunks hold a
// pointer to it and the caller cannot return before remaining_ hits zero,
// so the lifetime is safe.
struct TaskPool::Batch {
  std::function<void(std::size_t, std::size_t, int)> body;
  std::atomic<std::size_t> remaining{0};

  // Deterministic error propagation: keep the exception of the lowest chunk
  // begin-index; every chunk runs regardless of earlier failures.
  std::mutex err_mu;
  std::size_t err_index = SIZE_MAX;
  std::exception_ptr err;
};

TaskPool::TaskPool(int workers) {
  n_lanes_ = workers >= 1 ? workers : default_workers();
  lanes_.reserve(static_cast<std::size_t>(n_lanes_));
  for (int i = 0; i < n_lanes_; ++i)
    lanes_.push_back(std::make_unique<Lane>());
  threads_.reserve(static_cast<std::size_t>(n_lanes_ - 1));
  for (int lane = 1; lane < n_lanes_; ++lane)
    threads_.emplace_back([this, lane] { worker_loop(lane); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

TaskPool& TaskPool::global() {
  static TaskPool pool(0);
  return pool;
}

int TaskPool::default_workers() {
  if (const char* env = std::getenv("W11_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return std::min(v, 64);
  }
#ifdef W11_DEFAULT_THREADS
  if (W11_DEFAULT_THREADS >= 1) return std::min(W11_DEFAULT_THREADS, 64);
#endif
  const unsigned hc = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hc), 1, 16);
}

bool TaskPool::in_task() { return tl_in_task; }

void TaskPool::run_chunk(const Chunk& chunk, int lane) {
  Batch& b = *chunk.batch;
  const bool was_in_task = tl_in_task;
  tl_in_task = true;
  try {
    b.body(chunk.begin, chunk.end, lane);
  } catch (...) {
    std::lock_guard<std::mutex> lk(b.err_mu);
    if (chunk.begin < b.err_index) {
      b.err_index = chunk.begin;
      b.err = std::current_exception();
    }
  }
  tl_in_task = was_in_task;
  // release: publishes this chunk's writes to the caller, who observes
  // remaining == 0 with an acquire load before touching results.
  //
  // The completion mutex/cv are pool members, not Batch members: the Batch
  // lives on the caller's stack and is destroyed the moment the caller sees
  // remaining == 0, which can happen while this thread is still inside the
  // signal below. The pool outlives every batch, so signalling through it
  // is free of that destruction race. The empty critical section orders
  // this signal against the caller's predicate-check-then-wait.
  if (b.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    { std::lock_guard<std::mutex> lk(done_mu_); }
    done_cv_.notify_all();
  }
}

bool TaskPool::try_run_one(int lane) {
  // Own deque first (back = most recently pushed, cache-warm), then steal
  // from the front of the others, scanning from the next lane over.
  Chunk chunk;
  {
    Lane& own = *lanes_[static_cast<std::size_t>(lane)];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.deque.empty()) {
      chunk = own.deque.back();
      own.deque.pop_back();
    }
  }
  if (chunk.batch == nullptr) {
    for (int d = 1; d < n_lanes_ && chunk.batch == nullptr; ++d) {
      Lane& victim = *lanes_[static_cast<std::size_t>((lane + d) % n_lanes_)];
      std::lock_guard<std::mutex> lk(victim.mu);
      if (!victim.deque.empty()) {
        chunk = victim.deque.front();
        victim.deque.pop_front();
      }
    }
  }
  if (chunk.batch == nullptr) return false;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    --queued_chunks_;
  }
  run_chunk(chunk, lane);
  return true;
}

void TaskPool::worker_loop(int lane) {
  for (;;) {
    if (try_run_one(lane)) continue;
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait(lk, [this] { return queued_chunks_ > 0 || stop_; });
    if (stop_ && queued_chunks_ == 0) return;
  }
}

void TaskPool::execute(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, int)>& body) {
  W11_CHECK(!tl_in_task);  // nested calls take the inline path

  Batch batch;
  batch.body = body;

  // Chunk small enough that stealing can balance uneven bodies, large
  // enough that deque traffic stays off the critical path.
  const auto lanes = static_cast<std::size_t>(n_lanes_);
  const std::size_t grain = std::max<std::size_t>(1, n / (lanes * 4));
  const std::size_t n_chunks = (n + grain - 1) / grain;
  batch.remaining.store(n_chunks, std::memory_order_relaxed);

  // Round-robin the chunks across lanes, caller's lane (0) first.
  std::size_t lane_rr = 0;
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const Chunk chunk{&batch, begin, std::min(begin + grain, n)};
    Lane& l = *lanes_[lane_rr];
    lane_rr = (lane_rr + 1) % lanes;
    std::lock_guard<std::mutex> lk(l.mu);
    l.deque.push_back(chunk);
  }
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    queued_chunks_ += n_chunks;
  }
  wake_cv_.notify_all();

  // Help until the queues hold nothing this thread can run, then sleep
  // until the in-flight chunks finish.
  while (batch.remaining.load(std::memory_order_acquire) > 0) {
    if (try_run_one(0)) continue;
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait(lk, [&batch] {
      return batch.remaining.load(std::memory_order_acquire) == 0;
    });
  }

  if (batch.err) std::rethrow_exception(batch.err);
}

}  // namespace w11::exec
