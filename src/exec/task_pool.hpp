#pragma once
// TaskPool: the deterministic parallel execution layer (DESIGN.md §10).
//
// A fixed set of worker lanes with per-lane work-stealing deques. The design
// constraint that shapes everything here is *determinism*: a computation run
// on the pool must produce bit-for-bit the result it produces serially, at
// any worker count. The pool guarantees its half of that contract:
//
//   * parallel_for(n, body) runs body(i) exactly once per i; the caller
//     blocks (and helps execute) until every index has finished;
//   * parallel_map writes result i to slot i, so the output vector's order
//     is the index order, never the completion order;
//   * reductions (parallel_reduce, or any caller folding a parallel_map
//     result) happen on the calling thread in ascending index order, so the
//     floating-point accumulation order is fixed;
//   * if bodies throw, the exception propagated to the caller is the one
//     raised by the *lowest* failing index (every chunk still runs), so
//     error behavior does not depend on scheduling either.
//
// The caller's half: bodies for distinct indices must not write shared
// state (write only to your own index's slot), and any RNG a task needs is
// derived by stream id (Rng::fork(stream_id) / ShardRng), never drawn from
// a shared generator.
//
// Scheduling notes:
//   * workers() is the number of execution lanes *including* the calling
//     thread; TaskPool(1) executes everything inline and spawns nothing.
//   * A nested parallel_for — a pool task calling back into its own pool —
//     runs inline on the calling lane. Parallelism is spent at the
//     outermost level, which is where the grain is coarsest; nesting is
//     legal everywhere and never deadlocks.
//   * Bodies may optionally take a second `int lane` argument in [0,
//     workers()) identifying the executing lane, for indexing per-lane
//     scratch. Lane 0 is the calling thread. Per-lane scratch sized off one
//     parallel_for call is private to it; concurrent *external* callers
//     sharing one pool both present as lane 0 and must not share scratch.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace w11::exec {

class TaskPool {
 public:
  // workers <= 0 selects default_workers(). workers == 1 is the serial
  // pool: no threads, every call executes inline.
  explicit TaskPool(int workers = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  // Execution lanes, including the calling thread.
  [[nodiscard]] int workers() const { return n_lanes_; }

  // The process-wide shared pool, sized by default_workers(). Built on
  // first use; lives until exit.
  static TaskPool& global();

  // Worker-count default: the W11_THREADS environment variable if set (>=1),
  // else the W11_THREADS CMake cache value baked in as W11_DEFAULT_THREADS,
  // else hardware concurrency (clamped to [1, 16]).
  static int default_workers();

  // True while the current thread is executing a task of *any* TaskPool —
  // i.e. a parallel_for here would run inline.
  [[nodiscard]] static bool in_task();

  // body(i) or body(i, lane) for every i in [0, n). Blocks until all
  // indices completed; rethrows the lowest failing index's exception.
  template <class F>
  void parallel_for(std::size_t n, F&& body) {
    if (inline_eligible(n)) {
      for (std::size_t i = 0; i < n; ++i) invoke_body(body, i, 0);
      return;
    }
    execute(n, [&body](std::size_t begin, std::size_t end, int lane) {
      for (std::size_t i = begin; i < end; ++i) invoke_body(body, i, lane);
    });
  }

  // out[i] = body(i) (or body(i, lane)); output in index order regardless
  // of completion order. T must be default-constructible.
  template <class T, class F>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t n, F&& body) {
    std::vector<T> out(n);
    parallel_for(n, [&out, &body](std::size_t i, int lane) {
      out[i] = invoke_body(body, i, lane);
    });
    return out;
  }

  // Ordered reduction: maps in parallel, folds on the calling thread in
  // ascending index order (fixed FP accumulation order).
  template <class T, class Map, class Reduce>
  [[nodiscard]] T parallel_reduce(std::size_t n, T init, Map&& map,
                                  Reduce&& reduce) {
    std::vector<T> vals = parallel_map<T>(n, std::forward<Map>(map));
    T acc = std::move(init);
    for (T& v : vals) acc = reduce(std::move(acc), std::move(v));
    return acc;
  }

 private:
  struct Batch;
  struct Chunk {
    Batch* batch = nullptr;
    std::size_t begin = 0, end = 0;
  };
  struct Lane {
    std::mutex mu;
    std::deque<Chunk> deque;  // owner pops back, thieves steal front
  };

  template <class F>
  static decltype(auto) invoke_body(F& body, std::size_t i, int lane) {
    if constexpr (std::is_invocable_v<F&, std::size_t, int>) {
      return body(i, lane);
    } else {
      return body(i);
    }
  }

  [[nodiscard]] bool inline_eligible(std::size_t n) const {
    return n_lanes_ == 1 || n < 2 || in_task();
  }

  // Split [0, n) into chunks, distribute across lanes, help until done.
  void execute(std::size_t n,
               const std::function<void(std::size_t, std::size_t, int)>& body);

  void worker_loop(int lane);
  bool try_run_one(int lane);
  void run_chunk(const Chunk& chunk, int lane);

  int n_lanes_ = 1;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::size_t queued_chunks_ = 0;  // guarded by wake_mu_
  bool stop_ = false;              // guarded by wake_mu_

  // Batch-completion signal. Pool-level (not per-Batch) because a Batch
  // lives on its caller's stack and dies as soon as the caller observes
  // completion — a stack-local mutex/cv would race its own destruction.
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

}  // namespace w11::exec
