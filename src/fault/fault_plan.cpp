#include "fault/fault_plan.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace w11::fault {

std::string FaultEvent::to_string() const {
  std::ostringstream os;
  os << at.ms() << "ms " << fault::to_string(kind);
  if (target >= 0) os << " target=" << target;
  if (kind == FaultKind::kScanDegrade) {
    os << " mode=" << fault::to_string(static_cast<ScanFaultMode>(
              static_cast<int>(param)));
  } else if (param != 0.0) {
    os << " param=" << param;
  }
  if (delta != Time{}) os << " delta=" << delta.ms() << "ms";
  return os.str();
}

FaultPlan& FaultPlan::add(FaultEvent ev) {
  W11_CHECK_MSG(ev.at >= Time{0}, "fault events cannot predate the epoch");
  if (!events_.empty() && ev.at < events_.back().at) sorted_ = false;
  events_.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::radar(Time at, int ap) {
  return add({.at = at, .kind = FaultKind::kRadar, .target = ap});
}

FaultPlan& FaultPlan::radar_burst(Time at, int ap, int count, Time spacing) {
  W11_CHECK(count >= 1 && spacing > Time{0});
  for (int i = 0; i < count; ++i) radar(at + spacing * i, ap);
  return *this;
}

FaultPlan& FaultPlan::ap_crash(Time at, int ap) {
  return add({.at = at, .kind = FaultKind::kApCrash, .target = ap});
}

FaultPlan& FaultPlan::scan_degrade(Time at, ScanFaultMode mode,
                                   double keep_fraction) {
  FaultEvent ev{.at = at, .kind = FaultKind::kScanDegrade};
  ev.param = static_cast<double>(static_cast<int>(mode));
  // Partial mode smuggles its keep fraction in delta-free storage: reuse
  // target as percent to keep FaultEvent simple and comparable.
  ev.target = static_cast<int>(keep_fraction * 100.0 + 0.5);
  return add(ev);
}

FaultPlan& FaultPlan::link_outage(Time at, int link, Time duration) {
  W11_CHECK(duration > Time{0});
  add({.at = at, .kind = FaultKind::kLinkDown, .target = link});
  add({.at = at + duration, .kind = FaultKind::kLinkUp, .target = link});
  return *this;
}

FaultPlan& FaultPlan::link_flap(Time at, int link, int flaps, Time period) {
  W11_CHECK(flaps >= 1 && period > Time{0});
  for (int i = 0; i < flaps; ++i)
    link_outage(at + period * (2 * i), link, period);
  return *this;
}

FaultPlan& FaultPlan::telemetry_drop(Time at, int count) {
  W11_CHECK(count >= 1);
  return add({.at = at, .kind = FaultKind::kTelemetryDrop,
              .param = static_cast<double>(count)});
}

FaultPlan& FaultPlan::clock_jump(Time at, Time backwards_by) {
  W11_CHECK(backwards_by > Time{0});
  return add({.at = at, .kind = FaultKind::kClockJump, .delta = backwards_by});
}

const std::vector<FaultEvent>& FaultPlan::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.at < b.at;
                     });
    sorted_ = true;
  }
  return events_;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const RandomConfig& cfg) {
  Rng rng(seed);
  std::ostringstream name;
  name << "random-" << seed;
  FaultPlan plan(name.str());

  std::vector<FaultKind> menu;
  if (cfg.allow_radar) menu.push_back(FaultKind::kRadar);
  if (cfg.allow_ap_crash) menu.push_back(FaultKind::kApCrash);
  if (cfg.allow_scan_faults) menu.push_back(FaultKind::kScanDegrade);
  if (cfg.allow_link_faults) menu.push_back(FaultKind::kLinkDown);
  if (cfg.allow_telemetry_faults) menu.push_back(FaultKind::kTelemetryDrop);
  if (cfg.allow_clock_faults) menu.push_back(FaultKind::kClockJump);
  if (menu.empty()) return plan;

  for (int i = 0; i < cfg.n_events; ++i) {
    const Time at = time::nanos(rng.uniform_int(0, cfg.horizon.ns()));
    const int ap = static_cast<int>(rng.index(
        static_cast<std::size_t>(std::max(cfg.n_aps, 1))));
    const int link = static_cast<int>(rng.index(
        static_cast<std::size_t>(std::max(cfg.n_links, 1))));
    switch (menu[rng.index(menu.size())]) {
      case FaultKind::kRadar:
        if (rng.bernoulli(0.4)) {
          plan.radar_burst(at, ap, static_cast<int>(rng.uniform_int(2, 4)),
                           time::millis(rng.uniform_int(5, 50)));
        } else {
          plan.radar(at, ap);
        }
        break;
      case FaultKind::kApCrash:
        plan.ap_crash(at, ap);
        break;
      case FaultKind::kScanDegrade: {
        // Degrade, then recover to healthy later so plans end survivable.
        const auto mode = static_cast<ScanFaultMode>(rng.uniform_int(1, 3));
        plan.scan_degrade(at, mode, rng.uniform(0.2, 0.9));
        plan.scan_degrade(at + time::nanos(rng.uniform_int(
                              1, std::max<std::int64_t>(
                                     cfg.horizon.ns() - at.ns(), 2))),
                          ScanFaultMode::kHealthy);
        break;
      }
      case FaultKind::kLinkDown:
        if (rng.bernoulli(0.5)) {
          plan.link_flap(at, link, static_cast<int>(rng.uniform_int(2, 4)),
                         time::millis(rng.uniform_int(10, 60)));
        } else {
          plan.link_outage(at, link,
                           time::nanos(rng.uniform_int(
                               time::millis(20).ns(), cfg.max_outage.ns())));
        }
        break;
      case FaultKind::kTelemetryDrop:
        plan.telemetry_drop(at, static_cast<int>(rng.uniform_int(1, 5)));
        break;
      case FaultKind::kClockJump:
        plan.clock_jump(at, time::millis(rng.uniform_int(1, 2000)));
        break;
      case FaultKind::kLinkUp:
        break;  // only ever emitted as the tail of an outage
    }
  }
  plan.events();  // force the sort so plans compare bitwise-stable
  return plan;
}

}  // namespace w11::fault
