#pragma once
// Deterministic fault plans.
//
// A FaultPlan is an ordered list of timestamped fault events covering the
// failure modes the paper's deployment had to survive: DFS radar evacuations
// (§4.5.2), AP crash/reboot with FastACK flow-state loss (§5.5.4 names state
// transfer but a crashed AP simply loses the table), degraded scan inputs to
// the channel-assignment services, wired-link outages/flaps upstream of the
// AP, and telemetry collector drops.
//
// Plans are pure data: building one never touches a simulator. The same
// (seed, RandomConfig) pair always produces the same plan, and FaultInjector
// fires a given plan identically on every run — chaos results are exactly
// reproducible from (plan seed, sim seed) alone.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace w11::fault {

enum class FaultKind : std::uint8_t {
  kRadar,          // radar detected on a DFS channel; target = AP index
  kApCrash,        // AP reboot: queues flushed, FastACK flow table lost
  kScanDegrade,    // switch the scan decorator's mode (param = ScanFaultMode)
  kLinkDown,       // wired-link outage begins; target = link index
  kLinkUp,         // wired-link outage ends
  kTelemetryDrop,  // collector drops the next `count` polling records
  kClockJump,      // services observe time jumping backwards by `delta`
};

// Degraded-scan modes for the NetworkHooks decorator (scan_fault.hpp).
enum class ScanFaultMode : std::uint8_t {
  kHealthy,  // pass scans through untouched
  kEmpty,    // backend returns no scans at all (total collection outage)
  kPartial,  // a fraction of APs fail to report (param = keep fraction)
  kStale,    // replay the last healthy snapshot with its old timestamp
};

[[nodiscard]] constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kRadar: return "radar";
    case FaultKind::kApCrash: return "ap-crash";
    case FaultKind::kScanDegrade: return "scan-degrade";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kTelemetryDrop: return "telemetry-drop";
    case FaultKind::kClockJump: return "clock-jump";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(ScanFaultMode m) {
  switch (m) {
    case ScanFaultMode::kHealthy: return "healthy";
    case ScanFaultMode::kEmpty: return "empty";
    case ScanFaultMode::kPartial: return "partial";
    case ScanFaultMode::kStale: return "stale";
  }
  return "?";
}

struct FaultEvent {
  Time at{};
  FaultKind kind = FaultKind::kRadar;
  int target = -1;      // AP / link index; -1 = unspecified
  double param = 0.0;   // kind-specific (mode, fraction, count)
  Time delta{};         // kClockJump: how far time appears to rewind

  friend constexpr auto operator<=>(const FaultEvent&,
                                    const FaultEvent&) = default;
  [[nodiscard]] std::string to_string() const;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::string name) : name_(std::move(name)) {}

  // --- builders (chainable) ----------------------------------------------
  FaultPlan& add(FaultEvent ev);
  FaultPlan& radar(Time at, int ap);
  // A burst of `count` radar hits `spacing` apart — repeated strikes chase
  // the AP down its fallback chain (§4.5.2 requires this to terminate on a
  // non-DFS channel, never strand the AP).
  FaultPlan& radar_burst(Time at, int ap, int count, Time spacing);
  FaultPlan& ap_crash(Time at, int ap);
  FaultPlan& scan_degrade(Time at, ScanFaultMode mode, double keep_fraction = 1.0);
  // Outage on link `link` lasting `duration` (down + up pair).
  FaultPlan& link_outage(Time at, int link, Time duration);
  // `flaps` rapid down/up cycles of `period` each.
  FaultPlan& link_flap(Time at, int link, int flaps, Time period);
  FaultPlan& telemetry_drop(Time at, int count);
  FaultPlan& clock_jump(Time at, Time backwards_by);

  // Generator knobs for random(): event mix over a time horizon.
  struct RandomConfig {
    Time horizon = time::seconds(10);
    int n_aps = 1;
    int n_links = 1;   // wired links eligible for outage
    int n_events = 8;  // faults drawn before expansion (bursts/flaps expand)
    bool allow_radar = true;
    bool allow_ap_crash = true;
    bool allow_scan_faults = true;
    bool allow_link_faults = true;
    bool allow_telemetry_faults = true;
    bool allow_clock_faults = true;
    Time max_outage = time::millis(500);
  };

  // Deterministic: identical (seed, cfg) => identical plan (bitwise).
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        const RandomConfig& cfg);

  // Events sorted by time; ties keep insertion order (stable).
  [[nodiscard]] const std::vector<FaultEvent>& events() const;
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace w11::fault
