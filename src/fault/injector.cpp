#include "fault/injector.hpp"

#include "common/check.hpp"

namespace w11::fault {

FaultInjector::FaultInjector(FaultPlan plan, FaultHandlers handlers)
    : plan_(std::move(plan)), handlers_(std::move(handlers)) {
  plan_.events();  // force sort up front
}

void FaultInjector::advance_to(Time now) {
  W11_CHECK_MSG(!armed_, "an armed injector is driven by the simulator");
  const auto& evs = plan_.events();
  while (next_ < evs.size() && evs[next_].at <= now) fire(evs[next_++]);
}

void FaultInjector::arm(Simulator& sim) {
  W11_CHECK_MSG(!armed_, "arm() may only be called once");
  armed_ = true;
  const auto& evs = plan_.events();
  for (std::size_t i = next_; i < evs.size(); ++i) {
    const FaultEvent ev = evs[i];
    const Time at = ev.at < sim.now() ? sim.now() : ev.at;
    sim.schedule_at(at, [this, ev] { fire(ev); });
  }
  next_ = evs.size();
}

void FaultInjector::fire(const FaultEvent& ev) {
  ++stats_.fired;
  log_.push_back(ev);
  switch (ev.kind) {
    case FaultKind::kRadar:
      ++stats_.radar;
      if (handlers_.radar) handlers_.radar(ev.target);
      else ++stats_.unhandled;
      break;
    case FaultKind::kApCrash:
      ++stats_.ap_crash;
      if (handlers_.ap_crash) handlers_.ap_crash(ev.target);
      else ++stats_.unhandled;
      break;
    case FaultKind::kScanDegrade:
      ++stats_.scan_degrade;
      if (handlers_.scan_degrade) {
        handlers_.scan_degrade(
            static_cast<ScanFaultMode>(static_cast<int>(ev.param)),
            ev.target >= 0 ? ev.target / 100.0 : 1.0);
      } else {
        ++stats_.unhandled;
      }
      break;
    case FaultKind::kLinkDown:
      ++stats_.link_down;
      if (handlers_.link_down) handlers_.link_down(ev.target);
      else ++stats_.unhandled;
      break;
    case FaultKind::kLinkUp:
      ++stats_.link_up;
      if (handlers_.link_up) handlers_.link_up(ev.target);
      else ++stats_.unhandled;
      break;
    case FaultKind::kTelemetryDrop:
      ++stats_.telemetry_drop;
      if (handlers_.telemetry_drop)
        handlers_.telemetry_drop(static_cast<int>(ev.param));
      else ++stats_.unhandled;
      break;
    case FaultKind::kClockJump:
      ++stats_.clock_jump;
      if (handlers_.clock_jump) handlers_.clock_jump(ev.delta);
      else ++stats_.unhandled;
      break;
  }
}

}  // namespace w11::fault
