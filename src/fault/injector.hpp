#pragma once
// FaultInjector: fires a FaultPlan into a running system.
//
// The injector is deliberately agnostic about what it is injecting into —
// consumers register handlers (like turboca::NetworkHooks, a struct of
// std::functions) and the injector delivers each due event exactly once, in
// plan order. Two drive modes cover both halves of the codebase:
//
//   * advance_to(now) — for coarse wall-clock harnesses (the flowsim /
//     TurboCA polling loop): fires every event with at <= now, in order.
//   * arm(sim) — for the packet-level testbed: schedules every event on the
//     discrete-event Simulator at its exact timestamp.
//
// Every fired event lands in an ordered log, so determinism is checkable by
// comparing logs across runs (the chaos soak's reproducibility assertion).

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"
#include "fault/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace w11::fault {

struct FaultHandlers {
  std::function<void(int ap)> radar;
  std::function<void(int ap)> ap_crash;
  std::function<void(ScanFaultMode mode, double keep_fraction)> scan_degrade;
  std::function<void(int link)> link_down;
  std::function<void(int link)> link_up;
  std::function<void(int count)> telemetry_drop;
  std::function<void(Time backwards_by)> clock_jump;
};

struct InjectorStats {
  int fired = 0;
  int unhandled = 0;  // events whose handler was not registered
  int radar = 0;
  int ap_crash = 0;
  int scan_degrade = 0;
  int link_down = 0;
  int link_up = 0;
  int telemetry_drop = 0;
  int clock_jump = 0;
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, FaultHandlers handlers);

  // Fire all events with at <= now that have not fired yet, in plan order.
  // `now` may go backwards (that is one of the faults we model); rewinding
  // never re-fires events.
  void advance_to(Time now);

  // Schedule every not-yet-fired event on `sim` at its timestamp. Call once,
  // before running the simulator; events before sim.now() fire immediately.
  void arm(Simulator& sim);

  [[nodiscard]] bool exhausted() const { return next_ >= plan_.size(); }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const InjectorStats& stats() const { return stats_; }
  // Ordered record of every event fired so far — the determinism witness.
  [[nodiscard]] const std::vector<FaultEvent>& log() const { return log_; }

 private:
  void fire(const FaultEvent& ev);

  FaultPlan plan_;
  FaultHandlers handlers_;
  std::size_t next_ = 0;  // first unfired index into plan_.events()
  InjectorStats stats_;
  std::vector<FaultEvent> log_;
  bool armed_ = false;
};

}  // namespace w11::fault
