#include "fault/scan_fault.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace w11::fault {

DegradedScanHooks::DegradedScanHooks(turboca::NetworkHooks inner,
                                     std::function<Time()> now, Rng rng)
    : inner_(std::move(inner)), now_(std::move(now)), rng_(std::move(rng)) {
  W11_CHECK(inner_.scan && inner_.current_plan && inner_.apply_plan);
  W11_CHECK(now_ != nullptr);
}

turboca::NetworkHooks DegradedScanHooks::hooks() {
  turboca::NetworkHooks h;
  h.scan = [this] { return scan(); };
  h.current_plan = inner_.current_plan;
  h.apply_plan = inner_.apply_plan;
  return h;
}

void DegradedScanHooks::set_mode(ScanFaultMode mode, double keep_fraction) {
  mode_ = mode;
  keep_fraction_ = std::clamp(keep_fraction, 0.0, 1.0);
}

std::vector<ApScan> DegradedScanHooks::scan() {
  ++stats_.scans_served;
  switch (mode_) {
    case ScanFaultMode::kEmpty:
      ++stats_.scans_emptied;
      return {};
    case ScanFaultMode::kStale:
      // Serve the cached snapshot with its original taken_at. If nothing was
      // ever collected, the outage looks like an empty census.
      ++stats_.scans_stale;
      if (last_healthy_.empty()) ++stats_.scans_emptied;
      return last_healthy_;
    case ScanFaultMode::kPartial: {
      std::vector<ApScan> scans = inner_.scan();
      const Time at = now_();
      for (ApScan& s : scans) s.taken_at = at;
      const std::size_t full = scans.size();
      std::erase_if(scans, [&](const ApScan&) {
        return !rng_.bernoulli(keep_fraction_);
      });
      ++stats_.scans_partial;
      stats_.aps_dropped += static_cast<int>(full - scans.size());
      return scans;
    }
    case ScanFaultMode::kHealthy:
      break;
  }
  std::vector<ApScan> scans = inner_.scan();
  const Time at = now_();
  for (ApScan& s : scans) s.taken_at = at;
  last_healthy_ = scans;
  return scans;
}

}  // namespace w11::fault
