#pragma once
// Degraded-scan decorator for the channel-assignment services.
//
// Wraps a turboca::NetworkHooks and corrupts the scan() leg on demand: the
// backend's collection pipeline can return nothing (kEmpty — total outage),
// a partial AP census (kPartial — some APs failed to report, which WACA-style
// measurement campaigns show is the common case), or a stale snapshot
// replayed with its original timestamp (kStale — the poller kept serving its
// cache after the collectors wedged). current_plan/apply_plan pass through
// untouched: the services still can act, they just see bad inputs — exactly
// the regime their empty/stale guards must degrade gracefully under.
//
// Which APs vanish in partial mode is drawn from an owned Rng, so a given
// (seed, call sequence) corrupts identically on every run.

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/turboca/service.hpp"
#include "fault/fault_plan.hpp"
#include "flowsim/scan.hpp"

namespace w11::fault {

class DegradedScanHooks {
 public:
  // `now` supplies the harness clock used to stamp fresh scans' taken_at;
  // pass the polling loop's current time (or sim.now()).
  DegradedScanHooks(turboca::NetworkHooks inner, std::function<Time()> now,
                    Rng rng);

  // The decorated hooks to hand to TurboCaService / ReservedCaService.
  [[nodiscard]] turboca::NetworkHooks hooks();

  void set_mode(ScanFaultMode mode, double keep_fraction = 1.0);
  [[nodiscard]] ScanFaultMode mode() const { return mode_; }

  struct Stats {
    int scans_served = 0;
    int scans_emptied = 0;   // calls answered with no data
    int scans_partial = 0;   // calls answered with a reduced census
    int scans_stale = 0;     // calls answered from the cache
    int aps_dropped = 0;     // individual AP reports removed (partial mode)
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] std::vector<ApScan> scan();

  turboca::NetworkHooks inner_;
  std::function<Time()> now_;
  Rng rng_;
  ScanFaultMode mode_ = ScanFaultMode::kHealthy;
  double keep_fraction_ = 1.0;
  std::vector<ApScan> last_healthy_;
  Stats stats_;
};

}  // namespace w11::fault
