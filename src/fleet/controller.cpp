#include "fleet/controller.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>
#include <utility>

#include "common/check.hpp"
#include "obs/gate.hpp"

namespace w11::fleet {

namespace {

void fnv_mix(std::uint64_t& h, const void* p, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
}

template <class T>
void fnv_mix_value(std::uint64_t& h, T v) {
  fnv_mix(h, &v, sizeof(v));
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

FleetController::FleetController(Config cfg)
    : cfg_(cfg),
      shard_(cfg.seed),
      ingest_(cfg.ingest_capacity),
      out_(cfg.output_capacity),
      scheduler_(cfg.cadence, cfg.seed) {}

bool FleetController::offer_epoch(ScanEpoch epoch) {
  const bool accepted = ingest_.try_push(EpochUpdate{std::move(epoch)});
  if (!accepted) {
    offer_drops_.fetch_add(1, std::memory_order_relaxed);
    W11_COUNT("fleet.epochs_dropped");
  }
  return accepted;
}

bool FleetController::offer_delta(DeltaEpoch delta) {
  const bool accepted = ingest_.try_push(EpochUpdate{std::move(delta)});
  if (!accepted) {
    offer_drops_.fetch_add(1, std::memory_order_relaxed);
    W11_COUNT("fleet.epochs_dropped");
  }
  return accepted;
}

std::vector<std::uint32_t> FleetController::ghost_contenders_of(
    const std::vector<ApScan>& scans) const {
  // `scans` is a canonical slice (ascending id), so membership is a binary
  // search. A contender-grade report of a non-member must point outside the
  // fleet entirely: a live cross-campus contender edge would have merged
  // the campuses at extraction time.
  std::vector<std::uint32_t> ids;
  ids.reserve(scans.size());
  for (const ApScan& s : scans) ids.push_back(s.id.value());
  std::vector<std::uint32_t> out;
  for (const ApScan& s : scans) {
    for (const NeighborReport& nb : s.neighbors) {
      if (nb.rssi < cfg_.planner.neighbor_rssi_floor) continue;
      const std::uint32_t v = nb.id.value();
      if (!std::binary_search(ids.begin(), ids.end(), v)) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void FleetController::install_campus(
    Campus&& campus, std::map<std::uint32_t, CampusState>* prior, Time) {
  CampusState st;
  st.scans = std::move(campus.scans);
  st.ghost_contenders = ghost_contenders_of(st.scans);
  if (prior != nullptr) {
    // Carry the stats cache and firing ordinal of a campus whose key
    // persisted (the cross-epoch aggregate reuse is the point of the
    // cache); a re-keyed campus starts fresh, exactly as the full path
    // treats it.
    const auto p = prior->find(campus.key);
    if (p != prior->end()) {
      st.cache = std::move(p->second.cache);
      st.runs = p->second.runs;
    }
  }
  if (!st.cache)
    st.cache =
        std::make_unique<flowsim::ScanStatsCache>(cfg_.stats_cache_capacity);
  for (const ApScan& s : st.scans) owner_[s.id.value()] = campus.key;
  for (const std::uint32_t g : st.ghost_contenders)
    ghost_rev_[g].push_back(campus.key);
  state_.emplace(campus.key, std::move(st));
}

void FleetController::unregister_campus(std::uint32_t key,
                                        const CampusState& st) {
  for (const std::uint32_t g : st.ghost_contenders) {
    const auto it = ghost_rev_.find(g);
    if (it == ghost_rev_.end()) continue;
    std::vector<std::uint32_t>& keys = it->second;
    keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
    if (keys.empty()) ghost_rev_.erase(it);
  }
}

void FleetController::adopt_epoch(ScanEpoch epoch, Time now) {
  const auto t0 = std::chrono::steady_clock::now();
  FleetPartition part = partition_fleet(
      epoch.scans, cfg_.planner.neighbor_rssi_floor, &scratch_);
  fleet_aps_ = part.total_aps;
  last_epoch_at_ = epoch.taken_at;

  // Rebuild the resident census wholesale. Keys absent from this epoch drop
  // their state; persisting keys carry cache + firing ordinal through
  // install_campus.
  std::map<std::uint32_t, CampusState> prior = std::move(state_);
  state_.clear();
  owner_.clear();
  ghost_rev_.clear();
  std::vector<std::uint32_t> keys;
  keys.reserve(part.campuses.size());
  for (Campus& campus : part.campuses) {
    keys.push_back(campus.key);
    install_campus(std::move(campus), &prior, now);
  }
  scheduler_.sync(keys, now);

  // Prune assignments for APs that left the fleet, and seed currents for
  // APs never planned, so fleet_plan() always covers exactly this epoch.
  ChannelPlan pruned;
  for (const auto& [key, st] : state_) {
    for (const ApScan& s : st.scans) {
      const auto it = planned_.find(s.id);
      pruned.emplace(s.id, it != planned_.end() ? it->second : s.current);
    }
  }
  planned_ = std::move(pruned);

  ++stats_.epochs_adopted;
  stats_.aps_repartitioned += part.total_aps;
  stats_.campuses_repartitioned += part.campuses.size();
  stats_.ingest_seconds += seconds_since(t0);
  W11_COUNT("fleet.epochs_adopted");
}

void FleetController::apply_delta(DeltaEpoch delta, Time now) {
  const auto t0 = std::chrono::steady_clock::now();

  // Normalize producer classification against the resident census: an
  // "update" for an unknown id is an add, an "add" for a present id is an
  // update, a removal of an unknown id is a no-op. Each is counted.
  std::vector<ApScan> added;
  std::vector<ApScan> updated;
  std::vector<std::uint32_t> removed;
  added.reserve(delta.added.size());
  updated.reserve(delta.updated.size());
  removed.reserve(delta.removed.size());
  for (ApScan& a : delta.added) {
    if (owner_.contains(a.id.value())) {
      ++stats_.deltas_normalized;
      updated.push_back(std::move(a));
    } else {
      added.push_back(std::move(a));
    }
  }
  for (ApScan& u : delta.updated) {
    if (owner_.contains(u.id.value())) {
      updated.push_back(std::move(u));
    } else {
      ++stats_.deltas_normalized;
      added.push_back(std::move(u));
    }
  }
  for (const ApId r : delta.removed) {
    if (owner_.contains(r.value())) {
      removed.push_back(r.value());
    } else {
      ++stats_.deltas_normalized;
    }
  }

  // Dirty marking: which resident campuses could the delta have changed in
  // *membership or topology*? Ordered set, so the pool below is assembled
  // deterministically.
  //
  //   * the campus of every removed AP, and of every updated AP whose
  //     neighbor reports changed (only neighbor edges feed the partition —
  //     a spectrum-only update is substituted in place and repartitions
  //     nothing, which is what keeps "1% churn" from ballooning into
  //     "every campus containing a churned AP");
  //   * the campus of every present AP that a topology-changed or added
  //     scan reports at contender grade (a new live edge can merge
  //     campuses; a *dropped* edge's far end was already in the updated
  //     AP's own campus, so marking its owner covers splits);
  //   * every campus whose members report an *added* id at contender grade
  //     (the ghost reverse index: a pre-existing report of an absent AP
  //     becomes a live edge the moment that AP appears).
  //
  // Unchanged scans cannot couple a dirty campus to a clean one beyond
  // this closure: any contender edge between two unchanged present APs
  // already placed them in the same campus.
  const Dbm floor = cfg_.planner.neighbor_rssi_floor;
  std::set<std::uint32_t> dirty;
  const auto mark_owner_of = [&](std::uint32_t id_value) {
    const auto it = owner_.find(id_value);
    if (it != owner_.end()) dirty.insert(it->second);
  };
  for (const std::uint32_t r : removed) mark_owner_of(r);

  // Apply scan updates in place (canonical slices: binary search by id),
  // classifying each as spectrum-only or topology-changing as it lands.
  // Campuses of content-only updates still need an out-of-band replan when
  // the producer asked for one — tracked by their (stable) key.
  std::set<std::uint32_t> content_touched;
  for (ApScan& u : updated) {
    const std::uint32_t key = owner_.at(u.id.value());
    CampusState& cs = state_.at(key);
    const auto it = std::lower_bound(
        cs.scans.begin(), cs.scans.end(), u.id,
        [](const ApScan& s, ApId id) { return s.id < id; });
    if (it->neighbors == u.neighbors) {
      if (cfg_.replan_on_delta) content_touched.insert(key);
    } else {
      dirty.insert(key);
      for (const NeighborReport& nb : u.neighbors)
        if (!(nb.rssi < floor)) mark_owner_of(nb.id.value());
    }
    *it = std::move(u);
  }
  for (const ApScan& a : added) {
    for (const NeighborReport& nb : a.neighbors)
      if (!(nb.rssi < floor)) mark_owner_of(nb.id.value());
    const auto g = ghost_rev_.find(a.id.value());
    if (g != ghost_rev_.end())
      for (const std::uint32_t key : g->second) dirty.insert(key);
  }

  // Assemble the dirty pool: every member of a dirty campus that survives
  // the delta, plus the added scans. Everything else keeps its cached
  // partition slice untouched — this is the O(churn) claim.
  std::vector<std::uint32_t> removed_sorted = removed;
  std::sort(removed_sorted.begin(), removed_sorted.end());
  std::vector<ApScan> pool;
  std::map<std::uint32_t, CampusState> prior;
  for (const std::uint32_t key : dirty) {
    const auto it = state_.find(key);
    W11_CHECK_MSG(it != state_.end(), "dirty campus vanished from the census");
    unregister_campus(key, it->second);
    for (ApScan& s : it->second.scans) {
      if (std::binary_search(removed_sorted.begin(), removed_sorted.end(),
                             s.id.value()))
        continue;
      pool.push_back(std::move(s));
    }
    prior.emplace(key, std::move(it->second));
    state_.erase(it);
  }
  for (const std::uint32_t r : removed_sorted) {
    owner_.erase(r);
    planned_.erase(ApId(r));
  }
  // Seed the assignment of record for new APs before their scans move.
  for (const ApScan& a : added) planned_.emplace(a.id, a.current);
  for (ApScan& a : added) pool.push_back(std::move(a));

  // Re-extract only the dirty components; splits, merges and re-keys all
  // fall out of the same partition pass the full path uses.
  FleetPartition part =
      partition_fleet(pool, floor, &scratch_);
  std::vector<std::uint32_t> new_keys;
  new_keys.reserve(part.campuses.size());
  for (Campus& campus : part.campuses) {
    new_keys.push_back(campus.key);
    install_campus(std::move(campus), &prior, now);
  }

  // Reconcile the scheduler in O(churn): keys that no longer exist are
  // dropped, keys that did not exist before fire a first-sighting pass.
  std::vector<std::uint32_t> dropped_keys;
  for (const std::uint32_t key : dirty)
    if (!std::binary_search(new_keys.begin(), new_keys.end(), key))
      dropped_keys.push_back(key);
  std::vector<std::uint32_t> added_keys;
  for (const std::uint32_t key : new_keys)
    if (!dirty.contains(key)) added_keys.push_back(key);
  scheduler_.apply_delta(added_keys, dropped_keys, now);
  if (cfg_.replan_on_delta) {
    // Every campus the delta touched: re-extracted ones under their new
    // keys, spectrum-only ones under their stable keys (a stale key — the
    // campus was also re-extracted — is silently ignored; its new home is
    // in new_keys).
    for (const std::uint32_t key : new_keys) scheduler_.request_replan(key);
    for (const std::uint32_t key : content_touched)
      scheduler_.request_replan(key);
  }

  fleet_aps_ += added.size();
  fleet_aps_ -= removed.size();
  last_epoch_at_ = delta.taken_at;
  ++stats_.deltas_adopted;
  stats_.campuses_repartitioned += dirty.size();
  stats_.aps_repartitioned += pool.size();
  stats_.ingest_seconds += seconds_since(t0);
  W11_COUNT("fleet.deltas_adopted");
  W11_COUNT_N("fleet.delta.aps_repartitioned", pool.size());
}

CampusPlanOutput FleetController::run_job(const PlanJob& job,
                                          const CampusState& cs,
                                          std::uint64_t stream,
                                          Time now) const {
  const auto t0 = std::chrono::steady_clock::now();
  CampusPlanOutput out;
  out.campus_key = job.campus_key;
  out.tier = job.tier;
  out.planned_at = now;
  out.n_aps = static_cast<std::uint32_t>(cs.scans.size());

  // The campus's slice of the fleet assignment of record (fallback to the
  // scanned current for APs the record somehow misses).
  ChannelPlan current;
  for (const ApScan& s : cs.scans) {
    const auto it = planned_.find(s.id);
    current.emplace(s.id, it != planned_.end() ? it->second : s.current);
  }

  turboca::TurboCA engine(cfg_.planner, shard_.rng_for(stream));
  engine.set_pool(cfg_.pool);
  // One index per firing, shared across the tier's hop levels; the stats
  // cache makes unchanged spectrum rows a copy instead of a recompute.
  flowsim::ScanIndex index(cs.scans, cfg_.planner.neighbor_rssi_floor,
                           cfg_.pool, cs.cache.get());
  for (const int level : tier_levels(job.tier)) {
    turboca::TurboCA::RunResult r = engine.run(index, current, level);
    out.improved = out.improved || r.improved;
    out.netp_log = r.netp_log;
    current = std::move(r.plan);
  }
  out.plan = std::move(current);
  out.plan_seconds = seconds_since(t0);
  return out;
}

void FleetController::tick(Time now) {
  ++stats_.ticks;
  W11_COUNT("fleet.ticks");
  stats_.epochs_dropped = offer_drops_.load(std::memory_order_relaxed);

  // Drain the ingest queue. Full epochs collapse to the newest (an older
  // census behind a newer one carries no information the planner should
  // act on); deltas then apply in arrival order on top of whatever is
  // adopted — a delta whose base is no longer the adopted epoch (stale, or
  // leapfrogged by a newer full census in the same batch) is rejected and
  // counted, and the producer recovers by sending a full epoch.
  std::vector<EpochUpdate> batch;
  while (std::optional<EpochUpdate> e = ingest_.try_pop())
    batch.push_back(std::move(*e));
  int newest_full = -1;
  for (int i = 0; i < static_cast<int>(batch.size()); ++i) {
    const ScanEpoch* full = std::get_if<ScanEpoch>(&batch[static_cast<std::size_t>(i)]);
    if (full == nullptr) continue;
    if (newest_full < 0 ||
        full->taken_at >
            std::get<ScanEpoch>(batch[static_cast<std::size_t>(newest_full)])
                .taken_at) {
      if (newest_full >= 0) ++stats_.epochs_superseded;
      newest_full = i;
    } else {
      ++stats_.epochs_superseded;
    }
  }
  if (newest_full >= 0) {
    ScanEpoch& e =
        std::get<ScanEpoch>(batch[static_cast<std::size_t>(newest_full)]);
    if (e.taken_at > last_epoch_at_) {
      adopt_epoch(std::move(e), now);
    } else {
      ++stats_.epochs_superseded;  // stale vs the already-adopted census
    }
  }
  for (EpochUpdate& u : batch) {
    DeltaEpoch* d = std::get_if<DeltaEpoch>(&u);
    if (d == nullptr) continue;
    if (d->taken_at <= last_epoch_at_ || d->base_taken_at != last_epoch_at_) {
      ++stats_.deltas_rejected;
      W11_COUNT("fleet.deltas_rejected");
      continue;
    }
    apply_delta(std::move(*d), now);
  }

  // Due jobs in priority order, cut to the output queue's free slots —
  // backpressure defers the tail deterministically (a deferred job keeps
  // its anchors and stays due next tick).
  std::vector<PlanJob> jobs = scheduler_.due(now);
  const std::size_t budget = out_.free_slots();
  if (jobs.size() > budget) {
    stats_.jobs_deferred += jobs.size() - budget;
    W11_COUNT_N("fleet.jobs_deferred", jobs.size() - budget);
    jobs.resize(budget);
  }

  if (!jobs.empty()) {
    // Serial prep: resolve campus state and derive each job's RNG stream
    // from (campus key, firing ordinal) — a pure function of the adopted
    // history, independent of worker count and interleaving.
    struct JobCtx {
      const PlanJob* job = nullptr;
      const CampusState* cs = nullptr;
      std::uint64_t stream = 0;
    };
    std::vector<JobCtx> ctx;
    ctx.reserve(jobs.size());
    for (const PlanJob& job : jobs) {
      const auto it = state_.find(job.campus_key);
      if (it == state_.end()) continue;  // dropped between sync and now
      JobCtx c;
      c.job = &job;
      c.cs = &it->second;
      c.stream = rng_detail::mix_seed(job.campus_key, it->second.runs);
      ++it->second.runs;
      ctx.push_back(c);
    }

    // One pool task per campus job. Tasks touch disjoint campus state
    // (scans, stats cache) plus read-only shared state (config, planned_).
    std::vector<CampusPlanOutput> outputs =
        pool().parallel_map<CampusPlanOutput>(ctx.size(), [&](std::size_t i) {
          return run_job(*ctx[i].job, *ctx[i].cs, ctx[i].stream, now);
        });

    for (std::size_t i = 0; i < outputs.size(); ++i) {
      // Space was reserved by the budget cut; a reject here is a logic bug.
      const bool pushed = out_.try_push(std::move(outputs[i]));
      W11_CHECK_MSG(pushed, "fleet output queue overflowed its budget");
      scheduler_.fired(*ctx[i].job, now);
      ++stats_.jobs_run;
      if (ctx[i].job->tier == Tier::kReplan) ++stats_.replans_run;
      W11_COUNT("fleet.jobs_run");
    }
  }

  drain_outputs();

  // Roll the per-campus cache counters up into the controller stats.
  stats_.cache_hits = stats_.cache_misses = stats_.cache_evictions = 0;
  for (const auto& [key, st] : state_) {
    const flowsim::ScanStatsCache::Stats& cs = st.cache->stats();
    stats_.cache_hits += cs.hits;
    stats_.cache_misses += cs.misses;
    stats_.cache_evictions += cs.evictions;
  }
}

void FleetController::drain_outputs() {
  while (std::optional<CampusPlanOutput> out = out_.try_pop()) {
    for (const auto& [id, ch] : out->plan) planned_[id] = ch;
    fold_digest(*out);
    ++stats_.plans_delivered;
    if (out->improved) ++stats_.plans_improved;
    stats_.aps_planned += out->n_aps;
    W11_COUNT("fleet.plans_delivered");
    W11_COUNT_N("fleet.aps_planned", out->n_aps);
    if (sink_) sink_(*out);
  }
}

void FleetController::fold_digest(const CampusPlanOutput& out) {
  fnv_mix_value(digest_, out.campus_key);
  fnv_mix_value(digest_, static_cast<std::uint8_t>(out.tier));
  fnv_mix_value(digest_, out.planned_at.ns());
  fnv_mix_value(digest_, out.n_aps);
  for (const auto& [id, ch] : out.plan) {
    fnv_mix_value(digest_, id.value());
    fnv_mix_value(digest_, static_cast<std::uint8_t>(ch.band));
    fnv_mix_value(digest_, static_cast<std::int32_t>(ch.number));
    fnv_mix_value(digest_, static_cast<std::uint8_t>(ch.width));
  }
  std::uint64_t netp_bits = 0;
  static_assert(sizeof(netp_bits) == sizeof(out.netp_log));
  std::memcpy(&netp_bits, &out.netp_log, sizeof(netp_bits));
  fnv_mix_value(digest_, netp_bits);
}

}  // namespace w11::fleet
