#include "fleet/controller.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/gate.hpp"

namespace w11::fleet {

namespace {

void fnv_mix(std::uint64_t& h, const void* p, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
}

template <class T>
void fnv_mix_value(std::uint64_t& h, T v) {
  fnv_mix(h, &v, sizeof(v));
}

}  // namespace

FleetController::FleetController(Config cfg)
    : cfg_(cfg),
      shard_(cfg.seed),
      ingest_(cfg.ingest_capacity),
      out_(cfg.output_capacity),
      scheduler_(cfg.cadence, cfg.seed) {}

bool FleetController::offer_epoch(ScanEpoch epoch) {
  const bool accepted = ingest_.try_push(std::move(epoch));
  if (!accepted) W11_COUNT("fleet.epochs_dropped");
  return accepted;
}

void FleetController::adopt_epoch(ScanEpoch epoch, Time now) {
  FleetPartition part =
      partition_fleet(epoch.scans, cfg_.planner.neighbor_rssi_floor);
  fleet_aps_ = part.total_aps;
  last_epoch_at_ = epoch.taken_at;

  // Rebuild campus state, carrying the stats cache and firing ordinal of
  // campuses that persisted (the cross-epoch aggregate reuse is the point
  // of the cache). Keys absent from this epoch drop their state.
  std::map<std::uint32_t, CampusState> next;
  std::vector<std::uint32_t> keys;
  keys.reserve(part.campuses.size());
  for (Campus& campus : part.campuses) {
    keys.push_back(campus.key);
    CampusState st;
    const auto prev = state_.find(campus.key);
    if (prev != state_.end()) {
      st.cache = std::move(prev->second.cache);
      st.runs = prev->second.runs;
    } else {
      st.cache =
          std::make_unique<flowsim::ScanStatsCache>(cfg_.stats_cache_capacity);
    }
    st.scans = std::move(campus.scans);
    next.emplace(campus.key, std::move(st));
  }
  state_ = std::move(next);
  scheduler_.sync(keys, now);

  // Prune assignments for APs that left the fleet, and seed currents for
  // APs never planned, so fleet_plan() always covers exactly this epoch.
  ChannelPlan pruned;
  for (const auto& [key, st] : state_) {
    for (const ApScan& s : st.scans) {
      const auto it = planned_.find(s.id);
      pruned.emplace(s.id, it != planned_.end() ? it->second : s.current);
    }
  }
  planned_ = std::move(pruned);

  ++stats_.epochs_adopted;
  W11_COUNT("fleet.epochs_adopted");
}

CampusPlanOutput FleetController::run_job(const PlanJob& job,
                                          const CampusState& cs,
                                          std::uint64_t stream,
                                          Time now) const {
  const auto t0 = std::chrono::steady_clock::now();
  CampusPlanOutput out;
  out.campus_key = job.campus_key;
  out.tier = job.tier;
  out.planned_at = now;
  out.n_aps = static_cast<std::uint32_t>(cs.scans.size());

  // The campus's slice of the fleet assignment of record (fallback to the
  // scanned current for APs the record somehow misses).
  ChannelPlan current;
  for (const ApScan& s : cs.scans) {
    const auto it = planned_.find(s.id);
    current.emplace(s.id, it != planned_.end() ? it->second : s.current);
  }

  turboca::TurboCA engine(cfg_.planner, shard_.rng_for(stream));
  engine.set_pool(cfg_.pool);
  // One index per firing, shared across the tier's hop levels; the stats
  // cache makes unchanged spectrum rows a copy instead of a recompute.
  flowsim::ScanIndex index(cs.scans, cfg_.planner.neighbor_rssi_floor,
                           cfg_.pool, cs.cache.get());
  for (const int level : tier_levels(job.tier)) {
    turboca::TurboCA::RunResult r = engine.run(index, current, level);
    out.improved = out.improved || r.improved;
    out.netp_log = r.netp_log;
    current = std::move(r.plan);
  }
  out.plan = std::move(current);
  out.plan_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

void FleetController::tick(Time now) {
  ++stats_.ticks;
  W11_COUNT("fleet.ticks");

  // Drain the ingest queue; adopt the newest census, count the rest as
  // superseded (an older epoch behind a newer one carries no information
  // the planner should act on).
  std::optional<ScanEpoch> newest;
  while (std::optional<ScanEpoch> e = ingest_.try_pop()) {
    if (!newest || e->taken_at > newest->taken_at) {
      if (newest) ++stats_.epochs_superseded;
      newest = std::move(e);
    } else {
      ++stats_.epochs_superseded;
    }
  }
  if (newest) {
    if (newest->taken_at > last_epoch_at_) {
      adopt_epoch(std::move(*newest), now);
    } else {
      ++stats_.epochs_superseded;  // stale vs the already-adopted census
    }
  }

  // Due jobs in priority order, cut to the output queue's free slots —
  // backpressure defers the tail deterministically (a deferred job keeps
  // its anchors and stays due next tick).
  std::vector<PlanJob> jobs = scheduler_.due(now);
  const std::size_t budget = out_.free_slots();
  if (jobs.size() > budget) {
    stats_.jobs_deferred += jobs.size() - budget;
    W11_COUNT_N("fleet.jobs_deferred", jobs.size() - budget);
    jobs.resize(budget);
  }

  if (!jobs.empty()) {
    // Serial prep: resolve campus state and derive each job's RNG stream
    // from (campus key, firing ordinal) — a pure function of the adopted
    // history, independent of worker count and interleaving.
    struct JobCtx {
      const PlanJob* job = nullptr;
      const CampusState* cs = nullptr;
      std::uint64_t stream = 0;
    };
    std::vector<JobCtx> ctx;
    ctx.reserve(jobs.size());
    for (const PlanJob& job : jobs) {
      const auto it = state_.find(job.campus_key);
      if (it == state_.end()) continue;  // dropped between sync and now
      JobCtx c;
      c.job = &job;
      c.cs = &it->second;
      c.stream = rng_detail::mix_seed(job.campus_key, it->second.runs);
      ++it->second.runs;
      ctx.push_back(c);
    }

    // One pool task per campus job. Tasks touch disjoint campus state
    // (scans, stats cache) plus read-only shared state (config, planned_).
    std::vector<CampusPlanOutput> outputs =
        pool().parallel_map<CampusPlanOutput>(ctx.size(), [&](std::size_t i) {
          return run_job(*ctx[i].job, *ctx[i].cs, ctx[i].stream, now);
        });

    for (std::size_t i = 0; i < outputs.size(); ++i) {
      // Space was reserved by the budget cut; a reject here is a logic bug.
      const bool pushed = out_.try_push(std::move(outputs[i]));
      W11_CHECK_MSG(pushed, "fleet output queue overflowed its budget");
      scheduler_.fired(*ctx[i].job, now);
      ++stats_.jobs_run;
      if (ctx[i].job->tier == Tier::kReplan) ++stats_.replans_run;
      W11_COUNT("fleet.jobs_run");
    }
  }

  drain_outputs();

  // Roll the per-campus cache counters up into the controller stats.
  stats_.cache_hits = stats_.cache_misses = stats_.cache_evictions = 0;
  for (const auto& [key, st] : state_) {
    const flowsim::ScanStatsCache::Stats& cs = st.cache->stats();
    stats_.cache_hits += cs.hits;
    stats_.cache_misses += cs.misses;
    stats_.cache_evictions += cs.evictions;
  }
}

void FleetController::drain_outputs() {
  while (std::optional<CampusPlanOutput> out = out_.try_pop()) {
    for (const auto& [id, ch] : out->plan) planned_[id] = ch;
    fold_digest(*out);
    ++stats_.plans_delivered;
    if (out->improved) ++stats_.plans_improved;
    stats_.aps_planned += out->n_aps;
    W11_COUNT("fleet.plans_delivered");
    W11_COUNT_N("fleet.aps_planned", out->n_aps);
    if (sink_) sink_(*out);
  }
}

void FleetController::fold_digest(const CampusPlanOutput& out) {
  fnv_mix_value(digest_, out.campus_key);
  fnv_mix_value(digest_, static_cast<std::uint8_t>(out.tier));
  fnv_mix_value(digest_, out.planned_at.ns());
  fnv_mix_value(digest_, out.n_aps);
  for (const auto& [id, ch] : out.plan) {
    fnv_mix_value(digest_, id.value());
    fnv_mix_value(digest_, static_cast<std::uint8_t>(ch.band));
    fnv_mix_value(digest_, static_cast<std::int32_t>(ch.number));
    fnv_mix_value(digest_, static_cast<std::uint8_t>(ch.width));
  }
  std::uint64_t netp_bits = 0;
  static_assert(sizeof(netp_bits) == sizeof(out.netp_log));
  std::memcpy(&netp_bits, &out.netp_log, sizeof(netp_bits));
  fnv_mix_value(digest_, netp_bits);
}

}  // namespace w11::fleet
