#pragma once
// FleetController: the sharded planning pipeline (DESIGN.md §15).
//
// One controller plans an entire AP population per cycle:
//
//   collector shards --offer_epoch--> [MPMC ingest queue, bounded]
//        tick(now):
//          drain ingest (adopt the newest epoch, count superseded)
//          partition_fleet  -> interference-isolated campuses
//          CadenceScheduler -> due jobs (replans first), clamped to the
//                              output queue's free slots (backpressure)
//          TaskPool         -> one task per campus job: ScanIndex build +
//                              TurboCA NBO at the tier's hop levels, with a
//                              per-campus ShardRng stream and a per-campus
//                              bounded ScanStatsCache
//          [SPSC output queue, bounded] --drain--> plan sink (PlanFanout /
//                              telemetry ingest), fleet plan digest
//
// Determinism contract: the delivered plan stream — and therefore
// plan_digest() — is a pure function of (config seed, the sequence of
// adopted epochs, the tick times). Campus jobs are independent by the
// partition isolation argument, each draws from its own (campus key, run
// ordinal) RNG stream, outputs are pushed in job order, and every serial
// decision (adoption, partition, scheduling, backpressure cuts) happens on
// the ticking thread. Worker count changes wall-clock only.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "core/turboca/turboca.hpp"
#include "exec/shard_rng.hpp"
#include "exec/task_pool.hpp"
#include "fleet/partition.hpp"
#include "fleet/queues.hpp"
#include "fleet/scheduler.hpp"
#include "flowsim/scan.hpp"
#include "flowsim/scan_index.hpp"

namespace w11::fleet {

// One population-wide scan census, as a collector shard delivers it.
struct ScanEpoch {
  Time taken_at{};
  std::vector<ApScan> scans;
};

// One campus planning result, as drained from the output queue.
struct CampusPlanOutput {
  std::uint32_t campus_key = 0;
  Tier tier = Tier::kFast;
  Time planned_at{};
  std::uint32_t n_aps = 0;
  ChannelPlan plan;
  double netp_log = 0.0;
  bool improved = false;
  // Wall-clock seconds the planning task took (per-campus plan latency).
  // Measurement only — never part of the plan digest.
  double plan_seconds = 0.0;
};

class FleetController {
 public:
  struct Config {
    turboca::Params planner;  // neighbor_rssi_floor also drives partitioning
    CadenceScheduler::Cadence cadence;
    std::uint64_t seed = 1;
    std::size_t ingest_capacity = 16;    // scan epochs buffered
    std::size_t output_capacity = 4096;  // campus plans buffered per tick
    // Per-campus spectrum-aggregate cache bound (0 disables reuse).
    std::size_t stats_cache_capacity = 256;
    exec::TaskPool* pool = nullptr;  // nullptr = TaskPool::global()
  };

  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t epochs_adopted = 0;
    std::uint64_t epochs_superseded = 0;  // drained but older than the adopted
    std::uint64_t jobs_run = 0;
    std::uint64_t jobs_deferred = 0;  // due but cut by output backpressure
    std::uint64_t replans_run = 0;
    std::uint64_t plans_delivered = 0;
    std::uint64_t plans_improved = 0;
    std::uint64_t aps_planned = 0;  // summed over delivered plans
    std::uint64_t cache_hits = 0;   // summed over campus stats caches
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;
  };

  // Delivery hook for drained plans (rollout fanout, telemetry ingest).
  // Called on the ticking thread, in job order.
  using PlanSink = std::function<void(const CampusPlanOutput&)>;

  explicit FleetController(Config cfg);

  // Producer side (thread-safe): offer one scan epoch. False = the bounded
  // ingest queue was full and the epoch was dropped (the next poll's census
  // supersedes it anyway — dropping the oldest work is the right shedding).
  bool offer_epoch(ScanEpoch epoch);

  void set_plan_sink(PlanSink sink) { sink_ = std::move(sink); }

  // Out-of-band priority replan for the campus owning this key.
  void request_replan(std::uint32_t campus_key) {
    scheduler_.request_replan(campus_key);
  }

  // One planning cycle at time `now`. Everything serial happens here.
  void tick(Time now);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] QueueStats ingest_stats() const { return ingest_.stats(); }
  [[nodiscard]] QueueStats output_stats() const { return out_.stats(); }
  [[nodiscard]] const CadenceScheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] std::size_t campus_count() const { return state_.size(); }
  [[nodiscard]] std::size_t fleet_aps() const { return fleet_aps_; }

  // FNV-1a over every delivered plan, in delivery order: campus key, tier,
  // plan timestamp, each (ApId, band, number, width) assignment, and the
  // netp_log bits. The worker-count byte-equivalence witness.
  [[nodiscard]] std::uint64_t plan_digest() const { return digest_; }

  // The fleet-wide assignment of record (last delivered channel per AP,
  // seeded from scan currents for never-planned APs).
  [[nodiscard]] const ChannelPlan& fleet_plan() const { return planned_; }

  // Visit every tracked campus (ascending key) with its latest epoch slice
  // — the per-campus telemetry poll reads through this.
  template <class F>
  void for_each_campus(F&& fn) const {
    for (const auto& [key, st] : state_) fn(key, st.scans);
  }

 private:
  struct CampusState {
    std::vector<ApScan> scans;  // latest adopted epoch, epoch order
    std::unique_ptr<flowsim::ScanStatsCache> cache;
    std::uint64_t runs = 0;  // firing ordinal (RNG stream derivation)
  };

  [[nodiscard]] exec::TaskPool& pool() const {
    return cfg_.pool ? *cfg_.pool : exec::TaskPool::global();
  }

  void adopt_epoch(ScanEpoch epoch, Time now);
  [[nodiscard]] CampusPlanOutput run_job(const PlanJob& job,
                                         const CampusState& cs,
                                         std::uint64_t stream, Time now) const;
  void drain_outputs();
  void fold_digest(const CampusPlanOutput& out);

  Config cfg_;
  exec::ShardRng shard_;
  MpmcQueue<ScanEpoch> ingest_;
  SpscQueue<CampusPlanOutput> out_;
  CadenceScheduler scheduler_;
  std::map<std::uint32_t, CampusState> state_;  // key-ordered
  ChannelPlan planned_;
  std::size_t fleet_aps_ = 0;
  Time last_epoch_at_ = time::nanos(-1);  // newest adopted taken_at
  PlanSink sink_;
  std::uint64_t digest_ = 1469598103934665603ULL;  // FNV-1a offset basis
  Stats stats_;
};

}  // namespace w11::fleet
