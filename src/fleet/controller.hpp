#pragma once
// FleetController: the sharded planning pipeline (DESIGN.md §15, §16).
//
// One controller plans an entire AP population per cycle:
//
//   collector shards --offer_epoch/offer_delta--> [MPMC ingest queue, bounded]
//        tick(now):
//          drain ingest (adopt the newest full epoch, count superseded;
//                        then apply deltas in arrival order on top)
//          partition_fleet  -> interference-isolated campuses. Full epochs
//                              re-partition everything; deltas re-extract
//                              only the dirty components (O(churn))
//          CadenceScheduler -> due jobs (replans first), clamped to the
//                              output queue's free slots (backpressure)
//          TaskPool         -> one task per campus job: ScanIndex build +
//                              TurboCA NBO at the tier's hop levels, with a
//                              per-campus ShardRng stream and a per-campus
//                              bounded ScanStatsCache
//          [SPSC output queue, bounded] --drain--> plan sink (PlanFanout /
//                              telemetry ingest), fleet plan digest
//
// The controller owns a *resident census*: each campus's canonical
// (id-ascending) scan slice lives in CampusState and survives across
// epochs. A full ScanEpoch replaces it wholesale; a DeltaEpoch edits it in
// place and re-extracts only campuses the delta touched — everything else
// keeps its cached partition slice, scheduler anchors, firing ordinals and
// spectrum-aggregate cache. See apply_delta() for the dirty-marking rules
// (including the ghost-contender index that catches an added AP activating
// a pre-existing above-floor neighbor report).
//
// Determinism contract: the delivered plan stream — and therefore
// plan_digest() — is a pure function of (config seed, the sequence of
// adopted epoch updates, the tick times). Campus jobs are independent by
// the partition isolation argument, each draws from its own (campus key,
// run ordinal) RNG stream, outputs are pushed in job order, and every
// serial decision (adoption, delta application, partition, scheduling,
// backpressure cuts) happens on the ticking thread. Worker count changes
// wall-clock only. Replaying the same census trajectory as full epochs or
// as deltas yields byte-identical plan streams (the FleetDelta golden
// suite pins this).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/time.hpp"
#include "core/turboca/turboca.hpp"
#include "exec/shard_rng.hpp"
#include "exec/task_pool.hpp"
#include "fleet/delta.hpp"
#include "fleet/partition.hpp"
#include "fleet/queues.hpp"
#include "fleet/scheduler.hpp"
#include "flowsim/scan.hpp"
#include "flowsim/scan_index.hpp"

namespace w11::fleet {

// One population-wide scan census, as a collector shard delivers it.
struct ScanEpoch {
  Time taken_at{};
  std::vector<ApScan> scans;
};

// What the ingest queue carries: a full census or a delta against the last
// adopted one (fleet/delta.hpp).
using EpochUpdate = std::variant<ScanEpoch, DeltaEpoch>;

// One campus planning result, as drained from the output queue.
struct CampusPlanOutput {
  std::uint32_t campus_key = 0;
  Tier tier = Tier::kFast;
  Time planned_at{};
  std::uint32_t n_aps = 0;
  ChannelPlan plan;
  double netp_log = 0.0;
  bool improved = false;
  // Wall-clock seconds the planning task took (per-campus plan latency).
  // Measurement only — never part of the plan digest.
  double plan_seconds = 0.0;
};

class FleetController {
 public:
  struct Config {
    turboca::Params planner;  // neighbor_rssi_floor also drives partitioning
    CadenceScheduler::Cadence cadence;
    std::uint64_t seed = 1;
    std::size_t ingest_capacity = 16;    // epoch updates buffered
    std::size_t output_capacity = 4096;  // campus plans buffered per tick
    // Per-campus spectrum-aggregate cache bound (0 disables reuse).
    std::size_t stats_cache_capacity = 256;
    // Request an out-of-band priority replan for every campus a delta
    // touches (for producers that push deltas faster than the fast
    // cadence). Off by default: replan jobs carry Tier::kReplan, so the
    // delivered tier stream — and the digest — diverges from a full-epoch
    // replay of the same censuses, which only replans on cadence.
    bool replan_on_delta = false;
    exec::TaskPool* pool = nullptr;  // nullptr = TaskPool::global()
  };

  // Condensed pipeline-health snapshot (plain types, derived from Stats +
  // queue stats) for bench mains and the fleet health engine's SLIs.
  struct Health {
    double epochs_dropped_rate = 0.0;  // dropped / offered epochs
    double jobs_deferred_rate = 0.0;   // deferred / (run + deferred)
    double cache_hit_ratio = 0.0;      // hits / (hits + misses)
    std::uint64_t epochs_dropped = 0;
    std::uint64_t jobs_deferred = 0;
    std::uint64_t ingest_high_water = 0;
    std::uint64_t output_high_water = 0;
    std::uint64_t output_rejected = 0;
    std::uint64_t plans_delivered = 0;
    std::size_t campuses = 0;
    std::size_t fleet_aps = 0;
  };

  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t epochs_adopted = 0;
    std::uint64_t epochs_superseded = 0;  // drained but older than the adopted
    // offer_epoch/offer_delta rejections (bounded ingest queue was full) —
    // the backpressure loss headless callers need next to the adoption
    // counters. Synced from the producer-side counter at each tick, so it
    // is current "as of the last tick".
    std::uint64_t epochs_dropped = 0;
    std::uint64_t deltas_adopted = 0;
    std::uint64_t deltas_rejected = 0;    // base mismatch or stale timestamp
    std::uint64_t deltas_normalized = 0;  // add/update/remove reclassified
    std::uint64_t campuses_repartitioned = 0;  // dirty components re-extracted
    std::uint64_t aps_repartitioned = 0;       // scans fed to partition_fleet
    // Wall-clock seconds spent adopting censuses (full or delta): dirty
    // marking, in-place application, partition_fleet, state/scheduler/plan
    // reconciliation. The churn-sweep bench reads this — measurement only,
    // never part of the digest.
    double ingest_seconds = 0.0;
    std::uint64_t jobs_run = 0;
    std::uint64_t jobs_deferred = 0;  // due but cut by output backpressure
    std::uint64_t replans_run = 0;
    std::uint64_t plans_delivered = 0;
    std::uint64_t plans_improved = 0;
    std::uint64_t aps_planned = 0;  // summed over delivered plans
    std::uint64_t cache_hits = 0;   // summed over campus stats caches
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;
  };

  // Delivery hook for drained plans (rollout fanout, telemetry ingest).
  // Called on the ticking thread, in job order.
  using PlanSink = std::function<void(const CampusPlanOutput&)>;

  explicit FleetController(Config cfg);

  // Producer side (thread-safe): offer one full scan epoch. False = the
  // bounded ingest queue was full and the epoch was dropped (the next
  // poll's census supersedes it anyway — dropping the oldest work is the
  // right shedding).
  bool offer_epoch(ScanEpoch epoch);

  // Producer side (thread-safe): offer one delta against the last adopted
  // epoch. Same drop semantics; a dropped delta breaks the chain, so the
  // producer should fall back to a full epoch when this returns false.
  bool offer_delta(DeltaEpoch delta);

  void set_plan_sink(PlanSink sink) { sink_ = std::move(sink); }

  // Out-of-band priority replan for the campus owning this key.
  void request_replan(std::uint32_t campus_key) {
    scheduler_.request_replan(campus_key);
  }

  // One planning cycle at time `now`. Everything serial happens here.
  void tick(Time now);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] QueueStats ingest_stats() const { return ingest_.stats(); }
  [[nodiscard]] QueueStats output_stats() const { return out_.stats(); }
  [[nodiscard]] Health health() const {
    Health h;
    const QueueStats in_q = ingest_stats();
    const QueueStats out_q = output_stats();
    const std::uint64_t offered = in_q.pushed + in_q.rejected;
    h.epochs_dropped = in_q.rejected;
    h.epochs_dropped_rate =
        offered > 0
            ? static_cast<double>(in_q.rejected) / static_cast<double>(offered)
            : 0.0;
    const std::uint64_t jobs = stats_.jobs_run + stats_.jobs_deferred;
    h.jobs_deferred = stats_.jobs_deferred;
    h.jobs_deferred_rate =
        jobs > 0 ? static_cast<double>(stats_.jobs_deferred) /
                       static_cast<double>(jobs)
                 : 0.0;
    const std::uint64_t probes = stats_.cache_hits + stats_.cache_misses;
    h.cache_hit_ratio =
        probes > 0 ? static_cast<double>(stats_.cache_hits) /
                         static_cast<double>(probes)
                   : 0.0;
    h.ingest_high_water = in_q.high_water;
    h.output_high_water = out_q.high_water;
    h.output_rejected = out_q.rejected;
    h.plans_delivered = stats_.plans_delivered;
    h.campuses = campus_count();
    h.fleet_aps = fleet_aps_;
    return h;
  }
  [[nodiscard]] const CadenceScheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] std::size_t campus_count() const { return state_.size(); }
  [[nodiscard]] std::size_t fleet_aps() const { return fleet_aps_; }

  // Campus key owning this AP in the resident census (nullopt if unknown).
  [[nodiscard]] std::optional<std::uint32_t> campus_of(ApId id) const {
    const auto it = owner_.find(id.value());
    if (it == owner_.end()) return std::nullopt;
    return it->second;
  }

  // The resident canonical scan slice of one campus (nullptr if unknown).
  [[nodiscard]] const std::vector<ApScan>* campus_scans(
      std::uint32_t key) const {
    const auto it = state_.find(key);
    return it == state_.end() ? nullptr : &it->second.scans;
  }

  // FNV-1a over every delivered plan, in delivery order: campus key, tier,
  // plan timestamp, each (ApId, band, number, width) assignment, and the
  // netp_log bits. The worker-count byte-equivalence witness.
  [[nodiscard]] std::uint64_t plan_digest() const { return digest_; }

  // The fleet-wide assignment of record (last delivered channel per AP,
  // seeded from scan currents for never-planned APs).
  [[nodiscard]] const ChannelPlan& fleet_plan() const { return planned_; }

  // Visit every tracked campus (ascending key) with its latest epoch slice
  // — the per-campus telemetry poll reads through this.
  template <class F>
  void for_each_campus(F&& fn) const {
    for (const auto& [key, st] : state_) fn(key, st.scans);
  }

 private:
  struct CampusState {
    std::vector<ApScan> scans;  // resident slice, canonical id-ascending
    // Ids reported at contender-grade RSSI by members but absent from the
    // fleet (sorted, unique). If such an id is later *added*, the report
    // becomes a live contender edge and this campus must merge — the
    // ghost reverse index below finds it in O(1).
    std::vector<std::uint32_t> ghost_contenders;
    std::unique_ptr<flowsim::ScanStatsCache> cache;
    std::uint64_t runs = 0;  // firing ordinal (RNG stream derivation)
  };

  [[nodiscard]] exec::TaskPool& pool() const {
    return cfg_.pool ? *cfg_.pool : exec::TaskPool::global();
  }

  void adopt_epoch(ScanEpoch epoch, Time now);
  void apply_delta(DeltaEpoch delta, Time now);
  // Install one freshly extracted campus, carrying cache/runs from `prior`
  // when its key persisted, and registering owner_/ghost_rev_ entries.
  void install_campus(Campus&& campus,
                      std::map<std::uint32_t, CampusState>* prior, Time now);
  // Remove a campus's owner_/ghost_rev_ registrations (state_ erase is the
  // caller's job — the dirty pool still needs the scans).
  void unregister_campus(std::uint32_t key, const CampusState& st);
  [[nodiscard]] std::vector<std::uint32_t> ghost_contenders_of(
      const std::vector<ApScan>& scans) const;
  [[nodiscard]] CampusPlanOutput run_job(const PlanJob& job,
                                         const CampusState& cs,
                                         std::uint64_t stream, Time now) const;
  void drain_outputs();
  void fold_digest(const CampusPlanOutput& out);

  Config cfg_;
  exec::ShardRng shard_;
  MpmcQueue<EpochUpdate> ingest_;
  SpscQueue<CampusPlanOutput> out_;
  CadenceScheduler scheduler_;
  std::map<std::uint32_t, CampusState> state_;  // key-ordered
  // Resident census lookup: AP id value -> owning campus key.
  std::unordered_map<std::uint32_t, std::uint32_t> owner_;
  // Ghost reverse index: absent id value -> campus keys whose members
  // report it at contender-grade RSSI.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> ghost_rev_;
  PartitionScratch scratch_;
  ChannelPlan planned_;
  std::size_t fleet_aps_ = 0;
  Time last_epoch_at_ = time::nanos(-1);  // newest adopted taken_at
  PlanSink sink_;
  std::uint64_t digest_ = 1469598103934665603ULL;  // FNV-1a offset basis
  std::atomic<std::uint64_t> offer_drops_{0};  // producer-side, tick-synced
  Stats stats_;
};

}  // namespace w11::fleet
