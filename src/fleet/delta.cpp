#include "fleet/delta.hpp"

#include <algorithm>

namespace w11::fleet {

DeltaEpoch diff_epochs(const std::vector<ApScan>& base,
                       const std::vector<ApScan>& next, Time base_at,
                       Time next_at) {
  DeltaEpoch d;
  d.taken_at = next_at;
  d.base_taken_at = base_at;

  // Merge-walk over id-sorted position lists (the censuses themselves may
  // arrive in any order).
  auto sorted_positions = [](const std::vector<ApScan>& scans) {
    std::vector<std::uint32_t> pos(scans.size());
    for (std::uint32_t i = 0; i < pos.size(); ++i) pos[i] = i;
    std::sort(pos.begin(), pos.end(), [&](std::uint32_t a, std::uint32_t b) {
      return scans[a].id < scans[b].id;
    });
    return pos;
  };
  const std::vector<std::uint32_t> bp = sorted_positions(base);
  const std::vector<std::uint32_t> np = sorted_positions(next);

  std::size_t i = 0, j = 0;
  while (i < bp.size() || j < np.size()) {
    if (i == bp.size()) {
      d.added.push_back(next[np[j++]]);
    } else if (j == np.size()) {
      d.removed.push_back(base[bp[i++]].id);
    } else {
      const ApScan& b = base[bp[i]];
      const ApScan& n = next[np[j]];
      if (b.id < n.id) {
        d.removed.push_back(b.id);
        ++i;
      } else if (n.id < b.id) {
        d.added.push_back(n);
        ++j;
      } else {
        if (!(b == n)) d.updated.push_back(n);
        ++i;
        ++j;
      }
    }
  }
  return d;
}

}  // namespace w11::fleet
