#pragma once
// Delta epochs: O(churn) census ingestion for the fleet controller
// (DESIGN.md §16).
//
// A full ScanEpoch ships a copy of the entire population census and forces
// the controller to re-partition everything from scratch — O(fleet) per
// poll, even though real deployments are overwhelmingly stable between
// 15-minute scans (the paper's campus measurements; WACA shows the change
// that does happen is bursty and localized). A DeltaEpoch instead describes
// the census *relative to the last adopted epoch*:
//
//   * added    — full scans for APs that joined the fleet;
//   * removed  — ids of APs that left;
//   * updated  — full replacement scans for APs whose snapshot changed
//                (spectrum, load, neighbors — any field).
//
// Chaining contract: a delta applies only on top of the exact epoch it was
// produced against. `base_taken_at` must equal the controller's last adopted
// timestamp; a mismatched delta is rejected and counted (the producer's
// recovery is to send a full epoch). Deltas commute with nothing — the
// controller applies them in arrival order.
//
// Producers may be sloppy about add/update classification: the controller
// normalizes an "updated" scan whose id is unknown into an add, an "added"
// scan whose id is present into an update, and ignores removals of unknown
// ids (each normalization is counted). What producers must NOT do is omit a
// change — the golden equivalence suite (tests/test_fleet_delta.cpp) pins
// that a faithfully diffed delta stream reproduces the full-epoch plan
// stream byte for byte.

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "flowsim/scan.hpp"

namespace w11::fleet {

struct DeltaEpoch {
  Time taken_at{};       // census timestamp this delta advances to
  Time base_taken_at{};  // adopted epoch this delta was diffed against
  std::vector<ApScan> added;
  std::vector<ApScan> updated;
  std::vector<ApId> removed;

  [[nodiscard]] bool empty() const {
    return added.empty() && updated.empty() && removed.empty();
  }
  [[nodiscard]] std::size_t touched() const {
    return added.size() + updated.size() + removed.size();
  }
};

// Diff two censuses into a delta (base at `base_at` -> next at `next_at`).
// Scans are matched by id; an AP present in both with field-wise-unequal
// scans lands in `updated`. Output vectors are in ascending id order, so
// equal census pairs diff to byte-equal deltas regardless of input order.
// O(n log n) — this is the reference producer for tests and for collectors
// that only have snapshot pairs; a real churn-aware collector emits deltas
// directly in O(churn).
[[nodiscard]] DeltaEpoch diff_epochs(const std::vector<ApScan>& base,
                                     const std::vector<ApScan>& next,
                                     Time base_at, Time next_at);

}  // namespace w11::fleet
