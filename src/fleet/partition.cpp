#include "fleet/partition.hpp"

#include <algorithm>

#include "obs/gate.hpp"

namespace w11::fleet {

FleetPartition partition_fleet(const std::vector<ApScan>& scans,
                               Dbm contender_rssi_floor,
                               PartitionScratch* scratch) {
  FleetPartition out;
  out.total_aps = scans.size();
  if (scans.empty()) return out;

  PartitionScratch local;
  PartitionScratch& s = scratch ? *scratch : local;
  flowsim::contender_components(scans, contender_rssi_floor, s.components,
                                &s.uf);
  const flowsim::ContentionComponents& cc = s.components;

  out.campuses.resize(cc.count);
  for (std::size_t c = 0; c < cc.count; ++c) {
    Campus& campus = out.campuses[c];
    const std::vector<std::uint32_t>& members = cc.members[c];
    campus.scans.reserve(members.size());
    for (const std::uint32_t pos : members) campus.scans.push_back(scans[pos]);
    // Canonical slice order: ascending ApId, whatever order the input had.
    std::sort(campus.scans.begin(), campus.scans.end(),
              [](const ApScan& a, const ApScan& b) { return a.id < b.id; });
    campus.key = campus.scans.front().id.value();
    out.largest_campus = std::max(out.largest_campus, members.size());
  }
  std::sort(out.campuses.begin(), out.campuses.end(),
            [](const Campus& a, const Campus& b) { return a.key < b.key; });

  W11_COUNT_N("fleet.partition.campuses", out.campuses.size());
  W11_COUNT_N("fleet.partition.aps", out.total_aps);
  return out;
}

}  // namespace w11::fleet
