#include "fleet/partition.hpp"

#include <algorithm>

#include "flowsim/contention.hpp"
#include "obs/gate.hpp"

namespace w11::fleet {

FleetPartition partition_fleet(const std::vector<ApScan>& scans,
                               Dbm contender_rssi_floor) {
  FleetPartition out;
  out.total_aps = scans.size();
  if (scans.empty()) return out;

  const flowsim::ContentionComponents cc =
      flowsim::contender_components(scans, contender_rssi_floor);

  out.campuses.resize(cc.count);
  for (std::size_t c = 0; c < cc.count; ++c) {
    Campus& campus = out.campuses[c];
    const std::vector<std::uint32_t>& members = cc.members[c];
    campus.scans.reserve(members.size());
    campus.key = scans[members.front()].id.value();
    for (const std::uint32_t pos : members) {
      campus.key = std::min(campus.key, scans[pos].id.value());
      campus.scans.push_back(scans[pos]);
    }
    out.largest_campus = std::max(out.largest_campus, members.size());
  }
  std::sort(out.campuses.begin(), out.campuses.end(),
            [](const Campus& a, const Campus& b) { return a.key < b.key; });

  W11_COUNT_N("fleet.partition.campuses", out.campuses.size());
  W11_COUNT_N("fleet.partition.aps", out.total_aps);
  return out;
}

}  // namespace w11::fleet
