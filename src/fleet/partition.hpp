#pragma once
// Campus partitioner: interference-isolated planning units (DESIGN.md §15).
//
// A continental fleet is not one planning problem. The planner's coupling
// structure (see flowsim/contention.hpp) makes connected components of the
// contender graph *exactly* independent: no NodeP term crosses a component
// boundary, so planning each component with its own RNG stream produces the
// plan a fleet-wide run restricted to that component would produce. This
// module turns one population-wide scan epoch into those units:
//
//   * campus key — the minimum ApId value among members. Stable across
//     epochs as long as that AP stays present, independent of scan order
//     and of how many other campuses exist; it is the identity the cadence
//     scheduler and RNG stream derivation hang off.
//   * members — per-campus scan vectors, in epoch order, so a campus's
//     planning input is byte-identical to the corresponding slice of the
//     fleet epoch.

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "flowsim/scan.hpp"

namespace w11::fleet {

struct Campus {
  std::uint32_t key = 0;             // min ApId value among members
  std::vector<ApScan> scans;         // members, epoch order
};

struct FleetPartition {
  // Campuses in ascending key order (deterministic iteration order for
  // scheduling, digesting and reporting).
  std::vector<Campus> campuses;
  std::size_t total_aps = 0;
  std::size_t largest_campus = 0;
};

// Partition one scan epoch with the same contender floor the planner will
// use. Equal epochs give byte-equal partitions at any worker count (the
// component pass is serial; extraction preserves epoch order).
[[nodiscard]] FleetPartition partition_fleet(const std::vector<ApScan>& scans,
                                             Dbm contender_rssi_floor);

}  // namespace w11::fleet
