#pragma once
// Campus partitioner: interference-isolated planning units (DESIGN.md §15).
//
// A continental fleet is not one planning problem. The planner's coupling
// structure (see flowsim/contention.hpp) makes connected components of the
// contender graph *exactly* independent: no NodeP term crosses a component
// boundary, so planning each component with its own RNG stream produces the
// plan a fleet-wide run restricted to that component would produce. This
// module turns one population-wide scan epoch into those units:
//
//   * campus key — the minimum ApId value among members. Stable across
//     epochs as long as that AP stays present, independent of scan order
//     and of how many other campuses exist; it is the identity the cadence
//     scheduler and RNG stream derivation hang off.
//   * members — per-campus scan vectors in *canonical* (ascending ApId)
//     order, independent of the input's scan order. Canonical order is what
//     makes the delta-epoch path (DESIGN.md §16) byte-equivalent to full
//     re-partitioning: a dirty-component re-extraction feeds partition_fleet
//     a concatenation of cached slices plus added scans, which generally is
//     NOT the original epoch order — sorting each campus by id erases that
//     difference, so a campus's planning input depends only on its member
//     *set* and their scan contents.

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "flowsim/contention.hpp"
#include "flowsim/scan.hpp"

namespace w11::fleet {

struct Campus {
  std::uint32_t key = 0;             // min ApId value among members
  std::vector<ApScan> scans;         // members, ascending ApId order
};

struct FleetPartition {
  // Campuses in ascending key order (deterministic iteration order for
  // scheduling, digesting and reporting).
  std::vector<Campus> campuses;
  std::size_t total_aps = 0;
  std::size_t largest_campus = 0;
};

// Reusable extraction buffers. The delta path runs one extraction per dirty
// component pool per adopted delta, so the component output, the union-find
// scratch and the sort keys are recycled across calls instead of reallocated.
struct PartitionScratch {
  flowsim::ContentionComponents components;
  flowsim::ContentionScratch uf;
};

// Partition one scan epoch with the same contender floor the planner will
// use. Equal member sets with equal scan contents give byte-equal partitions
// at any worker count and for ANY input order (the component pass is serial;
// extraction emits canonical id-ascending slices). `scratch` may be nullptr.
[[nodiscard]] FleetPartition partition_fleet(const std::vector<ApScan>& scans,
                                             Dbm contender_rssi_floor,
                                             PartitionScratch* scratch = nullptr);

}  // namespace w11::fleet
