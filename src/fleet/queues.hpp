#pragma once
// Bounded streaming queues for the fleet pipeline (DESIGN.md §15).
//
// The fleet controller is a streaming system: scan epochs flow in from
// collector shards, plan outputs flow out to the rollout/telemetry sinks,
// and both directions must be *bounded* — a wedged consumer shows up as
// backpressure and drop counters, never as unbounded memory growth. Two
// shapes cover the pipeline:
//
//   * SpscQueue — lock-free single-producer/single-consumer ring for the
//     plan output stream (the controller produces inside its tick, the
//     drain stage consumes on the same logical stream).
//   * MpmcQueue — mutex-guarded bounded queue for scan-epoch ingest, where
//     many collector shards push concurrently.
//
// Both are try-only: a full queue rejects the push (the caller decides
// whether that is a drop or a deferral) and every rejection is counted.
// Determinism note: the *controller's* outputs are a pure function of the
// epochs it adopted — queue capacity shapes which work runs when (drops,
// deferrals), and those decisions are made serially inside tick(), so equal
// push histories give equal plans at any worker count.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace w11::fleet {

struct QueueStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t rejected = 0;   // try_push refusals (full queue)
  std::uint64_t high_water = 0; // max resident size observed at push
};

// Single-producer/single-consumer bounded ring. One slot is sacrificed to
// distinguish full from empty, so the ring holds exactly `capacity`
// elements. Producer-side stats are written only by the producer and
// consumer-side only by the consumer; snapshots use relaxed atomics, so a
// cross-thread read is a consistent (if momentarily stale) count.
template <class T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity)
      : slots_(capacity + 1), cap_(capacity) {
    W11_CHECK_MSG(capacity > 0, "a bounded queue needs capacity >= 1");
  }

  [[nodiscard]] std::size_t capacity() const { return cap_; }

  // Resident elements. Exact from either end; advisory from elsewhere.
  [[nodiscard]] std::size_t size() const {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return t >= h ? t - h : slots_.size() - (h - t);
  }
  [[nodiscard]] std::size_t free_slots() const { return cap_ - size(); }

  // False (and one rejection counted) when full.
  bool try_push(T v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (t + 1) % slots_.size();
    if (next == head_.load(std::memory_order_acquire)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[t] = std::move(v);
    tail_.store(next, std::memory_order_release);
    const std::uint64_t resident =
        pushed_.fetch_add(1, std::memory_order_relaxed) + 1 -
        popped_.load(std::memory_order_relaxed);
    if (resident > high_water_.load(std::memory_order_relaxed))
      high_water_.store(resident, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] std::optional<T> try_pop() {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return std::nullopt;
    std::optional<T> out(std::move(slots_[h]));
    head_.store((h + 1) % slots_.size(), std::memory_order_release);
    popped_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  [[nodiscard]] QueueStats stats() const {
    QueueStats s;
    s.pushed = pushed_.load(std::memory_order_relaxed);
    s.popped = popped_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.high_water = high_water_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::vector<T> slots_;
  std::size_t cap_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

// Multi-producer/multi-consumer bounded queue. Ingest is not a hot path —
// one scan epoch per campus poll, not per packet — so a mutex keeps it
// simple and trivially TSAN-clean.
template <class T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : cap_(capacity) {
    W11_CHECK_MSG(capacity > 0, "a bounded queue needs capacity >= 1");
  }

  [[nodiscard]] std::size_t capacity() const { return cap_; }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool try_push(T v) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= cap_) {
      ++stats_.rejected;
      return false;
    }
    items_.push_back(std::move(v));
    ++stats_.pushed;
    if (items_.size() > stats_.high_water) stats_.high_water = items_.size();
    return true;
  }

  [[nodiscard]] std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.erase(items_.begin());
    ++stats_.popped;
    return out;
  }

  [[nodiscard]] QueueStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  std::size_t cap_;
  mutable std::mutex mu_;
  std::vector<T> items_;  // FIFO; erase-front is fine at these depths
  QueueStats stats_;
};

}  // namespace w11::fleet
