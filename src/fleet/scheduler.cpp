#include "fleet/scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/gate.hpp"

namespace w11::fleet {

const char* to_string(Tier t) {
  switch (t) {
    case Tier::kReplan: return "replan";
    case Tier::kSlow: return "slow";
    case Tier::kMedium: return "medium";
    case Tier::kFast: return "fast";
  }
  return "?";
}

const std::vector<int>& tier_levels(Tier t) {
  static const std::vector<int> fast = {0};
  static const std::vector<int> medium = {1, 0};
  static const std::vector<int> slow = {2, 1, 0};
  switch (t) {
    case Tier::kSlow: return slow;
    case Tier::kMedium: return medium;
    case Tier::kFast:
    case Tier::kReplan: return fast;
  }
  return fast;
}

namespace {

// Campus `key`'s phase within `period` for tier `salt`: a pure function of
// (seed, key), so the stagger grid survives restarts and epoch churn.
Time phase_of(std::uint64_t seed, std::uint32_t key, std::uint64_t salt,
              Time period) {
  const std::uint64_t h =
      rng_detail::mix_seed(seed, (static_cast<std::uint64_t>(key) << 3) | salt);
  return time::nanos(static_cast<std::int64_t>(
      h % static_cast<std::uint64_t>(period.ns())));
}

// The grid point at or before `t` on the phase-shifted grid
// { phase + k * period : k in Z } (euclidean floor, safe for t < phase).
Time grid_align(Time t, Time phase, Time period) {
  std::int64_t d = t.ns() - phase.ns();
  std::int64_t k = d / period.ns();
  if (d % period.ns() < 0) --k;
  return time::nanos(phase.ns() + k * period.ns());
}

}  // namespace

CadenceScheduler::CadenceScheduler(Cadence cadence, std::uint64_t seed)
    : cadence_(cadence), seed_(seed) {
  W11_CHECK(cadence_.fast > Time{0} && cadence_.medium > Time{0} &&
            cadence_.slow > Time{0});
}

void CadenceScheduler::add_campus(std::uint32_t key, Time now) {
  CampusState st;
  // Anchor each tier on the campus's own phase grid so steady-state
  // firings are staggered; the first full pass runs now regardless.
  st.last_fast = grid_align(now, phase_of(seed_, key, 0, cadence_.fast),
                            cadence_.fast);
  st.last_medium = grid_align(now, phase_of(seed_, key, 1, cadence_.medium),
                              cadence_.medium);
  st.last_slow = grid_align(now, phase_of(seed_, key, 2, cadence_.slow),
                            cadence_.slow);
  campuses_.emplace(key, st);
  ++stats_.campuses_added;
  W11_COUNT("fleet.sched.campus_added");
}

void CadenceScheduler::sync(const std::vector<std::uint32_t>& keys, Time now) {
  // Drop campuses absent from this epoch (their APs left the fleet or were
  // re-partitioned under a different key).
  for (auto it = campuses_.begin(); it != campuses_.end();) {
    const bool present = std::binary_search(keys.begin(), keys.end(), it->first);
    if (present) {
      ++it;
    } else {
      it = campuses_.erase(it);
      ++stats_.campuses_dropped;
      W11_COUNT("fleet.sched.campus_dropped");
    }
  }
  for (const std::uint32_t key : keys) {
    if (campuses_.contains(key)) continue;
    add_campus(key, now);
  }
}

void CadenceScheduler::apply_delta(const std::vector<std::uint32_t>& added,
                                   const std::vector<std::uint32_t>& dropped,
                                   Time now) {
  for (const std::uint32_t key : dropped) {
    const auto it = campuses_.find(key);
    if (it == campuses_.end()) continue;
    campuses_.erase(it);
    ++stats_.campuses_dropped;
    W11_COUNT("fleet.sched.campus_dropped");
  }
  for (const std::uint32_t key : added) {
    if (campuses_.contains(key)) continue;
    add_campus(key, now);
  }
}

void CadenceScheduler::request_replan(std::uint32_t campus_key) {
  const auto it = campuses_.find(campus_key);
  if (it == campuses_.end()) return;
  if (!it->second.replan_pending) {
    it->second.replan_pending = true;
    ++stats_.replans_requested;
    W11_COUNT("fleet.sched.replan_requested");
  }
}

std::vector<PlanJob> CadenceScheduler::due(Time now) const {
  std::vector<PlanJob> replans;
  std::vector<PlanJob> cadence;
  for (const auto& [key, st] : campuses_) {
    if (st.replan_pending) {
      replans.push_back(PlanJob{key, Tier::kReplan});
      continue;
    }
    if (st.first_run_pending || now >= st.last_slow + cadence_.slow) {
      cadence.push_back(PlanJob{key, Tier::kSlow});
    } else if (now >= st.last_medium + cadence_.medium) {
      cadence.push_back(PlanJob{key, Tier::kMedium});
    } else if (now >= st.last_fast + cadence_.fast) {
      cadence.push_back(PlanJob{key, Tier::kFast});
    }
  }
  // Map iteration is key-ascending, so each group already is; replans lead.
  replans.insert(replans.end(), cadence.begin(), cadence.end());
  return replans;
}

void CadenceScheduler::fired(const PlanJob& job, Time now) {
  const auto it = campuses_.find(job.campus_key);
  if (it == campuses_.end()) return;
  CampusState& st = it->second;
  // Re-anchor every tier the firing satisfied onto its own phase grid —
  // not onto `now` — so the stagger survives synchronized firings (e.g.
  // the whole fleet's first pass on tick 0).
  const std::uint32_t key = job.campus_key;
  switch (job.tier) {
    case Tier::kSlow:
      st.last_slow = grid_align(now, phase_of(seed_, key, 2, cadence_.slow),
                                cadence_.slow);
      [[fallthrough]];
    case Tier::kMedium:
      st.last_medium = grid_align(now, phase_of(seed_, key, 1, cadence_.medium),
                                  cadence_.medium);
      [[fallthrough]];
    case Tier::kFast:
    case Tier::kReplan:
      st.last_fast = grid_align(now, phase_of(seed_, key, 0, cadence_.fast),
                                cadence_.fast);
      break;
  }
  st.first_run_pending = false;
  st.replan_pending = false;  // every tier's run ends with i = 0
  ++stats_.jobs_fired;
  W11_COUNT("fleet.sched.job_fired");
}

}  // namespace w11::fleet
