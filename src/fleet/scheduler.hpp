#pragma once
// Fleet cadence scheduler (DESIGN.md §15).
//
// TurboCaService runs one network on the §4.4.4 cadence (NBO(0) every
// 15 min, +NBO(1) every 3 h, +NBO(2) daily). At fleet scale the same
// cadence must hold *per campus*, with two additions:
//
//   * stagger — anchors are phase-shifted per campus by a hash of the
//     campus key, so 100k campuses do not all fire on the same tick; the
//     planning load per tick is flat instead of a 15-minute sawtooth.
//   * priority replans — request_replan(key) marks a campus for an
//     out-of-band NBO(0) pass (the rollout coordinator asks for one after
//     an auto-revert). Replans are sticky until a firing runs and sort
//     ahead of cadence jobs when the output queue forces a cut.
//
// due()/fired() are split so the controller can apply backpressure
// deterministically: due(now) is a pure read (same state, same jobs, in
// priority order); only jobs the controller actually ran are fired(),
// which re-anchors their tiers — a deferred job stays due on the next tick
// without losing its cadence anchor.

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.hpp"

namespace w11::fleet {

enum class Tier : std::uint8_t { kReplan, kSlow, kMedium, kFast };
[[nodiscard]] const char* to_string(Tier t);

// NBO hop limits for a tier's firing, slowest-first (every run ends i = 0).
[[nodiscard]] const std::vector<int>& tier_levels(Tier t);

struct PlanJob {
  std::uint32_t campus_key = 0;
  Tier tier = Tier::kFast;
};

class CadenceScheduler {
 public:
  struct Cadence {
    Time fast = time::minutes(15);
    Time medium = time::hours(3);
    Time slow = time::hours(24);
  };

  struct Stats {
    std::uint64_t campuses_added = 0;
    std::uint64_t campuses_dropped = 0;
    std::uint64_t jobs_fired = 0;
    std::uint64_t replans_requested = 0;
  };

  // `seed` drives the per-campus stagger phases (pure function of
  // (seed, campus key) — worker-count and arrival-order invariant).
  CadenceScheduler(Cadence cadence, std::uint64_t seed);

  // Reconcile the tracked campus set with this epoch's partition keys
  // (must be ascending — partition_fleet emits them that way). New campuses
  // get staggered anchors and are due for a full kSlow pass immediately
  // (first sighting plans now); absent campuses are dropped with their
  // pending state.
  void sync(const std::vector<std::uint32_t>& keys, Time now);

  // O(churn) reconcile for the delta-epoch path: only the keys named are
  // touched — `added` campuses get the same staggered anchors and
  // first-sighting kSlow pass sync() would give them (a re-keyed campus is
  // a first sighting: its identity, RNG streams and anchors all hang off
  // the key), `dropped` campuses lose their pending state. Keys in neither
  // list are untouched, so for equal resulting key sets at equal times the
  // scheduler state is byte-identical to a full sync().
  void apply_delta(const std::vector<std::uint32_t>& added,
                   const std::vector<std::uint32_t>& dropped, Time now);

  // Out-of-band NBO(0) for one campus; unknown keys are ignored.
  void request_replan(std::uint32_t campus_key);

  // Every campus with a due tier, one job each: replans first, then
  // cadence jobs, each group in ascending key order. A campus's job is its
  // *slowest* due tier (firing it satisfies the faster ones).
  [[nodiscard]] std::vector<PlanJob> due(Time now) const;

  // The controller ran this job: re-anchor the tiers it satisfied and
  // clear a pending replan.
  void fired(const PlanJob& job, Time now);

  [[nodiscard]] std::size_t campus_count() const { return campuses_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct CampusState {
    Time last_fast{};
    Time last_medium{};
    Time last_slow{};
    bool replan_pending = false;
    bool first_run_pending = true;  // plan on first sighting
  };

  void add_campus(std::uint32_t key, Time now);

  Cadence cadence_;
  std::uint64_t seed_;
  std::map<std::uint32_t, CampusState> campuses_;  // key-ordered iteration
  Stats stats_;
};

}  // namespace w11::fleet
