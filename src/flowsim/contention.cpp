#include "flowsim/contention.hpp"

#include <numeric>
#include <unordered_map>

namespace w11::flowsim {

namespace {

// Path-halving find: every probe also shortens the chain it walked.
std::uint32_t find_root(std::vector<std::uint32_t>& parent, std::uint32_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

ContentionComponents contender_components(const std::vector<ApScan>& scans,
                                          Dbm contender_rssi_floor) {
  const std::size_t n = scans.size();
  ContentionComponents out;
  out.label.resize(n);
  if (n == 0) return out;

  std::unordered_map<ApId, std::uint32_t> by_id;
  by_id.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    by_id.emplace(scans[i].id, static_cast<std::uint32_t>(i));

  // Union by size keeps find() near-O(1); the tie-break (smaller root index
  // wins on equal size) is irrelevant to the output — labels are re-derived
  // from first-appearance order below — but keeps the walk deterministic.
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  std::vector<std::uint32_t> size(n, 1);
  auto unite = [&](std::uint32_t a, std::uint32_t b) {
    a = find_root(parent, a);
    b = find_root(parent, b);
    if (a == b) return;
    if (size[a] < size[b] || (size[a] == size[b] && b < a)) std::swap(a, b);
    parent[b] = a;
    size[a] += size[b];
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (const NeighborReport& nb : scans[i].neighbors) {
      const auto it = by_id.find(nb.id);
      if (it == by_id.end()) continue;               // absent from the epoch
      if (nb.rssi < contender_rssi_floor) continue;  // ScanIndex's edge rule
      unite(static_cast<std::uint32_t>(i), it->second);
    }
  }

  // Dense labels in first-appearance order.
  std::unordered_map<std::uint32_t, std::uint32_t> label_of_root;
  label_of_root.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t root = find_root(parent, static_cast<std::uint32_t>(i));
    const auto [it, inserted] = label_of_root.emplace(
        root, static_cast<std::uint32_t>(out.count));
    if (inserted) ++out.count;
    out.label[i] = it->second;
  }
  out.members.resize(out.count);
  for (std::size_t i = 0; i < n; ++i)
    out.members[out.label[i]].push_back(static_cast<std::uint32_t>(i));
  return out;
}

}  // namespace w11::flowsim
