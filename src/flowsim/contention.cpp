#include "flowsim/contention.hpp"

#include <numeric>

namespace w11::flowsim {

namespace {

// Path-halving find: every probe also shortens the chain it walked.
std::uint32_t find_root(std::vector<std::uint32_t>& parent, std::uint32_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

void contender_components(const std::vector<ApScan>& scans,
                          Dbm contender_rssi_floor, ContentionComponents& out,
                          ContentionScratch* scratch) {
  const std::size_t n = scans.size();
  // Recycle the output buffers: shrink the members spine without freeing the
  // per-component vectors (clear keeps their capacity for the next call).
  out.count = 0;
  out.label.clear();
  out.label.resize(n);
  for (std::vector<std::uint32_t>& m : out.members) m.clear();
  if (n == 0) {
    out.members.clear();
    return;
  }

  ContentionScratch local;
  ContentionScratch& s = scratch ? *scratch : local;

  s.by_id.clear();
  s.by_id.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.by_id.emplace(scans[i].id, static_cast<std::uint32_t>(i));

  // Union by size keeps find() near-O(1); the tie-break (smaller root index
  // wins on equal size) is irrelevant to the output — labels are re-derived
  // from first-appearance order below — but keeps the walk deterministic.
  std::vector<std::uint32_t>& parent = s.parent;
  std::vector<std::uint32_t>& size = s.size;
  parent.resize(n);
  std::iota(parent.begin(), parent.end(), 0u);
  size.assign(n, 1);
  auto unite = [&](std::uint32_t a, std::uint32_t b) {
    a = find_root(parent, a);
    b = find_root(parent, b);
    if (a == b) return;
    if (size[a] < size[b] || (size[a] == size[b] && b < a)) std::swap(a, b);
    parent[b] = a;
    size[a] += size[b];
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (const NeighborReport& nb : scans[i].neighbors) {
      const auto it = s.by_id.find(nb.id);
      if (it == s.by_id.end()) continue;              // absent from the epoch
      if (nb.rssi < contender_rssi_floor) continue;   // ScanIndex's edge rule
      unite(static_cast<std::uint32_t>(i), it->second);
    }
  }

  // Dense labels in first-appearance order.
  s.label_of_root.clear();
  s.label_of_root.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t root = find_root(parent, static_cast<std::uint32_t>(i));
    const auto [it, inserted] = s.label_of_root.emplace(
        root, static_cast<std::uint32_t>(out.count));
    if (inserted) ++out.count;
    out.label[i] = it->second;
  }
  out.members.resize(out.count);
  for (std::size_t i = 0; i < n; ++i)
    out.members[out.label[i]].push_back(static_cast<std::uint32_t>(i));
}

ContentionComponents contender_components(const std::vector<ApScan>& scans,
                                          Dbm contender_rssi_floor) {
  ContentionComponents out;
  contender_components(scans, contender_rssi_floor, out, nullptr);
  return out;
}

}  // namespace w11::flowsim
