#pragma once
// Contention-graph extraction over one scan epoch (fleet layer input).
//
// The fleet controller partitions a continental-scale AP population into
// independently plannable campuses. The isolation argument rests on the
// planner's coupling structure: every NodeP term of AP a reads only a's own
// spectrum aggregates plus the planned channels of a's *contender* neighbors
// (rssi >= the contender floor — sub-floor neighbors never enter a
// contention count, see PlanContext). So two APs in different connected
// components of the symmetrized contender graph cannot influence each
// other's scores, and per-component NBO runs compose into exactly the plan
// a fleet-wide run restricted to that component would produce.
//
// Edges here must match ScanIndex adjacency bit-for-bit: a directed
// contender edge a->b exists when b appears in a's neighbor reports, b is
// present in the epoch, and !(rssi < floor). Components are taken over the
// undirected closure (if either side hears the other, their plans couple
// through that listener's airtime term).

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "flowsim/scan.hpp"

namespace w11::flowsim {

// Connected components of the contender graph, deterministically labelled:
// component ordinals are assigned by first appearance in scan-epoch order,
// so equal inputs give byte-equal labellings at any worker count (the
// computation is serial union-find; there is nothing to shard).
struct ContentionComponents {
  // label[i] = component ordinal of scans[i]; ordinals are dense [0, count).
  std::vector<std::uint32_t> label;
  std::size_t count = 0;
  // members[c] = scan positions of component c, ascending.
  std::vector<std::vector<std::uint32_t>> members;
};

[[nodiscard]] ContentionComponents contender_components(
    const std::vector<ApScan>& scans, Dbm contender_rssi_floor);

}  // namespace w11::flowsim
