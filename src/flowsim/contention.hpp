#pragma once
// Contention-graph extraction over one scan epoch (fleet layer input).
//
// The fleet controller partitions a continental-scale AP population into
// independently plannable campuses. The isolation argument rests on the
// planner's coupling structure: every NodeP term of AP a reads only a's own
// spectrum aggregates plus the planned channels of a's *contender* neighbors
// (rssi >= the contender floor — sub-floor neighbors never enter a
// contention count, see PlanContext). So two APs in different connected
// components of the symmetrized contender graph cannot influence each
// other's scores, and per-component NBO runs compose into exactly the plan
// a fleet-wide run restricted to that component would produce.
//
// Edges here must match ScanIndex adjacency bit-for-bit: a directed
// contender edge a->b exists when b appears in a's neighbor reports, b is
// present in the epoch, and !(rssi < floor). Components are taken over the
// undirected closure (if either side hears the other, their plans couple
// through that listener's airtime term).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "flowsim/scan.hpp"

namespace w11::flowsim {

// Connected components of the contender graph, deterministically labelled:
// component ordinals are assigned by first appearance in scan-epoch order,
// so equal inputs give byte-equal labellings at any worker count (the
// computation is serial union-find; there is nothing to shard).
struct ContentionComponents {
  // label[i] = component ordinal of scans[i]; ordinals are dense [0, count).
  std::vector<std::uint32_t> label;
  std::size_t count = 0;
  // members[c] = scan positions of component c, ascending.
  std::vector<std::vector<std::uint32_t>> members;
};

// Reusable working storage for contender_components. The union-find arrays,
// the id lookup map and the root-label map are the per-call allocation churn
// — a delta-epoch controller runs an extraction per *dirty component*, so
// callers on that path hold one scratch and amortize the allocations across
// epochs. A default-constructed scratch is always valid; contents between
// calls are meaningless to the caller.
struct ContentionScratch {
  std::vector<std::uint32_t> parent;
  std::vector<std::uint32_t> size;
  std::unordered_map<ApId, std::uint32_t> by_id;
  std::unordered_map<std::uint32_t, std::uint32_t> label_of_root;
};

// Compute into `out`, recycling its buffers (label capacity, the members
// spine and each member list's capacity survive across calls). `scratch`
// may be nullptr (a call-local scratch is used).
void contender_components(const std::vector<ApScan>& scans,
                          Dbm contender_rssi_floor, ContentionComponents& out,
                          ContentionScratch* scratch = nullptr);

// Value-returning convenience wrapper (fresh buffers every call).
[[nodiscard]] ContentionComponents contender_components(
    const std::vector<ApScan>& scans, Dbm contender_rssi_floor);

}  // namespace w11::flowsim
