#include "flowsim/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "phy/mcs.hpp"

namespace w11::flowsim {

namespace {

double dbm_to_mw(Dbm dbm) { return std::pow(10.0, dbm / 10.0); }
double mw_to_dbm(double mw) { return 10.0 * std::log10(std::max(mw, 1e-12)); }

// Fraction of channel `a` spectrum that channel `b` occupies.
double overlap_fraction(const Channel& a, const Channel& b) {
  if (a.band != b.band) return 0.0;
  const double a_lo = a.center_mhz() - width_mhz(a.width) / 2.0;
  const double a_hi = a.center_mhz() + width_mhz(a.width) / 2.0;
  const double b_lo = b.center_mhz() - width_mhz(b.width) / 2.0;
  const double b_hi = b.center_mhz() + width_mhz(b.width) / 2.0;
  const double shared = std::min(a_hi, b_hi) - std::max(a_lo, b_lo);
  return shared <= 0.0 ? 0.0 : shared / (a_hi - a_lo);
}

}  // namespace

const ApMetrics& Evaluation::of(ApId id) const {
  for (const auto& m : per_ap)
    if (m.id == id) return m;
  throw std::logic_error("Evaluation::of: unknown AP");
}

Network::Network(Config cfg) : cfg_(cfg), rng_(cfg.seed) {}

ApId Network::add_ap(Position pos, ChannelWidth max_width, Channel initial,
                     bool dfs_capable) {
  W11_CHECK(initial.band == cfg_.band);
  ApNode node;
  node.id = ApId{static_cast<std::uint32_t>(aps_.size())};
  node.pos = pos;
  node.max_width = max_width;
  node.channel = initial;
  node.dfs_capable = dfs_capable;
  aps_.push_back(std::move(node));
  return aps_.back().id;
}

StationId Network::add_client(ApId ap, Position pos, ClientCapability cap,
                              double offered_mbps) {
  ClientNode cl;
  cl.id = StationId{next_station_++};
  cl.pos = pos;
  cl.cap = cap;
  cl.offered_mbps = offered_mbps;
  cl.base_offered_mbps = offered_mbps;
  ap_of_mut(ap).clients.push_back(std::move(cl));
  return ap_of(ap).clients.back().id;
}

void Network::add_interferer(ExternalInterferer intf) {
  W11_CHECK(intf.channel.band == cfg_.band);
  interferers_.push_back(intf);
}

void Network::scale_offered_load(double factor) {
  for (auto& ap : aps_) {
    for (auto& cl : ap.clients) {
      cl.offered_mbps *= factor;
      cl.base_offered_mbps *= factor;
    }
  }
}

void Network::set_load_factor(double factor) {
  for (auto& ap : aps_)
    for (auto& cl : ap.clients) cl.offered_mbps = cl.base_offered_mbps * factor;
}

void Network::set_client_load(ApId ap, double per_client_mbps) {
  for (auto& cl : ap_of_mut(ap).clients) {
    cl.offered_mbps = per_client_mbps;
    cl.base_offered_mbps = per_client_mbps;
  }
}

void Network::mutate_interferers(Rng& rng) {
  const auto catalog = channels::us_catalog(cfg_.band, ChannelWidth::MHz20);
  for (auto& intf : interferers_) {
    intf.channel = catalog[rng.index(catalog.size())];
    intf.duty_cycle = rng.uniform(0.05, 0.7);
  }
}

int Network::apply_plan(const ChannelPlan& plan) {
  int switches = 0;
  for (auto& ap : aps_) {
    const auto it = plan.find(ap.id);
    if (it == plan.end()) continue;
    if (it->second != ap.channel) {
      ap.channel = it->second;
      ++switches;
      account_switch_disruption(ap);
    }
    refresh_dfs_fallback(ap);
  }
  total_switches_ += switches;
  return switches;
}

bool Network::apply_channel(ApId id, const Channel& to) {
  ApNode& ap = ap_of_mut(id);
  if (ap.channel == to) {
    refresh_dfs_fallback(ap);
    return false;
  }
  ap.channel = to;
  ++total_switches_;
  account_switch_disruption(ap);
  refresh_dfs_fallback(ap);
  return true;
}

ChannelPlan Network::current_plan() const {
  ChannelPlan plan;
  for (const auto& ap : aps_) plan[ap.id] = ap.channel;
  return plan;
}

void Network::account_switch_disruption(const ApNode& ap) {
  // §4.3.1 disruption accounting for this AP's active clients.
  for (const auto& cl : ap.clients) {
    if (cl.offered_mbps <= cfg_.active_client_threshold_mbps) continue;
    const bool follows_csa =
        cl.cap.supports_csa && !rng_.bernoulli(csa_miss_rate);
    if (follows_csa) continue;
    // Detect + rescan + re-associate: ~5 s laptops, ~8 s mobiles; the
    // 1-stream population skews mobile.
    const double secs =
        cl.cap.max_nss >= 2 ? rng_.uniform(4.0, 6.0) : rng_.uniform(7.0, 9.0);
    disruption_client_seconds_ += secs;
    ++clients_disrupted_;
  }
}

void Network::refresh_dfs_fallback(ApNode& ap) {
  if (!ap.channel.is_dfs()) {
    ap.dfs_fallback.reset();
    return;
  }
  const auto safe = channels::candidate_set(cfg_.band, ap.max_width,
                                            /*allow_dfs=*/false);
  if (!safe.empty()) {
    ap.dfs_fallback = safe.front();
  } else {
    // No non-DFS channel at this width exists: drop to the narrowest
    // non-DFS option rather than leaving the AP with nowhere to go.
    const auto narrow = channels::candidate_set(cfg_.band, ChannelWidth::MHz20,
                                                /*allow_dfs=*/false);
    if (!narrow.empty()) ap.dfs_fallback = narrow.front();
    else ap.dfs_fallback.reset();
  }
}

void Network::radar_event(ApId id) {
  ApNode& ap = ap_of_mut(id);
  // Radar matters only on the DFS channel the AP currently occupies.
  if (!ap.channel.is_dfs()) return;
  // Repeat strike on a channel already vacated this epoch: the planner (or
  // a revert) put an AP back onto it before rearm_radar(). The AP must
  // still leave, but the degradation counters already charged this event —
  // counting it again double-books evacuations and client disruption.
  const bool duplicate = !radar_struck_.insert(ap.channel).second;
  if (!ap.dfs_fallback || *ap.dfs_fallback == ap.channel)
    refresh_dfs_fallback(ap);
  ap.channel = ap.dfs_fallback.value_or(
      Channel{cfg_.band, 36, ChannelWidth::MHz20});
  ++total_switches_;
  if (duplicate) {
    ++radar_duplicates_;
    refresh_dfs_fallback(ap);
    return;
  }
  ++radar_evacuations_;
  account_switch_disruption(ap);
  // The stale fallback was the bug: an operator-supplied (possibly DFS)
  // fallback survived the evacuation, so a second strike on it had nowhere
  // to go. Recompute from the channel actually occupied now.
  refresh_dfs_fallback(ap);
}

const ApNode& Network::ap_of(ApId id) const {
  W11_CHECK(id.value() < aps_.size());
  return aps_[id.value()];
}

ApNode& Network::ap_of_mut(ApId id) {
  W11_CHECK(id.value() < aps_.size());
  return aps_[id.value()];
}

bool Network::in_cs_range(const ApNode& a, const ApNode& b) const {
  return cfg_.prop.rssi(kApTxPowerDbm, a.pos, b.pos, cfg_.band) >
         cfg_.cs_threshold;
}

double Network::external_duty_at(const ApNode& a, const Channel& on) const {
  double duty = 0.0;
  for (const auto& intf : interferers_) {
    if (!intf.channel.overlaps(on)) continue;
    if (cfg_.prop.rssi(intf.tx_power, intf.pos, a.pos, cfg_.band) <=
        cfg_.cs_threshold)
      continue;
    duty += intf.duty_cycle * overlap_fraction(on, intf.channel);
  }
  return std::min(duty, 1.0);
}

double Network::client_phy_rate(const ApNode& ap, const ClientNode& cl,
                                double interference_mw,
                                int cochannel_contenders) const {
  const ChannelWidth width = std::min(ap.channel.width, cl.cap.max_width);
  const Dbm rssi = cfg_.prop.rssi(kApTxPowerDbm, ap.pos, cl.pos, cfg_.band);
  const double noise_mw = dbm_to_mw(cfg_.prop.noise_floor(width));
  const Db sinr = rssi - mw_to_dbm(noise_mw + interference_mw);
  // Rate controllers back off under contention: collisions and retries on
  // a crowded channel look like loss, so Minstrel-style adaptation settles
  // on lower MCS (§4.6.2's "reduce medium contention ... use higher bit
  // rates"). ~1 dB of effective margin per co-channel contender, capped.
  const Db contention_backoff =
      std::min(1.0 * std::max(cochannel_contenders, 0), 9.0);
  const int nss = std::min(3, cl.cap.max_nss);  // 3x3 APs
  const auto pick = mcs::select(sinr - 2.0 - contention_backoff, width, nss);
  if (!pick) return 6.0;  // floor: lowest legacy rate
  const int mcs_cap = cl.cap.to_mcs_capability().max_mcs;
  McsIndex idx = *pick;
  if (idx.mcs > mcs_cap) idx.mcs = mcs_cap;
  return mcs::rate(idx, width, cl.cap.short_gi)
      .value_or(RateMbps{6.0})
      .mbps();
}

double Network::client_max_rate(const ApNode& ap, const ClientNode& cl) const {
  // The efficiency denominator is the max rate "supported by both for a
  // particular association" (§4.6.2): associations are established at the
  // AP's *operating* width, so the metric is width-neutral and measures how
  // close the link runs to its SINR-free ceiling — contention and
  // interference are what drag it down.
  ApCapability ap_cap;  // 3x3 wave-2
  ap_cap.max_width = ap.channel.width;
  return mcs::max_rate(ap_cap.to_mcs_capability(), cl.cap.to_mcs_capability())
      .mbps();
}

Evaluation Network::evaluate() const {
  const std::size_t n = aps_.size();
  Evaluation ev;
  ev.per_ap.resize(n);

  // CS-coupled, channel-overlapping neighborhoods for the current plan.
  std::vector<std::vector<std::size_t>> nbrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (aps_[i].channel.overlaps(aps_[j].channel) &&
          in_cs_range(aps_[i], aps_[j]))
        nbrs[i].push_back(j);
    }
  }

  std::vector<double> ext(n);
  for (std::size_t i = 0; i < n; ++i)
    ext[i] = external_duty_at(aps_[i], aps_[i].channel);

  // Two passes: rates -> airtime -> interference-adjusted rates -> airtime.
  std::vector<double> demand(n), share(n);
  std::vector<std::vector<double>> client_rate(n);
  std::vector<double> client_intf_mw(n, 0.0);  // per-AP mean interference

  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < n; ++i) {
      const ApNode& ap = aps_[i];
      client_rate[i].clear();
      double d = 0.0;
      for (const auto& cl : ap.clients) {
        const double rate = client_phy_rate(
            ap, cl, client_intf_mw[i], static_cast<int>(nbrs[i].size()));
        client_rate[i].push_back(rate);
        d += cl.offered_mbps / std::max(rate * cfg_.mac_efficiency, 1.0);
      }
      demand[i] = std::min(d + 0.003 /*beacons & mgmt*/, 4.0);
      share[i] = std::min(demand[i], std::max(0.0, 1.0 - ext[i]));
    }

    // Damped water-filling on neighborhood constraints.
    for (int it = 0; it < cfg_.solver_iterations; ++it) {
      std::vector<double> pressure(n, 1.0);
      for (std::size_t k = 0; k < n; ++k) {
        double load = share[k] + ext[k];
        for (std::size_t j : nbrs[k]) load += share[j];
        if (load > 1.0) {
          const double f = 1.0 / load;
          pressure[k] = std::min(pressure[k], f);
          for (std::size_t j : nbrs[k]) pressure[j] = std::min(pressure[j], f);
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        // Shrink under pressure, creep back toward demand otherwise.
        share[i] = (pressure[i] < 1.0)
                       ? share[i] * std::pow(pressure[i], 0.6)
                       : std::min(demand[i], share[i] * 1.08 + 1e-4);
      }
    }

    if (pass == 0) {
      // Interference at clients from co-channel transmitters the serving AP
      // cannot carrier-sense (concurrent transmissions).
      for (std::size_t i = 0; i < n; ++i) {
        double mw = 0.0;
        if (aps_[i].clients.empty()) {
          client_intf_mw[i] = 0.0;
          continue;
        }
        // Use the AP's own position as a proxy for its clients' locations.
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          if (!aps_[i].channel.overlaps(aps_[j].channel)) continue;
          if (in_cs_range(aps_[i], aps_[j])) continue;  // serialized by CSMA
          const Dbm p =
              cfg_.prop.rssi(kApTxPowerDbm, aps_[j].pos, aps_[i].pos, cfg_.band);
          mw += dbm_to_mw(p) * share[j] *
                overlap_fraction(aps_[i].channel, aps_[j].channel);
        }
        // External interferers beyond carrier-sense range still radiate
        // into the cell and erode client SINR.
        for (const auto& intf : interferers_) {
          if (!intf.channel.overlaps(aps_[i].channel)) continue;
          const Dbm p =
              cfg_.prop.rssi(intf.tx_power, intf.pos, aps_[i].pos, cfg_.band);
          if (p > cfg_.cs_threshold) continue;  // in range -> serialized
          mw += dbm_to_mw(p) * intf.duty_cycle *
                overlap_fraction(aps_[i].channel, intf.channel);
        }
        client_intf_mw[i] = mw;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const ApNode& ap = aps_[i];
    ApMetrics& m = ev.per_ap[i];
    m.id = ap.id;
    m.demand_airtime = demand[i];
    m.airtime_share = share[i];
    double load = share[i] + ext[i];
    for (std::size_t j : nbrs[i]) load += share[j];
    m.utilization = std::min(load, 1.0);
    m.cochannel_interferers = static_cast<int>(nbrs[i].size());

    double offered = 0.0;
    for (const auto& cl : ap.clients) offered += cl.offered_mbps;
    m.offered_mbps = offered;
    const double fulfil =
        demand[i] > 1e-9 ? std::min(1.0, share[i] / demand[i]) : 1.0;
    m.throughput_mbps = offered * fulfil;

    double rate_sum = 0.0, eff_sum = 0.0;
    for (std::size_t c = 0; c < ap.clients.size(); ++c) {
      const double rate = client_rate[i][c];
      rate_sum += rate;
      const double max_rate = client_max_rate(ap, ap.clients[c]);
      const double eff = max_rate > 0.0 ? std::min(1.0, rate / max_rate) : 0.0;
      m.client_efficiency.push_back(eff);
      eff_sum += eff;
    }
    if (!ap.clients.empty()) {
      m.mean_phy_rate_mbps = rate_sum / static_cast<double>(ap.clients.size());
      m.mean_bitrate_efficiency =
          eff_sum / static_cast<double>(ap.clients.size());
    }
    ev.total_throughput_mbps += m.throughput_mbps;
    ev.total_offered_mbps += offered;
  }

  // WAN uplink cap (UNet's limiting factor, §4.6.2).
  if (cfg_.uplink_capacity.positive() &&
      ev.total_throughput_mbps > cfg_.uplink_capacity.mbps()) {
    const double f = cfg_.uplink_capacity.mbps() / ev.total_throughput_mbps;
    for (auto& m : ev.per_ap) m.throughput_mbps *= f;
    ev.total_throughput_mbps = cfg_.uplink_capacity.mbps();
  }
  return ev;
}

std::vector<ApScan> Network::scan() const {
  const Evaluation ev = evaluate();
  std::vector<ApScan> scans;
  scans.reserve(aps_.size());
  for (std::size_t i = 0; i < aps_.size(); ++i) {
    const ApNode& ap = aps_[i];
    ApScan s;
    s.id = ap.id;
    s.band = cfg_.band;
    s.current = ap.channel;
    s.max_width = ap.max_width;
    // "Connected clients" for the DFS rule means *active* clients: an AP
    // whose associated devices are idle (overnight) may take the CAC hit
    // and move to a DFS channel.
    s.has_clients = false;
    for (const auto& cl : ap.clients)
      if (cl.offered_mbps > cfg_.active_client_threshold_mbps)
        s.has_clients = true;
    s.dfs_capable = ap.dfs_capable;
    s.utilization_current = ev.per_ap[i].utilization;

    for (const auto& cl : ap.clients) {
      const ChannelWidth b = std::min(cl.cap.max_width, ap.max_width);
      s.load_by_width[b] += 1.0 + cl.offered_mbps / 5.0;
    }

    for (const auto& other : aps_) {
      if (other.id == ap.id) continue;
      if (!in_cs_range(ap, other)) continue;
      s.neighbors.push_back(NeighborReport{
          other.id, cfg_.prop.rssi(kApTxPowerDbm, other.pos, ap.pos, cfg_.band)});
    }

    for (const Channel& comp : channels::us_catalog(cfg_.band, ChannelWidth::MHz20)) {
      double u = external_duty_at(ap, comp);
      if (cfg_.scan_noise_sigma > 0.0 && u > 0.0) {
        // Scanning-radio sampling error (150 ms dwells, §2.1).
        u = std::clamp(u + rng_.normal(0.0, cfg_.scan_noise_sigma), 0.0, 1.0);
      }
      if (u > 0.0) s.external_util[comp.number] = u;
      s.quality[comp.number] = std::clamp(1.0 - 0.6 * u, 0.05, 1.0);
    }
    scans.push_back(std::move(s));
  }
  return scans;
}

Samples Network::sample_tcp_latency(const Evaluation& ev, int samples_per_ap,
                                    double slow_client_fraction) {
  Samples out;
  for (const auto& m : ev.per_ap) {
    if (m.offered_mbps <= 0.0) continue;
    // Medium-access queueing: a base wired/stack latency plus a term that
    // explodes as the collision domain saturates, plus per-contender cost.
    const double u = std::min(m.utilization, 0.97);
    const double mean_ms =
        3.0 + 14.0 * u / (1.0 - u) + 0.8 * m.cochannel_interferers;
    const double sigma = 0.55;
    const double mu = std::log(mean_ms) - sigma * sigma / 2.0;
    for (int k = 0; k < samples_per_ap; ++k) {
      if (rng_.bernoulli(slow_client_fraction)) {
        out.add(rng_.uniform(400.0, 1200.0));  // unresponsive-client tail
      } else {
        // Queueing latency is bounded by finite AP queues; the paper
        // attributes everything >=400 ms to unresponsive clients (Fig. 8),
        // so the congestion component saturates below that.
        out.add(std::min(rng_.lognormal(mu, sigma), 380.0));
      }
    }
  }
  return out;
}

Samples Network::sample_bitrate_efficiency(const Evaluation& ev) const {
  Samples out;
  for (const auto& m : ev.per_ap)
    for (double eff : m.client_efficiency) out.add(eff);
  return out;
}

Samples Network::sample_client_rssi() const {
  Samples out;
  for (const auto& ap : aps_)
    for (const auto& cl : ap.clients)
      out.add(cfg_.prop.rssi(kClientTxPowerDbm, cl.pos, ap.pos, cfg_.band));
  return out;
}

Samples Network::sample_utilization(const Evaluation& ev) const {
  Samples out;
  for (const auto& m : ev.per_ap) out.add(m.utilization);
  return out;
}

Samples Network::sample_cochannel_interferers() const {
  Samples out;
  for (std::size_t i = 0; i < aps_.size(); ++i) {
    int count = 0;
    for (std::size_t j = 0; j < aps_.size(); ++j) {
      if (i == j) continue;
      if (aps_[i].channel.overlaps(aps_[j].channel) &&
          in_cs_range(aps_[i], aps_[j]))
        ++count;
    }
    out.add(static_cast<double>(count));
  }
  return out;
}

}  // namespace w11::flowsim
