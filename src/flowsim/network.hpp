#pragma once
// Flow-level model of a large multi-AP wireless network.
//
// Packet-level simulation of a 600-AP campus is not feasible (nor was it
// for the authors — §4.7); what channel assignment actually changes is
// (a) which APs contend with which, (b) the airtime share each AP obtains,
// and (c) the SINR — hence PHY rate — each client sees. This module models
// exactly those three effects:
//
//   * contention graph: APs within carrier-sense range on overlapping
//     channels share airtime; external interferers consume duty cycle;
//   * airtime shares solved by damped iterative water-filling over
//     carrier-sense neighborhoods;
//   * client SINR from the propagation model plus co-channel interference
//     from out-of-CS-range transmitters, mapped through the VHT MCS table.
//
// Outcome metrics (usage, AP-side TCP latency, bit-rate efficiency, RSSI)
// are derived from these results — *not* from TurboCA's NodeP — so channel
// plans are evaluated by an independent model, avoiding circularity.

#include <optional>
#include <set>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "flowsim/scan.hpp"
#include "phy/channel.hpp"
#include "phy/propagation.hpp"
#include "wlan/capability.hpp"

namespace w11::flowsim {

struct ExternalInterferer {
  Position pos;
  Channel channel;
  double duty_cycle = 0.2;  // fraction of airtime it occupies
  Dbm tx_power = 20.0;
};

struct ClientNode {
  StationId id;
  Position pos;
  ClientCapability cap;
  double offered_mbps = 1.0;       // current downlink demand
  double base_offered_mbps = 1.0;  // demand at load factor 1.0
};

struct ApNode {
  ApId id;
  Position pos;
  ChannelWidth max_width = ChannelWidth::MHz80;
  Channel channel{Band::G5, 36, ChannelWidth::MHz20};
  std::optional<Channel> dfs_fallback;  // §4.5.2
  bool dfs_capable = true;
  std::vector<ClientNode> clients;
};

struct ApMetrics {
  ApId id;
  double demand_airtime = 0.0;   // airtime fraction needed for offered load
  double airtime_share = 0.0;    // airtime fraction obtained
  double utilization = 0.0;      // medium busy fraction seen at this AP
  double throughput_mbps = 0.0;  // achieved downlink goodput
  double offered_mbps = 0.0;
  double mean_phy_rate_mbps = 0.0;
  double mean_bitrate_efficiency = 0.0;  // mean over clients (§4.6.2)
  std::vector<double> client_efficiency; // per-client rate / max-rate
  int cochannel_interferers = 0;         // same-channel APs in CS range
};

struct Evaluation {
  std::vector<ApMetrics> per_ap;
  double total_throughput_mbps = 0.0;
  double total_offered_mbps = 0.0;
  [[nodiscard]] const ApMetrics& of(ApId id) const;
};

class Network {
 public:
  struct Config {
    Band band = Band::G5;
    PropagationModel prop;
    Dbm cs_threshold = -82.0;          // carrier-sense coupling threshold
    RateMbps uplink_capacity{0.0};     // WAN uplink; 0 = unconstrained
    double mac_efficiency = 0.75;      // CSMA overhead factor on PHY rates
    int solver_iterations = 30;
    // The dedicated scanning radio (§2.1) dwells 150 ms per channel, so its
    // utilization estimates are samples, not truth; this sigma adds
    // deterministic-seeded measurement noise to every scan() (0 = oracle).
    double scan_noise_sigma = 0.0;
    // A client demanding less than this is "idle" for the DFS rule —
    // overnight lulls free APs to take the CAC hit and move to DFS
    // channels (§4.5.2), which is where the wide-channel capacity lives.
    double active_client_threshold_mbps = 0.5;
    std::uint64_t seed = 1;
  };

  explicit Network(Config cfg);

  // --- topology ----------------------------------------------------------
  ApId add_ap(Position pos, ChannelWidth max_width, Channel initial,
              bool dfs_capable = true);
  StationId add_client(ApId ap, Position pos, ClientCapability cap,
                       double offered_mbps);
  void add_interferer(ExternalInterferer intf);
  void scale_offered_load(double factor);  // compounding multiplier
  // Non-compounding: offered = base * factor (diurnal profiles).
  void set_load_factor(double factor);
  void set_client_load(ApId ap, double per_client_mbps);
  // RF churn: re-roll every external interferer's channel and duty cycle
  // (neighbouring deployments change, microwaves come and go).
  void mutate_interferers(Rng& rng);
  [[nodiscard]] std::size_t interferer_count() const { return interferers_.size(); }

  [[nodiscard]] const std::vector<ApNode>& aps() const { return aps_; }
  [[nodiscard]] std::size_t ap_count() const { return aps_.size(); }
  [[nodiscard]] const Config& config() const { return cfg_; }

  // --- channel plans -----------------------------------------------------
  // Returns the number of APs whose channel actually changed.
  //
  // Every switch disrupts that AP's *active* clients (§4.3.1): clients that
  // honour the Channel Switch Announcement follow seamlessly; clients that
  // don't support CSA — or miss the announcement beacons — must detect the
  // loss, rescan and re-associate (~5 s laptops, ~8 s mobiles). The
  // cumulative client-seconds of disruption are tracked so stability can be
  // weighed against plan quality.
  int apply_plan(const ChannelPlan& plan);
  // Single-AP switch (the rollout pipeline applies plans one command at a
  // time). Same disruption accounting and fallback upkeep as apply_plan;
  // returns whether the channel actually changed.
  bool apply_channel(ApId ap, const Channel& to);
  [[nodiscard]] ChannelPlan current_plan() const;
  [[nodiscard]] int total_switches() const { return total_switches_; }
  [[nodiscard]] double disruption_client_seconds() const {
    return disruption_client_seconds_;
  }
  [[nodiscard]] std::uint64_t clients_disrupted() const {
    return clients_disrupted_;
  }
  // Fraction of CSA announcements missed even by CSA-capable clients
  // (§4.3.1: "beacons might be missed even by clients that do support CSAs").
  double csa_miss_rate = 0.10;

  // Radar event on a DFS channel: the AP vacates to its fallback (§4.5.2)
  // and the fallback is recomputed afterwards, so repeated strikes walk the
  // AP down a chain that always terminates on a non-DFS channel — an AP is
  // never stranded on a channel it must leave. No-op off DFS channels.
  void radar_event(ApId ap);
  [[nodiscard]] int radar_evacuations() const { return radar_evacuations_; }
  // Non-occupancy memory: a channel struck this epoch stays on the list
  // until rearm_radar() (called at epoch boundaries, when regulation would
  // allow re-occupancy). A repeat strike on a listed channel — the planner
  // moved an AP back onto it within the epoch — still vacates the AP but
  // does NOT re-count evacuation/disruption degradation; it is the same
  // regulatory event, not new damage.
  void rearm_radar() { radar_struck_.clear(); }
  [[nodiscard]] bool radar_struck(const Channel& c) const {
    return radar_struck_.contains(c);
  }
  [[nodiscard]] int radar_duplicates() const { return radar_duplicates_; }

  // --- measurement -------------------------------------------------------
  // Scan snapshots for the channel-assignment service.
  [[nodiscard]] std::vector<ApScan> scan() const;

  // Solve airtime shares for the current plan and report per-AP outcomes.
  [[nodiscard]] Evaluation evaluate() const;

  // Sample distributions derived from an evaluation (outcome metrics).
  // TCP latency in ms: medium-access queueing driven by utilization and
  // contender count; `slow_client_fraction` injects the ≥400 ms tail the
  // paper attributes to unresponsive clients (Fig. 8).
  [[nodiscard]] Samples sample_tcp_latency(const Evaluation& ev,
                                           int samples_per_ap,
                                           double slow_client_fraction = 0.02);
  [[nodiscard]] Samples sample_bitrate_efficiency(const Evaluation& ev) const;
  [[nodiscard]] Samples sample_client_rssi() const;
  // Utilization seen by each AP (Fig. 2-style CDF input).
  [[nodiscard]] Samples sample_utilization(const Evaluation& ev) const;
  // Same-channel interferer count per AP (Fig. 3).
  [[nodiscard]] Samples sample_cochannel_interferers() const;

 private:
  struct Interference {
    double noise_mw_extra = 0.0;  // co-channel interference power at client
  };

  [[nodiscard]] const ApNode& ap_of(ApId id) const;
  [[nodiscard]] ApNode& ap_of_mut(ApId id);
  // Keep a non-DFS fallback whenever `ap` sits on a DFS channel; clear it
  // otherwise. Shared by apply_plan and radar_event.
  void refresh_dfs_fallback(ApNode& ap);
  // §4.3.1 disruption accounting for one AP's active clients after a switch.
  void account_switch_disruption(const ApNode& ap);
  [[nodiscard]] bool in_cs_range(const ApNode& a, const ApNode& b) const;
  [[nodiscard]] double external_duty_at(const ApNode& a,
                                        const Channel& on) const;
  [[nodiscard]] double client_phy_rate(const ApNode& ap, const ClientNode& cl,
                                       double interference_mw,
                                       int cochannel_contenders) const;
  [[nodiscard]] double client_max_rate(const ApNode& ap,
                                       const ClientNode& cl) const;

  Config cfg_;
  mutable Rng rng_;
  std::vector<ApNode> aps_;
  std::vector<ExternalInterferer> interferers_;
  int total_switches_ = 0;
  int radar_evacuations_ = 0;
  int radar_duplicates_ = 0;
  std::set<Channel> radar_struck_;  // struck this epoch (cleared by rearm)
  double disruption_client_seconds_ = 0.0;
  std::uint64_t clients_disrupted_ = 0;
  std::uint32_t next_station_ = 0;
};

}  // namespace w11::flowsim
