#pragma once
// Scan snapshot: what the Meraki back-end collects from each AP (§4.4).
//
// This is the input format for channel-assignment algorithms (TurboCA,
// ReservedCA). flowsim::Network produces it from its topology; tests can
// construct it by hand. The fields mirror the paper: neighbor reports from
// the dedicated scanning radio, per-channel utilization from non-network
// sources, client load bucketed by supported channel width, and channel
// quality (non-WiFi interference).

#include <map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "phy/channel.hpp"

namespace w11 {

struct NeighborReport {
  ApId id;
  Dbm rssi = -100.0;

  friend bool operator==(const NeighborReport&,
                         const NeighborReport&) = default;
};

struct ApScan {
  ApId id;
  Band band = Band::G5;
  Channel current{Band::G5, 36, ChannelWidth::MHz20};
  ChannelWidth max_width = ChannelWidth::MHz80;
  bool has_clients = false;
  bool dfs_capable = true;

  // load(b) of the NodeP formula: weight per channel-width class, driven by
  // the number of associated clients whose maximum width is b and their
  // usage (§4.4.1).
  std::map<ChannelWidth, double> load_by_width;

  // Same-network APs within carrier-sense range (any channel — the
  // scanning radio dwells on every channel).
  std::vector<NeighborReport> neighbors;

  // Utilization from non-network sources per 20 MHz component channel
  // number (external APs, non-WiFi interferers).
  std::map<int, double> external_util;

  // Channel quality per 20 MHz component in (0, 1]; 1 = clean.
  std::map<int, double> quality;

  // Measured utilization on the current channel (drives the §4.5.1
  // high-utilization switch-penalty rule).
  double utilization_current = 0.0;

  // When this snapshot was collected (harness clock). Time{0} means
  // "unstamped" and is always treated as fresh, so hand-built test scans
  // and recorded data keep working without a clock.
  Time taken_at{};

  [[nodiscard]] double total_load() const {
    double sum = 0.0;
    for (const auto& [w, l] : load_by_width) sum += l;
    return sum;
  }

  // Field-wise equality — what the delta-epoch differ (fleet/delta.hpp)
  // uses to decide whether a scan changed between censuses.
  friend bool operator==(const ApScan&, const ApScan&) = default;
};

// A channel plan: assignment for every AP in the network.
using ChannelPlan = std::map<ApId, Channel>;

}  // namespace w11
