#include "flowsim/scan_index.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "exec/task_pool.hpp"
#include "obs/gate.hpp"

// The aggregate rows feed the planner's bit-for-bit contracts (golden plan
// equivalence, audit/kernel parity); value-unsafe FP breaks them.
#ifdef __FAST_MATH__
#error "flowsim/scan_index.cpp must not be compiled with -ffast-math (determinism)"
#endif

namespace w11::flowsim {

// FNV-1a over the scan fields the aggregate row depends on (the
// external_util and quality maps — compute_stats reads nothing else).
// std::map iteration is key-ordered, so equal content hashes equally
// regardless of insertion history.
std::uint64_t ScanStatsCache::content_hash(const ApScan& s) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  auto mix_map = [&](const std::map<int, double>& m) {
    const std::size_t n = m.size();
    mix(&n, sizeof(n));
    for (const auto& [k, v] : m) {
      mix(&k, sizeof(k));
      mix(&v, sizeof(v));
    }
  };
  mix_map(s.external_util);
  mix_map(s.quality);
  return h;
}

ScanIndex::ScanIndex(std::vector<ApScan> scans, Dbm contender_rssi_floor,
                     exec::TaskPool* pool, ScanStatsCache* stats_cache)
    : scans_(std::move(scans)), floor_(contender_rssi_floor) {
  const std::size_t n = scans_.size();
  n_ordinals_ = channels::catalog_size();
  by_id_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    by_id_.emplace(scans_[i].id, static_cast<std::uint32_t>(i));

  recs_.resize(n);
  stats_.resize(n * n_ordinals_);
  std::size_t n_terms = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ApScan& s = scans_[i];
    ApRecord& r = recs_[i];

    // Adjacency restricted to APs present in this epoch, scan-report order.
    r.nbr_begin = static_cast<std::uint32_t>(nbr_flat_.size());
    for (const NeighborReport& nb : s.neighbors) {
      const auto it = by_id_.find(nb.id);
      if (it == by_id_.end()) continue;
      if (it->second == i) r.self_neighbor = true;
      nbr_flat_.push_back(Neighbor{it->second, !(nb.rssi < floor_)});
    }
    r.nbr_end = static_cast<std::uint32_t>(nbr_flat_.size());

    // load(b) per assigned channel width, accumulated in the same (map)
    // order the reference metric iterates so sums are bit-identical.
    r.total_load = s.total_load();
    for (int cw = 0; cw < 4; ++cw) {
      for (int b = 0; b <= cw; ++b) {
        double load = 0.0;
        for (const auto& [w, l] : s.load_by_width) {
          if (std::min(static_cast<int>(w), cw) == b) load += l;
        }
        r.load_at[b][cw] = load;
      }
    }

    // Candidate set (§4.5.2: an AP with connected clients must not move to
    // a DFS channel; DFS-incapable hardware never can). The current channel
    // is always a candidate.
    const bool allow_dfs = s.dfs_capable && !s.has_clients;
    r.candidates = channels::candidate_set(s.band, s.max_width, allow_dfs);
    if (std::find(r.candidates.begin(), r.candidates.end(), s.current) ==
        r.candidates.end())
      r.candidates.push_back(s.current);
    r.candidate_ordinals.reserve(r.candidates.size());
    for (const Channel& c : r.candidates)
      r.candidate_ordinals.push_back(channels::ordinal(c));

    // Slot layout of the SoA scoring block: each catalog candidate expands
    // to (width levels) terms; non-catalog candidates contribute none.
    r.cand_begin = static_cast<std::uint32_t>(cand_slots_);
    cand_slots_ += r.candidates.size();
    for (int ord : r.candidate_ordinals)
      if (ord >= 0)
        n_terms += static_cast<std::size_t>(
            static_cast<int>(channels::by_ordinal(ord).width) + 1);
  }

  // Cross-epoch aggregate reuse: probe the cache serially (it is not
  // thread-safe), remember per-AP hits, and insert freshly computed rows
  // after the parallel fill. Hit rows are copied inside the task — reads of
  // immutable cached rows are race-free. A probe hit also refreshes the
  // row's LRU position; probes run in scan order, so recency is
  // deterministic. No map insertion happens between here and the fill, so
  // the row data pointers stay valid.
  std::vector<const ChannelStats*> cached_row(n, nullptr);
  std::vector<std::uint64_t> row_hash;
  if (stats_cache != nullptr) {
    row_hash.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      row_hash[i] = ScanStatsCache::content_hash(scans_[i]);
      const auto it = stats_cache->rows_.find(row_hash[i]);
      if (it != stats_cache->rows_.end()) {
        cached_row[i] = it->second.row.data();
        stats_cache->lru_.splice(stats_cache->lru_.begin(), stats_cache->lru_,
                                 it->second.lru_pos);
        ++stats_cache->stats_.hits;
        W11_COUNT("scan_cache.hits");
      } else {
        ++stats_cache->stats_.misses;
        W11_COUNT("scan_cache.misses");
      }
    }
  }

  // Flat term arrays: per-candidate offsets first (serial prefix sums), the
  // fill itself rides the per-AP parallel tasks below.
  cand_term_begin_.resize(cand_slots_ + 1);
  term_load_.resize(n_terms);
  term_ext_.resize(n_terms);
  term_qual_.resize(n_terms);
  term_width_.resize(n_terms);
  term_sub_.resize(n_terms);
  {
    std::uint32_t term = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const ApRecord& r = recs_[i];
      for (std::size_t k = 0; k < r.candidates.size(); ++k) {
        cand_term_begin_[r.cand_begin + k] = term;
        const int ord = r.candidate_ordinals[k];
        if (ord >= 0)
          term += static_cast<std::uint32_t>(
              static_cast<int>(channels::by_ordinal(ord).width) + 1);
      }
    }
    cand_term_begin_[cand_slots_] = term;
  }

  // Per-catalog-channel aggregates + SoA term fill: the dominant build
  // cost, fanned out one AP per task. Task i writes only row i's slice of
  // stats_ and its own term-array slice, and each cell is a pure function
  // of (scan i, catalog channel), so the fill is race-free and
  // bit-identical at any worker count.
  const std::int16_t* sub_table = channels::sub_channel_table();
  const std::size_t sub_stride = channels::sub_channel_stride();
  exec::TaskPool& tp = pool ? *pool : exec::TaskPool::global();
  tp.parallel_for(n, [&, this](std::size_t i) {
    const ApScan& s = scans_[i];
    ChannelStats* row = stats_.data() + i * n_ordinals_;
    if (cached_row[i] != nullptr) {
      std::memcpy(row, cached_row[i], n_ordinals_ * sizeof(ChannelStats));
    } else {
      for (std::size_t ord = 0; ord < n_ordinals_; ++ord)
        row[ord] = compute_stats(s, channels::by_ordinal(static_cast<int>(ord)));
    }

    const ApRecord& r = recs_[i];
    for (std::size_t k = 0; k < r.candidates.size(); ++k) {
      const int ord = r.candidate_ordinals[k];
      if (ord < 0) continue;
      const int cw = static_cast<int>(channels::by_ordinal(ord).width);
      std::uint32_t t = cand_term_begin_[r.cand_begin + k];
      for (int b = 0; b <= cw; ++b, ++t) {
        const std::int16_t sub =
            sub_table[static_cast<std::size_t>(ord) * sub_stride +
                      static_cast<std::size_t>(b)];
        term_load_[t] = r.load_at[b][cw];
        term_ext_[t] = row[sub].external_util;
        term_qual_[t] = row[sub].quality;
        term_width_[t] =
            static_cast<double>(width_mhz(static_cast<ChannelWidth>(b)));
        term_sub_[t] = sub;
      }
    }
  });

  if (stats_cache != nullptr && stats_cache->capacity_ > 0) {
    // Retain the freshly computed rows, evicting least-recently-touched
    // entries once the bound is hit. Inserts run in scan order on this
    // thread, so what survives is a pure function of the probe/insert
    // history — deterministic at any worker count. Duplicate content
    // within the epoch (two APs with identical spectrum maps) collapses to
    // one row; the repeat just refreshes recency.
    for (std::size_t i = 0; i < n; ++i) {
      if (cached_row[i] != nullptr) continue;
      const auto it = stats_cache->rows_.find(row_hash[i]);
      if (it != stats_cache->rows_.end()) {
        stats_cache->lru_.splice(stats_cache->lru_.begin(), stats_cache->lru_,
                                 it->second.lru_pos);
        continue;
      }
      while (stats_cache->rows_.size() >= stats_cache->capacity_) {
        stats_cache->rows_.erase(stats_cache->lru_.back());
        stats_cache->lru_.pop_back();
        ++stats_cache->stats_.evictions;
        W11_COUNT("scan_cache.evictions");
      }
      stats_cache->lru_.push_front(row_hash[i]);
      stats_cache->rows_.emplace(
          row_hash[i],
          ScanStatsCache::Entry{
              std::vector<ChannelStats>(
                  stats_.begin() + static_cast<std::ptrdiff_t>(i * n_ordinals_),
                  stats_.begin() +
                      static_cast<std::ptrdiff_t>((i + 1) * n_ordinals_)),
              stats_cache->lru_.begin()});
    }
  }

  // Reverse contender edges: dependents(x) = { a : x is a contender-eligible
  // neighbor of a }. Counting sort into one flat array.
  std::vector<std::uint32_t> counts(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (const Neighbor& nb : neighbors(i))
      if (nb.contender) ++counts[nb.index];
  dep_flat_.resize(std::accumulate(counts.begin(), counts.end(),
                                   std::size_t{0}));
  std::uint32_t offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    recs_[i].dep_begin = offset;
    offset += counts[i];
    recs_[i].dep_end = recs_[i].dep_begin;  // fill cursor
  }
  for (std::size_t i = 0; i < n; ++i)
    for (const Neighbor& nb : neighbors(i))
      if (nb.contender) dep_flat_[recs_[nb.index].dep_end++] = static_cast<std::uint32_t>(i);
}

std::optional<std::size_t> ScanIndex::find(ApId id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

ScanIndex::ChannelStats ScanIndex::compute_stats(const ApScan& a,
                                                 const Channel& sub) {
  // Mirrors the reference metric exactly: worst-component external
  // utilization, mean component quality with missing components counted
  // as clean (1.0). Keep the arithmetic order stable — indexed evaluation
  // must be bit-identical to the reference evaluator.
  ChannelStats st;
  double ext = 0.0;
  double quality = 1.0;
  int comps = 0;
  for (int comp : sub.component_span()) {
    const auto u = a.external_util.find(comp);
    if (u != a.external_util.end()) ext = std::max(ext, u->second);
    const auto q = a.quality.find(comp);
    quality += (q != a.quality.end() ? q->second : 1.0);
    ++comps;
  }
  st.external_util = ext;
  st.quality = (quality - 1.0) / std::max(comps, 1);
  return st;
}

}  // namespace w11::flowsim
