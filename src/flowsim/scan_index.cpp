#include "flowsim/scan_index.hpp"

#include <algorithm>
#include <numeric>

#include "exec/task_pool.hpp"

namespace w11::flowsim {

ScanIndex::ScanIndex(std::vector<ApScan> scans, Dbm contender_rssi_floor,
                     exec::TaskPool* pool)
    : scans_(std::move(scans)), floor_(contender_rssi_floor) {
  const std::size_t n = scans_.size();
  n_ordinals_ = channels::catalog_size();
  by_id_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    by_id_.emplace(scans_[i].id, static_cast<std::uint32_t>(i));

  recs_.resize(n);
  stats_.resize(n * n_ordinals_);
  for (std::size_t i = 0; i < n; ++i) {
    const ApScan& s = scans_[i];
    ApRecord& r = recs_[i];

    // Adjacency restricted to APs present in this epoch, scan-report order.
    r.nbr_begin = static_cast<std::uint32_t>(nbr_flat_.size());
    for (const NeighborReport& nb : s.neighbors) {
      const auto it = by_id_.find(nb.id);
      if (it == by_id_.end()) continue;
      nbr_flat_.push_back(Neighbor{it->second, !(nb.rssi < floor_)});
    }
    r.nbr_end = static_cast<std::uint32_t>(nbr_flat_.size());

    // load(b) per assigned channel width, accumulated in the same (map)
    // order the reference metric iterates so sums are bit-identical.
    r.total_load = s.total_load();
    for (int cw = 0; cw < 4; ++cw) {
      for (int b = 0; b <= cw; ++b) {
        double load = 0.0;
        for (const auto& [w, l] : s.load_by_width) {
          if (std::min(static_cast<int>(w), cw) == b) load += l;
        }
        r.load_at[b][cw] = load;
      }
    }

    // Candidate set (§4.5.2: an AP with connected clients must not move to
    // a DFS channel; DFS-incapable hardware never can). The current channel
    // is always a candidate.
    const bool allow_dfs = s.dfs_capable && !s.has_clients;
    r.candidates = channels::candidate_set(s.band, s.max_width, allow_dfs);
    if (std::find(r.candidates.begin(), r.candidates.end(), s.current) ==
        r.candidates.end())
      r.candidates.push_back(s.current);
    r.candidate_ordinals.reserve(r.candidates.size());
    for (const Channel& c : r.candidates)
      r.candidate_ordinals.push_back(channels::ordinal(c));
  }

  // Per-catalog-channel aggregates: the dominant build cost, fanned out one
  // AP per task. Task i writes only row i's slice of stats_, and each cell
  // is a pure function of (scan i, catalog channel), so the fill is
  // race-free and bit-identical at any worker count.
  exec::TaskPool& tp = pool ? *pool : exec::TaskPool::global();
  tp.parallel_for(n, [this](std::size_t i) {
    const ApScan& s = scans_[i];
    for (std::size_t ord = 0; ord < n_ordinals_; ++ord)
      stats_[i * n_ordinals_ + ord] =
          compute_stats(s, channels::by_ordinal(static_cast<int>(ord)));
  });

  // Reverse contender edges: dependents(x) = { a : x is a contender-eligible
  // neighbor of a }. Counting sort into one flat array.
  std::vector<std::uint32_t> counts(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (const Neighbor& nb : neighbors(i))
      if (nb.contender) ++counts[nb.index];
  dep_flat_.resize(std::accumulate(counts.begin(), counts.end(),
                                   std::size_t{0}));
  std::uint32_t offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    recs_[i].dep_begin = offset;
    offset += counts[i];
    recs_[i].dep_end = recs_[i].dep_begin;  // fill cursor
  }
  for (std::size_t i = 0; i < n; ++i)
    for (const Neighbor& nb : neighbors(i))
      if (nb.contender) dep_flat_[recs_[nb.index].dep_end++] = static_cast<std::uint32_t>(i);
}

std::optional<std::size_t> ScanIndex::find(ApId id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

ScanIndex::ChannelStats ScanIndex::compute_stats(const ApScan& a,
                                                 const Channel& sub) {
  // Mirrors the reference metric exactly: worst-component external
  // utilization, mean component quality with missing components counted
  // as clean (1.0). Keep the arithmetic order stable — indexed evaluation
  // must be bit-identical to the reference evaluator.
  ChannelStats st;
  double ext = 0.0;
  double quality = 1.0;
  int comps = 0;
  for (int comp : sub.component_span()) {
    const auto u = a.external_util.find(comp);
    if (u != a.external_util.end()) ext = std::max(ext, u->second);
    const auto q = a.quality.find(comp);
    quality += (q != a.quality.end() ? q->second : 1.0);
    ++comps;
  }
  st.external_util = ext;
  st.quality = (quality - 1.0) / std::max(comps, 1);
  return st;
}

}  // namespace w11::flowsim
