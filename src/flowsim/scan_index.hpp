#pragma once
// ScanIndex: a flattened, immutable index over one scan epoch.
//
// The planner stack (TurboCA / ReservedCA / hopping) used to pass raw
// `std::vector<ApScan>` around and re-derive everything per evaluation:
// linear `find_scan` per neighbor lookup, catalog walks per sub-channel
// resolution, fresh id→scan hash maps per sweep. ScanIndex does that work
// once per scan epoch:
//
//   * contiguous per-AP records with an id→index map;
//   * adjacency lists restricted to APs present in the epoch, with the
//     contender RSSI floor pre-applied, plus the reverse ("who counts me
//     as a contender") edges that bound the invalidation set of a move;
//   * per-AP candidate channel sets (band/max-width/DFS rule, current
//     channel always included);
//   * per-(AP, catalog channel) external-utilization / quality aggregates,
//     folded with exactly the arithmetic the NodeP metric uses so indexed
//     evaluation is bit-for-bit identical to the reference path.
//
// A ScanIndex owns its scans and is immutable after construction: when a
// new census arrives, build a new index (services build one per firing and
// share it across all hop tiers of that firing).

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "flowsim/scan.hpp"
#include "phy/channel.hpp"

namespace w11::exec {
class TaskPool;
}

namespace w11::flowsim {

class ScanIndex {
 public:
  // Spectrum aggregates of one catalog channel as seen by one AP.
  struct ChannelStats {
    double external_util = 0.0;  // worst 20 MHz component external util
    double quality = 1.0;        // mean 20 MHz component quality
  };

  struct Neighbor {
    std::uint32_t index;  // position of the neighbor's scan in scans()
    bool contender;       // rssi >= the contender RSSI floor
  };

  // Construction fans the per-(AP, catalog channel) aggregate fill — the
  // dominant build cost — out over `pool` (nullptr = the global pool). Every
  // task writes only its own AP's slice, so the result is identical at any
  // worker count.
  explicit ScanIndex(
      std::vector<ApScan> scans,
      Dbm contender_rssi_floor = -std::numeric_limits<double>::infinity(),
      exec::TaskPool* pool = nullptr);

  [[nodiscard]] std::size_t size() const { return scans_.size(); }
  [[nodiscard]] const std::vector<ApScan>& scans() const { return scans_; }
  [[nodiscard]] const ApScan& scan(std::size_t i) const { return scans_[i]; }
  [[nodiscard]] Dbm contender_rssi_floor() const { return floor_; }

  [[nodiscard]] std::optional<std::size_t> find(ApId id) const;

  // Neighbors present in this epoch, in scan-report order.
  [[nodiscard]] std::span<const Neighbor> neighbors(std::size_t i) const {
    const ApRecord& r = recs_[i];
    return {nbr_flat_.data() + r.nbr_begin, r.nbr_end - r.nbr_begin};
  }

  // APs whose contention depends on i's channel (reverse contender edges):
  // the exact set of NodeP terms invalidated by moving AP i.
  [[nodiscard]] std::span<const std::uint32_t> dependents(
      std::size_t i) const {
    const ApRecord& r = recs_[i];
    return {dep_flat_.data() + r.dep_begin, r.dep_end - r.dep_begin};
  }

  // Candidate channels for AP i (catalog set under the DFS rule of §4.5.2,
  // with the current channel always included) and their catalog ordinals.
  [[nodiscard]] const std::vector<Channel>& candidates(std::size_t i) const {
    return recs_[i].candidates;
  }
  [[nodiscard]] const std::vector<int>& candidate_ordinals(
      std::size_t i) const {
    return recs_[i].candidate_ordinals;
  }

  // Aggregates of catalog channel `ord` as seen by AP i.
  [[nodiscard]] const ChannelStats& stats(std::size_t i, int ord) const {
    return stats_[i * n_ordinals_ + static_cast<std::size_t>(ord)];
  }
  // Same arithmetic for channels outside the catalog (rare fallback).
  [[nodiscard]] static ChannelStats compute_stats(const ApScan& a,
                                                  const Channel& sub);

  // load(b) of the NodeP formula for an AP assigned a cw-wide channel.
  [[nodiscard]] double load_at(std::size_t i, ChannelWidth b,
                               ChannelWidth cw) const {
    return recs_[i].load_at[static_cast<int>(b)][static_cast<int>(cw)];
  }
  [[nodiscard]] double total_load(std::size_t i) const {
    return recs_[i].total_load;
  }

 private:
  struct ApRecord {
    std::uint32_t nbr_begin = 0, nbr_end = 0;
    std::uint32_t dep_begin = 0, dep_end = 0;
    double total_load = 0.0;
    double load_at[4][4] = {};  // [b][cw]
    std::vector<Channel> candidates;
    std::vector<int> candidate_ordinals;
  };

  std::vector<ApScan> scans_;
  Dbm floor_;
  std::size_t n_ordinals_ = 0;
  std::unordered_map<ApId, std::uint32_t> by_id_;
  std::vector<ApRecord> recs_;
  std::vector<Neighbor> nbr_flat_;
  std::vector<std::uint32_t> dep_flat_;
  std::vector<ChannelStats> stats_;
};

}  // namespace w11::flowsim
