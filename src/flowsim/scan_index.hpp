#pragma once
// ScanIndex: a flattened, immutable index over one scan epoch.
//
// The planner stack (TurboCA / ReservedCA / hopping) used to pass raw
// `std::vector<ApScan>` around and re-derive everything per evaluation:
// linear `find_scan` per neighbor lookup, catalog walks per sub-channel
// resolution, fresh id→scan hash maps per sweep. ScanIndex does that work
// once per scan epoch:
//
//   * contiguous per-AP records with an id→index map;
//   * adjacency lists restricted to APs present in the epoch, with the
//     contender RSSI floor pre-applied, plus the reverse ("who counts me
//     as a contender") edges that bound the invalidation set of a move;
//   * per-AP candidate channel sets (band/max-width/DFS rule, current
//     channel always included);
//   * per-(AP, catalog channel) external-utilization / quality aggregates,
//     folded with exactly the arithmetic the NodeP metric uses so indexed
//     evaluation is bit-for-bit identical to the reference path.
//
// A ScanIndex owns its scans and is immutable after construction: when a
// new census arrives, build a new index (services build one per firing and
// share it across all hop tiers of that firing).

#include <cstdint>
#include <limits>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "flowsim/scan.hpp"
#include "phy/channel.hpp"

namespace w11::exec {
class TaskPool;
}

namespace w11::flowsim {

// Spectrum aggregates of one catalog channel as seen by one AP. Defined at
// namespace scope so ScanStatsCache can hold rows of them; ScanIndex keeps
// its historical `ScanIndex::ChannelStats` spelling as an alias.
struct ScanChannelStats {
  double external_util = 0.0;  // worst 20 MHz component external util
  double quality = 1.0;        // mean 20 MHz component quality
};

// Cross-epoch reuse of per-(AP, catalog channel) spectrum aggregates,
// keyed by a content hash of the scan fields that feed them (external_util
// + quality). A fleet-cadence service rebuilds its ScanIndex every firing,
// but most APs' spectrum snapshots are unchanged between firings — the
// aggregate row (the dominant index-build cost) can be copied instead of
// recomputed. Rows are immutable once inserted, so a hit is bit-identical
// to a recompute of the same content.
//
// Bounded by deterministic LRU eviction: a fleet of thousands of distinct
// campus epochs must not grow the cache without limit, and which rows
// survive must not depend on scheduling. Probes and inserts happen serially
// on the index-building thread in scan order, so the recency list — probed
// rows move to the front, inserts evict from the back once `capacity` rows
// are resident — is a pure function of the probe/insert history. A row's
// *contents* never change while resident; eviction only forgets, so a later
// rebuild recomputes the identical bytes.
//
// Not thread-safe; probe/insert happen on the index-building thread only
// (the parallel stats fill reads rows, which is safe — they never mutate).
class ScanStatsCache {
 public:
  // capacity = max resident rows; 0 disables retention entirely (every
  // probe misses, nothing is stored).
  explicit ScanStatsCache(std::size_t capacity = 65536)
      : capacity_(capacity) {}

  struct Stats {
    std::uint64_t hits = 0;       // AP rows served from the cache
    std::uint64_t misses = 0;     // AP rows computed fresh
    std::uint64_t evictions = 0;  // rows dropped to admit newer ones
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // The key a scan's aggregate row is cached under: FNV-1a over exactly
  // the fields compute_stats reads (the external_util and quality maps,
  // key-ordered). Public so delta producers and tests can reason about
  // reuse: equal hash ⇔ the cached row is byte-valid for this scan.
  [[nodiscard]] static std::uint64_t content_hash(const ApScan& scan);
  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  friend class ScanIndex;
  struct Entry {
    std::vector<ScanChannelStats> row;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Entry> rows_;
  std::list<std::uint64_t> lru_;  // front = most recently touched hash
  Stats stats_;
};

class ScanIndex {
 public:
  using ChannelStats = ScanChannelStats;

  struct Neighbor {
    std::uint32_t index;  // position of the neighbor's scan in scans()
    bool contender;       // rssi >= the contender RSSI floor
  };

  // Construction fans the per-(AP, catalog channel) aggregate fill — the
  // dominant build cost — out over `pool` (nullptr = the global pool). Every
  // task writes only its own AP's slice, so the result is identical at any
  // worker count. An optional ScanStatsCache (owned by the caller, one per
  // long-lived service) lets APs whose spectrum content is unchanged across
  // epochs copy their aggregate row instead of recomputing it.
  explicit ScanIndex(
      std::vector<ApScan> scans,
      Dbm contender_rssi_floor = -std::numeric_limits<double>::infinity(),
      exec::TaskPool* pool = nullptr, ScanStatsCache* stats_cache = nullptr);

  [[nodiscard]] std::size_t size() const { return scans_.size(); }
  [[nodiscard]] const std::vector<ApScan>& scans() const { return scans_; }
  [[nodiscard]] const ApScan& scan(std::size_t i) const { return scans_[i]; }
  [[nodiscard]] Dbm contender_rssi_floor() const { return floor_; }

  [[nodiscard]] std::optional<std::size_t> find(ApId id) const;

  // Neighbors present in this epoch, in scan-report order.
  [[nodiscard]] std::span<const Neighbor> neighbors(std::size_t i) const {
    const ApRecord& r = recs_[i];
    return {nbr_flat_.data() + r.nbr_begin, r.nbr_end - r.nbr_begin};
  }

  // APs whose contention depends on i's channel (reverse contender edges):
  // the exact set of NodeP terms invalidated by moving AP i.
  [[nodiscard]] std::span<const std::uint32_t> dependents(
      std::size_t i) const {
    const ApRecord& r = recs_[i];
    return {dep_flat_.data() + r.dep_begin, r.dep_end - r.dep_begin};
  }

  // Candidate channels for AP i (catalog set under the DFS rule of §4.5.2,
  // with the current channel always included) and their catalog ordinals.
  [[nodiscard]] const std::vector<Channel>& candidates(std::size_t i) const {
    return recs_[i].candidates;
  }
  [[nodiscard]] const std::vector<int>& candidate_ordinals(
      std::size_t i) const {
    return recs_[i].candidate_ordinals;
  }

  // Aggregates of catalog channel `ord` as seen by AP i.
  [[nodiscard]] const ChannelStats& stats(std::size_t i, int ord) const {
    return stats_[i * n_ordinals_ + static_cast<std::size_t>(ord)];
  }
  // Same arithmetic for channels outside the catalog (rare fallback).
  [[nodiscard]] static ChannelStats compute_stats(const ApScan& a,
                                                  const Channel& sub);

  // load(b) of the NodeP formula for an AP assigned a cw-wide channel.
  [[nodiscard]] double load_at(std::size_t i, ChannelWidth b,
                               ChannelWidth cw) const {
    return recs_[i].load_at[static_cast<int>(b)][static_cast<int>(cw)];
  }
  [[nodiscard]] double total_load(std::size_t i) const {
    return recs_[i].total_load;
  }

  // ---- SoA candidate scoring block (DESIGN.md §14) ----------------------
  // Every catalog candidate k of AP i expands to one (b = 20MHz..width)
  // term per sub-channel width, laid out contiguously in flat parallel
  // arrays; a candidate whose channel is outside the catalog contributes
  // zero terms (term_begin[k] == term_begin[k+1]) and must be scored on the
  // scalar path. The batched NodeP kernel walks these arrays with no
  // geometry calls and no map lookups.
  struct ScoreBlock {
    // Half-open per-candidate term ranges: candidate k owns global term
    // indices [term_begin[k], term_begin[k+1]). Size candidates(i)+1.
    const std::uint32_t* term_begin = nullptr;
    const double* load = nullptr;        // raw load(b) for the (b, cw) pair
    const double* ext = nullptr;         // sub-channel external utilization
    const double* qual = nullptr;        // sub-channel quality
    const double* width = nullptr;       // width_mhz(b) as double
    const std::int16_t* sub = nullptr;   // sub-channel catalog ordinal
  };
  [[nodiscard]] ScoreBlock score_block(std::size_t i) const {
    const ApRecord& r = recs_[i];
    return ScoreBlock{cand_term_begin_.data() + r.cand_begin,
                      term_load_.data(), term_ext_.data(), term_qual_.data(),
                      term_width_.data(), term_sub_.data()};
  }
  // First slot of AP i's candidates in per-candidate flat arrays (the
  // PlanContext aligns its per-candidate penalty table to these slots).
  [[nodiscard]] std::uint32_t candidate_base(std::size_t i) const {
    return recs_[i].cand_begin;
  }
  // Total candidate slots across all APs.
  [[nodiscard]] std::size_t candidate_slots() const {
    return cand_slots_;
  }
  // True if AP i reports itself as a neighbor (degenerate input); the
  // kernel bails to the scalar path for such APs.
  [[nodiscard]] bool has_self_neighbor(std::size_t i) const {
    return recs_[i].self_neighbor;
  }

 private:
  struct ApRecord {
    std::uint32_t nbr_begin = 0, nbr_end = 0;
    std::uint32_t dep_begin = 0, dep_end = 0;
    std::uint32_t cand_begin = 0;  // into cand_term_begin_ (slot space)
    double total_load = 0.0;
    double load_at[4][4] = {};  // [b][cw]
    bool self_neighbor = false;
    std::vector<Channel> candidates;
    std::vector<int> candidate_ordinals;
  };

  std::vector<ApScan> scans_;
  Dbm floor_;
  std::size_t n_ordinals_ = 0;
  std::size_t cand_slots_ = 0;
  std::unordered_map<ApId, std::uint32_t> by_id_;
  std::vector<ApRecord> recs_;
  std::vector<Neighbor> nbr_flat_;
  std::vector<std::uint32_t> dep_flat_;
  std::vector<ChannelStats> stats_;
  // SoA scoring block storage (see ScoreBlock): one sentinel-terminated
  // per-candidate offset array plus flat parallel term arrays.
  std::vector<std::uint32_t> cand_term_begin_;
  std::vector<double> term_load_;
  std::vector<double> term_ext_;
  std::vector<double> term_qual_;
  std::vector<double> term_width_;
  std::vector<std::int16_t> term_sub_;
};

}  // namespace w11::flowsim
