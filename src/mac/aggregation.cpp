#include "mac/aggregation.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace w11::mac {

Time ampdu_airtime(int n_mpdus, Bytes mpdu_payload, RateMbps phy_rate) {
  W11_CHECK(n_mpdus >= 1);
  const Bytes total = (mpdu_payload + kPerMpduOverhead) * n_mpdus;
  return kVhtPreamble + transmit_time(total, phy_rate);
}

int max_aggregate_size(int queued, Bytes mpdu_payload, RateMbps phy_rate,
                       const AmpduLimits& limits) {
  if (queued <= 0) return 0;
  int n = std::min(queued, limits.max_mpdus);
  while (n > 1 && ampdu_airtime(n, mpdu_payload, phy_rate) > limits.max_airtime) --n;
  return n;
}

Time txop_duration(int n_mpdus, Bytes mpdu_payload, RateMbps phy_rate,
                   bool rts_protected) {
  Time t = ampdu_airtime(n_mpdus, mpdu_payload, phy_rate) + kSifs +
           control_frame_airtime(kBlockAckBytes);
  if (rts_protected) {
    t += control_frame_airtime(kRtsBytes) + kSifs +
         control_frame_airtime(kCtsBytes) + kSifs;
  }
  return t;
}

}  // namespace w11::mac
