#pragma once
// A-MPDU aggregation policy and airtime accounting (§5.1).
//
// 802.11ac allows up to 64 MPDUs per A-MPDU and up to 5.3 ms of airtime per
// transmission (wave-2). Aggregation is the primary lever for amortizing
// CSMA/CA overhead; FastACK exists to keep AP queues deep enough that these
// limits, not queue starvation, bound the aggregate size.

#include <cstdint>

#include "common/time.hpp"
#include "common/units.hpp"
#include "mac/timing.hpp"

namespace w11::mac {

// Hard limits from the standard / wave-2 hardware.
inline constexpr int kMaxAmpduMpdus = 64;
inline constexpr Time kMaxAmpduAirtime = time::micros(5300);

// Fixed per-MPDU framing overhead inside an A-MPDU: MPDU delimiter (4 B) +
// MAC header & FCS (~34 B) + padding.
inline constexpr Bytes kPerMpduOverhead{40};

struct AmpduLimits {
  int max_mpdus = kMaxAmpduMpdus;
  Time max_airtime = kMaxAmpduAirtime;
};

// Airtime of an A-MPDU of `n_mpdus` frames each carrying `mpdu_payload`
// bytes, sent at `phy_rate` — preamble plus serialized payload + overhead.
[[nodiscard]] Time ampdu_airtime(int n_mpdus, Bytes mpdu_payload, RateMbps phy_rate);

// Largest MPDU count (≥1, ≤ limits.max_mpdus, ≤ queued) whose A-MPDU
// airtime fits within limits.max_airtime at `phy_rate`.
[[nodiscard]] int max_aggregate_size(int queued, Bytes mpdu_payload, RateMbps phy_rate,
                                     const AmpduLimits& limits = {});

// Full TXOP duration for a data exchange: [RTS + SIFS + CTS + SIFS, if
// protected] + A-MPDU + SIFS + BlockAck.
[[nodiscard]] Time txop_duration(int n_mpdus, Bytes mpdu_payload, RateMbps phy_rate,
                                 bool rts_protected);

}  // namespace w11::mac
