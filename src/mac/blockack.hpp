#pragma once
// BlockAck bitmap: per-MPDU delivery status for one A-MPDU exchange.
//
// 802.11 acknowledges each MPDU in an aggregate individually; the receiver
// reports a bitmap over MPDU sequence numbers. FastACK consumes exactly this
// information — an MPDU-granular 802.11 ACK — so the type lives here where
// both the MAC simulation and the FastACK agent can use it.

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace w11::mac {

class BlockAckBitmap {
 public:
  BlockAckBitmap() = default;
  explicit BlockAckBitmap(std::uint64_t start_seq) : start_(start_seq) {}

  void record(std::uint64_t seq, bool delivered) {
    W11_CHECK_MSG(seq >= start_, "sequence before bitmap window");
    const std::size_t off = static_cast<std::size_t>(seq - start_);
    if (off >= bits_.size()) bits_.resize(off + 1, false);
    bits_[off] = delivered;
  }

  [[nodiscard]] bool delivered(std::uint64_t seq) const {
    if (seq < start_) return false;
    const std::size_t off = static_cast<std::size_t>(seq - start_);
    return off < bits_.size() && bits_[off];
  }

  [[nodiscard]] std::uint64_t start_seq() const { return start_; }
  [[nodiscard]] std::size_t window_size() const { return bits_.size(); }

  [[nodiscard]] int delivered_count() const {
    int n = 0;
    for (bool b : bits_) n += b ? 1 : 0;
    return n;
  }

  // Sequences marked delivered, ascending.
  [[nodiscard]] std::vector<std::uint64_t> delivered_seqs() const {
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < bits_.size(); ++i)
      if (bits_[i]) out.push_back(start_ + i);
    return out;
  }

 private:
  std::uint64_t start_ = 0;
  std::vector<bool> bits_;
};

}  // namespace w11::mac
