#pragma once
// 802.11e EDCA access categories and their contention parameters (§3.2.4).
//
// From least to most aggressive: Background (BK), Best Effort (BE),
// Video (VI), Voice (VO). More aggressive ACs use a shorter AIFS and a
// smaller contention window, gaining faster and longer access to the medium
// while exhausting retries sooner.

#include <array>
#include <cstdint>

#include "common/time.hpp"

namespace w11 {

enum class AccessCategory : std::uint8_t { BK = 0, BE = 1, VI = 2, VO = 3 };

inline constexpr std::array<AccessCategory, 4> kAllAccessCategories = {
    AccessCategory::BK, AccessCategory::BE, AccessCategory::VI,
    AccessCategory::VO};

[[nodiscard]] constexpr const char* to_string(AccessCategory ac) {
  switch (ac) {
    case AccessCategory::BK: return "BK";
    case AccessCategory::BE: return "BE";
    case AccessCategory::VI: return "VI";
    case AccessCategory::VO: return "VO";
  }
  return "?";
}

struct EdcaParams {
  int aifsn;        // slots added to SIFS before contention
  int cw_min;       // initial contention window (slots)
  int cw_max;       // CW ceiling after exponential backoff
  int retry_limit;  // MPDU retransmission attempts before drop
};

// Default EDCA parameter set (802.11-2016 Table 9-137, aCWmin=15, aCWmax=1023).
[[nodiscard]] constexpr EdcaParams edca_params(AccessCategory ac) {
  switch (ac) {
    case AccessCategory::BK: return {7, 15, 1023, 7};
    case AccessCategory::BE: return {3, 15, 1023, 7};
    case AccessCategory::VI: return {2, 7, 15, 4};
    case AccessCategory::VO: return {2, 3, 7, 4};
  }
  return {3, 15, 1023, 7};
}

// Map a DSCP value (IP header) to an access category, mirroring the common
// WMM mapping the paper relies on for QoS marking (§3.2.4).
[[nodiscard]] constexpr AccessCategory dscp_to_ac(int dscp) {
  const int cls = dscp >> 3;  // class selector bits
  switch (cls) {
    case 1: case 2: return AccessCategory::BK;   // CS1..CS2
    case 3: case 4: return AccessCategory::VI;   // CS3..CS4
    case 5: case 6: case 7: return AccessCategory::VO;  // CS5..CS7
    default: return AccessCategory::BE;          // CS0 / unmarked
  }
}

}  // namespace w11
