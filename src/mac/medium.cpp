#include "mac/medium.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace w11::mac {

Medium::Medium(Simulator& sim, MediumConfig cfg, Rng rng)
    : sim_(sim), cfg_(cfg), rng_(std::move(rng)) {}

Medium::Slot* Medium::find(Contender* c) {
  for (auto& s : slots_)
    if (s.contender == c) return &s;
  return nullptr;
}

void Medium::attach(Contender* c) {
  W11_CHECK(c != nullptr);
  W11_CHECK_MSG(find(c) == nullptr, "contender already attached");
  Slot s;
  s.contender = c;
  s.cw = edca_params(c->access_category()).cw_min;
  slots_.push_back(s);
}

void Medium::detach(Contender* c) {
  std::erase_if(slots_, [c](const Slot& s) { return s.contender == c; });
}

void Medium::set_backlogged(Contender* c, bool backlogged) {
  Slot* s = find(c);
  W11_CHECK_MSG(s != nullptr, "contender not attached");
  s->backlogged = backlogged;
  if (backlogged) maybe_start_round();
}

void Medium::maybe_start_round() {
  if (busy_ || round_pending_) return;
  resolve_round();
}

void Medium::resolve_round() {
  // Draw deferrals for all backlogged contenders at the instant the medium
  // went idle; the earliest draw(s) win.
  Time best = time::kForever;
  std::vector<std::size_t> winners;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.backlogged) continue;
    const AccessCategory ac = s.contender->access_category();
    const Time deferral =
        aifs(ac) + kSlot * rng_.uniform_int(0, s.cw);
    if (deferral < best) {
      best = deferral;
      winners.assign(1, i);
    } else if (deferral == best) {
      winners.push_back(i);
    }
  }
  if (winners.empty()) return;
  round_pending_ = true;
  sim_.schedule_after(best, [this, winners] {
    round_pending_ = false;
    grant(winners);
  });
}

void Medium::grant(const std::vector<std::size_t>& winner_idx) {
  // Re-validate: a contender may have drained or detached since the draw.
  std::vector<Slot*> winners;
  for (std::size_t i : winner_idx)
    if (i < slots_.size() && slots_[i].backlogged) winners.push_back(&slots_[i]);
  if (winners.empty()) {
    maybe_start_round();
    return;
  }

  const bool collided = winners.size() > 1;
  Time duration{};
  for (Slot* s : winners) {
    const TxDescriptor td = s->contender->begin_txop();
    W11_CHECK(td.duration > Time{0});
    duration = std::max(duration, td.duration);
  }

  if (collided) {
    ++collisions_;
    // With RTS/CTS only the (unanswered) RTS burns airtime; without it the
    // longest colliding frame does.
    if (cfg_.rts_cts)
      duration = control_frame_airtime(kRtsBytes) + kSifs;
    for (Slot* s : winners) {
      const EdcaParams p = edca_params(s->contender->access_category());
      s->cw = std::min(2 * s->cw + 1, p.cw_max);
    }
  } else {
    ++txops_;
    Slot* w = winners.front();
    w->cw = edca_params(w->contender->access_category()).cw_min;
  }

  busy_ = true;
  total_busy_ += duration;
  for (Slot* s : winners) s->airtime += duration;

  // Capture contender pointers (slots_ may reallocate if attach() runs
  // mid-simulation; contender objects themselves are stable).
  std::vector<Contender*> done;
  done.reserve(winners.size());
  for (Slot* s : winners) done.push_back(s->contender);

  sim_.schedule_after(duration + cfg_.slack, [this, done, collided] {
    busy_ = false;
    for (Contender* c : done)
      if (find(c) != nullptr) c->end_txop(collided);
    maybe_start_round();
  });
}

Time Medium::airtime_of(const Contender* c) const {
  for (const auto& s : slots_)
    if (s.contender == c) return s.airtime;
  return Time{};
}

double Medium::utilization(Time since, Time busy_at_since) const {
  const Time window = sim_.now() - since;
  if (window <= Time{0}) return 0.0;
  const Time busy = total_busy_ - busy_at_since;
  return std::clamp(static_cast<double>(busy.ns()) / static_cast<double>(window.ns()),
                    0.0, 1.0);
}

}  // namespace w11::mac
