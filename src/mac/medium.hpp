#pragma once
// Shared-medium CSMA/CA (EDCA) contention model.
//
// A Medium represents one collision domain: a set of transceivers that all
// carrier-sense each other on overlapping channels (the testbed scenarios of
// §5.6 place every node in one such domain). The DCF abstraction is the
// standard "slotted lottery" approximation:
//
//   * When the medium goes idle and contenders are backlogged, each draws a
//     deferral of AIFS(ac) + slot × U[0, CW]; the earliest draw wins the
//     TXOP. Exact ties transmit simultaneously and collide.
//   * On collision every participant's CW doubles (up to CWmax) and the
//     medium is wasted for the RTS duration (virtual carrier sense, §4.1.2)
//     or the longest frame when RTS/CTS is disabled.
//   * On success the winner's CW resets to CWmin.
//
// This reproduces the properties the paper's results rest on: medium-access
// latency grows with the number of contenders, small frames (TCP ACKs) pay
// the same contention cost as large aggregates, and co-channel APs share
// airtime approximately fairly (§5.6.3).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "mac/edca.hpp"
#include "mac/timing.hpp"
#include "sim/simulator.hpp"

namespace w11::mac {

// What a granted contender puts on the air.
struct TxDescriptor {
  Time duration;     // full exchange airtime incl. SIFS + BlockAck
  int n_mpdus = 1;   // for aggregation statistics
};

// A (station, access category) transmit context. Stations register one
// contender per AC they use.
class Contender {
 public:
  virtual ~Contender() = default;

  // Invoked when this contender wins a TXOP; returns what it transmits.
  // Only called while backlogged.
  virtual TxDescriptor begin_txop() = 0;

  // Invoked when the exchange ends. `collided` means the whole transmission
  // failed (simultaneous transmission); otherwise per-MPDU outcomes are the
  // station's business (PER / BlockAck). The contender must re-declare
  // backlog via Medium::set_backlogged if it still has traffic.
  virtual void end_txop(bool collided) = 0;

  [[nodiscard]] virtual AccessCategory access_category() const = 0;
};

struct MediumConfig {
  bool rts_cts = true;        // virtual carrier sense for data exchanges
  Time slack = time::nanos(0);  // extra inter-TXOP gap (hardware turnaround)
};

class Medium {
 public:
  Medium(Simulator& sim, MediumConfig cfg, Rng rng);
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  void attach(Contender* c);
  void detach(Contender* c);

  // Declare whether `c` has frames ready. Setting true while the medium is
  // idle starts a contention round.
  void set_backlogged(Contender* c, bool backlogged);

  [[nodiscard]] bool busy() const { return busy_; }

  // --- statistics -------------------------------------------------------
  [[nodiscard]] Time total_busy_time() const { return total_busy_; }
  [[nodiscard]] std::uint64_t txop_count() const { return txops_; }
  [[nodiscard]] std::uint64_t collision_count() const { return collisions_; }
  [[nodiscard]] Time airtime_of(const Contender* c) const;
  // Fraction of [since, now] the medium spent busy.
  [[nodiscard]] double utilization(Time since, Time busy_at_since) const;

 private:
  struct Slot {
    Contender* contender = nullptr;
    bool backlogged = false;
    int cw = 15;
    Time airtime{};
  };

  Slot* find(Contender* c);
  void maybe_start_round();
  void resolve_round();
  void grant(const std::vector<std::size_t>& winner_idx);

  Simulator& sim_;
  MediumConfig cfg_;
  Rng rng_;
  std::vector<Slot> slots_;
  bool busy_ = false;
  bool round_pending_ = false;
  Time total_busy_{};
  std::uint64_t txops_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace w11::mac
