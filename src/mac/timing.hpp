#pragma once
// 802.11 MAC/PHY timing constants (OFDM PHY, 5 GHz values).

#include "common/time.hpp"
#include "common/units.hpp"
#include "mac/edca.hpp"

namespace w11::mac {

// Short interframe space; 16 µs for OFDM PHYs at 5 GHz (§5.2, fn. 8).
inline constexpr Time kSifs = time::micros(16);
// Slot time for OFDM PHYs.
inline constexpr Time kSlot = time::micros(9);
// VHT PHY preamble + header (L-STF/L-LTF/L-SIG + VHT-SIG/STF/LTFs), ~44 µs
// for a representative 2–3 stream transmission.
inline constexpr Time kVhtPreamble = time::micros(44);
// Legacy (non-HT) preamble used by control responses.
inline constexpr Time kLegacyPreamble = time::micros(20);
// Control frames (RTS/CTS/BlockAck) go out at a legacy basic rate.
inline constexpr RateMbps kBasicRate{24.0};

// Control frame sizes (bytes, MAC layer).
inline constexpr Bytes kRtsBytes{20};
inline constexpr Bytes kCtsBytes{14};
inline constexpr Bytes kBlockAckBytes{32};

// AIFS for an access category: SIFS + AIFSN × slot.
[[nodiscard]] constexpr Time aifs(AccessCategory ac) {
  return kSifs + edca_params(ac).aifsn * kSlot;
}

// Airtime of a control frame at the basic rate (legacy preamble included).
[[nodiscard]] constexpr Time control_frame_airtime(Bytes size) {
  return kLegacyPreamble + transmit_time(size, kBasicRate);
}

}  // namespace w11::mac
