#include "net/tcp_receiver.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace w11 {

TcpReceiver::TcpReceiver(Simulator& sim, FlowId flow, Config cfg, AckFn send_ack)
    : sim_(sim), flow_(flow), cfg_(cfg), send_ack_(std::move(send_ack)) {
  W11_CHECK(send_ack_ != nullptr);
  W11_CHECK(cfg_.buffer > Bytes{0});
}

std::uint64_t TcpReceiver::advertised_window() const {
  const std::uint64_t held = ooo_.held_bytes();
  const auto buf = static_cast<std::uint64_t>(cfg_.buffer.count());
  return held >= buf ? 0 : buf - held;
}

void TcpReceiver::on_data(const TcpSegment& seg) {
  if (!seg.has_payload()) return;
  ++stats_.segments_received;

  const std::uint64_t end = seg.seq_end();
  if (end <= rcv_nxt_) {
    // Entirely old data — a retransmission we already have. Re-ACK so the
    // sender can make progress.
    ++stats_.duplicate_segments;
    emit_ack(/*duplicate=*/true);
    return;
  }

  if (seg.seq > rcv_nxt_) {
    // Out of order: hole ahead of us. Buffer if it fits in the window.
    const auto buf = static_cast<std::uint64_t>(cfg_.buffer.count());
    if (end > rcv_nxt_ + buf) {
      // Sender overran our advertised window; drop (§5.5.2's failure mode).
      ++stats_.window_overflow_drops;
      return;
    }
    // Merge [seg.seq, end) into the out-of-order interval set.
    ooo_.insert(seg.seq, end);
    // Out-of-order arrival triggers an immediate duplicate ACK (with SACK).
    emit_ack(/*duplicate=*/true);
    return;
  }

  // In-order (possibly overlapping) data: advance rcv_nxt, absorbing any
  // now-contiguous buffered ranges.
  rcv_nxt_ = ooo_.absorb(end);

  if (!ooo_.empty()) {
    // Still holes above us — keep the sender informed immediately.
    emit_ack(/*duplicate=*/false);
    return;
  }

  if (++unacked_segments_ >= cfg_.ack_every) {
    emit_ack(/*duplicate=*/false);
  } else {
    schedule_delayed_ack();
  }
}

void TcpReceiver::emit_ack(bool duplicate) {
  unacked_segments_ = 0;
  delack_timer_.cancel();
  TcpSegment ack;
  ack.flow = flow_;
  ack.is_ack = true;
  ack.ack = rcv_nxt_;
  ack.rwnd = advertised_window();
  ack.sent_at = sim_.now();
  if (cfg_.sack_enabled) {
    // SackList caps itself at the 3-block option space limit.
    for (const auto& iv : ooo_) ack.sacks.push_back({iv.start, iv.end});
  }
  ++stats_.acks_sent;
  if (duplicate) ++stats_.dup_acks_sent;
  send_ack_(std::move(ack));
}

void TcpReceiver::schedule_delayed_ack() {
  if (delack_timer_.pending()) return;
  delack_timer_ = sim_.schedule_after(cfg_.delayed_ack, [this] {
    if (unacked_segments_ > 0) emit_ack(/*duplicate=*/false);
  });
}

}  // namespace w11
