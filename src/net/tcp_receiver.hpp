#pragma once
// TCP receiver endpoint.
//
// Reassembles in-order data, generates cumulative ACKs with optional SACK
// blocks, applies the delayed-ACK rule (ACK every second segment or after a
// timeout), and advertises a receive window bounded by a finite buffer.
// The application consumes in-order data immediately, so only out-of-order
// bytes occupy the buffer — matching a saturating download client.

#include <cstdint>
#include <functional>

#include "common/ids.hpp"
#include "common/seq_containers.hpp"
#include "common/units.hpp"
#include "net/tcp_segment.hpp"
#include "sim/simulator.hpp"

namespace w11 {

class TcpReceiver {
 public:
  struct Config {
    Bytes buffer{1'048'576};  // 1 MiB receive buffer
    bool sack_enabled = true;
    Time delayed_ack = time::millis(40);
    int ack_every = 2;  // immediate ACK after this many unacked segments
  };

  struct Stats {
    std::uint64_t segments_received = 0;
    std::uint64_t duplicate_segments = 0;
    std::uint64_t window_overflow_drops = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t dup_acks_sent = 0;
  };

  using AckFn = std::function<void(TcpSegment)>;

  TcpReceiver(Simulator& sim, FlowId flow, Config cfg, AckFn send_ack);
  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  void on_data(const TcpSegment& seg);

  [[nodiscard]] std::uint64_t rcv_nxt() const { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t bytes_delivered() const { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t advertised_window() const;
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void emit_ack(bool duplicate);
  void schedule_delayed_ack();

  Simulator& sim_;
  FlowId flow_;
  Config cfg_;
  AckFn send_ack_;

  std::uint64_t rcv_nxt_ = 0;
  // Out-of-order byte ranges held in the buffer, as merged disjoint
  // intervals in a flat sorted vector.
  IntervalVec ooo_;
  int unacked_segments_ = 0;
  EventHandle delack_timer_;
  Stats stats_;
};

}  // namespace w11
