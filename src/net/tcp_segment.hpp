#pragma once
// TCP segment model.
//
// Segments carry the header fields the reproduction needs: byte sequence /
// acknowledgment numbers, payload length, advertised receive window, SACK
// blocks and a DSCP mark (mapped to an 802.11e access category at the AP).
// Sequence numbers are absolute 64-bit byte offsets — wrap-around handling
// is orthogonal to everything the paper studies and is deliberately
// excluded from the model.

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace w11 {

struct SackBlock {
  std::uint64_t start = 0;  // first sacked byte
  std::uint64_t end = 0;    // one past last sacked byte
  friend constexpr auto operator<=>(const SackBlock&, const SackBlock&) = default;
};

// Fixed-capacity SACK block list. Real TCP fits at most 3 SACK blocks next
// to a timestamp option, so the former std::vector only ever held 0–3
// entries — at the cost of making every segment copy an allocation. Storing
// them inline keeps TcpSegment trivially copyable, which is what lets event
// queues and retransmit caches treat segments as relocatable raw bytes.
class SackList {
 public:
  static constexpr std::size_t kMax = 3;

  [[nodiscard]] constexpr std::size_t size() const { return n_; }
  [[nodiscard]] constexpr bool empty() const { return n_ == 0; }
  constexpr void clear() { n_ = 0; }

  // Appends, silently dropping blocks past capacity (the option-space rule
  // the receiver previously enforced with an explicit break).
  constexpr void push_back(SackBlock b) {
    if (n_ < kMax) blocks_[n_++] = b;
  }

  [[nodiscard]] constexpr const SackBlock& operator[](std::size_t i) const {
    return blocks_[i];
  }
  [[nodiscard]] constexpr const SackBlock* begin() const { return blocks_; }
  [[nodiscard]] constexpr const SackBlock* end() const { return blocks_ + n_; }

 private:
  SackBlock blocks_[kMax] = {};
  std::uint8_t n_ = 0;
};

struct TcpSegment {
  FlowId flow;                 // stands in for the 5-tuple
  StationId dst_station;       // wireless destination for downlink routing

  std::uint64_t seq = 0;       // first payload byte (data segments)
  std::uint64_t ack = 0;       // cumulative ack: next byte expected
  std::uint32_t payload = 0;   // payload bytes (0 for pure ACKs)
  std::uint64_t rwnd = 0;      // advertised receive window (bytes)
  bool is_ack = false;         // carries acknowledgment information
  bool udp = false;            // connection-less traffic (Fig. 15 upper bound)
  int dscp = 0;                // IP DSCP mark

  SackList sacks;

  // Measurement metadata (not protocol state): segment creation time and
  // the time the AP accepted it from the wire, for latency accounting.
  Time sent_at{};
  Time ap_rx_at{};

  [[nodiscard]] std::uint64_t seq_end() const { return seq + payload; }
  [[nodiscard]] bool has_payload() const { return payload > 0; }

  // On-the-wire size: payload plus IP+TCP headers (40 B, +12 B when options
  // such as SACK ride along).
  [[nodiscard]] Bytes wire_size() const {
    const std::int64_t hdr = sacks.empty() ? 40 : 52;
    return Bytes{hdr + payload};
  }
};

// Segments are moved through event captures, retransmit caches and A-MPDU
// queues by the million; trivial copyability is what makes those moves
// memcpy-class and lets the flat containers relocate entries freely.
static_assert(std::is_trivially_copyable_v<TcpSegment>);

// Helper: cumulative-ACK comparison — does `ack_no` acknowledge `seq_end`?
[[nodiscard]] constexpr bool acks_through(std::uint64_t ack_no, std::uint64_t seq_end) {
  return ack_no >= seq_end;
}

}  // namespace w11
