#pragma once
// TCP segment model.
//
// Segments carry the header fields the reproduction needs: byte sequence /
// acknowledgment numbers, payload length, advertised receive window, SACK
// blocks and a DSCP mark (mapped to an 802.11e access category at the AP).
// Sequence numbers are absolute 64-bit byte offsets — wrap-around handling
// is orthogonal to everything the paper studies and is deliberately
// excluded from the model.

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace w11 {

struct SackBlock {
  std::uint64_t start = 0;  // first sacked byte
  std::uint64_t end = 0;    // one past last sacked byte
  friend constexpr auto operator<=>(const SackBlock&, const SackBlock&) = default;
};

struct TcpSegment {
  FlowId flow;                 // stands in for the 5-tuple
  StationId dst_station;       // wireless destination for downlink routing

  std::uint64_t seq = 0;       // first payload byte (data segments)
  std::uint64_t ack = 0;       // cumulative ack: next byte expected
  std::uint32_t payload = 0;   // payload bytes (0 for pure ACKs)
  std::uint64_t rwnd = 0;      // advertised receive window (bytes)
  bool is_ack = false;         // carries acknowledgment information
  bool udp = false;            // connection-less traffic (Fig. 15 upper bound)
  int dscp = 0;                // IP DSCP mark

  std::vector<SackBlock> sacks;

  // Measurement metadata (not protocol state): segment creation time and
  // the time the AP accepted it from the wire, for latency accounting.
  Time sent_at{};
  Time ap_rx_at{};

  [[nodiscard]] std::uint64_t seq_end() const { return seq + payload; }
  [[nodiscard]] bool has_payload() const { return payload > 0; }

  // On-the-wire size: payload plus IP+TCP headers (40 B, +12 B when options
  // such as SACK ride along).
  [[nodiscard]] Bytes wire_size() const {
    const std::int64_t hdr = sacks.empty() ? 40 : 52;
    return Bytes{hdr + payload};
  }
};

// Helper: cumulative-ACK comparison — does `ack_no` acknowledge `seq_end`?
[[nodiscard]] constexpr bool acks_through(std::uint64_t ack_no, std::uint64_t seq_end) {
  return ack_no >= seq_end;
}

}  // namespace w11
