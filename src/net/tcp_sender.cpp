#include "net/tcp_sender.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace w11 {

namespace {
// CUBIC constants (RFC 8312): multiplicative decrease and growth scale.
constexpr double kCubicBeta = 0.7;
constexpr double kCubicC = 0.4;
}  // namespace

TcpSender::TcpSender(Simulator& sim, FlowId flow, StationId dst, Config cfg,
                     SendFn send)
    : sim_(sim),
      flow_(flow),
      dst_(dst),
      cfg_(cfg),
      send_(std::move(send)),
      rto_(cfg.initial_rto) {
  W11_CHECK(send_ != nullptr);
  W11_CHECK(cfg_.mss > Bytes{0});
  cwnd_ = static_cast<double>(cfg_.initial_cwnd_segments * cfg_.mss.count());
  ssthresh_ = static_cast<double>(cfg_.max_cwnd_segments * cfg_.mss.count());
  // Until the first ACK reveals the peer's window, assume it is open.
  peer_rwnd_ = cfg_.max_cwnd_segments * static_cast<std::uint64_t>(cfg_.mss.count());
}

void TcpSender::start(Bytes total) {
  W11_CHECK_MSG(!started_, "sender already started");
  started_ = true;
  total_ = total;
  note_cwnd();
  try_send();
}

std::uint64_t TcpSender::data_limit() const {
  if (total_ <= Bytes{0}) return UINT64_MAX;
  return static_cast<std::uint64_t>(total_.count());
}

void TcpSender::try_send() {
  if (!started_) return;
  const auto mss = static_cast<std::uint64_t>(cfg_.mss.count());
  while (true) {
    const auto window = static_cast<std::uint64_t>(
        std::min(cwnd_, static_cast<double>(peer_rwnd_)));
    if (inflight() + mss > window) break;        // window full
    if (snd_nxt_ >= data_limit()) break;         // app out of data
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(mss, data_limit() - snd_nxt_));
    send_segment(snd_nxt_, len, /*is_retransmit=*/false);
    snd_nxt_ += len;
  }
  if (inflight() > 0 && !rto_timer_.pending()) arm_rto();

  // Zero-window deadlock guard: data waits, nothing is in flight, and the
  // peer window is closed — probe until an ACK reopens it (RFC 9293 §3.8.6).
  if (inflight() == 0 && snd_nxt_ < data_limit() && peer_rwnd_ < mss) {
    if (!persist_timer_.pending()) {
      if (persist_interval_ == Time{}) persist_interval_ = cfg_.min_rto;
      persist_timer_ =
          sim_.schedule_after(persist_interval_, [this] { on_persist_probe(); });
    }
  } else {
    persist_timer_.cancel();
    persist_interval_ = Time{};
  }
}

void TcpSender::on_persist_probe() {
  const auto mss = static_cast<std::uint64_t>(cfg_.mss.count());
  if (inflight() != 0 || snd_nxt_ >= data_limit() || peer_rwnd_ >= mss) {
    persist_interval_ = Time{};
    return;  // window reopened meanwhile
  }
  // Probe with one byte of new data; the ACK it elicits carries the
  // current window.
  ++stats_.zero_window_probes;
  send_segment(snd_nxt_, 1, /*is_retransmit=*/false);
  snd_nxt_ += 1;
  persist_interval_ = std::min(persist_interval_ * 2, time::seconds(60));
  persist_timer_ =
      sim_.schedule_after(persist_interval_, [this] { on_persist_probe(); });
  if (!rto_timer_.pending()) arm_rto();
}

void TcpSender::send_segment(std::uint64_t seq, std::uint32_t len,
                             bool is_retransmit) {
  TcpSegment seg;
  seg.flow = flow_;
  seg.dst_station = dst_;
  seg.seq = seq;
  seg.payload = len;
  seg.dscp = cfg_.dscp;
  seg.sent_at = sim_.now();
  ++stats_.segments_sent;
  // Karn's rule: only time segments that are not retransmissions (including
  // go-back-N resends below the pre-RTO high-water mark).
  if (!is_retransmit && seq >= retx_until_ && !timed_segment_) {
    timed_segment_ = {seq + len, sim_.now()};
  }
  send_(std::move(seg));
}

void TcpSender::on_ack(const TcpSegment& ack) {
  if (!ack.is_ack) return;
  peer_rwnd_ = ack.rwnd;

  // Merge SACK information.
  bool sack_changed = false;
  if (cfg_.sack_enabled) {
    for (const SackBlock& b : ack.sacks) {
      if (b.end <= snd_una_) continue;
      if (sack_scoreboard_.insert(b).second) sack_changed = true;
    }
  }

  if (ack.ack > snd_una_) {
    const std::uint64_t acked = ack.ack - snd_una_;
    snd_una_ = ack.ack;
    // A late ACK can cover data sent before an RTO rewound snd_nxt; the
    // send cursor must never trail the acknowledged point or in-flight
    // accounting underflows.
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    dupack_count_ = 0;
    // Drop scoreboard entries below the new left edge.
    std::erase_if(sack_scoreboard_,
                  [this](const SackBlock& b) { return b.end <= snd_una_; });

    // RTT sample (Karn-compliant).
    if (timed_segment_ && snd_una_ >= timed_segment_->first) {
      update_rtt(sim_.now() - timed_segment_->second);
      timed_segment_.reset();
    }

    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        // Full recovery: deflate to ssthresh and resume normal growth.
        in_recovery_ = false;
        cwnd_ = ssthresh_;
        clamp_cwnd();
        note_cwnd();
      } else {
        // Partial ACK: the next hole is also lost — retransmit it at once
        // (NewReno) and stay in recovery.
        const auto mss = static_cast<std::uint64_t>(cfg_.mss.count());
        const std::uint32_t len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(mss, data_limit() - snd_una_));
        if (len > 0 && snd_una_ > retransmitted_up_to_) {
          send_segment(snd_una_, len, /*is_retransmit=*/true);
          retransmitted_up_to_ = snd_una_ + len;
          ++stats_.fast_retransmits;
        }
      }
    } else {
      on_new_ack(acked);
    }

    // Fresh data acknowledged: restart the RTO for the remaining flight.
    rto_timer_.cancel();
    if (inflight() > 0) arm_rto();
  } else if (ack.ack == snd_una_ && !ack.has_payload() && inflight() > 0) {
    // Duplicate ACK.
    ++stats_.dup_acks_seen;
    ++dupack_count_;
    if (!in_recovery_ && (dupack_count_ >= 3 ||
                          (sack_changed && dupack_count_ >= 1 &&
                           sack_scoreboard_.size() >= 3))) {
      enter_recovery();
    } else if (in_recovery_) {
      // Window inflation per extra dupack keeps the pipe full.
      cwnd_ += static_cast<double>(cfg_.mss.count());
      clamp_cwnd();
      note_cwnd();
      if (sack_changed) {
        if (auto hole = next_sack_hole()) {
          const auto mss = static_cast<std::uint64_t>(cfg_.mss.count());
          const std::uint32_t len = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(mss, data_limit() - *hole));
          if (len > 0) {
            send_segment(*hole, len, /*is_retransmit=*/true);
            retransmitted_up_to_ = std::max(retransmitted_up_to_, *hole + len);
            ++stats_.sack_retransmits;
          }
        }
      }
    }
  }

  try_send();
}

void TcpSender::on_new_ack(std::uint64_t acked_bytes) {
  const double mss = static_cast<double>(cfg_.mss.count());
  if (cwnd_ < ssthresh_) {
    // Slow start: one MSS per ACKed MSS.
    cwnd_ += std::min(static_cast<double>(acked_bytes), mss);
  } else if (cfg_.algo == CcAlgo::kReno) {
    cwnd_ += mss * mss / cwnd_;
  } else {
    cubic_on_ack(acked_bytes);
  }
  clamp_cwnd();
  note_cwnd();
}

std::optional<std::uint64_t> TcpSender::next_sack_hole() {
  // First unsacked, un-retransmitted byte range start at/above snd_una and
  // below the highest sacked byte.
  if (sack_scoreboard_.empty()) return std::nullopt;
  std::uint64_t cursor = std::max(snd_una_, retransmitted_up_to_);
  std::uint64_t highest = 0;
  for (const SackBlock& b : sack_scoreboard_) highest = std::max(highest, b.end);
  while (cursor < highest) {
    bool covered = false;
    for (const SackBlock& b : sack_scoreboard_) {
      if (b.start <= cursor && cursor < b.end) {
        cursor = b.end;
        covered = true;
        break;
      }
    }
    if (!covered) return cursor;
  }
  return std::nullopt;
}

void TcpSender::enter_recovery() {
  in_recovery_ = true;
  recover_ = snd_nxt_;
  const double mss = static_cast<double>(cfg_.mss.count());
  ssthresh_ = std::max(static_cast<double>(inflight()) / 2.0, 2.0 * mss);
  if (cfg_.algo == CcAlgo::kCubic) cubic_on_loss();
  cwnd_ = ssthresh_ + 3.0 * mss;
  clamp_cwnd();
  note_cwnd();
  // Retransmit the first hole immediately.
  const auto mss_u = static_cast<std::uint64_t>(cfg_.mss.count());
  const std::uint32_t len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(mss_u, data_limit() - snd_una_));
  if (len > 0) {
    send_segment(snd_una_, len, /*is_retransmit=*/true);
    retransmitted_up_to_ = snd_una_ + len;
    ++stats_.fast_retransmits;
  }
}

void TcpSender::on_rto() {
  if (inflight() == 0) return;
  ++stats_.rto_events;
  const double mss = static_cast<double>(cfg_.mss.count());
  ssthresh_ = std::max(static_cast<double>(inflight()) / 2.0, 2.0 * mss);
  if (cfg_.algo == CcAlgo::kCubic) cubic_on_loss();
  cwnd_ = mss;  // collapse to one segment and rebuild via slow start
  in_recovery_ = false;
  dupack_count_ = 0;
  sack_scoreboard_.clear();
  retransmitted_up_to_ = snd_una_;
  timed_segment_.reset();  // Karn: no timing across a timeout
  // Go-back-N: everything in flight is presumed lost; rewind the send
  // cursor so slow start re-drives the stream from snd_una.
  retx_until_ = std::max(retx_until_, snd_nxt_);
  snd_nxt_ = snd_una_;
  note_cwnd();

  ++stats_.rto_retransmits;
  rto_ = std::min(rto_ * 2, time::seconds(60));  // exponential backoff
  arm_rto();
  try_send();
}

void TcpSender::arm_rto() {
  rto_timer_.cancel();
  rto_timer_ = sim_.schedule_after(rto_, [this] { on_rto(); });
}

void TcpSender::update_rtt(Time sample) {
  if (!rtt_valid_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    rtt_valid_ = true;
  } else {
    const Time err{std::abs((srtt_ - sample).ns())};
    rttvar_ = Time{(3 * rttvar_.ns() + err.ns()) / 4};
    srtt_ = Time{(7 * srtt_.ns() + sample.ns()) / 8};
  }
  rto_ = std::max(srtt_ + 4 * rttvar_, cfg_.min_rto);
}

void TcpSender::clamp_cwnd() {
  const double mss = static_cast<double>(cfg_.mss.count());
  const double cap = static_cast<double>(cfg_.max_cwnd_segments) * mss;
  cwnd_ = std::clamp(cwnd_, mss, cap);
}

void TcpSender::note_cwnd() {
  if (trace_enabled_) cwnd_trace_.emplace_back(sim_.now(), cwnd_segments());
}

void TcpSender::cubic_on_loss() {
  cubic_wmax_ = cwnd_;
  ssthresh_ = std::max(cwnd_ * kCubicBeta,
                       2.0 * static_cast<double>(cfg_.mss.count()));
  cubic_epoch_valid_ = false;
}

void TcpSender::cubic_on_ack(std::uint64_t /*acked_bytes*/) {
  const double mss = static_cast<double>(cfg_.mss.count());
  if (!cubic_epoch_valid_) {
    cubic_epoch_ = sim_.now();
    cubic_epoch_valid_ = true;
  }
  const double t = (sim_.now() - cubic_epoch_).sec();
  const double wmax_seg = cubic_wmax_ / mss;
  const double k = std::cbrt(wmax_seg * (1.0 - kCubicBeta) / kCubicC);
  const double target_seg = kCubicC * std::pow(t - k, 3.0) + wmax_seg;
  const double target = target_seg * mss;
  if (target > cwnd_) {
    // Approach the cubic target over roughly one RTT of ACKs.
    cwnd_ += std::max((target - cwnd_) / std::max(cwnd_ / mss, 1.0), 0.01 * mss);
  } else {
    // TCP-friendly region: at least Reno's growth.
    cwnd_ += mss * mss / cwnd_;
  }
}

}  // namespace w11
