#pragma once
// TCP sender endpoint.
//
// Implements the sender-side machinery the paper's analysis depends on
// (§5.1): self-clocking on ACK arrival, slow start / congestion avoidance
// (NewReno or CUBIC), fast retransmit & recovery on duplicate ACKs, SACK-
// driven hole filling, RFC 6298 retransmission timeout with exponential
// backoff, and receive-window flow control. Payload bytes are virtual —
// only lengths and sequence numbers are simulated.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "net/tcp_segment.hpp"
#include "sim/simulator.hpp"

namespace w11 {

class TcpSender {
 public:
  enum class CcAlgo { kReno, kCubic };

  struct Config {
    Bytes mss{1460};
    // OS cap on the congestion window, in segments; the paper's hosts
    // default to 770 (§5.6.2, fn. 13).
    std::uint64_t max_cwnd_segments = 770;
    std::uint64_t initial_cwnd_segments = 10;
    CcAlgo algo = CcAlgo::kReno;
    Time min_rto = time::millis(200);
    Time initial_rto = time::seconds(1);
    bool sack_enabled = true;
    int dscp = 0;
  };

  struct Stats {
    std::uint64_t segments_sent = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t sack_retransmits = 0;
    std::uint64_t rto_retransmits = 0;
    std::uint64_t rto_events = 0;
    std::uint64_t dup_acks_seen = 0;
    std::uint64_t zero_window_probes = 0;
  };

  using SendFn = std::function<void(TcpSegment)>;

  TcpSender(Simulator& sim, FlowId flow, StationId dst, Config cfg, SendFn send);
  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  // Begin transmitting. Bytes{0} means an unlimited (saturating) source.
  void start(Bytes total = Bytes{0});

  // Deliver an (possibly duplicate / SACK-bearing) acknowledgment.
  void on_ack(const TcpSegment& ack);

  // --- observability ------------------------------------------------------
  [[nodiscard]] double cwnd_segments() const {
    return cwnd_ / static_cast<double>(cfg_.mss.count());
  }
  [[nodiscard]] std::uint64_t snd_una() const { return snd_una_; }
  [[nodiscard]] std::uint64_t snd_nxt() const { return snd_nxt_; }
  [[nodiscard]] std::uint64_t peer_rwnd() const { return peer_rwnd_; }
  [[nodiscard]] bool in_recovery() const { return in_recovery_; }
  [[nodiscard]] Time smoothed_rtt() const { return srtt_; }
  [[nodiscard]] Time current_rto() const { return rto_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool finished() const {
    return total_ > Bytes{0} &&
           snd_una_ >= static_cast<std::uint64_t>(total_.count());
  }

  // tcp_probe-style cwnd trace (Fig. 14): (time, cwnd in segments) recorded
  // at every cwnd change once enabled.
  void enable_cwnd_trace() { trace_enabled_ = true; }
  [[nodiscard]] const std::vector<std::pair<Time, double>>& cwnd_trace() const {
    return cwnd_trace_;
  }

 private:
  void try_send();
  void send_segment(std::uint64_t seq, std::uint32_t len, bool is_retransmit);
  void on_new_ack(std::uint64_t acked_bytes);
  void enter_recovery();
  void on_rto();
  void arm_rto();
  void on_persist_probe();
  void update_rtt(Time sample);
  void note_cwnd();
  void clamp_cwnd();
  [[nodiscard]] std::uint64_t inflight() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] std::uint64_t data_limit() const;  // total bytes to send
  [[nodiscard]] std::optional<std::uint64_t> next_sack_hole();
  void cubic_on_loss();
  void cubic_on_ack(std::uint64_t acked_bytes);

  Simulator& sim_;
  FlowId flow_;
  StationId dst_;
  Config cfg_;
  SendFn send_;

  Bytes total_{};        // 0 = unlimited
  bool started_ = false;

  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  double cwnd_ = 0.0;      // bytes
  double ssthresh_ = 0.0;  // bytes
  std::uint64_t peer_rwnd_ = 0;

  // Recovery state.
  int dupack_count_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;            // NewReno recovery point
  std::set<SackBlock> sack_scoreboard_;  // sacked ranges above snd_una
  std::uint64_t retransmitted_up_to_ = 0;  // highest hole retransmitted this episode
  std::uint64_t retx_until_ = 0;  // below this, sends are go-back-N resends

  // RTT / RTO.
  Time srtt_{};
  Time rttvar_{};
  Time rto_;
  bool rtt_valid_ = false;
  std::optional<std::pair<std::uint64_t, Time>> timed_segment_;  // (seq_end, sent)
  EventHandle rto_timer_;
  // Zero-window persist machinery: without probes a closed peer window
  // with an empty flight would deadlock the connection.
  EventHandle persist_timer_;
  Time persist_interval_{};

  // CUBIC state.
  double cubic_wmax_ = 0.0;
  Time cubic_epoch_{};
  bool cubic_epoch_valid_ = false;

  bool trace_enabled_ = false;
  std::vector<std::pair<Time, double>> cwnd_trace_;

  Stats stats_;
};

}  // namespace w11
