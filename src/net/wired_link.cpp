#include "net/wired_link.hpp"

namespace w11 {

void WiredLink::send(TcpSegment seg) {
  if (!up_) {
    ++outage_drops_;
    ++dropped_;
    return;
  }
  if (cfg_.queue_packets != 0 && queue_.size() >= cfg_.queue_packets) {
    ++dropped_;
    return;
  }
  queue_.push_back(std::move(seg));
  if (!transmitting_) start_transmit();
}

void WiredLink::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up_) {
    // Unplugged mid-burst: everything still queued in the NIC is lost.
    outage_drops_ += queue_.size();
    dropped_ += queue_.size();
    queue_.clear();
  } else if (!transmitting_ && !queue_.empty()) {
    start_transmit();
  }
}

void WiredLink::start_transmit() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  TcpSegment seg = std::move(queue_.front());
  queue_.pop_front();
  const Time serialize = transmit_time(seg.wire_size(), cfg_.rate);
  // Delivery happens after serialization + propagation; the next packet can
  // begin serializing as soon as this one leaves the NIC.
  sim_.schedule_after(serialize + cfg_.propagation,
                      [this, s = std::move(seg)]() mutable {
                        ++delivered_;
                        deliver_(std::move(s));
                      });
  sim_.schedule_after(serialize, [this] { start_transmit(); });
}

}  // namespace w11
