#pragma once
// Point-to-point wired link with a finite FIFO queue.
//
// Models the path between the TCP sender and the AP (switch + Ethernet).
// A finite queue lets benches reproduce "TCP holes": drops upstream of the
// AP that FastACK must paper over (§5.5.3).

#include <deque>
#include <functional>

#include "common/check.hpp"
#include "common/units.hpp"
#include "net/tcp_segment.hpp"
#include "sim/simulator.hpp"

namespace w11 {

class WiredLink {
 public:
  using DeliverFn = std::function<void(TcpSegment)>;

  struct Config {
    RateMbps rate{1000.0};           // 1 GbE by default
    Time propagation = time::micros(100);
    std::size_t queue_packets = 2048; // FIFO capacity; 0 = unlimited
  };

  WiredLink(Simulator& sim, Config cfg, DeliverFn deliver)
      : sim_(sim), cfg_(cfg), deliver_(std::move(deliver)) {
    W11_CHECK(deliver_ != nullptr);
  }
  WiredLink(const WiredLink&) = delete;
  WiredLink& operator=(const WiredLink&) = delete;

  // Enqueue a segment; silently dropped if the queue is full (IP semantics)
  // or the link is administratively/physically down.
  void send(TcpSegment seg);

  // Outage control (fault injection): a down link drops everything offered
  // to it — queued segments are lost too, like an unplugged cable. Packets
  // already serialized onto the wire still arrive (they left the NIC).
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }
  [[nodiscard]] std::uint64_t outage_drops() const { return outage_drops_; }

 private:
  void start_transmit();

  Simulator& sim_;
  Config cfg_;
  DeliverFn deliver_;
  std::deque<TcpSegment> queue_;
  bool transmitting_ = false;
  bool up_ = true;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t outage_drops_ = 0;
};

}  // namespace w11
