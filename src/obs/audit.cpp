#include "obs/audit.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/json_writer.hpp"

namespace w11::obs {

namespace {

// The width level whose log-term moved the most between the incumbent and
// chosen breakdowns — the term that "paid for" the switch.
struct DominantDelta {
  int width_mhz = 0;
  double delta = 0.0;
  double d_airtime = 0.0;
  double d_penalty = 0.0;
  int d_contenders = 0;
};

DominantDelta dominant_delta(const PickRecord& p) {
  DominantDelta best;
  double best_abs = -1.0;
  for (const NodePTerm& to : p.terms_to) {
    const auto from_it =
        std::find_if(p.terms_from.begin(), p.terms_from.end(),
                     [&](const NodePTerm& f) { return f.width_mhz == to.width_mhz; });
    const double from_log =
        from_it != p.terms_from.end() ? from_it->log_term : 0.0;
    const double d = to.log_term - from_log;
    if (std::abs(d) > best_abs) {
      best_abs = std::abs(d);
      best.width_mhz = to.width_mhz;
      best.delta = d;
      if (from_it != p.terms_from.end()) {
        best.d_airtime = to.airtime - from_it->airtime;
        best.d_penalty = to.penalty - from_it->penalty;
        best.d_contenders = to.contenders - from_it->contenders;
      } else {
        best.d_airtime = to.airtime;
        best.d_penalty = to.penalty;
        best.d_contenders = to.contenders;
      }
    }
  }
  return best;
}

}  // namespace

void PlanAudit::write_table(std::ostream& os, bool switches_only) const {
  os << "planner decision audit: " << rounds_.size() << " rounds, "
     << picks_.size() << " picks recorded";
  if (dropped_picks_ > 0) os << " (+" << dropped_picks_ << " past cap)";
  os << "\n";
  for (const RoundRecord& r : rounds_) {
    os << "  round " << r.round << " (hops=" << r.hop_limit << "): NetP(log) "
       << std::setprecision(6) << r.netp_before << " -> " << r.netp_after
       << (r.accepted ? "  ACCEPTED" : "  rolled back") << ", "
       << r.switches << "/" << r.picks << " picks switched\n";
  }
  os << std::left << std::setw(6) << "round" << std::setw(6) << "pick"
     << std::setw(8) << "ap" << std::setw(18) << "from" << std::setw(18)
     << "to" << std::setw(12) << "dNodeP" << "dominant term\n";
  for (const PickRecord& p : picks_) {
    if (switches_only && !p.switched) continue;
    const DominantDelta d = dominant_delta(p);
    os << std::left << std::setw(6) << p.round << std::setw(6) << p.pick
       << std::setw(8) << p.ap_id << std::setw(18) << p.from << std::setw(18)
       << p.to << std::setw(12) << std::setprecision(4)
       << (p.node_p_to - p.node_p_from) << "b=" << d.width_mhz
       << "MHz dlog=" << std::setprecision(4) << d.delta
       << " (dairtime=" << d.d_airtime << ", dpenalty=" << d.d_penalty
       << ", dcontenders=" << d.d_contenders << ")\n";
  }
}

void PlanAudit::write_jsonl(std::ostream& os) const {
  auto write_terms = [](json::Writer& w, const std::vector<NodePTerm>& terms) {
    w.begin_array();
    for (const NodePTerm& t : terms) {
      w.begin_object()
          .field("width_mhz", t.width_mhz)
          .field("load", t.load)
          .field("airtime", t.airtime)
          .field("quality", t.quality)
          .field("penalty", t.penalty)
          .field("contenders", t.contenders)
          .field("metric", t.metric)
          .field("log_term", t.log_term)
          .end_object();
    }
    w.end_array();
  };

  for (const RoundRecord& r : rounds_) {
    json::Writer w(os);
    w.begin_object()
        .field("type", "round")
        .field("round", r.round)
        .field("hop_limit", r.hop_limit)
        .field("netp_before", r.netp_before)
        .field("netp_after", r.netp_after)
        .field("accepted", r.accepted)
        .field("picks", r.picks)
        .field("switches", r.switches)
        .end_object();
    os << "\n";
  }
  for (const PickRecord& p : picks_) {
    json::Writer w(os);
    w.begin_object()
        .field("type", "pick")
        .field("round", p.round)
        .field("pick", p.pick)
        .field("ap_index", p.ap_index)
        .field("ap_id", p.ap_id)
        .field("from", p.from)
        .field("to", p.to)
        .field("switched", p.switched)
        .field("node_p_to", p.node_p_to)
        .field("node_p_from", p.node_p_from);
    w.key("terms_to");
    write_terms(w, p.terms_to);
    w.key("terms_from");
    write_terms(w, p.terms_from);
    w.end_object();
    os << "\n";
  }
}

}  // namespace w11::obs
