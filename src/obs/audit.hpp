#pragma once
// Planner decision audit (DESIGN.md §12): per-NBO-round records of the
// NodeP/NetP term breakdown behind every ACC pick — the answer to "why did
// TurboCA put AP 17 on 100/80MHz?".
//
// The audit deliberately depends only on plain types (ints, strings,
// doubles): the planner formats its channels/ids before recording, so this
// header sits below phy/flowsim in the dependency order and the obs library
// stays leaf-level.
//
// Recording is read-only with respect to planning: TurboCA re-evaluates the
// already-chosen and incumbent channels at each serial commit point, which
// draws no RNG and mutates nothing — golden plan equivalence holds with the
// audit attached or not (tests/test_obs.cpp pins this).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace w11::obs {

// One width level of NodeP(c, cw) = Π_b channel_metric(c, b)^load(b):
// the §4.4 term decomposition for a single b.
struct NodePTerm {
  int width_mhz = 0;       // b
  double load = 0.0;       // load(b), the exponent
  double airtime = 0.0;    // spectrum share left after contention
  double quality = 0.0;    // non-WiFi channel quality scalar
  double penalty = 0.0;    // client-disruption switch penalty
  int contenders = 0;      // same-network overlapping contenders counted
  double metric = 0.0;     // width_mhz * (airtime * quality - penalty)
  double log_term = 0.0;   // load * log(metric) contribution to log NodeP
};

// The log NodeP a term breakdown describes, folded in breakdown order —
// the same b-ascending accumulation node_p_log and the batched SoA kernel
// use, so for a full breakdown the result is bit-for-bit the score the
// optimizer acted on (tests/test_score_kernel.cpp pins all three equal).
// Any other summation order is NOT guaranteed to reproduce the bits.
inline double sum_log_terms(const std::vector<NodePTerm>& terms) {
  double log_p = 0.0;
  for (const NodePTerm& t : terms) log_p += t.log_term;
  return log_p;
}

// One committed ACC decision.
struct PickRecord {
  std::uint32_t round = 0;  // NBO round within the run
  std::uint32_t pick = 0;   // commit position within the round's sweep
  std::uint32_t ap_index = 0;
  std::uint64_t ap_id = 0;
  std::string from;         // channel before the pick (short form)
  std::string to;           // channel chosen
  bool switched = false;
  double node_p_to = 0.0;    // log NodeP of the AP on `to` at commit time
  double node_p_from = 0.0;  // log NodeP had it stayed on `from`
  std::vector<NodePTerm> terms_to;
  std::vector<NodePTerm> terms_from;
};

// One NBO round: proposal accepted (NetP improved) or rolled back.
struct RoundRecord {
  std::uint32_t round = 0;
  int hop_limit = 0;
  double netp_before = 0.0;
  double netp_after = 0.0;
  bool accepted = false;
  std::uint32_t picks = 0;
  std::uint32_t switches = 0;
};

class PlanAudit {
 public:
  // Bound storage: per-pick term breakdowns are the bulky part; past the
  // cap further picks still count in the round records but drop their
  // detail (dropped_picks()).
  explicit PlanAudit(std::size_t max_picks = 4096) : max_picks_(max_picks) {}

  void add_pick(PickRecord r) {
    if (picks_.size() < max_picks_) {
      picks_.push_back(std::move(r));
    } else {
      ++dropped_picks_;
    }
  }
  void add_round(RoundRecord r) { rounds_.push_back(r); }
  void clear() {
    picks_.clear();
    rounds_.clear();
    dropped_picks_ = 0;
  }

  [[nodiscard]] const std::vector<PickRecord>& picks() const { return picks_; }
  [[nodiscard]] const std::vector<RoundRecord>& rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t dropped_picks() const { return dropped_picks_; }

  // Human-readable decision table: one row per channel switch (optionally
  // every pick), with the NodeP delta and its dominant term movement —
  // "Algorithm 1's choices, explainable".
  void write_table(std::ostream& os, bool switches_only = true) const;

  // Machine form, one record per line, for regression diffing.
  void write_jsonl(std::ostream& os) const;

 private:
  std::size_t max_picks_;
  std::vector<PickRecord> picks_;
  std::vector<RoundRecord> rounds_;
  std::uint64_t dropped_picks_ = 0;
};

}  // namespace w11::obs
