#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json_writer.hpp"

namespace w11::obs {

namespace {

// Sim-time ns -> trace-format microseconds with exact thousandths, emitted
// as a fixed-format string so export bytes never depend on double
// formatting edge cases.
void write_us(std::ostream& os, std::int64_t ns) {
  char buf[40];
  const char* sign = ns < 0 ? "-" : "";
  const std::uint64_t abs_ns =
      ns < 0 ? static_cast<std::uint64_t>(-ns) : static_cast<std::uint64_t>(ns);
  std::snprintf(buf, sizeof buf, "%s%llu.%03llu", sign,
                static_cast<unsigned long long>(abs_ns / 1000),
                static_cast<unsigned long long>(abs_ns % 1000));
  os << buf;
}

}  // namespace

void write_chrome_trace(const TraceRecorder& rec, std::ostream& os) {
  const auto events = rec.merged();
  os << "{\"traceEvents\":[";
  // Track-naming metadata: one thread per category, named for it.
  bool first = true;
  for (const TraceCategory cat :
       {TraceCategory::kSim, TraceCategory::kMac, TraceCategory::kFastAck,
        TraceCategory::kPlanner, TraceCategory::kTelemetry,
        TraceCategory::kCtrl, TraceCategory::kHealth}) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << static_cast<int>(cat) << ",\"args\":{\"name\":\"" << to_string(cat)
       << "\"}}";
  }
  for (const TraceEvent& e : events) {
    os << ",{\"name\":\"" << to_string(e.kind) << "\",\"cat\":\""
       << to_string(category(e.kind)) << "\",\"ph\":\""
       << (e.dur_ns > 0 ? 'X' : 'i') << "\",\"ts\":";
    write_us(os, e.ts_ns);
    if (e.dur_ns > 0) {
      os << ",\"dur\":";
      write_us(os, e.dur_ns);
    } else {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    os << ",\"pid\":0,\"tid\":" << static_cast<int>(category(e.kind))
       << ",\"args\":{\"ord\":" << e.ord << ",\"a\":" << e.a
       << ",\"b\":" << e.b << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void write_trace_jsonl(const TraceRecorder& rec, std::ostream& os) {
  for (const TraceEvent& e : rec.merged()) {
    json::Writer w(os);
    w.begin_object()
        .field("ts", e.ts_ns)
        .field("dur", e.dur_ns)
        .field("kind", to_string(e.kind))
        .field("ord", e.ord)
        .field("a", e.a)
        .field("b", e.b)
        .end_object();
    os << "\n";
  }
}

void write_metrics_json(const MetricsRegistry& reg, std::ostream& os) {
  json::Writer w(os);
  w.begin_object();
  for (const MetricsRegistry::Sample& s : reg.snapshot())
    w.field(s.name, s.value);
  w.end_object();
  os << "\n";
}

std::string chrome_trace_string(const TraceRecorder& rec) {
  std::ostringstream os;
  write_chrome_trace(rec, os);
  return os.str();
}

std::string trace_jsonl_string(const TraceRecorder& rec) {
  std::ostringstream os;
  write_trace_jsonl(rec, os);
  return os.str();
}

std::string metrics_json_string(const MetricsRegistry& reg) {
  std::ostringstream os;
  write_metrics_json(reg, os);
  return os.str();
}

bool export_global(const std::string& chrome_path) {
  const std::string stem = chrome_path.ends_with(".json")
                               ? chrome_path.substr(0, chrome_path.size() - 5)
                               : chrome_path;
  std::ofstream chrome(chrome_path);
  std::ofstream jsonl(stem + ".jsonl");
  std::ofstream mjson(stem + "_metrics.json");
  if (!chrome || !jsonl || !mjson) return false;
  write_chrome_trace(tracer(), chrome);
  write_trace_jsonl(tracer(), jsonl);
  write_metrics_json(metrics(), mjson);
  return true;
}

}  // namespace w11::obs
