#pragma once
// Trace / metrics exporters (DESIGN.md §12).
//
// Two trace formats from one merged event stream:
//
//   * Chrome trace-event JSON ("{"traceEvents": [...]}"): loadable in
//     Perfetto (ui.perfetto.dev) and chrome://tracing. Events land on one
//     track per category (pid 0, tid = category ordinal); spans export as
//     complete ("X") events, instants as "i". Timestamps are sim virtual
//     microseconds.
//   * JSONL: one flat object per line in merged order — the byte-stable,
//     regression-diffable form the golden trace tests pin down.
//
// Both are deterministic byte-for-byte given a deterministic event stream
// (see TraceRecorder::merged()).

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace w11::obs {

void write_chrome_trace(const TraceRecorder& rec, std::ostream& os);
void write_trace_jsonl(const TraceRecorder& rec, std::ostream& os);

// Flat {"name": value} object over MetricsRegistry::snapshot(), in metric
// registration order.
void write_metrics_json(const MetricsRegistry& reg, std::ostream& os);

// Convenience: serialize to a string (tests diff these).
[[nodiscard]] std::string chrome_trace_string(const TraceRecorder& rec);
[[nodiscard]] std::string trace_jsonl_string(const TraceRecorder& rec);
[[nodiscard]] std::string metrics_json_string(const MetricsRegistry& reg);

// Write the full export set for the process-global tracer/metrics:
//   <path>        — Chrome trace JSON
//   <path>l       — JSONL dump (".jsonl" when path ends in ".json")
//   <path stem>_metrics.json
// Returns false (and writes nothing else) if any file fails to open.
bool export_global(const std::string& chrome_path);

}  // namespace w11::obs
