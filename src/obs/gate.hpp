#pragma once
// Observability gating (DESIGN.md §12).
//
// Two gates stack:
//
//   * Compile-time: the W11_OBS preprocessor flag (CMake option of the same
//     name, default ON). With -DW11_OBS=0 every instrumentation macro below
//     expands to nothing and the instrumented subsystems carry zero
//     observability code — the stance for a minimal embedded build.
//   * Runtime: with W11_OBS compiled in, recording still costs one relaxed
//     bool load per site until TraceRecorder/MetricsRegistry are enabled
//     (by tests, by the W11_TRACE environment variable, or explicitly).
//     bench_flowsim medians with instrumentation compiled in but disabled
//     must stay within noise of the uninstrumented build.
//
// The macros exist so call sites read as one line and so the W11_OBS=0
// expansion can drop their arguments entirely (including any function-local
// static metric handles, which otherwise still cost a guard check).

#ifndef W11_OBS
#define W11_OBS 1
#endif

#if W11_OBS

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Record one instant event on the process tracer (timestamp from the bound
// clock, Time{0} when none is bound).
#define W11_TRACE_EVENT(kind, ord, a, b)                        \
  do {                                                          \
    ::w11::obs::TraceRecorder& w11_tr = ::w11::obs::tracer();   \
    if (w11_tr.enabled()) w11_tr.record((kind), (ord), (a), (b)); \
  } while (0)

// Record one instant event with an explicit sim-time stamp.
#define W11_TRACE_EVENT_AT(ts, kind, ord, a, b)                 \
  do {                                                          \
    ::w11::obs::TraceRecorder& w11_tr = ::w11::obs::tracer();   \
    if (w11_tr.enabled())                                       \
      w11_tr.record_at((ts), (kind), (ord), (a), (b));          \
  } while (0)

// Record a closed [begin, end] sim-time span.
#define W11_TRACE_SPAN_AT(begin, end, kind, ord, a, b)          \
  do {                                                          \
    ::w11::obs::TraceRecorder& w11_tr = ::w11::obs::tracer();   \
    if (w11_tr.enabled())                                       \
      w11_tr.record_span((begin), (end), (kind), (ord), (a), (b)); \
  } while (0)

// RAII span on the process tracer: opens at the bound clock's current time,
// closes (and records) when `var` leaves scope.
#define W11_SCOPED_SPAN(var, kind, ord) \
  ::w11::obs::ScopedSpan var = ::w11::obs::tracer().span((kind), (ord))

// Bump a named counter on the process metrics registry. The handle is
// resolved once per site (function-local static) on the first *enabled*
// hit; a disabled registry costs one bool load.
#define W11_COUNT_N(name_literal, n)                                     \
  do {                                                                   \
    ::w11::obs::MetricsRegistry& w11_mr = ::w11::obs::metrics();         \
    if (w11_mr.enabled()) {                                              \
      static const ::w11::obs::Counter w11_c = w11_mr.counter(name_literal); \
      w11_c.add(static_cast<std::uint64_t>(n));                          \
    }                                                                    \
  } while (0)
#define W11_COUNT(name_literal) W11_COUNT_N(name_literal, 1)

// Set a named gauge on the process metrics registry (single-writer by
// contract, like Gauge::set). Same lazy handle shape as W11_COUNT; sites
// whose gauges must exist before the first hit (rate SLIs over quiet
// windows) should register eagerly via MetricsRegistry::declare_gauge.
#define W11_GAUGE_SET(name_literal, v)                                   \
  do {                                                                   \
    ::w11::obs::MetricsRegistry& w11_mr = ::w11::obs::metrics();         \
    if (w11_mr.enabled()) {                                              \
      static const ::w11::obs::Gauge w11_g = w11_mr.gauge(name_literal); \
      w11_g.set(static_cast<double>(v));                                 \
    }                                                                    \
  } while (0)

// Record one sample into a named fixed-bucket histogram. Buckets default to
// the registry's power-of-two ladder; register the name explicitly first
// for custom bounds.
#define W11_HISTOGRAM(name_literal, v)                                   \
  do {                                                                   \
    ::w11::obs::MetricsRegistry& w11_mr = ::w11::obs::metrics();         \
    if (w11_mr.enabled()) {                                              \
      static const ::w11::obs::Histogram w11_h =                         \
          w11_mr.histogram(name_literal);                                \
      w11_h.observe(static_cast<double>(v));                             \
    }                                                                    \
  } while (0)

#else  // W11_OBS == 0: every macro vanishes, arguments unevaluated.

#define W11_TRACE_EVENT(kind, ord, a, b) ((void)0)
#define W11_TRACE_EVENT_AT(ts, kind, ord, a, b) ((void)0)
#define W11_TRACE_SPAN_AT(begin, end, kind, ord, a, b) ((void)0)
#define W11_SCOPED_SPAN(var, kind, ord) ((void)0)
#define W11_COUNT_N(name_literal, n) ((void)0)
#define W11_COUNT(name_literal) ((void)0)
#define W11_GAUGE_SET(name_literal, v) ((void)0)
#define W11_HISTOGRAM(name_literal, v) ((void)0)

#endif  // W11_OBS
