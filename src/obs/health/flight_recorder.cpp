#include "obs/health/flight_recorder.hpp"

#if W11_OBS

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "common/json_writer.hpp"

namespace w11::obs {

const char* to_string(Trigger t) {
  switch (t) {
    case Trigger::kSloBreach: return "slo_breach";
    case Trigger::kAutoRevert: return "auto_revert";
    case Trigger::kWatchdog: return "watchdog";
    case Trigger::kFaultInjection: return "fault_injection";
    case Trigger::kRadarPin: return "radar_pin";
    case Trigger::kManual: return "manual";
  }
  return "?";
}

FlightRecorder::FlightRecorder(Config cfg) : cfg_(cfg) {}

void FlightRecorder::attach_metrics(const MetricsRegistry* m,
                                    std::vector<std::string> catalog) {
  metrics_ = m;
  catalog_ = std::move(catalog);
}

void FlightRecorder::attach_source(std::string name, Source src) {
  sources_.emplace_back(std::move(name), std::move(src));
}

void FlightRecorder::push(Entry e) {
  if (cfg_.ring_capacity == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() == cfg_.ring_capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(e));
}

void FlightRecorder::capture(Time at) {
  if (metrics_ == nullptr) return;
  Entry e;
  e.at = at;
  e.is_snapshot = true;
  auto samples = metrics_->snapshot();
  if (catalog_.empty()) {
    // No catalog: every registered metric, name-sorted so the bundle never
    // depends on first-touch registration order (which can vary with the
    // worker schedule).
    std::sort(samples.begin(), samples.end(),
              [](const MetricsRegistry::Sample& a,
                 const MetricsRegistry::Sample& b) { return a.name < b.name; });
    e.samples = std::move(samples);
  } else {
    std::map<std::string_view, double> by_name;
    for (const MetricsRegistry::Sample& s : samples) by_name[s.name] = s.value;
    e.samples.reserve(catalog_.size());
    for (const std::string& name : catalog_) {
      const auto it = by_name.find(name);
      e.samples.push_back({name, it == by_name.end() ? 0.0 : it->second});
    }
  }
  push(std::move(e));
}

void FlightRecorder::note(Time at, std::string_view tag, double value) {
  Entry e;
  e.at = at;
  e.tag = std::string(tag);
  e.value = value;
  push(std::move(e));
}

const std::string& FlightRecorder::trigger(Trigger t, Time at,
                                           std::string_view detail) {
  const std::uint64_t seq = triggers_++;
  W11_TRACE_EVENT_AT(at, TraceKind::kPostmortem, seq,
                     static_cast<std::uint64_t>(t), 0);
  const Time from = at - cfg_.window;

  std::ostringstream os;
  {
    json::Writer w(os);
    w.begin_object()
        .field("record", "postmortem")
        .field("trigger", to_string(t))
        .field("seq", seq)
        .field("t_ns", at.ns())
        .field("from_ns", from.ns())
        .field("detail", detail)
        .field("ring_entries", static_cast<std::uint64_t>(ring_.size()))
        .field("ring_dropped", dropped_)
        .end_object();
    os << '\n';
  }

  // Flight ring within the window, oldest first (ring order is feed order).
  for (const Entry& e : ring_) {
    if (e.at < from || e.at > at) continue;
    json::Writer w(os);
    if (e.is_snapshot) {
      w.begin_object().field("record", "metrics").field("t_ns", e.at.ns());
      w.key("m").begin_object();
      for (const MetricsRegistry::Sample& s : e.samples)
        w.field(s.name, s.value);
      w.end_object().end_object();
    } else {
      w.begin_object()
          .field("record", "note")
          .field("t_ns", e.at.ns())
          .field("tag", e.tag)
          .field("value", e.value)
          .end_object();
    }
    os << '\n';
  }

  // Trace events intersecting the window, from the lane-blind merge.
  if (tracer_ != nullptr) {
    for (const TraceEvent& e : tracer_->merged()) {
      if (e.ts_ns + e.dur_ns < from.ns() || e.ts_ns > at.ns()) continue;
      json::Writer w(os);
      w.begin_object()
          .field("record", "trace")
          .field("ts", e.ts_ns)
          .field("dur", e.dur_ns)
          .field("kind", to_string(e.kind))
          .field("ord", e.ord)
          .field("a", e.a)
          .field("b", e.b)
          .end_object();
      os << '\n';
    }
  }

  // Attached audit sections, each announced then written in its own format.
  for (const auto& [name, src] : sources_) {
    {
      json::Writer w(os);
      w.begin_object()
          .field("record", "section")
          .field("name", name)
          .end_object();
      os << '\n';
    }
    src(from, at, os);
  }
  {
    json::Writer w(os);
    w.begin_object().field("record", "end").field("seq", seq).end_object();
    os << '\n';
  }

  if (bundles_.size() == cfg_.max_bundles && cfg_.max_bundles > 0) {
    bundles_.erase(bundles_.begin());
    ++bundles_dropped_;
  }
  bundles_.push_back(os.str());
  return bundles_.back();
}

}  // namespace w11::obs

#endif  // W11_OBS
