#pragma once
// Anomaly flight recorder (DESIGN.md §17): an always-on bounded ring of
// recent metric snapshots and notes that, on trigger, dumps a
// self-contained postmortem bundle — JSONL correlating the flight ring,
// the trace stream, and any attached audit sources (rollout audit, planner
// decision audit) by sim time around the trigger.
//
// Determinism contract: feeds are serial (the scenario's poll/tick thread)
// so ring contents and overflow accounting are exact, trace records come
// from TraceRecorder::merged() (lane-blind stable sort), metric snapshots
// are restricted to a declared catalog (fixed name order, zero-valued when
// quiet — see MetricsRegistry::declare_*) or name-sorted when no catalog
// is set, and attached sources are required to be worker-count invariant
// (the rollout and plan audits already are). A bundle produced by the same
// scenario at any worker count is byte-identical — the property
// tests/test_health.cpp pins at 1/2/4/8 workers.

#include "obs/gate.hpp"

#if W11_OBS

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace w11::obs {

enum class Trigger : std::uint8_t {
  kSloBreach,
  kAutoRevert,
  kWatchdog,
  kFaultInjection,
  kRadarPin,
  kManual,
};
[[nodiscard]] const char* to_string(Trigger t);

class FlightRecorder {
 public:
  struct Config {
    std::size_t ring_capacity = 256;  // flight-ring entries (snapshots+notes)
    Time window = time::minutes(5);   // bundle lookback: [at - window, at]
    std::size_t max_bundles = 4;      // retained postmortems (oldest evicted)
  };

  explicit FlightRecorder(Config cfg);

  // A source writes its own JSONL records for [from, to]; it must be
  // deterministic and worker-count invariant. Sections appear in
  // attachment order.
  using Source = std::function<void(Time from, Time to, std::ostream& os)>;

  void attach_tracer(const TraceRecorder* t) { tracer_ = t; }
  // `catalog` fixes the snapshot shape: exactly these metrics, in this
  // order, value 0 when a name is not (yet) registered. Empty = every
  // registered metric, name-sorted.
  void attach_metrics(const MetricsRegistry* m,
                      std::vector<std::string> catalog = {});
  void attach_source(std::string name, Source src);

  // --- always-on serial feeds (poll boundaries) --------------------------
  // Snapshot the attached registry into the ring.
  void capture(Time at);
  // One tagged scalar observation (fault landed, wave launched, ...).
  void note(Time at, std::string_view tag, double value = 0.0);

  // Assemble (and retain) a postmortem bundle for [at - window, at].
  // Also records a kPostmortem trace event (ord = trigger sequence).
  const std::string& trigger(Trigger t, Time at, std::string_view detail);

  [[nodiscard]] const std::vector<std::string>& bundles() const {
    return bundles_;
  }
  [[nodiscard]] std::uint64_t triggers_fired() const { return triggers_; }
  [[nodiscard]] std::uint64_t entries_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t bundles_dropped() const {
    return bundles_dropped_;
  }
  [[nodiscard]] std::size_t ring_size() const { return ring_.size(); }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct Entry {
    Time at{};
    bool is_snapshot = false;
    std::string tag;      // note only
    double value = 0.0;   // note only
    std::vector<MetricsRegistry::Sample> samples;  // snapshot only
  };

  void push(Entry e);

  Config cfg_;
  const TraceRecorder* tracer_ = nullptr;
  const MetricsRegistry* metrics_ = nullptr;
  std::vector<std::string> catalog_;
  std::vector<std::pair<std::string, Source>> sources_;
  std::deque<Entry> ring_;
  std::vector<std::string> bundles_;
  std::uint64_t triggers_ = 0;
  std::uint64_t dropped_ = 0;         // ring entries evicted by overflow
  std::uint64_t bundles_dropped_ = 0; // bundles evicted by max_bundles
};

}  // namespace w11::obs

#endif  // W11_OBS
