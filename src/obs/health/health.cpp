#include "obs/health/health.hpp"

#if W11_OBS

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/json_writer.hpp"

namespace w11::obs {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kTicket: return "ticket";
    case Severity::kPage: return "page";
  }
  return "?";
}

HealthEngine::HealthEngine(Config cfg)
    : default_series_(cfg.series), specs_(std::move(cfg.slos)),
      states_(specs_.size()) {}

SlidingWindow& HealthEngine::series(std::string_view name) {
  return series(name, default_series_);
}

SlidingWindow& HealthEngine::series(std::string_view name,
                                    const SeriesConfig& sc) {
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  return series_
      .emplace(std::string(name),
               SlidingWindow(sc.width, sc.windows, sc.bounds))
      .first->second;
}

const SlidingWindow* HealthEngine::find_series(std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void HealthEngine::observe(std::string_view name, Time at, double v) {
  series(name).observe(at, v);
}

void HealthEngine::observe_counter(std::string_view name, Time at,
                                   double cumulative) {
  double& last = counter_last_.emplace(std::string(name), 0.0).first->second;
  const double delta = std::max(0.0, cumulative - last);
  last = cumulative;
  observe(name, at, delta);
}

std::vector<HealthEvent> HealthEngine::poll(Time now) {
  ++polls_;
  std::vector<HealthEvent> fresh;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    const auto it = series_.find(spec.sli);
    if (it == series_.end()) {
      ++unbound_;
      continue;
    }
    SlidingWindow& sw = it->second;
    sw.advance(now);
    SloState& st = states_[i];
    const double budget = std::max(1.0 - spec.objective, 1e-12);
    st.error_fast = sw.fraction_bad(sw.merged(spec.fast_windows),
                                    spec.threshold, spec.bad_above);
    st.error_slow = sw.fraction_bad(sw.merged(spec.slow_windows),
                                    spec.threshold, spec.bad_above);
    st.burn_fast = st.error_fast / budget;
    st.burn_slow = st.error_slow / budget;
    const bool breached_now =
        st.burn_fast >= spec.fast_burn && st.burn_slow >= spec.slow_burn;
    if (breached_now == st.breached) continue;
    st.breached = breached_now;
    HealthEvent ev;
    ev.at = now;
    ev.slo = static_cast<std::uint32_t>(i);
    ev.name = spec.name;
    ev.breach = breached_now;
    ev.severity = spec.severity;
    ev.burn_fast = st.burn_fast;
    ev.burn_slow = st.burn_slow;
    ev.error_fast = st.error_fast;
    ev.error_slow = st.error_slow;
    if (breached_now) {
      ++st.breaches;
      ++breaches_;
    } else {
      ++st.recoveries;
      ++recoveries_;
    }
    W11_TRACE_EVENT_AT(
        now, breached_now ? TraceKind::kHealthBreach : TraceKind::kHealthRecovery,
        static_cast<std::uint64_t>(i),
        static_cast<std::uint64_t>(spec.severity),
        static_cast<std::uint64_t>(std::llround(st.burn_fast * 1e3)));
    events_.push_back(ev);
    fresh.push_back(std::move(ev));
  }
  return fresh;
}

void HealthEngine::write_events_jsonl(std::ostream& os) const {
  for (const HealthEvent& e : events_) {
    json::Writer w(os);
    w.begin_object()
        .field("event", e.breach ? "breach" : "recovery")
        .field("t_ns", e.at.ns())
        .field("slo", e.name)
        .field("severity", to_string(e.severity))
        .field("burn_fast", e.burn_fast)
        .field("burn_slow", e.burn_slow)
        .field("error_fast", e.error_fast)
        .field("error_slow", e.error_slow)
        .end_object();
    os << '\n';
  }
}

std::string HealthEngine::events_jsonl() const {
  std::ostringstream os;
  write_events_jsonl(os);
  return os.str();
}

}  // namespace w11::obs

#endif  // W11_OBS
