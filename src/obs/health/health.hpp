#pragma once
// Fleet health engine (DESIGN.md §17): named SLI series + declarative SLO
// specs evaluated at poll boundaries with multi-window burn-rate alerting.
//
// An SLO says "fraction of good samples >= objective over the slow
// window". The error budget is 1 - objective; the burn rate is the
// observed bad fraction divided by that budget (burn 1.0 = spending the
// budget exactly as fast as allowed). A breach fires only when BOTH the
// fast and the slow window burn past their thresholds — the standard
// multi-window shape: the fast window makes alerts prompt, the slow window
// keeps one bad poll from paging. Recovery is the same condition releasing.
//
// Everything is deterministic in (specs, observation stream, poll times):
// SLIs aggregate order-free, specs evaluate in declaration order, and
// events carry sim time — two runs that adopt the same samples emit
// byte-identical event logs at any worker count.

#include "obs/gate.hpp"

#if W11_OBS

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "obs/health/sliding_window.hpp"

namespace w11::obs {

enum class Severity : std::uint8_t { kTicket, kPage };
[[nodiscard]] const char* to_string(Severity s);

struct SloSpec {
  std::string name;       // event / table identity
  std::string sli;        // series the spec reads
  // Per-sample badness predicate: bad iff value > threshold (bad_above)
  // or value <= threshold (!bad_above). Align thresholds with the series'
  // bucket bounds for exact (not interpolated) fractions.
  double threshold = 0.0;
  bool bad_above = true;
  // Good-sample fraction target over the slow window; budget = 1 - objective.
  double objective = 0.99;
  std::size_t fast_windows = 5;
  std::size_t slow_windows = 60;
  double fast_burn = 14.0;  // breach iff fast AND slow burn exceed these
  double slow_burn = 6.0;
  Severity severity = Severity::kPage;
};

struct HealthEvent {
  Time at{};
  std::uint32_t slo = 0;  // index into specs()
  std::string name;
  bool breach = false;  // false = recovery
  Severity severity = Severity::kPage;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  double error_fast = 0.0;  // bad fraction over the fast window
  double error_slow = 0.0;
};

class HealthEngine {
 public:
  struct SeriesConfig {
    Time width = time::minutes(1);
    std::size_t windows = 64;
    std::vector<double> bounds;  // empty = power-of-two ladder
  };
  struct Config {
    SeriesConfig series;  // default shape for undeclared SLIs
    std::vector<SloSpec> slos;
  };

  explicit HealthEngine(Config cfg);

  // Declare-or-get a named SLI series; the two-argument form fixes a
  // non-default shape and must come before the first observation.
  SlidingWindow& series(std::string_view name);
  SlidingWindow& series(std::string_view name, const SeriesConfig& sc);
  [[nodiscard]] const SlidingWindow* find_series(std::string_view name) const;

  // One sample at sim time `at` (declares the series on first use).
  void observe(std::string_view name, Time at, double v);
  // Cumulative-counter form: observes the delta since the previous call
  // (first call is a delta from zero; negative deltas clamp to zero so a
  // counter reset never reads as negative rate).
  void observe_counter(std::string_view name, Time at, double cumulative);

  // Evaluate every SLO at a poll boundary. Advances each referenced series
  // to `now` (quiet windows become zeros), emits breach/recovery events on
  // state transitions — into the returned vector, the retained event log,
  // and the trace stream (kHealthBreach / kHealthRecovery, ord = SLO
  // index) — in spec order.
  std::vector<HealthEvent> poll(Time now);

  struct SloState {
    bool breached = false;
    std::uint64_t breaches = 0;
    std::uint64_t recoveries = 0;
    double burn_fast = 0.0;   // as of the last poll
    double burn_slow = 0.0;
    double error_fast = 0.0;
    double error_slow = 0.0;
  };

  [[nodiscard]] const std::vector<SloSpec>& specs() const { return specs_; }
  [[nodiscard]] const SloState& slo_state(std::size_t i) const {
    return states_[i];
  }
  [[nodiscard]] const std::vector<HealthEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t polls() const { return polls_; }
  [[nodiscard]] std::uint64_t breaches() const { return breaches_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  // Polls that referenced an SLI no observation ever declared.
  [[nodiscard]] std::uint64_t unbound_slo_polls() const { return unbound_; }

  // Byte-deterministic event log, one JSON object per line.
  void write_events_jsonl(std::ostream& os) const;
  [[nodiscard]] std::string events_jsonl() const;

 private:
  SeriesConfig default_series_;
  std::vector<SloSpec> specs_;
  std::vector<SloState> states_;
  // Ordered map: deterministic iteration, stable references (node-based).
  std::map<std::string, SlidingWindow, std::less<>> series_;
  std::map<std::string, double, std::less<>> counter_last_;
  std::vector<HealthEvent> events_;
  std::uint64_t polls_ = 0;
  std::uint64_t breaches_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t unbound_ = 0;
};

}  // namespace w11::obs

#endif  // W11_OBS
