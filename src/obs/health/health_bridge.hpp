#pragma once
// health -> telemetry glue: land HealthEvents in a LittleTable so SLO
// breaches query/aggregate exactly like AP statistics. Header-only for the
// same layering reason as obs/telemetry_bridge.hpp: w11_obs sits below
// w11_telemetry, so the glue lives where both are visible.

#include "obs/gate.hpp"

#if W11_OBS

#include "obs/health/health.hpp"
#include "telemetry/littletable.hpp"

namespace w11::obs {

// Schema: entity = SLO index, one row per HealthEvent.
inline telemetry::LittleTable make_fleet_health_table() {
  return telemetry::LittleTable(
      "fleet_health",
      {"breach", "severity", "burn_fast", "burn_slow", "error_slow"});
}

inline void append_health_events(const std::vector<HealthEvent>& events,
                                 telemetry::LittleTable& table) {
  for (const HealthEvent& e : events) {
    table.insert(e.slo, e.at,
                 {e.breach ? 1.0 : 0.0, static_cast<double>(e.severity),
                  e.burn_fast, e.burn_slow, e.error_slow});
  }
}

}  // namespace w11::obs

#endif  // W11_OBS
