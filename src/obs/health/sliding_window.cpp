#include "obs/health/sliding_window.hpp"

#if W11_OBS

#include <algorithm>

#include "common/check.hpp"

namespace w11::obs {

namespace {

const SlidingWindow::Agg kZeroAgg{};

std::vector<double> default_bounds() {
  // Same power-of-two ladder the MetricsRegistry defaults to, so an SLI
  // fed from a default-bucketed histogram loses no resolution.
  std::vector<double> b;
  b.reserve(21);
  for (int i = 0; i <= 20; ++i) b.push_back(static_cast<double>(1u << i));
  return b;
}

}  // namespace

void SlidingWindow::Agg::merge(const Agg& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  if (buckets.empty()) {
    buckets = o.buckets;
  } else {
    W11_CHECK_MSG(buckets.size() == o.buckets.size(),
                  "merging windows with different bucket ladders");
    for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
  }
}

SlidingWindow::SlidingWindow(Time width, std::size_t windows,
                             std::vector<double> bounds)
    : width_(width),
      bounds_(bounds.empty() ? default_bounds() : std::move(bounds)),
      ring_(windows) {
  W11_CHECK_MSG(width.ns() > 0, "sliding window width must be positive");
  W11_CHECK_MSG(windows > 0, "a sliding window needs at least one window");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    W11_CHECK_MSG(bounds_[i] > bounds_[i - 1],
                  "window bounds must be strictly increasing");
}

void SlidingWindow::advance(Time now) {
  const std::int64_t idx = index_of(now);
  if (newest_ < 0) {
    newest_ = idx;
    return;
  }
  if (idx <= newest_) return;
  const auto n = static_cast<std::int64_t>(ring_.size());
  // Rolling further than the whole ring zeroes everything once.
  const std::int64_t steps = std::min(idx - newest_, n);
  for (std::int64_t k = 1; k <= steps; ++k) slot(newest_ + k) = Agg{};
  newest_ = idx;
}

void SlidingWindow::observe(Time at, double v) {
  const std::int64_t idx = index_of(at);
  if (newest_ >= 0 &&
      idx <= newest_ - static_cast<std::int64_t>(ring_.size())) {
    ++dropped_late_;
    return;
  }
  advance(at);
  Agg& a = slot(idx);
  if (a.buckets.empty()) a.buckets.assign(bounds_.size() + 1, 0);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++a.buckets[static_cast<std::size_t>(it - bounds_.begin())];
  if (a.count == 0) {
    a.min = v;
    a.max = v;
  } else {
    a.min = std::min(a.min, v);
    a.max = std::max(a.max, v);
  }
  ++a.count;
  a.sum += v;
  ++samples_;
}

SlidingWindow::Agg SlidingWindow::merged(std::size_t n) const {
  Agg out;
  for (std::size_t k = 0; k < std::min(n, ring_.size()); ++k)
    out.merge(window(k));
  return out;
}

const SlidingWindow::Agg& SlidingWindow::window(std::size_t ago) const {
  if (newest_ < 0 || ago >= ring_.size()) return kZeroAgg;
  const std::int64_t idx = newest_ - static_cast<std::int64_t>(ago);
  if (idx < 0) return kZeroAgg;
  return ring_[static_cast<std::size_t>(idx %
                                        static_cast<std::int64_t>(ring_.size()))];
}

double SlidingWindow::quantile(const Agg& a, double q) const {
  // Delegate to the registry histogram's interpolation so SLI quantiles and
  // metric-snapshot quantiles of the same samples agree to the bit.
  MetricsRegistry::HistogramView view;
  view.bounds = bounds_;
  view.counts = a.buckets.empty()
                    ? std::vector<std::uint64_t>(bounds_.size() + 1, 0)
                    : a.buckets;
  view.count = a.count;
  view.sum = a.sum;
  if (a.count > 0) {
    view.min = a.min;
    view.max = a.max;
  }
  return view.quantile(q);
}

double SlidingWindow::fraction_bad(const Agg& a, double threshold,
                                   bool bad_above) const {
  if (a.count == 0) return 0.0;
  // Fraction of samples strictly above `threshold`, estimated bucket by
  // bucket with the same min/max edge tightening quantile() uses. Exact
  // when the threshold sits on a bucket bound (the recommended spec shape).
  double above = 0.0;
  bool first_nonempty = true;
  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
    const std::uint64_t c = a.buckets[i];
    if (c == 0) continue;
    const double lower = first_nonempty ? a.min : bounds_[i - 1];
    const double upper =
        i < bounds_.size() ? std::min(bounds_[i], a.max) : a.max;
    first_nonempty = false;
    const auto cd = static_cast<double>(c);
    if (upper <= threshold) continue;
    if (lower >= threshold || upper <= lower) {
      above += cd;
    } else {
      above += cd * (upper - threshold) / (upper - lower);
    }
  }
  const double frac = above / static_cast<double>(a.count);
  const double clamped = std::clamp(frac, 0.0, 1.0);
  return bad_above ? clamped : 1.0 - clamped;
}

}  // namespace w11::obs

#endif  // W11_OBS
