#pragma once
// SLI time-series primitive (DESIGN.md §17): fixed-width sliding-window
// ring aggregation over one named service-level indicator.
//
// Each window of width W covers the half-open sim-time interval
// [k*W, (k+1)*W) for integer k; the ring keeps the newest `windows`
// of them. A window holds the same merge-free aggregate shape the
// MetricsRegistry histograms use — count / sum / min / max plus
// fixed-bucket counts — so per-window quantiles and threshold fractions
// come from the identical interpolation rules, and merging N windows (or
// two partial aggregates of the same window) is order-free: the SLO
// evaluator's numbers are worker-count invariant by construction, like the
// rest of obs/.
//
// Quiet windows are *defined*, not absent: advance() rolls zeroed
// aggregates into the ring, so a rate SLI over a window with no samples
// reads 0 (see the absent-vs-zero note on MetricsRegistry::declare_*).
// Samples older than the ring's reach are counted (dropped_late()) and
// discarded — never silently folded into the wrong window.

#include "obs/gate.hpp"

#if W11_OBS

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace w11::obs {

class SlidingWindow {
 public:
  // One window's order-free aggregate.
  struct Agg {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // valid only when count > 0
    double max = 0.0;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1; empty until used

    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    void merge(const Agg& o);
  };

  // `bounds` as MetricsRegistry::histogram: strictly increasing upper
  // bounds, implicit +inf overflow bucket; empty = the power-of-two ladder.
  SlidingWindow(Time width, std::size_t windows,
                std::vector<double> bounds = {});

  // Record one sample at sim time `at`. Advances the ring if `at` lands
  // past the newest window; counts (and drops) samples older than the ring.
  void observe(Time at, double v);

  // Roll the ring forward so `now` lands in the newest window, zeroing
  // every window rolled in. Idempotent; called at poll boundaries so quiet
  // windows exist as zeros.
  void advance(Time now);

  // Merge of the newest `n` windows (clamped to the ring size). Windows
  // never observed read as zero aggregates.
  [[nodiscard]] Agg merged(std::size_t n) const;

  // The window `ago` steps behind the newest (0 = newest). Zero aggregate
  // when beyond history.
  [[nodiscard]] const Agg& window(std::size_t ago) const;

  // Quantile / threshold readings via the registry histogram's
  // interpolation rules (min/max tighten the owning bucket's nominal
  // edges). fraction_bad: estimated fraction of samples strictly above
  // (bad_above) or at-or-below (otherwise) `threshold`; 0 when count == 0
  // — quiet is good.
  [[nodiscard]] double quantile(const Agg& a, double q) const;
  [[nodiscard]] double fraction_bad(const Agg& a, double threshold,
                                    bool bad_above) const;

  [[nodiscard]] Time width() const { return width_; }
  [[nodiscard]] std::size_t windows() const { return ring_.size(); }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t dropped_late() const { return dropped_late_; }
  // Index of the newest window (floor(now / width)); -1 before first use.
  [[nodiscard]] std::int64_t newest_index() const { return newest_; }

 private:
  [[nodiscard]] std::int64_t index_of(Time t) const {
    const std::int64_t w = width_.ns();
    const std::int64_t n = t.ns();
    // Floor division (sim time can legitimately be 0; negatives defensive).
    return n >= 0 ? n / w : -((-n + w - 1) / w);
  }
  [[nodiscard]] Agg& slot(std::int64_t index) {
    return ring_[static_cast<std::size_t>(index % static_cast<std::int64_t>(
                     ring_.size()))];
  }

  Time width_;
  std::vector<double> bounds_;
  std::vector<Agg> ring_;
  std::int64_t newest_ = -1;  // window index currently at ring front
  std::uint64_t samples_ = 0;
  std::uint64_t dropped_late_ = 0;
};

}  // namespace w11::obs

#endif  // W11_OBS
