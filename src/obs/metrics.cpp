#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"

namespace w11::obs {

namespace {
std::atomic<std::uint64_t> g_next_registry_id{1};

std::vector<double> default_bounds() {
  // Power-of-two ladder 1, 2, 4, ... 2^20 — a serviceable default for
  // counts, queue depths and microsecond-scale durations.
  std::vector<double> b;
  b.reserve(21);
  for (int i = 0; i <= 20; ++i) b.push_back(static_cast<double>(1u << i));
  return b;
}
}  // namespace

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

std::uint32_t MetricsRegistry::register_metric(std::string_view name,
                                               Kind kind,
                                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint32_t i = 0; i < descs_.size(); ++i) {
    if (descs_[i].name == name) {
      if (descs_[i].kind != kind)
        throw std::logic_error("metric '" + std::string(name) +
                               "' re-registered with a different kind");
      return i;
    }
  }
  Desc d;
  d.name = std::string(name);
  d.kind = kind;
  switch (kind) {
    case Kind::kCounter: d.slot = n_counters_++; break;
    case Kind::kGauge: d.slot = n_gauges_++; break;
    case Kind::kHistogram: {
      d.slot = n_hists_++;
      d.hist_bounds = bounds.empty() ? default_bounds() : std::move(bounds);
      for (std::size_t i = 1; i < d.hist_bounds.size(); ++i)
        W11_CHECK_MSG(d.hist_bounds[i] > d.hist_bounds[i - 1],
                      "histogram bounds must be strictly increasing");
      break;
    }
  }
  descs_.push_back(std::move(d));
  return static_cast<std::uint32_t>(descs_.size() - 1);
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(this, register_metric(name, Kind::kCounter, {}));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(this, register_metric(name, Kind::kGauge, {}));
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  return Histogram(this,
                   register_metric(name, Kind::kHistogram, std::move(bounds)));
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  struct Cache {
    std::uint64_t id = 0;
    Shard* shard = nullptr;
  };
  thread_local Cache cache;
  if (cache.id == id_) return *cache.shard;
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  cache = {id_, shards_.back().get()};
  return *cache.shard;
}

void Counter::add(std::uint64_t n) const {
  if (reg_ == nullptr) return;
  MetricsRegistry::Shard& s = reg_->local_shard();
  const MetricsRegistry::Desc& d = reg_->desc_of(id_);
  if (d.slot >= s.counters.size()) s.counters.resize(d.slot + 1, 0);
  s.counters[d.slot] += n;
}

void Gauge::set(double v) const {
  if (reg_ == nullptr) return;
  MetricsRegistry::Shard& s = reg_->local_shard();
  const MetricsRegistry::Desc& d = reg_->desc_of(id_);
  if (d.slot >= s.gauges.size()) {
    s.gauges.resize(d.slot + 1, 0.0);
    s.gauge_stamp.resize(d.slot + 1, 0);
  }
  s.gauges[d.slot] = v;
  s.gauge_stamp[d.slot] =
      reg_->gauge_set_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Histogram::observe(double v) const {
  if (reg_ == nullptr) return;
  MetricsRegistry::Shard& s = reg_->local_shard();
  const MetricsRegistry::Desc& d = reg_->desc_of(id_);
  if (d.slot >= s.hists.size()) s.hists.resize(d.slot + 1);
  MetricsRegistry::HistShard& h = s.hists[d.slot];
  if (h.counts.empty()) h.counts.assign(d.hist_bounds.size() + 1, 0);
  const auto it =
      std::lower_bound(d.hist_bounds.begin(), d.hist_bounds.end(), v);
  ++h.counts[static_cast<std::size_t>(it - d.hist_bounds.begin())];
  ++h.count;
  h.sum += v;
  h.min = std::min(h.min, v);
  h.max = std::max(h.max, v);
}

std::uint64_t MetricsRegistry::counter_value(const Counter& c) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Desc& d = descs_[c.id_];
  std::uint64_t total = 0;
  for (const auto& s : shards_)
    if (d.slot < s->counters.size()) total += s->counters[d.slot];
  return total;
}

double MetricsRegistry::gauge_value(const Gauge& g) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Desc& d = descs_[g.id_];
  double v = 0.0;
  std::uint64_t best_stamp = 0;
  for (const auto& s : shards_) {
    if (d.slot < s->gauge_stamp.size() && s->gauge_stamp[d.slot] > best_stamp) {
      best_stamp = s->gauge_stamp[d.slot];
      v = s->gauges[d.slot];
    }
  }
  return v;
}

MetricsRegistry::HistogramView MetricsRegistry::merge_histogram(
    const Desc& d) const {
  HistogramView view;
  view.bounds = d.hist_bounds;
  view.counts.assign(d.hist_bounds.size() + 1, 0);
  for (const auto& s : shards_) {
    if (d.slot >= s->hists.size()) continue;
    const HistShard& h = s->hists[d.slot];
    if (h.count == 0) continue;
    for (std::size_t i = 0; i < h.counts.size(); ++i)
      view.counts[i] += h.counts[i];
    view.count += h.count;
    view.sum += h.sum;
    view.min = std::min(view.min, h.min);
    view.max = std::max(view.max, h.max);
  }
  return view;
}

MetricsRegistry::HistogramView MetricsRegistry::histogram_view(
    const Histogram& h) const {
  std::lock_guard<std::mutex> lock(mu_);
  return merge_histogram(descs_[h.id_]);
}

double MetricsRegistry::HistogramView::quantile(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  bool first_nonempty = true;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double lo_cum = static_cast<double>(cum);
    cum += counts[i];
    const bool hit = static_cast<double>(cum) >= target;
    if (!hit) {
      first_nonempty = false;
      continue;
    }
    // Interpolate inside bucket i. The true min lives in the first
    // non-empty bucket and the true max in the last, so they tighten the
    // bucket's nominal [lower, upper) where applicable (and give the
    // unbounded overflow bucket a finite upper edge).
    const double lower = first_nonempty ? min : bounds[i - 1];
    const double upper = i < bounds.size() ? std::min(bounds[i], max) : max;
    const double frac = (target - lo_cum) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
  }
  return max;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(descs_.size());
  for (const Desc& d : descs_) {
    switch (d.kind) {
      case Kind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& s : shards_)
          if (d.slot < s->counters.size()) total += s->counters[d.slot];
        out.push_back({d.name, static_cast<double>(total)});
        break;
      }
      case Kind::kGauge: {
        double v = 0.0;
        std::uint64_t best_stamp = 0;
        for (const auto& s : shards_) {
          if (d.slot < s->gauge_stamp.size() &&
              s->gauge_stamp[d.slot] > best_stamp) {
            best_stamp = s->gauge_stamp[d.slot];
            v = s->gauges[d.slot];
          }
        }
        out.push_back({d.name, v});
        break;
      }
      case Kind::kHistogram: {
        const HistogramView view = merge_histogram(d);
        const double mean =
            view.count > 0 ? view.sum / static_cast<double>(view.count) : 0.0;
        out.push_back({d.name + ".count", static_cast<double>(view.count)});
        out.push_back({d.name + ".sum", view.sum});
        out.push_back({d.name + ".mean", mean});
        out.push_back({d.name + ".p50", view.quantile(0.50)});
        out.push_back({d.name + ".p95", view.quantile(0.95)});
        out.push_back({d.name + ".max", view.count > 0 ? view.max : 0.0});
        break;
      }
    }
  }
  return out;
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return descs_.size();
}

std::size_t MetricsRegistry::lanes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : shards_) {
    std::fill(s->counters.begin(), s->counters.end(), 0);
    std::fill(s->gauges.begin(), s->gauges.end(), 0.0);
    std::fill(s->gauge_stamp.begin(), s->gauge_stamp.end(), 0);
    for (auto& h : s->hists) {
      std::fill(h.counts.begin(), h.counts.end(), 0);
      h.count = 0;
      h.sum = 0.0;
      h.min = std::numeric_limits<double>::infinity();
      h.max = -std::numeric_limits<double>::infinity();
    }
  }
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace w11::obs
