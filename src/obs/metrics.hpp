#pragma once
// Metrics registry (DESIGN.md §12): named counters / gauges / fixed-bucket
// histograms with cheap pre-resolved handles, sharded per recording thread
// ("lane") so TaskPool bodies can record without contention, merged
// deterministically in lane-registration order.
//
// Cost model:
//   * disabled registry — one bool load per site (the W11_COUNT macros
//     check before touching anything else);
//   * enabled hot path — one thread-local cache probe plus one add into the
//     lane's own flat array; no locks, no allocation after the lane's
//     first touch of a metric id.
//
// Merge semantics (snapshot()):
//   * counters — summed across lanes (order-free by construction);
//   * histograms — per-bucket counts, sum, count summed; min/max folded;
//   * gauges — single-writer by contract; the *latest* set wins, resolved
//     deterministically by a per-registry set-sequence stamp.
//
// Snapshots are taken at quiescent points (after parallel_for returned, at
// end of run) — the exec layer's barrier gives the happens-before edge.

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace w11::obs {

class MetricsRegistry;

// Pre-resolved handles: one uint32 id into the registry's descriptor table.
// Copyable, trivially destructible, safe to stash in function-local
// statics. A default-constructed handle is inert.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;
  [[nodiscard]] bool valid() const { return reg_ != nullptr; }

 private:
  Counter(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
  friend class MetricsRegistry;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double v) const;
  [[nodiscard]] bool valid() const { return reg_ != nullptr; }

 private:
  Gauge(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
  friend class MetricsRegistry;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const;
  [[nodiscard]] bool valid() const { return reg_ != nullptr; }

 private:
  Histogram(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
  friend class MetricsRegistry;
};

class MetricsRegistry {
 public:
  MetricsRegistry();

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Register-or-look-up by name; idempotent, mutex-guarded. Registering an
  // existing name with a different metric kind throws.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  // Bucket upper bounds must be strictly increasing; an implicit +inf
  // bucket is appended. Empty = the default power-of-two ladder 1..2^20.
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::vector<double> bounds = {});

  // Eager registration without keeping the handle. The W11_COUNT family
  // registers lazily on the first *enabled* hit, so a metric whose site
  // never fired is absent from snapshot() — indistinguishable from zero.
  // Rate SLIs over quiet windows need the distinction: declare every
  // metric a health SLI reads up front and a quiet window reads a defined
  // 0, never a missing name (tests/test_obs.cpp pins the zero-valued
  // inclusion).
  void declare_counter(std::string_view name) { (void)counter(name); }
  void declare_gauge(std::string_view name) { (void)gauge(name); }
  void declare_histogram(std::string_view name,
                         std::vector<double> bounds = {}) {
    (void)histogram(name, std::move(bounds));
  }

  // --- merged view (quiescent points only) -------------------------------

  struct HistogramView {
    std::vector<double> bounds;         // upper bounds, +inf implicit
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    // Quantile estimate by linear interpolation within the owning bucket
    // (bucket lower..upper bound; the overflow bucket reports max).
    [[nodiscard]] double quantile(double q) const;
  };

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  // One flat sample per metric, histograms expanded into derived samples
  // (name.count/.sum/.mean/.p50/.p95/.max) — the shape LittleTable rows
  // and JSON dumps want. Ordered by metric registration order.
  struct Sample {
    std::string name;
    double value = 0.0;
  };
  [[nodiscard]] std::vector<Sample> snapshot() const;

  [[nodiscard]] std::uint64_t counter_value(const Counter& c) const;
  [[nodiscard]] double gauge_value(const Gauge& g) const;
  [[nodiscard]] HistogramView histogram_view(const Histogram& h) const;

  [[nodiscard]] std::size_t metric_count() const;
  [[nodiscard]] std::size_t lanes() const;

  // Zero every shard's values; registrations (names, ids, handles) survive.
  void reset_values();

 private:
  struct Desc {
    std::string name;
    Kind kind;
    std::uint32_t slot;                 // index within its kind's arrays
    std::vector<double> hist_bounds;    // kHistogram only
  };

  struct HistShard {
    std::vector<std::uint64_t> counts;  // bounds.size() + 1, lazily sized
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  // One lane = one recording thread. Only the owner writes; vectors grow
  // lazily on the owner so registration never touches foreign shards.
  struct Shard {
    std::vector<std::uint64_t> counters;
    std::vector<double> gauges;
    std::vector<std::uint64_t> gauge_stamp;  // 0 = never set
    std::vector<HistShard> hists;
  };

  [[nodiscard]] std::uint32_t register_metric(std::string_view name, Kind kind,
                                              std::vector<double> bounds);
  Shard& local_shard();
  [[nodiscard]] const Desc& desc_of(std::uint32_t id) const {
    return descs_[id];
  }
  [[nodiscard]] HistogramView merge_histogram(const Desc& d) const;

  bool enabled_ = false;
  std::uint64_t id_;  // process-unique, keys the thread-local shard cache

  mutable std::mutex mu_;  // guards descs_ growth and shard registration
  // deque: a handle's desc_of() read is lock-free, so element references
  // must survive later registrations.
  std::deque<Desc> descs_;
  std::uint32_t n_counters_ = 0;
  std::uint32_t n_gauges_ = 0;
  std::uint32_t n_hists_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Monotone stamp for gauge sets: the merged value is the one with the
  // highest stamp. Atomic because lanes stamp concurrently; per-gauge
  // determinism comes from the single-writer contract, not the counter.
  std::atomic<std::uint64_t> gauge_set_seq_{0};

  friend class Counter;
  friend class Gauge;
  friend class Histogram;
};

// The process-wide registry the W11_COUNT/W11_HISTOGRAM macros target.
[[nodiscard]] MetricsRegistry& metrics();

}  // namespace w11::obs
