#pragma once
// obs -> telemetry bridge: snapshot a MetricsRegistry into LittleTable rows
// so the existing dashboard/bench queries consume instrumentation metrics
// exactly like AP statistics.
//
// Header-only on purpose: w11_obs sits below w11_telemetry in the library
// order, so the glue lives where both are visible (any target linking both
// — tests, benches, scenario — can include it).

#include "obs/metrics.hpp"
#include "telemetry/littletable.hpp"

namespace w11::obs {

// The schema snapshot_into() expects: one row per metric sample, keyed by
// the sample's position in the snapshot (stable across snapshots as long
// as no new metrics register in between).
inline telemetry::LittleTable make_metrics_table() {
  return telemetry::LittleTable("obs_metrics", {"value"});
}

// Append one row per snapshot sample at time `at`. Returns the sample
// names in entity order, for mapping entities back to metric names.
inline std::vector<std::string> snapshot_into(const MetricsRegistry& reg,
                                              telemetry::LittleTable& table,
                                              Time at) {
  const auto samples = reg.snapshot();
  std::vector<telemetry::LittleTable::Row> batch;
  batch.reserve(samples.size());
  std::vector<std::string> names;
  names.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    batch.push_back(telemetry::LittleTable::Row{
        static_cast<std::uint32_t>(i), at, {samples[i].value}});
    names.push_back(samples[i].name);
  }
  table.append(std::move(batch));
  return names;
}

}  // namespace w11::obs
