#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <tuple>

#include "obs/metrics.hpp"

namespace w11::obs {

namespace {
std::atomic<std::uint64_t> g_next_recorder_id{1};
}  // namespace

TraceRecorder::TraceRecorder(std::size_t per_lane_capacity)
    : per_lane_capacity_(per_lane_capacity),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRing& TraceRecorder::local_ring() {
  // One-entry thread-local cache keyed by the recorder's process-unique id
  // (not its address — a recorder allocated where a destroyed one lived
  // must not inherit the stale ring pointer). In practice one process uses
  // one recorder, so the cache hits ~always after first record.
  struct Cache {
    std::uint64_t id = 0;
    TraceRing* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.id == id_) return *cache.ring;
  std::lock_guard<std::mutex> lock(lanes_mu_);
  rings_.push_back(std::make_unique<TraceRing>(per_lane_capacity_));
  cache = {id_, rings_.back().get()};
  return *cache.ring;
}

std::vector<TraceEvent> TraceRecorder::merged() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const auto& r : rings_) total += r->size();
  out.reserve(total);
  for (const auto& r : rings_) {
    const auto snap = r->snapshot();
    out.insert(out.end(), snap.begin(), snap.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return std::tie(x.ts_ns, x.ord, x.kind, x.a, x.b) <
                            std::tie(y.ts_ns, y.ord, y.kind, y.a, y.b);
                   });
  return out;
}

std::size_t TraceRecorder::lanes() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  return rings_.size();
}

std::size_t TraceRecorder::total_events() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  std::size_t total = 0;
  for (const auto& r : rings_) total += r->size();
  return total;
}

std::uint64_t TraceRecorder::total_dropped() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r->dropped();
  return total;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  for (auto& r : rings_) r->clear();
}

TraceRecorder& tracer() {
  static TraceRecorder recorder;
  return recorder;
}

bool enable_from_env() {
  const char* v = std::getenv("W11_TRACE");
  const bool on = v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  if (on) {
    tracer().set_enabled(true);
    metrics().set_enabled(true);
  }
  return on;
}

const char* trace_out_path(const char* default_path) {
  const char* v = std::getenv("W11_TRACE_OUT");
  return (v != nullptr && *v != '\0') ? v : default_path;
}

}  // namespace w11::obs
