#pragma once
// Structured trace recorder (DESIGN.md §12): bounded per-lane ring buffers
// of typed events stamped with *simulated* virtual time.
//
// Determinism is the design constraint, inherited from the exec layer
// (DESIGN.md §10): a trace taken at any worker count must export to the
// same bytes. Three rules make that hold:
//
//   * Timestamps are sim virtual time (or a caller-supplied logical time),
//     never wall clock.
//   * Every event carries a caller-supplied deterministic ordinal `ord`
//     (the simulator's event sequence number, a planner pick position, a
//     parallel_for index) that orders events sharing a timestamp. merged()
//     stable-sorts on (ts, ord, kind, a, b), so export order never depends
//     on which lane's ring an event landed in.
//   * Lanes are per-*thread* rings (registered on first record, appended
//     lock-free by their owner), so recording from TaskPool tasks is safe;
//     ring identity deliberately does not appear in the sort key.
//
// Rings are bounded: overflow evicts the oldest event in that ring and
// counts it (dropped()), never blocks, never allocates past capacity.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/time.hpp"

namespace w11::obs {

// Every instrumented site in the tree, grouped by category. New sites
// append to their category block; the exporter maps categories to Perfetto
// tracks.
enum class TraceKind : std::uint16_t {
  // sim
  kSimEvent,        // one dispatched simulator event; ord = event seq
  // mac
  kAmpduTx,         // A-MPDU formation + airtime; a = MPDU bundles, b = batch frames
  // fastack
  kFastAckSynth,    // synthesized cumulative ACK; a = ack seq, b = rwnd
  kFastAckWindowUpdate,
  kFastAckSuppress, // client ACK suppressed; a = ack seq
  kFastAckCacheServe,  // local retransmission burst; a = from seq, b = segments
  kFastAckHoleDupAck,  // emulated dup-ACK for an upstream hole
  kFastAckBypass,      // flow dropped to bypass
  // planner
  kNboRound,        // one NBO round; ord = round, a = picks, b = accepted
  kNboBatch,        // one speculative commit batch; a = batch size
  kNboPick,         // one committed ACC decision; a = AP index, b = switched
  // telemetry
  kCollectorPoll,   // one collector polling interval; a = rows, b = dropped
  // ctrl (plan rollout)
  kRolloutApply,    // one AP reached kApplied; a = attempts, b = switched
  kRolloutWave,     // one wave launched; ord = wave index, a = wave size
  kRolloutRevert,   // rollout reverted; a = RevertReason, b = APs touched
  // health (SLO evaluator + flight recorder)
  kHealthBreach,    // SLO breached; ord = SLO index, a = Severity, b = burn*1e3
  kHealthRecovery,  // SLO recovered; ord = SLO index, a = Severity, b = burn*1e3
  kPostmortem,      // flight-recorder bundle dumped; ord = seq, a = Trigger
};

enum class TraceCategory : std::uint8_t { kSim, kMac, kFastAck, kPlanner, kTelemetry, kCtrl, kHealth };

[[nodiscard]] constexpr const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kSimEvent: return "sim.event";
    case TraceKind::kAmpduTx: return "mac.ampdu_tx";
    case TraceKind::kFastAckSynth: return "fastack.synth";
    case TraceKind::kFastAckWindowUpdate: return "fastack.window_update";
    case TraceKind::kFastAckSuppress: return "fastack.suppress";
    case TraceKind::kFastAckCacheServe: return "fastack.cache_serve";
    case TraceKind::kFastAckHoleDupAck: return "fastack.hole_dupack";
    case TraceKind::kFastAckBypass: return "fastack.bypass";
    case TraceKind::kNboRound: return "planner.nbo_round";
    case TraceKind::kNboBatch: return "planner.nbo_batch";
    case TraceKind::kNboPick: return "planner.nbo_pick";
    case TraceKind::kCollectorPoll: return "telemetry.poll";
    case TraceKind::kRolloutApply: return "ctrl.rollout_apply";
    case TraceKind::kRolloutWave: return "ctrl.rollout_wave";
    case TraceKind::kRolloutRevert: return "ctrl.rollout_revert";
    case TraceKind::kHealthBreach: return "health.breach";
    case TraceKind::kHealthRecovery: return "health.recovery";
    case TraceKind::kPostmortem: return "health.postmortem";
  }
  return "?";
}

[[nodiscard]] constexpr TraceCategory category(TraceKind k) {
  switch (k) {
    case TraceKind::kSimEvent: return TraceCategory::kSim;
    case TraceKind::kAmpduTx: return TraceCategory::kMac;
    case TraceKind::kFastAckSynth:
    case TraceKind::kFastAckWindowUpdate:
    case TraceKind::kFastAckSuppress:
    case TraceKind::kFastAckCacheServe:
    case TraceKind::kFastAckHoleDupAck:
    case TraceKind::kFastAckBypass: return TraceCategory::kFastAck;
    case TraceKind::kNboRound:
    case TraceKind::kNboBatch:
    case TraceKind::kNboPick: return TraceCategory::kPlanner;
    case TraceKind::kCollectorPoll: return TraceCategory::kTelemetry;
    case TraceKind::kRolloutApply:
    case TraceKind::kRolloutWave:
    case TraceKind::kRolloutRevert: return TraceCategory::kCtrl;
    case TraceKind::kHealthBreach:
    case TraceKind::kHealthRecovery:
    case TraceKind::kPostmortem: return TraceCategory::kHealth;
  }
  return TraceCategory::kSim;
}

[[nodiscard]] constexpr const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kSim: return "sim";
    case TraceCategory::kMac: return "mac";
    case TraceCategory::kFastAck: return "fastack";
    case TraceCategory::kPlanner: return "planner";
    case TraceCategory::kTelemetry: return "telemetry";
    case TraceCategory::kCtrl: return "ctrl";
    case TraceCategory::kHealth: return "health";
  }
  return "?";
}

[[nodiscard]] constexpr std::uint32_t category_bit(TraceCategory c) {
  return 1u << static_cast<unsigned>(c);
}
inline constexpr std::uint32_t kAllCategories = 0xffffffffu;

struct TraceEvent {
  std::int64_t ts_ns = 0;   // sim virtual time of the event (span begin)
  std::int64_t dur_ns = 0;  // sim-time duration; 0 = instant
  std::uint64_t ord = 0;    // deterministic tie-break ordinal
  std::uint64_t a = 0;      // kind-specific payload
  std::uint64_t b = 0;
  TraceKind kind{};

  friend constexpr bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

// One lane's bounded ring. Single-writer (the owning thread); snapshot is
// taken at quiescent points only.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {}

  void push(const TraceEvent& e) {
    if (events_.size() < capacity_) {
      events_.push_back(e);
    } else if (capacity_ > 0) {
      events_[head_] = e;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    } else {
      ++dropped_;
    }
  }

  // Events in record order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i)
      out.push_back(events_[(head_ + i) % events_.size()]);
    return out;
  }

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

class ScopedSpan;

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t per_lane_capacity = std::size_t{1} << 16);

  // Runtime gate. Disabled recording is one bool load per site.
  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Restrict recording to a category bitmask (category_bit()); kSim's
  // per-event firehose is the usual candidate for masking out.
  void set_category_mask(std::uint32_t mask) { mask_ = mask; }
  [[nodiscard]] std::uint32_t category_mask() const { return mask_; }

  // Bind the sim-time source for record()/span() sites that do not pass an
  // explicit timestamp (the pointee must outlive the binding; the Simulator
  // binds &now_). Unbound sites stamp Time{0} and order by ord alone.
  void bind_clock(const Time* clock) { clock_ = clock; }
  [[nodiscard]] Time clock_now() const { return clock_ ? *clock_ : Time{}; }

  void record(TraceKind kind, std::uint64_t ord, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    record_at(clock_now(), kind, ord, a, b);
  }
  void record_at(Time ts, TraceKind kind, std::uint64_t ord,
                 std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!accepts(kind)) return;
    local_ring().push(TraceEvent{ts.ns(), 0, ord, a, b, kind});
  }
  void record_span(Time begin, Time end, TraceKind kind, std::uint64_t ord,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!accepts(kind)) return;
    local_ring().push(
        TraceEvent{begin.ns(), (end - begin).ns(), ord, a, b, kind});
  }

  // RAII span: opens at the bound clock's now, records on destruction.
  [[nodiscard]] ScopedSpan span(TraceKind kind, std::uint64_t ord,
                                std::uint64_t a = 0);

  // All lanes' events merged into one deterministic stream: stable sort on
  // (ts, ord, kind, a, b). Call at quiescent points (no concurrent
  // recording), e.g. after parallel_for returned.
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  [[nodiscard]] std::size_t lanes() const;
  [[nodiscard]] std::size_t total_events() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  void clear();

 private:
  [[nodiscard]] bool accepts(TraceKind kind) const {
    return enabled_ && (mask_ & category_bit(category(kind))) != 0;
  }
  TraceRing& local_ring();

  bool enabled_ = false;
  std::uint32_t mask_ = kAllCategories;
  const Time* clock_ = nullptr;
  std::size_t per_lane_capacity_;
  std::uint64_t id_;  // process-unique, keys the thread-local ring cache

  mutable std::mutex lanes_mu_;  // guards ring registration, not recording
  std::vector<std::unique_ptr<TraceRing>> rings_;

  friend class ScopedSpan;
};

// RAII helper: stamps the span's begin at construction, records it (with
// duration up to the bound clock's now) at destruction. A span taken while
// recording is disabled stays inert even if the recorder is enabled before
// it closes — half-open spans would break byte-stable golden traces.
class ScopedSpan {
 public:
  ScopedSpan(ScopedSpan&& o) noexcept
      : rec_(o.rec_), begin_(o.begin_), kind_(o.kind_), ord_(o.ord_), a_(o.a_) {
    o.rec_ = nullptr;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan& operator=(ScopedSpan&&) = delete;

  // Attach kind-specific payload discovered mid-span.
  void set_args(std::uint64_t a, std::uint64_t b = 0) { a_ = a; b_ = b; }

  ~ScopedSpan() {
    if (rec_ != nullptr)
      rec_->record_span(begin_, rec_->clock_now(), kind_, ord_, a_, b_);
  }

 private:
  ScopedSpan(TraceRecorder* rec, TraceKind kind, std::uint64_t ord,
             std::uint64_t a)
      : rec_(rec), begin_(rec ? rec->clock_now() : Time{}), kind_(kind),
        ord_(ord), a_(a) {}

  TraceRecorder* rec_;  // nullptr = inert
  Time begin_;
  TraceKind kind_;
  std::uint64_t ord_;
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;

  friend class TraceRecorder;
};

inline ScopedSpan TraceRecorder::span(TraceKind kind, std::uint64_t ord,
                                      std::uint64_t a) {
  return ScopedSpan(accepts(kind) ? this : nullptr, kind, ord, a);
}

// The process-wide recorder the W11_TRACE_* macros target. Disabled until
// something (a test, enable_from_env()) switches it on.
[[nodiscard]] TraceRecorder& tracer();

// W11_TRACE environment gate: W11_TRACE set to anything but "" / "0"
// enables the process tracer and metrics registry. Returns whether tracing
// is on. Idempotent; the Testbed and the bench harness both call it.
bool enable_from_env();

// Output path for the exported artifacts: $W11_TRACE_OUT if set, else
// `default_path`.
[[nodiscard]] const char* trace_out_path(const char* default_path);

}  // namespace w11::obs
