#include "phy/channel.hpp"

#include <algorithm>

#include "common/check.hpp"

// The planner's bit-for-bit contracts (golden plan equivalence, audit/kernel
// parity) do not survive value-unsafe FP transformations.
#ifdef __FAST_MATH__
#error "phy/channel.cpp must not be compiled with -ffast-math (determinism)"
#endif

namespace w11 {

const char* to_string(Band b) {
  return b == Band::G2_4 ? "2.4GHz" : "5GHz";
}

const char* to_string(ChannelWidth w) {
  switch (w) {
    case ChannelWidth::MHz20: return "20MHz";
    case ChannelWidth::MHz40: return "40MHz";
    case ChannelWidth::MHz80: return "80MHz";
    case ChannelWidth::MHz160: return "160MHz";
  }
  return "?";
}

std::vector<ChannelWidth> widths_up_to(ChannelWidth max) {
  std::vector<ChannelWidth> out;
  for (auto w : {ChannelWidth::MHz20, ChannelWidth::MHz40, ChannelWidth::MHz80,
                 ChannelWidth::MHz160}) {
    out.push_back(w);
    if (w == max) break;
  }
  return out;
}

double Channel::center_mhz() const {
  if (band == Band::G2_4) {
    // 2.4 GHz: channel n centre = 2407 + 5n (n = 1..13); ch 14 not used here.
    return 2407.0 + 5.0 * number;
  }
  // 5 GHz: channel n centre = 5000 + 5n.
  return 5000.0 + 5.0 * number;
}

ComponentSpan Channel::component_span() const {
  ComponentSpan out;
  if (band == Band::G2_4 || width == ChannelWidth::MHz20) {
    out.comp[0] = number;
    out.count = 1;
    return out;
  }
  // Bonded 5 GHz channel: 20 MHz components sit at centre ± odd multiples
  // of 2 channel units (10 MHz), i.e. 40 MHz -> {c-2, c+2},
  // 80 MHz -> {c-6, c-2, c+2, c+6}, 160 MHz -> {c-14 ... c+14 step 4}.
  const int half_span = width_mhz(width) / 10;  // in channel units (5 MHz)
  for (int off = -half_span + 2; off <= half_span - 2; off += 4)
    out.comp[out.count++] = number + off;
  return out;
}

std::vector<int> Channel::components() const {
  const ComponentSpan s = component_span();
  return {s.begin(), s.end()};
}

bool Channel::overlaps(const Channel& other) const {
  if (band != other.band) return false;
  const double half_a = width_mhz(width) / 2.0;
  const double half_b = width_mhz(other.width) / 2.0;
  const double gap = std::abs(center_mhz() - other.center_mhz());
  return gap < half_a + half_b;
}

bool Channel::is_dfs() const {
  if (band == Band::G2_4) return false;
  for (int c : component_span())
    if (channels::is_dfs_20mhz(c)) return true;
  return false;
}

Channel Channel::primary20() const {
  return Channel{band, component_span().front(), ChannelWidth::MHz20};
}

std::string Channel::to_string() const {
  std::string s = w11::to_string(band);
  s += " ch";
  s += std::to_string(number);
  s += "/";
  s += w11::to_string(width);
  return s;
}

namespace channels {

bool is_dfs_20mhz(int number) {
  return (number >= 52 && number <= 64) || (number >= 100 && number <= 144);
}

namespace {

// US 5 GHz 20 MHz channels (UNII-1, UNII-2, UNII-2e, UNII-3): 25 channels.
constexpr int k5g20[] = {36, 40, 44, 48, 52, 56, 60, 64, 100, 104, 108, 112,
                         116, 120, 124, 128, 132, 136, 140, 144, 149, 153,
                         157, 161, 165};
// 40 MHz bond centres: 12 channels.
constexpr int k5g40[] = {38, 46, 54, 62, 102, 110, 118, 126, 134, 142, 151, 159};
// 80 MHz bond centres: 6 channels.
constexpr int k5g80[] = {42, 58, 106, 122, 138, 155};
// 160 MHz bond centres: 2 channels.
constexpr int k5g160[] = {50, 114};
// 2.4 GHz non-overlapping channels.
constexpr int k2g20[] = {1, 6, 11};

}  // namespace

std::vector<Channel> us_catalog(Band band, ChannelWidth width) {
  std::vector<Channel> out;
  auto push_all = [&](const int* first, const int* last) {
    for (const int* it = first; it != last; ++it)
      out.push_back(Channel{band, *it, width});
  };
  if (band == Band::G2_4) {
    if (width == ChannelWidth::MHz20) push_all(std::begin(k2g20), std::end(k2g20));
    return out;
  }
  switch (width) {
    case ChannelWidth::MHz20: push_all(std::begin(k5g20), std::end(k5g20)); break;
    case ChannelWidth::MHz40: push_all(std::begin(k5g40), std::end(k5g40)); break;
    case ChannelWidth::MHz80: push_all(std::begin(k5g80), std::end(k5g80)); break;
    case ChannelWidth::MHz160: push_all(std::begin(k5g160), std::end(k5g160)); break;
  }
  return out;
}

std::vector<Channel> candidate_set(Band band, ChannelWidth max_width, bool allow_dfs) {
  std::vector<Channel> out;
  if (band == Band::G2_4) return us_catalog(band, ChannelWidth::MHz20);
  for (ChannelWidth w : widths_up_to(max_width)) {
    for (const Channel& c : us_catalog(band, w)) {
      if (!allow_dfs && c.is_dfs()) continue;
      out.push_back(c);
    }
  }
  return out;
}

namespace {

constexpr int kMaxNumber = 165;
constexpr int kWidths = 4;

inline int wi(ChannelWidth w) { return static_cast<int>(w); }
inline int bi(Band b) { return b == Band::G2_4 ? 0 : 1; }

// All memoized geometry, built once on first use. Ordinals enumerate the
// catalog band-major, width-minor, in us_catalog order, so lookups that used
// to walk the catalog ("first channel whose components contain x") keep
// their original resolution order.
struct Geometry {
  std::vector<Channel> catalog;
  // (band, width, number) -> ordinal, -1 if absent.
  std::int16_t ord[2][kWidths][kMaxNumber + 1];
  // 5 GHz only: (width, 20 MHz component number) -> ordinal of the first
  // width-wide catalog channel containing that component.
  std::int16_t container[kWidths][kMaxNumber + 1];
  // (ordinal, width) -> ordinal of the width-wide sub-channel container.
  std::vector<std::array<std::int16_t, kWidths>> sub;
  // Pairwise Channel::overlaps, row-major over ordinals.
  std::vector<std::uint8_t> overlap;
  // Same relation as one bit per column: bit b of overlap_bits[a] is
  // overlap[a][b]. The scoring kernel's contender test is one shift+and.
  std::vector<std::uint64_t> overlap_bits;

  Geometry() {
    std::fill_n(&ord[0][0][0], 2 * kWidths * (kMaxNumber + 1),
                std::int16_t{-1});
    std::fill_n(&container[0][0], kWidths * (kMaxNumber + 1),
                std::int16_t{-1});
    for (Band band : {Band::G2_4, Band::G5}) {
      for (ChannelWidth w : {ChannelWidth::MHz20, ChannelWidth::MHz40,
                             ChannelWidth::MHz80, ChannelWidth::MHz160}) {
        for (const Channel& c : us_catalog(band, w)) {
          ord[bi(band)][wi(w)][c.number] =
              static_cast<std::int16_t>(catalog.size());
          catalog.push_back(c);
        }
      }
    }
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      const Channel& c = catalog[i];
      if (c.band != Band::G5) continue;
      for (int comp : c.component_span()) {
        if (container[wi(c.width)][comp] < 0)
          container[wi(c.width)][comp] = static_cast<std::int16_t>(i);
      }
    }
    sub.resize(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      const Channel& c = catalog[i];
      const int prim = c.component_span().front();
      for (int w = 0; w < kWidths; ++w) {
        std::int16_t s;
        if (w == wi(c.width)) {
          s = static_cast<std::int16_t>(i);
        } else if (w == wi(ChannelWidth::MHz20)) {
          s = ord[bi(c.band)][w][prim];
        } else if (c.band == Band::G5 && container[w][prim] >= 0) {
          s = container[w][prim];
        } else {
          s = ord[bi(c.band)][wi(ChannelWidth::MHz20)][prim];
        }
        sub[i][static_cast<std::size_t>(w)] = s;
      }
    }
    W11_CHECK(catalog.size() <= kMaxCatalogOrdinals);
    overlap.assign(catalog.size() * catalog.size(), 0);
    overlap_bits.assign(catalog.size(), 0);
    for (std::size_t a = 0; a < catalog.size(); ++a)
      for (std::size_t b = 0; b < catalog.size(); ++b) {
        const bool o = catalog[a].overlaps(catalog[b]);
        overlap[a * catalog.size() + b] = o;
        if (o) overlap_bits[a] |= std::uint64_t{1} << b;
      }
  }
};

const Geometry& geo() {
  static const Geometry g;
  return g;
}

}  // namespace

int ordinal(const Channel& c) {
  if (c.number < 0 || c.number > kMaxNumber) return -1;
  return geo().ord[bi(c.band)][wi(c.width)][c.number];
}

std::size_t catalog_size() { return geo().catalog.size(); }

const Channel& by_ordinal(int ord) {
  W11_CHECK(ord >= 0 && static_cast<std::size_t>(ord) < geo().catalog.size());
  return geo().catalog[static_cast<std::size_t>(ord)];
}

Channel sub_channel(const Channel& c, ChannelWidth b) {
  if (b == c.width) return c;
  const int o = ordinal(c);
  if (o >= 0)
    return geo().catalog[static_cast<std::size_t>(
        geo().sub[static_cast<std::size_t>(o)][wi(b)])];
  // Non-catalog channel: resolve directly (same semantics as the table).
  const Channel prim = c.primary20();
  if (b == ChannelWidth::MHz20) return prim;
  if (c.band == Band::G5 && prim.number >= 0 && prim.number <= kMaxNumber) {
    const std::int16_t ct = geo().container[wi(b)][prim.number];
    if (ct >= 0) return geo().catalog[static_cast<std::size_t>(ct)];
  }
  return prim;  // no bonded container exists; degrade to primary
}

int sub_channel_ordinal(int ord, ChannelWidth b) {
  W11_CHECK(ord >= 0 && static_cast<std::size_t>(ord) < geo().catalog.size());
  return geo().sub[static_cast<std::size_t>(ord)][wi(b)];
}

bool overlaps_ordinal(int a, int b) {
  const Geometry& g = geo();
  W11_CHECK(a >= 0 && b >= 0 &&
            static_cast<std::size_t>(a) < g.catalog.size() &&
            static_cast<std::size_t>(b) < g.catalog.size());
  return g.overlap[static_cast<std::size_t>(a) * g.catalog.size() +
                   static_cast<std::size_t>(b)] != 0;
}

std::uint64_t overlap_mask(int ord) {
  const Geometry& g = geo();
  W11_CHECK(ord >= 0 && static_cast<std::size_t>(ord) < g.catalog.size());
  return g.overlap_bits[static_cast<std::size_t>(ord)];
}

const std::uint64_t* overlap_masks() { return geo().overlap_bits.data(); }

const std::int16_t* sub_channel_table() { return geo().sub.front().data(); }

std::size_t sub_channel_stride() { return kWidths; }

}  // namespace channels

}  // namespace w11
