#include "phy/channel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace w11 {

const char* to_string(Band b) {
  return b == Band::G2_4 ? "2.4GHz" : "5GHz";
}

const char* to_string(ChannelWidth w) {
  switch (w) {
    case ChannelWidth::MHz20: return "20MHz";
    case ChannelWidth::MHz40: return "40MHz";
    case ChannelWidth::MHz80: return "80MHz";
    case ChannelWidth::MHz160: return "160MHz";
  }
  return "?";
}

std::vector<ChannelWidth> widths_up_to(ChannelWidth max) {
  std::vector<ChannelWidth> out;
  for (auto w : {ChannelWidth::MHz20, ChannelWidth::MHz40, ChannelWidth::MHz80,
                 ChannelWidth::MHz160}) {
    out.push_back(w);
    if (w == max) break;
  }
  return out;
}

double Channel::center_mhz() const {
  if (band == Band::G2_4) {
    // 2.4 GHz: channel n centre = 2407 + 5n (n = 1..13); ch 14 not used here.
    return 2407.0 + 5.0 * number;
  }
  // 5 GHz: channel n centre = 5000 + 5n.
  return 5000.0 + 5.0 * number;
}

std::vector<int> Channel::components() const {
  if (band == Band::G2_4 || width == ChannelWidth::MHz20) return {number};
  // Bonded 5 GHz channel: 20 MHz components sit at centre ± odd multiples
  // of 2 channel units (10 MHz), i.e. 40 MHz -> {c-2, c+2},
  // 80 MHz -> {c-6, c-2, c+2, c+6}, 160 MHz -> {c-14 ... c+14 step 4}.
  const int half_span = width_mhz(width) / 10;  // in channel units (5 MHz)
  std::vector<int> out;
  for (int off = -half_span + 2; off <= half_span - 2; off += 4)
    out.push_back(number + off);
  return out;
}

bool Channel::overlaps(const Channel& other) const {
  if (band != other.band) return false;
  const double half_a = width_mhz(width) / 2.0;
  const double half_b = width_mhz(other.width) / 2.0;
  const double gap = std::abs(center_mhz() - other.center_mhz());
  return gap < half_a + half_b;
}

bool Channel::is_dfs() const {
  if (band == Band::G2_4) return false;
  for (int c : components())
    if (channels::is_dfs_20mhz(c)) return true;
  return false;
}

Channel Channel::primary20() const {
  return Channel{band, components().front(), ChannelWidth::MHz20};
}

std::string Channel::to_string() const {
  std::string s = w11::to_string(band);
  s += " ch";
  s += std::to_string(number);
  s += "/";
  s += w11::to_string(width);
  return s;
}

namespace channels {

bool is_dfs_20mhz(int number) {
  return (number >= 52 && number <= 64) || (number >= 100 && number <= 144);
}

namespace {

// US 5 GHz 20 MHz channels (UNII-1, UNII-2, UNII-2e, UNII-3): 25 channels.
constexpr int k5g20[] = {36, 40, 44, 48, 52, 56, 60, 64, 100, 104, 108, 112,
                         116, 120, 124, 128, 132, 136, 140, 144, 149, 153,
                         157, 161, 165};
// 40 MHz bond centres: 12 channels.
constexpr int k5g40[] = {38, 46, 54, 62, 102, 110, 118, 126, 134, 142, 151, 159};
// 80 MHz bond centres: 6 channels.
constexpr int k5g80[] = {42, 58, 106, 122, 138, 155};
// 160 MHz bond centres: 2 channels.
constexpr int k5g160[] = {50, 114};
// 2.4 GHz non-overlapping channels.
constexpr int k2g20[] = {1, 6, 11};

}  // namespace

std::vector<Channel> us_catalog(Band band, ChannelWidth width) {
  std::vector<Channel> out;
  auto push_all = [&](const int* first, const int* last) {
    for (const int* it = first; it != last; ++it)
      out.push_back(Channel{band, *it, width});
  };
  if (band == Band::G2_4) {
    if (width == ChannelWidth::MHz20) push_all(std::begin(k2g20), std::end(k2g20));
    return out;
  }
  switch (width) {
    case ChannelWidth::MHz20: push_all(std::begin(k5g20), std::end(k5g20)); break;
    case ChannelWidth::MHz40: push_all(std::begin(k5g40), std::end(k5g40)); break;
    case ChannelWidth::MHz80: push_all(std::begin(k5g80), std::end(k5g80)); break;
    case ChannelWidth::MHz160: push_all(std::begin(k5g160), std::end(k5g160)); break;
  }
  return out;
}

std::vector<Channel> candidate_set(Band band, ChannelWidth max_width, bool allow_dfs) {
  std::vector<Channel> out;
  if (band == Band::G2_4) return us_catalog(band, ChannelWidth::MHz20);
  for (ChannelWidth w : widths_up_to(max_width)) {
    for (const Channel& c : us_catalog(band, w)) {
      if (!allow_dfs && c.is_dfs()) continue;
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace channels

}  // namespace w11
