#pragma once
// 802.11 channelization for the US regulatory domain.
//
// A `Channel` is a (band, IEEE channel number, width) triple. For bonded
// channels the number designates the centre of the bond (e.g. 42 for the
// 80 MHz channel spanning 36–48). The catalog functions reproduce the FCC
// allocation cited in the paper (§4.1.1): twenty-five 20 MHz, twelve 40 MHz,
// six 80 MHz and two 160 MHz channels at 5 GHz, three non-overlapping
// channels at 2.4 GHz, and the DFS subsets of §4.5.2.

#include <array>
#include <cstdint>
#include <compare>
#include <ostream>
#include <string>
#include <vector>

namespace w11 {

enum class Band : std::uint8_t { G2_4, G5 };

enum class ChannelWidth : std::uint8_t { MHz20, MHz40, MHz80, MHz160 };

[[nodiscard]] constexpr int width_mhz(ChannelWidth w) {
  switch (w) {
    case ChannelWidth::MHz20: return 20;
    case ChannelWidth::MHz40: return 40;
    case ChannelWidth::MHz80: return 80;
    case ChannelWidth::MHz160: return 160;
  }
  return 20;
}

[[nodiscard]] const char* to_string(Band b);
[[nodiscard]] const char* to_string(ChannelWidth w);

// Widths from 20 MHz up to and including `max`, in increasing order.
[[nodiscard]] std::vector<ChannelWidth> widths_up_to(ChannelWidth max);

// Allocation-free view of a channel's 20 MHz components; eight slots cover
// the widest bond (160 MHz).
struct ComponentSpan {
  std::array<int, 8> comp{};
  int count = 0;

  [[nodiscard]] const int* begin() const { return comp.data(); }
  [[nodiscard]] const int* end() const { return comp.data() + count; }
  [[nodiscard]] int front() const { return comp[0]; }
  [[nodiscard]] int size() const { return count; }
};

struct Channel {
  Band band = Band::G5;
  int number = 36;  // IEEE channel number of the (bonded) centre
  ChannelWidth width = ChannelWidth::MHz20;

  friend constexpr auto operator<=>(const Channel&, const Channel&) = default;

  // Centre frequency in MHz.
  [[nodiscard]] double center_mhz() const;
  // The 20 MHz component channel numbers of this (possibly bonded) channel.
  [[nodiscard]] std::vector<int> components() const;
  // Same, without the allocation — the planner's hot paths use this.
  [[nodiscard]] ComponentSpan component_span() const;
  // Frequency overlap between two channels (any shared spectrum), which is
  // what matters for contention and corruption on bonded transmissions.
  [[nodiscard]] bool overlaps(const Channel& other) const;
  // True if any 20 MHz component requires Dynamic Frequency Selection.
  [[nodiscard]] bool is_dfs() const;
  // The primary 20 MHz sub-channel (lowest component by convention here).
  [[nodiscard]] Channel primary20() const;

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Channel& c) {
    return os << c.to_string();
  }
};

namespace channels {

// All US channels of the given width on the given band. For 2.4 GHz only
// 20 MHz is returned (the three non-overlapping channels 1/6/11).
[[nodiscard]] std::vector<Channel> us_catalog(Band band, ChannelWidth width);

// Every channel an AP limited to `max_width` may choose from: all widths
// 20..max on 5 GHz, or 1/6/11 on 2.4 GHz. `allow_dfs`=false filters DFS.
[[nodiscard]] std::vector<Channel> candidate_set(Band band, ChannelWidth max_width,
                                                 bool allow_dfs);

// True if the 20 MHz 5 GHz channel number lies in a DFS range (52–64,
// 100–144 in the US).
[[nodiscard]] bool is_dfs_20mhz(int number);

// ---- memoized channel geometry -----------------------------------------
// The full US catalog (both bands, every width) is small — 48 channels — so
// the geometry the planner re-derives per evaluation (bond membership,
// sub-channel containers, pairwise overlap) is precomputed once into static
// tables and addressed by a dense *ordinal*.

// Dense ordinal of a catalog channel, or -1 if `c` is not in the catalog.
[[nodiscard]] int ordinal(const Channel& c);
// Number of catalog channels (valid ordinals are [0, catalog_size())).
[[nodiscard]] std::size_t catalog_size();
[[nodiscard]] const Channel& by_ordinal(int ord);

// The b-wide channel containing `c`'s primary 20 MHz sub-channel; degrades
// to the primary 20 when no bonded container exists (e.g. 2.4 GHz).
[[nodiscard]] Channel sub_channel(const Channel& c, ChannelWidth b);
// Memoized sub_channel over catalog ordinals (always a valid ordinal).
[[nodiscard]] int sub_channel_ordinal(int ord, ChannelWidth b);

// Precomputed Channel::overlaps over catalog ordinals.
[[nodiscard]] bool overlaps_ordinal(int a, int b);

// ---- flat scoring-kernel tables -----------------------------------------
// The batched NodeP kernel (DESIGN.md §14) walks candidate blocks with no
// per-candidate geometry calls: overlap tests collapse to one bit probe in
// a per-ordinal mask and sub-channel resolution to one row read. The whole
// catalog fits in 64 ordinals by construction (static-checked at build).

// Upper bound on catalog_size(): lets overlap sets live in one uint64 and
// kernel scratch live on the stack.
inline constexpr std::size_t kMaxCatalogOrdinals = 64;

// Bit `b` of overlap_mask(a) is overlaps_ordinal(a, b).
[[nodiscard]] std::uint64_t overlap_mask(int ord);
// The full mask table, indexed by ordinal (size catalog_size()).
[[nodiscard]] const std::uint64_t* overlap_masks();

// Row-major (ordinal, width) -> sub-channel ordinal table with stride
// sub_channel_stride(); sub_channel_table()[ord * stride + w] equals
// sub_channel_ordinal(ord, ChannelWidth(w)).
[[nodiscard]] const std::int16_t* sub_channel_table();
[[nodiscard]] std::size_t sub_channel_stride();

}  // namespace channels

}  // namespace w11
