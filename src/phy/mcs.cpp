#include "phy/mcs.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace w11::mcs {

namespace {

// Data subcarriers per channel width.
int data_subcarriers(ChannelWidth w) {
  switch (w) {
    case ChannelWidth::MHz20: return 52;
    case ChannelWidth::MHz40: return 108;
    case ChannelWidth::MHz80: return 234;
    case ChannelWidth::MHz160: return 468;
  }
  return 52;
}

// Coded bits per subcarrier × coding rate, i.e. information bits carried by
// one data subcarrier in one symbol, per spatial stream.
double info_bits_per_subcarrier(int mcs_value) {
  switch (mcs_value) {
    case 0: return 0.5;        // BPSK 1/2
    case 1: return 1.0;        // QPSK 1/2
    case 2: return 1.5;        // QPSK 3/4
    case 3: return 2.0;        // 16-QAM 1/2
    case 4: return 3.0;        // 16-QAM 3/4
    case 5: return 4.0;        // 64-QAM 2/3
    case 6: return 4.5;        // 64-QAM 3/4
    case 7: return 5.0;        // 64-QAM 5/6
    case 8: return 6.0;        // 256-QAM 3/4
    case 9: return 20.0 / 3.0; // 256-QAM 5/6
    default: return 0.0;
  }
}

}  // namespace

bool valid(McsIndex idx, ChannelWidth width) {
  if (idx.mcs < 0 || idx.mcs > kMaxMcs) return false;
  if (idx.nss < 1 || idx.nss > kMaxNss) return false;
  // Standard exclusions (802.11ac Table 21-29 ff.) for nss ≤ 4:
  // 20 MHz: MCS9 defined only for nss = 3.
  if (width == ChannelWidth::MHz20 && idx.mcs == 9 && idx.nss != 3) return false;
  // 80 MHz: MCS6 undefined for nss = 3.
  if (width == ChannelWidth::MHz80 && idx.mcs == 6 && idx.nss == 3) return false;
  // 160 MHz: MCS9 undefined for nss = 3.
  if (width == ChannelWidth::MHz160 && idx.mcs == 9 && idx.nss == 3) return false;
  return true;
}

std::optional<RateMbps> rate(McsIndex idx, ChannelWidth width, bool short_gi) {
  if (!valid(idx, width)) return std::nullopt;
  const double symbol_us = short_gi ? 3.6 : 4.0;
  const double bits_per_symbol =
      data_subcarriers(width) * info_bits_per_subcarrier(idx.mcs) * idx.nss;
  return RateMbps{bits_per_symbol / symbol_us};
}

Db min_snr(McsIndex idx) {
  // Representative receiver sensitivity deltas; MIMO streams need extra SNR
  // for stream separation (~3 dB per additional stream).
  static constexpr double kBase[] = {5.0, 8.0, 11.0, 14.0, 17.5,
                                     21.5, 23.0, 24.5, 28.5, 30.5};
  W11_CHECK(idx.mcs >= 0 && idx.mcs <= kMaxMcs);
  return kBase[idx.mcs] + 3.0 * (idx.nss - 1);
}

std::optional<McsIndex> select(Db snr, ChannelWidth width, int max_nss) {
  std::optional<McsIndex> best;
  RateMbps best_rate{0.0};
  const int nss_cap = std::clamp(max_nss, 1, kMaxNss);
  for (int nss = 1; nss <= nss_cap; ++nss) {
    for (int m = 0; m <= kMaxMcs; ++m) {
      const McsIndex idx{m, nss};
      if (!valid(idx, width)) continue;
      if (snr < min_snr(idx)) continue;
      const auto r = rate(idx, width, /*short_gi=*/true);
      if (r && *r > best_rate) {
        best_rate = *r;
        best = idx;
      }
    }
  }
  return best;
}

double packet_error_rate(McsIndex idx, Db snr, int mpdu_bytes) {
  // Sigmoid PER curve centred slightly below the selection threshold: at the
  // threshold a 1500 B MPDU sees ≈8 % PER, improving ~an order of magnitude
  // per 2 dB. Longer frames are proportionally more exposed.
  const double margin = snr - (min_snr(idx) - 1.0);
  const double per_1500 = 1.0 / (1.0 + std::exp(1.35 * margin));
  const double scale = std::max(1, mpdu_bytes) / 1500.0;
  const double per = 1.0 - std::pow(1.0 - std::min(per_1500, 0.999), scale);
  return std::clamp(per, 0.0, 1.0);
}

RateMbps max_rate(const Capability& a, const Capability& b) {
  const ChannelWidth width = std::min(a.max_width, b.max_width);
  const int nss = std::min(a.max_nss, b.max_nss);
  const int mcs_cap = std::min(a.max_mcs, b.max_mcs);
  const bool sgi = a.short_gi && b.short_gi;
  RateMbps best{0.0};
  for (int m = 0; m <= mcs_cap; ++m) {
    const auto r = rate(McsIndex{m, nss}, width, sgi);
    if (r && *r > best) best = *r;
  }
  return best;
}

}  // namespace w11::mcs
