#pragma once
// VHT (802.11ac) MCS rate table and SNR-driven rate selection.
//
// Data rate derivation follows the standard: rate = N_sd * bits_per_sc *
// N_ss / T_sym, with N_sd ∈ {52, 108, 234, 468} data subcarriers for
// 20/40/80/160 MHz and T_sym = 3.6 µs (short GI) or 4.0 µs (long GI).
// A handful of (MCS, width, N_ss) combinations are invalid per the standard
// and excluded here.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "phy/channel.hpp"

namespace w11 {

struct McsIndex {
  int mcs = 0;   // VHT MCS 0..9
  int nss = 1;   // spatial streams 1..4 (our hardware models top out at 4)
  friend constexpr auto operator<=>(const McsIndex&, const McsIndex&) = default;
};

namespace mcs {

inline constexpr int kMaxMcs = 9;
inline constexpr int kMaxNss = 4;

// True if the standard defines this (mcs, width, nss) combination.
[[nodiscard]] bool valid(McsIndex idx, ChannelWidth width);

// PHY data rate; std::nullopt for invalid combinations.
[[nodiscard]] std::optional<RateMbps> rate(McsIndex idx, ChannelWidth width,
                                           bool short_gi);

// Minimum SNR (dB) at which `idx` is usable at acceptable error rates.
// Width does not enter: SNR is computed against a width-dependent noise
// floor, so the thresholds are width-invariant.
[[nodiscard]] Db min_snr(McsIndex idx);

// Highest-rate valid MCS supported at `snr` with at most `max_nss` streams;
// std::nullopt if even MCS0/1ss is not sustainable (snr below threshold).
[[nodiscard]] std::optional<McsIndex> select(Db snr, ChannelWidth width, int max_nss);

// Packet error rate for an MPDU of `mpdu_bytes` sent with `idx` at `snr`.
// Smooth sigmoid in SNR around the MCS threshold, scaled with frame length.
[[nodiscard]] double packet_error_rate(McsIndex idx, Db snr, int mpdu_bytes);

// The maximum PHY rate two peers can use given both sides' capabilities.
struct Capability {
  ChannelWidth max_width = ChannelWidth::MHz80;
  int max_nss = 1;
  int max_mcs = kMaxMcs;
  bool short_gi = true;
};
[[nodiscard]] RateMbps max_rate(const Capability& a, const Capability& b);

}  // namespace mcs

}  // namespace w11
