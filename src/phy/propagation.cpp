#include "phy/propagation.hpp"

#include <algorithm>
#include <bit>

namespace w11 {

namespace {

// Deterministic per-link shadowing: hash the unordered endpoint pair into a
// standard-normal-ish value via two rounds of splitmix64 + Box-Muller.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double link_shadow_normal(const Position& a, const Position& b) {
  auto quantize = [](double v) {
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(v * 100.0));
  };
  // Order-independent combination so shadowing is symmetric.
  const std::uint64_t ha = splitmix64(quantize(a.x) * 0x100000001B3ull ^ quantize(a.y));
  const std::uint64_t hb = splitmix64(quantize(b.x) * 0x100000001B3ull ^ quantize(b.y));
  const std::uint64_t h = splitmix64(ha ^ hb);
  const std::uint64_t h2 = splitmix64(h);
  const double u1 = (static_cast<double>(h >> 11) + 0.5) / 9007199254740992.0;
  const double u2 = (static_cast<double>(h2 >> 11) + 0.5) / 9007199254740992.0;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

Db PropagationModel::path_loss(const Position& a, const Position& b, Band band) const {
  const double d = std::max(distance_m(a, b), 1.0);
  const Db ref = (band == Band::G2_4) ? ref_loss_2g : ref_loss_5g;
  Db loss = ref + 10.0 * exponent * std::log10(d);
  if (shadowing_sigma > 0.0) loss += shadowing_sigma * link_shadow_normal(a, b);
  return std::max(loss, ref);  // never below free-space reference
}

Dbm PropagationModel::rssi(Dbm tx_power, const Position& a, const Position& b,
                           Band band) const {
  return tx_power - path_loss(a, b, band);
}

Dbm PropagationModel::noise_floor(ChannelWidth width) const {
  return noise_floor_20mhz + 10.0 * std::log10(width_mhz(width) / 20.0);
}

Db PropagationModel::snr(Dbm tx_power, const Position& a, const Position& b,
                         Band band, ChannelWidth width) const {
  return rssi(tx_power, a, b, band) - noise_floor(width);
}

}  // namespace w11
