#pragma once
// Radio propagation: log-distance path loss with per-link lognormal
// shadowing, RSSI and SNR computation.
//
// The shadowing term is derived deterministically from the endpoint
// positions so a given link always sees the same loss — this keeps scan
// reports, channel plans and tests reproducible without threading an Rng
// through every RSSI query.

#include <cmath>
#include <cstdint>

#include "common/units.hpp"
#include "phy/channel.hpp"

namespace w11 {

struct Position {
  double x = 0.0;  // metres
  double y = 0.0;
  friend constexpr auto operator<=>(const Position&, const Position&) = default;
};

[[nodiscard]] inline double distance_m(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

struct PropagationModel {
  // Reference path loss at 1 m. 5 GHz attenuates ≈6 dB more than 2.4 GHz.
  Db ref_loss_2g = 40.0;
  Db ref_loss_5g = 46.4;
  // Path-loss exponent; ≈3 models indoor office with walls.
  double exponent = 3.0;
  // Lognormal shadowing standard deviation (dB). 0 disables shadowing.
  Db shadowing_sigma = 4.0;
  // Thermal noise for 20 MHz; widens with channel bandwidth.
  Dbm noise_floor_20mhz = -95.0;

  [[nodiscard]] Db path_loss(const Position& a, const Position& b, Band band) const;
  [[nodiscard]] Dbm rssi(Dbm tx_power, const Position& a, const Position& b,
                         Band band) const;
  [[nodiscard]] Dbm noise_floor(ChannelWidth width) const;
  [[nodiscard]] Db snr(Dbm tx_power, const Position& a, const Position& b,
                       Band band, ChannelWidth width) const;
};

// Standard AP/client transmit powers used throughout the models.
inline constexpr Dbm kApTxPowerDbm = 20.0;
inline constexpr Dbm kClientTxPowerDbm = 15.0;
// Below this RSSI a frame is undetectable (also the carrier-sense floor).
inline constexpr Dbm kSensitivityDbm = -90.0;

}  // namespace w11
