#include "scenario/fleet_harness.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ctrl/fanout.hpp"
#include "phy/channel.hpp"
#include "telemetry/fleet_ingest.hpp"

namespace w11::scenario {

namespace {

// Spectrum snapshot for one AP: a few occupied 20 MHz components with
// external utilization and quality, plus the measured current-channel
// utilization. Shared by generation and churn so a churned AP's fields are
// statistically identical to a fresh one.
void roll_spectrum(ApScan& s, const std::vector<Channel>& comps, Rng& rng) {
  s.external_util.clear();
  s.quality.clear();
  const int occupied = static_cast<int>(rng.uniform_int(2, 4));
  for (int k = 0; k < occupied; ++k) {
    const int num = comps[rng.index(comps.size())].number;
    s.external_util[num] = rng.uniform(0.0, 0.4);
    s.quality[num] = rng.uniform(0.6, 1.0);
  }
  s.utilization_current = rng.uniform(0.0, 0.5);
}

}  // namespace

std::vector<ApScan> make_fleet_scans(const FleetPopulationConfig& cfg,
                                     Time taken_at) {
  W11_CHECK(cfg.campuses > 0 && cfg.aps_min > 0 && cfg.aps_max >= cfg.aps_min);
  const Rng root(cfg.seed);
  const std::vector<Channel> cands =
      channels::candidate_set(cfg.band, ChannelWidth::MHz40, false);
  const std::vector<Channel> comps =
      channels::us_catalog(cfg.band, ChannelWidth::MHz20);

  // Pass 1: campus sizes (so ids can be assigned densely in campus order).
  std::vector<int> sizes(static_cast<std::size_t>(cfg.campuses));
  std::size_t total = 0;
  for (int c = 0; c < cfg.campuses; ++c) {
    Rng crng = root.fork(static_cast<std::uint64_t>(c));
    sizes[static_cast<std::size_t>(c)] =
        static_cast<int>(crng.uniform_int(cfg.aps_min, cfg.aps_max));
    total += static_cast<std::size_t>(sizes[static_cast<std::size_t>(c)]);
  }

  std::vector<ApScan> scans;
  scans.reserve(total);
  std::vector<std::uint32_t> base(static_cast<std::size_t>(cfg.campuses));
  std::uint32_t next_id = 0;
  for (int c = 0; c < cfg.campuses; ++c) {
    base[static_cast<std::size_t>(c)] = next_id;
    // Re-fork so the size draw above doesn't shift the content stream.
    Rng crng = root.fork(static_cast<std::uint64_t>(c)).fork(1);
    const int n = sizes[static_cast<std::size_t>(c)];
    for (int i = 0; i < n; ++i) {
      ApScan s;
      s.id = ApId(next_id + static_cast<std::uint32_t>(i));
      s.band = cfg.band;
      s.current = cands[crng.index(cands.size())];
      s.max_width = ChannelWidth::MHz80;
      s.has_clients = crng.bernoulli(0.7);
      s.dfs_capable = true;
      s.load_by_width[ChannelWidth::MHz20] = crng.uniform(0.05, 0.3);
      if (crng.bernoulli(0.5))
        s.load_by_width[ChannelWidth::MHz40] = crng.uniform(0.05, 0.4);
      roll_spectrum(s, comps, crng);
      s.taken_at = taken_at;
      scans.push_back(std::move(s));
    }

    // Contender chain backbone: i <-> i+1 at well-above-floor RSSI keeps
    // the campus one connected component.
    for (int i = 0; i + 1 < n; ++i) {
      const Dbm rssi = crng.uniform(-78.0, -50.0);
      const std::uint32_t a = next_id + static_cast<std::uint32_t>(i);
      const std::uint32_t b = a + 1;
      scans[a].neighbors.push_back(NeighborReport{ApId(b), rssi});
      scans[b].neighbors.push_back(NeighborReport{ApId(a), rssi});
    }
    if (cfg.shape == FleetPopulationConfig::Shape::kClustered && n > 3) {
      // Random in-campus cross links (~n/3 extra edges).
      for (int e = 0; e < n / 3; ++e) {
        const auto i = static_cast<std::uint32_t>(crng.index(
            static_cast<std::size_t>(n)));
        const auto j = static_cast<std::uint32_t>(crng.index(
            static_cast<std::size_t>(n)));
        if (i == j) continue;
        const Dbm rssi = crng.uniform(-82.0, -55.0);
        scans[next_id + i].neighbors.push_back(
            NeighborReport{ApId(next_id + j), rssi});
        scans[next_id + j].neighbors.push_back(
            NeighborReport{ApId(next_id + i), rssi});
      }
    }
    next_id += static_cast<std::uint32_t>(n);
  }

  // Sub-floor cross-campus reports: audible, but below the contender floor
  // — the partitioner must NOT merge across these.
  if (cfg.cross_campus_subfloor > 0.0 && cfg.campuses > 1) {
    Rng xrng = root.fork(0xC0FFEEULL);
    for (std::size_t i = 0; i < scans.size(); ++i) {
      if (!xrng.bernoulli(cfg.cross_campus_subfloor)) continue;
      const std::size_t j = xrng.index(scans.size());
      if (scans[j].id == scans[i].id) continue;
      scans[i].neighbors.push_back(
          NeighborReport{scans[j].id, xrng.uniform(-99.0, -90.0)});
    }
  }
  return scans;
}

void churn_spectrum(std::vector<ApScan>& scans, double fraction,
                    std::uint64_t seed) {
  if (fraction <= 0.0) return;
  const Rng root(seed);
  const std::vector<Channel> comps = scans.empty()
      ? std::vector<Channel>{}
      : channels::us_catalog(scans.front().band, ChannelWidth::MHz20);
  for (std::size_t i = 0; i < scans.size(); ++i) {
    Rng arng = root.fork(i);
    if (!arng.bernoulli(fraction)) continue;
    roll_spectrum(scans[i], comps, arng);
  }
}

fleet::DeltaEpoch evolve_population(std::vector<ApScan>& scans,
                                    const FleetPopulationConfig& pop,
                                    double spectrum_fraction,
                                    double member_fraction, std::uint64_t seed,
                                    std::uint32_t& next_id, Time base_at,
                                    Time now) {
  fleet::DeltaEpoch d;
  d.taken_at = now;
  d.base_taken_at = base_at;
  const Rng root(seed);
  const std::vector<Channel> comps =
      channels::us_catalog(pop.band, ChannelWidth::MHz20);
  const std::vector<Channel> cands =
      channels::candidate_set(pop.band, ChannelWidth::MHz40, false);

  // Removals first (an AP picked for both removal and spectrum churn is
  // simply removed). Per-position coins on independent streams, so the
  // draw for AP i never shifts with fleet size or other churn.
  std::vector<std::size_t> removed_pos;
  if (member_fraction > 0.0) {
    const Rng mroot = root.fork(0xD00DULL);
    for (std::size_t i = 0; i < scans.size(); ++i)
      if (mroot.fork(i).bernoulli(member_fraction)) removed_pos.push_back(i);
    // Never empty the census entirely.
    if (removed_pos.size() == scans.size() && !removed_pos.empty())
      removed_pos.pop_back();
  }
  std::vector<bool> removed(scans.size(), false);
  for (const std::size_t i : removed_pos) removed[i] = true;

  // Spectrum churn on survivors; touched scans are restamped and become
  // the delta's updated set.
  if (spectrum_fraction > 0.0) {
    for (std::size_t i = 0; i < scans.size(); ++i) {
      if (removed[i]) continue;
      Rng arng = root.fork(i);
      if (!arng.bernoulli(spectrum_fraction)) continue;
      roll_spectrum(scans[i], comps, arng);
      scans[i].taken_at = now;
      d.updated.push_back(scans[i]);
    }
  }

  // Erase removals (descending, positions stay valid; ids stay ascending).
  for (const std::size_t i : removed_pos) d.removed.push_back(scans[i].id);
  for (auto it = removed_pos.rbegin(); it != removed_pos.rend(); ++it)
    scans.erase(scans.begin() + static_cast<std::ptrdiff_t>(*it));

  // Additions replace removals 1:1, with fresh ids above everything ever
  // issued. Edges are one-sided (the new AP reports the survivor) — enough
  // for the contender union, and it keeps the survivor's scan unchanged,
  // which is exactly the hard case for the controller's dirty marking.
  const Rng aroot = root.fork(0xADDEDULL);
  for (std::size_t k = 0; k < removed_pos.size(); ++k) {
    Rng arng = aroot.fork(k);
    ApScan s;
    s.id = ApId(next_id++);
    s.band = pop.band;
    s.current = cands[arng.index(cands.size())];
    s.max_width = ChannelWidth::MHz80;
    s.has_clients = arng.bernoulli(0.7);
    s.dfs_capable = true;
    s.load_by_width[ChannelWidth::MHz20] = arng.uniform(0.05, 0.3);
    if (arng.bernoulli(0.5))
      s.load_by_width[ChannelWidth::MHz40] = arng.uniform(0.05, 0.4);
    roll_spectrum(s, comps, arng);
    s.taken_at = now;
    if (!scans.empty()) {
      const double kind = arng.uniform(0.0, 1.0);
      if (kind < 0.45) {
        // Attach to one surviving AP (joins its campus).
        const std::size_t j = arng.index(scans.size());
        s.neighbors.push_back(
            NeighborReport{scans[j].id, arng.uniform(-75.0, -55.0)});
      } else if (kind < 0.75) {
        // Bridge two surviving APs (merges their campuses if distinct).
        const std::size_t j1 = arng.index(scans.size());
        const std::size_t j2 = arng.index(scans.size());
        s.neighbors.push_back(
            NeighborReport{scans[j1].id, arng.uniform(-75.0, -55.0)});
        if (scans[j2].id != scans[j1].id)
          s.neighbors.push_back(
              NeighborReport{scans[j2].id, arng.uniform(-75.0, -55.0)});
      }
      // else: singleton campus.
    }
    d.added.push_back(s);
    scans.push_back(std::move(s));
  }
  return d;
}

FleetScenarioResult run_fleet_scenario(const FleetScenarioConfig& cfg) {
  FleetScenarioResult res;
  fleet::FleetController controller(cfg.controller);
  ctrl::PlanFanout fanout;
  telemetry::FleetIngest ingest;
  if (cfg.telemetry_max_age > Time{0})
    ingest.ap_stats().set_retention(
        telemetry::LittleTable::Retention{cfg.telemetry_max_age, 0});

  controller.set_plan_sink([&](const fleet::CampusPlanOutput& out) {
    res.plan_seconds.push_back(out.plan_seconds);
    res.netp_log_sum += out.netp_log;
    if (cfg.attach_ctrl)
      fanout.commit(out.campus_key, out.plan, out.netp_log, out.planned_at);
    if (cfg.attach_telemetry)
      ingest.ingest_plan(out.campus_key, out.planned_at, out.n_aps,
                         out.netp_log, out.improved, out.plan_seconds);
  });

  // One local census is the single source of truth for both replay modes:
  // evolve_population mutates it in place and describes the change as a
  // DeltaEpoch; the controller is fed either the delta or a full copy.
  std::vector<ApScan> scans = make_fleet_scans(cfg.population, Time{});
  std::uint32_t next_id =
      scans.empty() ? 0 : scans.back().id.value() + 1;
  Time last_at{};
  for (int p = 0; p < cfg.polls; ++p) {
    const Time t = time::nanos((p + 1) * cfg.poll.ns());
    fleet::DeltaEpoch delta;
    if (p == 0) {
      // First sighting is always a full census.
      for (ApScan& s : scans) s.taken_at = t;
      controller.offer_epoch(fleet::ScanEpoch{t, scans});
    } else {
      delta = evolve_population(
          scans, cfg.population, cfg.churn_fraction, cfg.member_churn,
          cfg.population.seed ^ static_cast<std::uint64_t>(p), next_id,
          last_at, t);
      if (cfg.use_deltas) {
        controller.offer_delta(delta);
      } else {
        controller.offer_epoch(fleet::ScanEpoch{t, scans});
      }
    }
    controller.tick(t);
    last_at = t;
    if (cfg.attach_telemetry) {
      // Per-poll pipeline health: queue high-waters and drop/defer deltas
      // land in the metrics registry (eagerly registered — quiet polls
      // still report zeros).
      ingest.ingest_pipeline(controller.ingest_stats(),
                             controller.output_stats(),
                             controller.stats().jobs_deferred);
    }
    if (cfg.attach_telemetry) {
      // O(churn) telemetry fan-out: only campuses the poll touched land
      // rows this interval (the first full census polls everyone). The
      // touched set is derived from the delta in *both* replay modes, so
      // row counts match between them.
      if (p == 0) {
        controller.for_each_campus(
            [&](std::uint32_t key, const std::vector<ApScan>& campus) {
              ingest.ingest_scans(key, campus, t);
            });
      } else {
        std::vector<std::uint32_t> touched;
        const auto note = [&](ApId id) {
          if (const auto key = controller.campus_of(id)) touched.push_back(*key);
        };
        for (const ApScan& s : delta.added) note(s.id);
        for (const ApScan& s : delta.updated) note(s.id);
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
        for (const std::uint32_t key : touched)
          if (const std::vector<ApScan>* campus = controller.campus_scans(key))
            ingest.ingest_scans(key, *campus, t);
      }
    }
  }

  res.fleet_aps = controller.fleet_aps();
  res.campuses = controller.campus_count();
  res.digest = controller.plan_digest();
  res.final_plan = controller.fleet_plan();
  res.stats = controller.stats();
  res.health = controller.health();
  res.ingest_queue = controller.ingest_stats();
  res.output_queue = controller.output_stats();
  res.plans_committed = fanout.stats().plans_committed;
  res.ctrl_campuses = fanout.stats().campuses_seen;
  res.telemetry_rows = ingest.rows_ingested();
  res.telemetry_trimmed = ingest.ap_stats().rows_trimmed();
  return res;
}

}  // namespace w11::scenario
