#pragma once
// Fleet-scale scenario: a synthetic continental AP population driven
// through the full sharded planning pipeline (DESIGN.md §15) —
//
//   make_fleet_scans -> FleetController (partition / cadence / TaskPool
//   shards / bounded queues) -> ctrl::PlanFanout (per-campus PlanStores)
//   + telemetry::FleetIngest (batched per-campus LittleTable appends)
//
// The population generator builds scan epochs directly (no flowsim
// Network): at 100k+ APs what the fleet layer consumes is the census, and
// synthesizing it keeps population setup O(n) and byte-deterministic.
// Campuses are internally connected contender graphs with *no* cross-campus
// contender edges — sub-floor cross-campus neighbor reports can be mixed in
// to exercise the partitioner's RSSI-floor rule — so the generated campus
// count is ground truth for the partition.

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "fleet/controller.hpp"
#include "flowsim/scan.hpp"

namespace w11::scenario {

struct FleetPopulationConfig {
  int campuses = 16;
  int aps_min = 8;
  int aps_max = 24;
  Band band = Band::G5;
  // kChain: each campus is one RSSI chain (minimal edges, ground truth for
  // partition tests). kClustered: chain backbone plus random in-campus
  // cross links (denser contention, the bench shape).
  enum class Shape { kChain, kClustered };
  Shape shape = Shape::kClustered;
  // Fraction of APs that also report a neighbor in *another* campus at
  // sub-floor RSSI (must not merge campuses; 0 disables).
  double cross_campus_subfloor = 0.25;
  std::uint64_t seed = 1;
};

// One population census. Byte-deterministic in (cfg, taken_at); ids are
// dense [0, n) in campus order, so campus keys are the id of each campus's
// first AP.
[[nodiscard]] std::vector<ApScan> make_fleet_scans(
    const FleetPopulationConfig& cfg, Time taken_at);

// Deterministic per-poll spectrum churn: re-roll external_util/quality (and
// the measured utilization) on ~`fraction` of APs, keyed by (seed, AP
// position). Topology and ids are untouched, so partitions are stable and
// the unchurned majority hits the spectrum-aggregate caches.
void churn_spectrum(std::vector<ApScan>& scans, double fraction,
                    std::uint64_t seed);

// One poll's worth of deterministic population churn, applied to the
// producer's local census in place and described as a DeltaEpoch against
// it. Three kinds of change, all keyed by (seed, position / ordinal):
//
//   * spectrum churn on ~spectrum_fraction of surviving APs (taken_at
//     restamped to `now` on exactly the touched scans);
//   * removals on ~member_fraction of APs — their neighbors keep their now
//     dangling reports, exercising the controller's ghost bookkeeping;
//   * additions replacing removals 1:1 with fresh monotonically increasing
//     ids (`next_id` threads through polls): a mix of singletons, APs
//     attaching to one surviving AP, and APs bridging two — the latter can
//     merge campuses, so delta replay exercises re-keying.
//
// `scans` stays id-ascending throughout. The same census trajectory can be
// offered as full ScanEpochs or as the returned deltas; the controller
// must produce byte-identical plan streams either way.
[[nodiscard]] fleet::DeltaEpoch evolve_population(
    std::vector<ApScan>& scans, const FleetPopulationConfig& pop,
    double spectrum_fraction, double member_fraction, std::uint64_t seed,
    std::uint32_t& next_id, Time base_at, Time now);

struct FleetScenarioConfig {
  FleetPopulationConfig population;
  fleet::FleetController::Config controller;
  int polls = 3;
  Time poll = time::minutes(15);
  double churn_fraction = 0.25;  // spectrum churn per poll
  double member_churn = 0.0;     // AP add/remove fraction per poll
  // After the first full census, offer DeltaEpochs instead of full
  // ScanEpochs. The census trajectory is identical either way (the same
  // evolve_population stream drives both), so the plan digest must match.
  bool use_deltas = false;
  bool attach_ctrl = true;       // fan plans out into per-campus PlanStores
  bool attach_telemetry = true;  // batched per-campus LittleTable ingest
  Time telemetry_max_age{0};     // retention on the fleet AP table (0 = off)
};

struct FleetScenarioResult {
  std::size_t fleet_aps = 0;
  std::size_t campuses = 0;
  std::uint64_t digest = 0;       // worker-count byte-equivalence witness
  ChannelPlan final_plan;
  double netp_log_sum = 0.0;      // folded in delivery order (deterministic)
  fleet::FleetController::Stats stats;
  fleet::FleetController::Health health;  // end-of-run pipeline health
  fleet::QueueStats ingest_queue;
  fleet::QueueStats output_queue;
  std::vector<double> plan_seconds;  // per delivered campus plan
  std::uint64_t plans_committed = 0;     // via PlanFanout
  std::uint64_t ctrl_campuses = 0;       // PlanStores created
  std::uint64_t telemetry_rows = 0;      // AP rows bulk-appended
  std::uint64_t telemetry_trimmed = 0;   // rows dropped by retention
};

[[nodiscard]] FleetScenarioResult run_fleet_scenario(
    const FleetScenarioConfig& cfg);

}  // namespace w11::scenario
