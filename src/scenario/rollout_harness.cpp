#include "scenario/rollout_harness.hpp"

#include <cmath>
#include <limits>

#include "core/turboca/service.hpp"
#include "ctrl/plan_store.hpp"
#include "fault/scan_fault.hpp"
#include "obs/gate.hpp"
#include "sim/simulator.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/littletable.hpp"
#include "workload/topology.hpp"

#if W11_OBS
#include "obs/audit.hpp"
#include "obs/health/flight_recorder.hpp"
#include "obs/health/health.hpp"
#include "obs/health/health_bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#endif

namespace w11::scenario {

RolloutScenarioResult run_rollout_scenario(const RolloutScenarioConfig& cfg) {
  RolloutScenarioResult out;

  workload::CampusConfig cc;
  cc.n_aps = cfg.n_aps;
  cc.seed = cfg.net_seed;
  auto net = workload::make_campus(cc);

  Simulator sim;
  ctrl::ControlChannel chan(sim, cfg.channel, cfg.ctrl_seed, cfg.n_aps);
  ctrl::PlanApplier applier(
      sim, chan, cfg.backoff,
      ctrl::PlanApplier::Hooks{[&](std::uint32_t ap, const Channel& c) {
        return net->apply_channel(ApId{ap}, c);
      }},
      cfg.ctrl_seed * 131 + 7);
  ctrl::PlanStore store;
  telemetry::NetworkCollector coll;
  if (cfg.telemetry_max_age > Time{0})
    coll.ap_stats().set_retention({cfg.telemetry_max_age, 0});

  // --- planner service, its plan output redirected into the store --------
  // The service believes it applied a plan; what actually happened is a
  // version commit. The controller tick below starts the staged rollout,
  // and only the applier's acked commands touch the network.
  std::uint64_t pending_version = 0;
  turboca::NetworkHooks inner;
  inner.scan = [&] { return net->scan(); };
  inner.current_plan = [&] { return net->current_plan(); };
  turboca::TurboCaService::Schedule sched;
  sched.max_scan_age = time::hours(1);
  // Declared before the service so the hook can reference it; filled after
  // the service exists (the commit needs its last_netp_log).
  turboca::TurboCaService* svc_ptr = nullptr;
  inner.apply_plan = [&](const ChannelPlan& p) {
    pending_version =
        store.commit(p, svc_ptr->stats().last_netp_log, sim.now());
  };
  fault::DegradedScanHooks deg(inner, [&] { return sim.now(); },
                               Rng(cfg.net_seed * 31 + 7));
  turboca::TurboCaService svc({}, sched, deg.hooks(), Rng(cfg.net_seed));
  svc_ptr = &svc;
  if (cfg.pool != nullptr) svc.engine().set_pool(cfg.pool);

  // --- rollout coordinator ------------------------------------------------
  ctrl::RolloutCoordinator::Hooks rh;
  rh.netp_log = [&] { return svc.stats().last_netp_log; };
  rh.mean_utilization = [&](Time from, Time to) {
    if (from < Time{0}) from = Time{0};
    const telemetry::LittleTable& t = coll.ap_stats();
    const double n = t.aggregate_scalar(
        "utilization", telemetry::LittleTable::Agg::kCount, from, to);
    if (n <= 0.0) return std::numeric_limits<double>::quiet_NaN();
    return t.aggregate_scalar("utilization",
                              telemetry::LittleTable::Agg::kMean, from, to);
  };
  rh.request_replan = [&] { svc.request_replan(); };
  rh.channel_of = [&](std::uint32_t ap) { return net->aps()[ap].channel; };
  ctrl::RolloutCoordinator coord(sim, applier, store, cfg.rollout,
                                 std::move(rh));

  // Bootstrap: the network's as-built plan is the first last-known-good —
  // there is always something safe to revert to.
  store.mark_good(store.commit(net->current_plan(), 0.0, Time{0}));

  // --- fleet health engine + flight recorder (cfg.health) ------------------
#if W11_OBS
  std::unique_ptr<obs::HealthEngine> health;
  std::unique_ptr<obs::FlightRecorder> recorder;
  obs::PlanAudit plan_audit;
  telemetry::LittleTable health_table = obs::make_fleet_health_table();
  std::uint64_t reverts_seen = 0;
  std::uint64_t pins_seen = 0;
  if (cfg.health) {
    // A health run owns the process-global tracer/metrics registries:
    // reset both so bundle bytes depend only on this scenario, bind the
    // tracer clock to sim time, and mask the two schedule-dependent
    // categories — the kSim firehose (per-lane ring overflow varies with
    // the schedule) and kPlanner (its batch events encode how scoring work
    // was sharded across workers). Planner *decisions* still reach the
    // postmortem worker-invariantly through the plan_audit section below.
    obs::tracer().clear();
    obs::tracer().set_enabled(true);
    obs::tracer().set_category_mask(
        obs::kAllCategories &
        ~obs::category_bit(obs::TraceCategory::kSim) &
        ~obs::category_bit(obs::TraceCategory::kPlanner));
    sim.set_tracer(&obs::tracer());
    obs::metrics().set_enabled(true);
    obs::metrics().reset_values();
    svc.engine().set_audit(&plan_audit);

    // SLO sheet (DESIGN.md §17). Series width = the poll cadence, so one
    // window aggregates exactly one tick's counter deltas. Any revert
    // inside the fast window pages: one bad poll in 5 is error 0.2 against
    // a 0.01 budget (burn 20 >= 2) and 1-in-30 over the slow window is
    // burn 3.3 >= 1 — and five quiet polls release the breach.
    obs::HealthEngine::Config hc;
    hc.series.width = cfg.poll;
    obs::SloSpec reverts;
    reverts.name = "rollout-reverts";
    reverts.sli = "ctrl.reverts";
    reverts.threshold = 0.0;  // bad poll = any revert observed in it
    reverts.objective = 0.99;
    reverts.fast_windows = 5;
    reverts.slow_windows = 30;
    reverts.fast_burn = 2.0;
    reverts.slow_burn = 1.0;
    reverts.severity = obs::Severity::kPage;
    hc.slos.push_back(reverts);
    obs::SloSpec drops;
    drops.name = "telemetry-drops";
    drops.sli = "telemetry.dropped";
    drops.threshold = 0.0;  // bad poll = any collector row dropped
    drops.objective = 0.95;
    drops.fast_windows = 5;
    drops.slow_windows = 30;
    drops.fast_burn = 2.0;
    drops.slow_burn = 1.0;
    drops.severity = obs::Severity::kTicket;
    hc.slos.push_back(drops);
    obs::SloSpec slow;
    slow.name = "convergence-slow";
    slow.sli = "ctrl.convergence_s";
    // A committed rollout taking more than half the watchdog budget is
    // living dangerously even though it converged.
    slow.threshold = 0.5 * cfg.rollout.watchdog.sec();
    slow.objective = 0.95;
    slow.fast_windows = 5;
    slow.slow_windows = 30;
    slow.fast_burn = 2.0;
    slow.slow_burn = 1.0;
    slow.severity = obs::Severity::kTicket;
    hc.slos.push_back(slow);
    health = std::make_unique<obs::HealthEngine>(std::move(hc));

    obs::FlightRecorder::Config fc;
    fc.ring_capacity = cfg.recorder_capacity;
    fc.window = cfg.health_window;
    fc.max_bundles = cfg.max_postmortems;
    recorder = std::make_unique<obs::FlightRecorder>(fc);
    recorder->attach_tracer(&obs::tracer());
    // Fixed catalog: snapshot rows have this exact shape at any worker
    // count, whatever order first-touch registration happened in.
    recorder->attach_metrics(
        &obs::metrics(),
        {"ctrl.applies", "ctrl.commands_sent", "ctrl.reverts", "ctrl.waves",
         "telemetry.records_dropped", "telemetry.records_written"});
    recorder->attach_source("rollout_audit",
                            [&coord](Time from, Time to, std::ostream& os) {
                              coord.audit().write_jsonl(os, from, to);
                            });
    // Planner picks carry no timestamps; the bounded audit (the last
    // max_picks decisions) dumps whole — that IS the trigger-window cut.
    recorder->attach_source("plan_audit",
                            [&plan_audit](Time, Time, std::ostream& os) {
                              plan_audit.write_jsonl(os);
                            });
  }
#endif

  // --- fault wiring --------------------------------------------------------
  fault::FaultHandlers fh;
  fh.radar = [&](int ap) {
    if (ap < 0 || ap >= cfg.n_aps) return;
    const Channel before = net->aps()[static_cast<std::size_t>(ap)].channel;
    net->radar_event(ApId{static_cast<std::uint32_t>(ap)});
    if (net->aps()[static_cast<std::size_t>(ap)].channel != before)
      coord.notify_radar(static_cast<std::uint32_t>(ap));
#if W11_OBS
    if (recorder != nullptr) {
      recorder->note(sim.now(), "fault.radar", ap);
      if (cfg.postmortem_on_fault)
        recorder->trigger(obs::Trigger::kFaultInjection, sim.now(), "radar");
    }
#endif
  };
  fh.link_down = [&](int link) {
    if (link >= 0 && link < cfg.n_aps)
      chan.set_online(static_cast<std::uint32_t>(link), false);
  };
  fh.link_up = [&](int link) {
    if (link >= 0 && link < cfg.n_aps)
      chan.set_online(static_cast<std::uint32_t>(link), true);
  };
  fh.ap_crash = [&](int ap) {
    // A rebooting AP is unreachable over the control channel for the
    // reboot window, then reconnects (apply-on-reconnect picks it up).
    if (ap < 0 || ap >= cfg.n_aps) return;
    const auto u = static_cast<std::uint32_t>(ap);
    chan.set_online(u, false);
    sim.schedule_after(cfg.crash_reboot, [&chan, u] {
      chan.set_online(u, true);
    });
  };
  fh.telemetry_drop = [&](int n) {
    coll.drop_next(n);
#if W11_OBS
    if (recorder != nullptr)
      recorder->note(sim.now(), "fault.telemetry_drop", n);
#endif
  };
  fh.scan_degrade = [&](fault::ScanFaultMode m, double keep) {
    deg.set_mode(m, keep);
  };
  fh.clock_jump = [&](Time back) {
    // The service observes a rewound clock; advance_to counts and ignores
    // it, so tier anchors (and fire-once semantics) survive.
    svc.advance_to(sim.now() - back);
  };
  fault::FaultInjector inj(cfg.faults, fh);
  inj.arm(sim);

  // --- the polling / controller tick --------------------------------------
  bool accepting = true;       // no new rollouts after the horizon
  std::uint64_t started_version = 0;
  std::uint64_t done_seen = 0;  // committed + reverted already tallied
  auto tick = [&] {
    const auto ev = net->evaluate();
    coll.record(*net, ev, sim.now());
    svc.advance_to(sim.now());
    const std::uint64_t done_now = coord.stats().committed +
                                   coord.stats().reverted;
    if (done_now > done_seen) {
      out.convergence_s.push_back(coord.last_convergence().sec());
#if W11_OBS
      if (health != nullptr)
        health->observe("ctrl.convergence_s", sim.now(),
                        coord.last_convergence().sec());
#endif
      done_seen = done_now;
    }
    if (accepting && !coord.active() && pending_version > started_version &&
        pending_version > store.last_known_good_version()) {
      if (coord.start(pending_version)) started_version = pending_version;
    }
#if W11_OBS
    if (health != nullptr) {
      // SLI adoption, flight-ring capture, SLO evaluation, postmortem
      // triggers — all on this serial tick, so every piece is exact.
      const Time now = sim.now();
      const ctrl::RolloutCoordinator::Stats& rs = coord.stats();
      health->observe_counter("ctrl.reverts", now,
                              static_cast<double>(rs.reverted));
      health->observe_counter("telemetry.dropped", now,
                              static_cast<double>(coll.records_dropped()));
      recorder->capture(now);
      const std::vector<obs::HealthEvent> hev = health->poll(now);
      obs::append_health_events(hev, health_table);
      for (const obs::HealthEvent& e : hev)
        if (e.breach && e.severity == obs::Severity::kPage)
          recorder->trigger(obs::Trigger::kSloBreach, now, e.name);
      if (rs.reverted > reverts_seen) {
        const bool wd =
            coord.revert_reason() == ctrl::RevertReason::kWatchdog;
        recorder->trigger(
            wd ? obs::Trigger::kWatchdog : obs::Trigger::kAutoRevert, now,
            ctrl::to_string(coord.revert_reason()));
        reverts_seen = rs.reverted;
      }
      if (rs.radar_pins > pins_seen) {
        recorder->trigger(obs::Trigger::kRadarPin, now, "radar-pin");
        pins_seen = rs.radar_pins;
      }
    }
#endif
  };
  PeriodicTimer poll(sim, cfg.poll, cfg.poll, tick);

  std::unique_ptr<PeriodicTimer> rearm;
  if (cfg.radar_rearm > Time{0})
    rearm = std::make_unique<PeriodicTimer>(sim, cfg.radar_rearm,
                                            cfg.radar_rearm,
                                            [&] { net->rearm_radar(); });

  sim.run_until(cfg.horizon);
  accepting = false;
  // Settle: let an in-flight rollout reach a terminal state. The poll timer
  // keeps the queue alive forever, so run in bounded chunks.
  const Time deadline = cfg.horizon + cfg.settle_limit;
  while (coord.active() && sim.now() < deadline)
    sim.run_until(sim.now() + cfg.poll);
  // One more tick's worth so a just-terminal rollout's convergence sample
  // is tallied by the loop above.
  sim.run_until(sim.now() + cfg.poll);

  // --- verdict -------------------------------------------------------------
  const ctrl::PlanVersion* good = store.last_known_good();
  out.half_applied = 0;
  for (const auto& ap : net->aps()) {
    if (coord.radar_pinned().contains(ap.id.value())) continue;
    const auto it = good->plan.find(ap.id);
    if (it == good->plan.end() || ap.channel != it->second) ++out.half_applied;
  }
  out.converged = !coord.active() && !applier.wave_active() &&
                  out.half_applied == 0;
  out.end_time = sim.now();
  out.audit_jsonl = coord.audit().jsonl();
  out.rollout = coord.stats();
  out.apply = applier.stats();
  out.channel = chan.stats();
  out.fault_stats = inj.stats();
  out.fault_log = inj.log();
  out.final_plan = net->current_plan();
  out.last_known_good = store.last_known_good_version();
  out.radar_duplicates = net->radar_duplicates();
  out.telemetry_rows = coll.ap_stats().row_count();
  out.telemetry_trimmed = coll.ap_stats().rows_trimmed();
  out.planner_runs = svc.stats().runs;
  out.requested_replans = svc.stats().requested_replans;
  out.rollout_health = coord.health();
#if W11_OBS
  if (health != nullptr) {
    out.postmortems = recorder->bundles();
    out.health_events_jsonl = health->events_jsonl();
    out.health_breaches = health->breaches();
    out.health_recoveries = health->recoveries();
    out.health_rows = health_table.row_count();
    out.recorder_dropped = recorder->entries_dropped();
    out.postmortems_dropped = recorder->bundles_dropped();
    // Release the process-global registries (the tracer would otherwise
    // keep a clock pointer into this function's dead Simulator).
    sim.set_tracer(nullptr);
    obs::tracer().set_enabled(false);
    obs::metrics().set_enabled(false);
    svc.engine().set_audit(nullptr);
  }
#endif
  return out;
}

}  // namespace w11::scenario
