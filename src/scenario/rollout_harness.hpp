#pragma once
// End-to-end plan-rollout scenario: a campus flowsim Network, the TurboCA
// service, the telemetry collector, and the src/ctrl/ rollout pipeline —
// all driven by one discrete-event Simulator with a FaultPlan armed on it.
//
// The loop closes exactly as the deployment's does (§2, §4.4.4):
//
//   scan → TurboCA plan → PlanStore.commit → RolloutCoordinator waves
//        → ControlChannel (lossy) → PlanApplier retries → Network switches
//        → collector rows → wave validation reads them back → commit/revert
//
// and the FaultPlan yanks on every joint at exact sim timestamps: control
// links flap mid-wave, radar lands mid-rollout, the collector drops the
// rows validation wants, the service clock rewinds. The chaos soak
// (tests/test_rollout.cpp) asserts the one invariant the subsystem exists
// for: whatever the fault plan did, the fleet converges — every AP ends on
// the rolled-out plan, the last-known-good, or its radar fallback, with the
// rollout audit byte-identical at any worker count.

#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "ctrl/applier.hpp"
#include "ctrl/control_channel.hpp"
#include "ctrl/rollout.hpp"
#include "exec/task_pool.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "flowsim/scan.hpp"

namespace w11::scenario {

struct RolloutScenarioConfig {
  int n_aps = 12;
  std::uint64_t net_seed = 1;
  std::uint64_t ctrl_seed = 99;  // control channel + backoff jitter streams
  Time horizon = time::hours(2);
  Time poll = time::minutes(1);  // collector + service + controller tick
  // Extra sim time allowed after the horizon for an in-flight rollout to
  // reach a terminal state (no new rollouts start past the horizon).
  Time settle_limit = time::hours(2);
  // DFS non-occupancy epoch: struck channels re-arm this often (Time{0} =
  // never re-arm within the run).
  Time radar_rearm = time::hours(1);
  // AP reboot duration after FaultKind::kApCrash (control link down).
  Time crash_reboot = time::seconds(30);
  fault::FaultPlan faults;
  ctrl::ControlChannel::Config channel;
  ctrl::Backoff backoff;
  ctrl::RolloutCoordinator::Config rollout;
  // Retention on the collector's ap_stats table (exercises trim under the
  // validation reads); max_rows 0 / max_age 0 = unbounded.
  Time telemetry_max_age = time::hours(1);
  exec::TaskPool* pool = nullptr;  // planner scoring pool; nullptr = global

  // --- fleet health engine + flight recorder (DESIGN.md §17) ---------------
  // When true (and the build has W11_OBS), the run stands up a HealthEngine
  // over the rollout SLIs (revert rate, telemetry drops, convergence), an
  // always-on FlightRecorder fed at every poll, and a planner decision
  // audit — and every auto-revert / watchdog / radar pin / paging SLO
  // breach dumps a postmortem bundle into Result::postmortems. Health runs
  // reset and take over the process-global tracer/metrics registries, so
  // they must not execute concurrently with other instrumented scenarios.
  bool health = false;
  Time health_window = time::minutes(5);  // postmortem lookback
  std::size_t recorder_capacity = 256;    // flight-ring entries
  std::size_t max_postmortems = 4;        // retained bundles (oldest evicted)
  // Also dump a bundle on every injected radar fault (not just ones that
  // land mid-rollout and pin). Off by default to keep bundle volume at one
  // per anomaly, not one per chaos event.
  bool postmortem_on_fault = false;
};

struct RolloutScenarioResult {
  // Convergence invariant: no rollout in flight at the end AND every AP is
  // on the last-known-good plan's channel or radar-pinned on its fallback.
  bool converged = false;
  int half_applied = 0;  // APs violating the invariant
  Time end_time{};
  std::string audit_jsonl;              // deterministic rollout audit
  std::vector<double> convergence_s;    // per completed rollout
  ctrl::RolloutCoordinator::Stats rollout;
  ctrl::PlanApplier::Stats apply;
  ctrl::ControlChannel::Stats channel;
  fault::InjectorStats fault_stats;
  std::vector<fault::FaultEvent> fault_log;  // determinism witness
  ChannelPlan final_plan;
  std::uint64_t last_known_good = 0;
  int radar_duplicates = 0;
  std::uint64_t telemetry_rows = 0;
  std::uint64_t telemetry_trimmed = 0;
  int planner_runs = 0;
  int requested_replans = 0;

  // --- health engine output (filled only when cfg.health && W11_OBS) ------
  // Plain types so the struct shape is identical in W11_OBS=0 builds.
  std::vector<std::string> postmortems;  // self-contained JSONL bundles
  std::string health_events_jsonl;       // breach/recovery event log
  std::uint64_t health_breaches = 0;
  std::uint64_t health_recoveries = 0;
  std::uint64_t health_rows = 0;         // fleet_health LittleTable rows
  std::uint64_t recorder_dropped = 0;    // flight-ring overflow evictions
  std::uint64_t postmortems_dropped = 0; // bundles evicted by max_postmortems
  ctrl::RolloutCoordinator::Health rollout_health;
};

[[nodiscard]] RolloutScenarioResult run_rollout_scenario(
    const RolloutScenarioConfig& cfg);

}  // namespace w11::scenario
