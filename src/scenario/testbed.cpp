#include "scenario/testbed.hpp"

#include <cmath>

#include "common/check.hpp"
#include "obs/gate.hpp"

#if W11_OBS
#include "obs/export.hpp"
#include "obs/trace.hpp"
#endif

namespace w11::scenario {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Testbed::Testbed(TestbedConfig cfg)
    : cfg_(cfg), sim_(cfg.engine), rng_(cfg.seed) {
  W11_CHECK(cfg_.n_aps >= 1);
  W11_CHECK(cfg_.n_clients_per_ap >= 1);
  medium_ = std::make_unique<mac::Medium>(sim_, cfg_.medium, rng_.fork());

  auto accel_of = [&](int ap_idx) -> TcpAccel {
    if (!cfg_.accel.empty()) {
      return cfg_.accel.size() == 1
                 ? cfg_.accel.front()
                 : cfg_.accel.at(static_cast<std::size_t>(ap_idx));
    }
    if (cfg_.fastack.empty()) return TcpAccel::kNone;
    const bool fa = cfg_.fastack.size() == 1
                        ? cfg_.fastack.front()
                        : cfg_.fastack.at(static_cast<std::size_t>(ap_idx));
    return fa ? TcpAccel::kFastAck : TcpAccel::kNone;
  };

  std::uint32_t next_station = 0;
  std::uint32_t next_flow = 0;

  for (int a = 0; a < cfg_.n_aps; ++a) {
    // APs are spaced 15 m apart on a line — close enough to share the
    // collision domain, like the two-AP deployment of §5.6.3.
    AccessPoint::Config ap_cfg;
    ap_cfg.id = ApId{static_cast<std::uint32_t>(a)};
    ap_cfg.pos = Position{15.0 * a, 0.0};
    ap_cfg.channel = cfg_.channel;
    ap_cfg.cap = cfg_.ap_cap;
    ap_cfg.prop = cfg_.prop;
    ap_cfg.rate_control = cfg_.rate_control;
    ap_cfg.bad_hint_rate = cfg_.bad_hint_rate;
    ap_cfg.rts_protected = cfg_.medium.rts_cts;
    ap_cfg.amsdu_max_msdus = cfg_.amsdu_max_msdus;
    auto ap = std::make_unique<AccessPoint>(sim_, *medium_, ap_cfg, rng_.fork());

    switch (accel_of(a)) {
      case TcpAccel::kFastAck:
        agents_.push_back(
            std::make_unique<fastack::FastAckAgent>(sim_, *ap, cfg_.agent));
        snoop_agents_.push_back(nullptr);
        ap->set_interceptor(agents_.back().get());
        break;
      case TcpAccel::kSnoop:
        agents_.push_back(nullptr);
        snoop_agents_.push_back(
            std::make_unique<snoop::SnoopAgent>(sim_, *ap, cfg_.snoop_cfg));
        ap->set_interceptor(snoop_agents_.back().get());
        break;
      case TcpAccel::kNone:
        agents_.push_back(nullptr);
        snoop_agents_.push_back(nullptr);
        break;
    }

    // Wired path: sender host <-> AP, one duplex GbE link pair per AP.
    AccessPoint* ap_raw = ap.get();
    down_links_.push_back(std::make_unique<WiredLink>(
        sim_, cfg_.wire, [ap_raw](TcpSegment seg) { ap_raw->wire_in(std::move(seg)); }));

    up_links_.push_back(std::make_unique<WiredLink>(
        sim_, cfg_.wire, [this](TcpSegment seg) {
          // Route the ACK to its sender by flow id.
          const std::size_t idx = seg.flow.value();
          if (idx < flows_.size() && flows_[idx].sender) {
            flows_[idx].sender->on_ack(seg);
          }
        }));
    WiredLink* up_raw = up_links_.back().get();
    ap->set_wire_out([up_raw](TcpSegment seg) { up_raw->send(std::move(seg)); });

    // Symmetric cells re-draw the same placement sequence for every AP.
    Rng cell_rng = cfg_.symmetric_cells ? Rng(cfg_.seed * 7919 + 13) : rng_.fork();
    for (int c = 0; c < cfg_.n_clients_per_ap; ++c) {
      // Even angular spread, uniform-area radial distance.
      const double angle = 2.0 * kPi * c / cfg_.n_clients_per_ap +
                           cell_rng.uniform(0.0, 0.3);
      const double r2min = cfg_.client_min_dist_m * cfg_.client_min_dist_m;
      const double r2max = cfg_.client_max_dist_m * cfg_.client_max_dist_m;
      const double dist = std::sqrt(cell_rng.uniform(r2min, r2max));

      ClientStation::Config cc;
      cc.id = StationId{next_station++};
      cc.pos = Position{ap_cfg.pos.x + dist * std::cos(angle),
                        ap_cfg.pos.y + dist * std::sin(angle)};
      cc.cap = cfg_.client_cap;
      cc.receiver = cfg_.receiver;
      auto client = std::make_unique<ClientStation>(sim_, *medium_, cc, rng_.fork());
      ap->associate(client.get());

      FlowCtx fc;
      fc.flow = FlowId{next_flow++};
      fc.ap_idx = a;
      fc.client_idx = c;

      if (cfg_.traffic == TrafficType::kTcpDownlink) {
        client->add_flow(fc.flow);
        TcpSender::Config scfg = cfg_.sender;
        if (cfg_.dscp_of != nullptr) scfg.dscp = cfg_.dscp_of(c);
        // Route dynamically through the flow's *current* AP so roams
        // redirect the wired path too (the distribution switch re-learns).
        const std::size_t idx = flows_.size();
        fc.sender = std::make_unique<TcpSender>(
            sim_, fc.flow, cc.id, scfg, [this, idx](TcpSegment seg) {
              down_links_[static_cast<std::size_t>(flows_[idx].ap_idx)]->send(
                  std::move(seg));
            });
      } else {
        ap->enable_udp_saturation(cc.id, Bytes{1470});
      }

      clients_.push_back(std::move(client));
      flows_.push_back(std::move(fc));
    }
    aps_.push_back(std::move(ap));
  }
}

Testbed::~Testbed() = default;

void Testbed::roam(int orig_ap_idx, int client_idx, int to_ap_idx) {
  // (orig_ap_idx, client_idx) is the client's permanent identity — where it
  // was created; it roams from wherever it currently is.
  const std::size_t idx = flow_index(orig_ap_idx, client_idx);
  FlowCtx& fc = flows_.at(idx);
  const int from_ap_idx = fc.ap_idx;
  if (from_ap_idx == to_ap_idx) return;
  ClientStation* cl = clients_.at(idx).get();

  aps_.at(static_cast<std::size_t>(from_ap_idx))->disassociate(cl->id());
  aps_.at(static_cast<std::size_t>(to_ap_idx))->associate(cl);
  fc.ap_idx = to_ap_idx;

  // FastACK state transfer (§5.5.4) when both ends run the agent.
  auto& from_agent = agents_.at(static_cast<std::size_t>(from_ap_idx));
  auto& to_agent = agents_.at(static_cast<std::size_t>(to_ap_idx));
  if (from_agent && to_agent) {
    if (auto state = from_agent->export_flow(fc.flow))
      to_agent->import_flow(fc.flow, std::move(*state));
  }
}

void Testbed::crash_ap(int ap_idx) {
  AccessPoint& ap = *aps_.at(static_cast<std::size_t>(ap_idx));
  // Reboot: the AP forgets its queues and associations; clients re-scan and
  // re-associate (instantaneous here — the TCP-level damage, lost frames
  // plus lost FastACK state, is what we model).
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].ap_idx != ap_idx) continue;
    ap.disassociate(clients_[i]->id());
    ap.associate(clients_[i].get());
  }
  auto& agent = agents_.at(static_cast<std::size_t>(ap_idx));
  if (agent) agent->crash_reset();
}

std::size_t Testbed::flow_index(int ap_idx, int client_idx) const {
  return static_cast<std::size_t>(ap_idx) *
             static_cast<std::size_t>(cfg_.n_clients_per_ap) +
         static_cast<std::size_t>(client_idx);
}

void Testbed::run() {
  W11_CHECK_MSG(!ran_, "Testbed::run may only be called once");
  ran_ = true;
#if W11_OBS
  // W11_TRACE=1 switches on the process tracer/metrics for this run and
  // exports the Chrome-trace/JSONL/metrics artifacts when it finishes
  // (W11_TRACE_OUT overrides the default output path).
  const bool tracing = obs::enable_from_env();
  if (tracing) sim_.set_tracer(&obs::tracer());
#endif
  for (auto& fc : flows_)
    if (fc.sender) fc.sender->start();

  sim_.run_until(cfg_.warmup);
  udp_bytes_at_warmup_.clear();
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flows_[i].bytes_at_warmup = clients_[i]->bytes_delivered();
    udp_bytes_at_warmup_.push_back(clients_[i]->udp_bytes_received());
  }
  sim_.run_until(cfg_.warmup + cfg_.duration);
#if W11_OBS
  if (tracing) obs::export_global(obs::trace_out_path("w11_trace.json"));
#endif
}

double Testbed::aggregate_throughput_mbps() const {
  double total = 0.0;
  for (double t : per_client_throughput_mbps()) total += t;
  return total;
}

double Testbed::ap_throughput_mbps(int ap_idx) const {
  const auto per = per_client_throughput_mbps();
  double total = 0.0;
  for (std::size_t i = 0; i < per.size(); ++i)
    if (flows_[i].ap_idx == ap_idx) total += per[i];
  return total;
}

std::vector<double> Testbed::per_client_throughput_mbps() const {
  W11_CHECK_MSG(ran_, "run() first");
  std::vector<double> out;
  const double secs = cfg_.duration.sec();
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const std::uint64_t bytes =
        clients_[i]->bytes_delivered() - flows_[i].bytes_at_warmup;
    out.push_back(static_cast<double>(bytes) * 8.0 / 1e6 / secs);
  }
  return out;
}

Testbed::Health Testbed::health() const {
  Health h;
  h.aps = cfg_.n_aps;
  h.clients = static_cast<int>(flows_.size());
  h.aggregate_mbps = 0.0;
  const auto per = per_client_throughput_mbps();
  for (std::size_t i = 0; i < per.size(); ++i) {
    h.aggregate_mbps += per[i];
    if (i == 0 || per[i] < h.client_min_mbps) h.client_min_mbps = per[i];
    if (i == 0 || per[i] > h.client_max_mbps) h.client_max_mbps = per[i];
  }
#if W11_OBS
  h.trace_events = obs::tracer().total_events();
  h.trace_dropped = obs::tracer().total_dropped();
#endif
  return h;
}

std::vector<double> Testbed::mean_ampdu_per_client(int ap_idx) const {
  std::vector<double> out;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].ap_idx != ap_idx) continue;
    const Samples& s = aps_[static_cast<std::size_t>(ap_idx)]->ampdu_sizes(
        clients_[i]->id());
    out.push_back(s.count() > 0 ? s.mean() : 0.0);
  }
  return out;
}

const TcpSender& Testbed::sender(int ap_idx, int client_idx) const {
  const auto& s = flows_.at(flow_index(ap_idx, client_idx)).sender;
  W11_CHECK_MSG(s != nullptr, "no TCP sender for this flow (UDP mode?)");
  return *s;
}

TcpSender& Testbed::sender(int ap_idx, int client_idx) {
  const auto& s = flows_.at(flow_index(ap_idx, client_idx)).sender;
  W11_CHECK_MSG(s != nullptr, "no TCP sender for this flow (UDP mode?)");
  return *s;
}

const ClientStation& Testbed::client(int ap_idx, int client_idx) const {
  return *clients_.at(flow_index(ap_idx, client_idx));
}

}  // namespace w11::scenario
