#pragma once
// The paper's performance testbed (Fig. 13) as a reusable scenario.
//
// N APs share one collision domain (same channel); each AP serves M clients
// spread around it. Each client terminates one downlink TCP flow from a
// wired sender behind a gigabit link, mirroring the ixChariot setup of
// §5.6.1. FastACK can be enabled per AP, which is how the multi-AP
// experiments (Fig. 18) toggle (i)/(ii)/(iii).

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/fastack/agent.hpp"
#include "core/snoop/snoop_agent.hpp"
#include "mac/medium.hpp"
#include "net/tcp_sender.hpp"
#include "net/wired_link.hpp"
#include "sim/simulator.hpp"
#include "wlan/access_point.hpp"
#include "wlan/client.hpp"

namespace w11::scenario {

enum class TrafficType { kTcpDownlink, kUdpDownlink };

// Per-AP TCP acceleration: none (host TCP only), TCP-Snoop (local loss
// hiding), or FastACK (the paper's contribution).
enum class TcpAccel { kNone, kSnoop, kFastAck };

struct TestbedConfig {
  int n_aps = 1;
  int n_clients_per_ap = 10;
  // FastACK per AP; empty = all baseline, single entry = applies to all.
  // (Shorthand for `accel`; ignored when `accel` is set.)
  std::vector<bool> fastack;
  // Full acceleration selection; empty = derive from `fastack`.
  std::vector<TcpAccel> accel;
  fastack::FastAckAgent::Config agent;
  snoop::SnoopAgent::Config snoop_cfg;

  std::uint64_t seed = 1;
  // Event-engine selection; kReference exists for golden A/B comparisons
  // against the pre-overhaul engine (DESIGN.md §11).
  Simulator::Engine engine = Simulator::Engine::kArena;
  Time duration = time::seconds(10);
  // Measurement starts after warmup (slow start, queue fill).
  Time warmup = time::seconds(2);

  TrafficType traffic = TrafficType::kTcpDownlink;
  TcpSender::Config sender;
  TcpReceiver::Config receiver;
  WiredLink::Config wire;

  Channel channel{Band::G5, 42, ChannelWidth::MHz80};
  ApCapability ap_cap;
  ClientCapability client_cap{WifiStandard::k80211ac, true, ChannelWidth::MHz80,
                              2, true, true};
  PropagationModel prop;
  mac::MediumConfig medium;
  RateController::Config rate_control;
  double bad_hint_rate = 0.0;
  int amsdu_max_msdus = 1;  // A-MSDU bundling at the APs

  // Clients are placed uniformly between these distances from their AP.
  double client_min_dist_m = 2.0;
  double client_max_dist_m = 25.0;
  // Give every AP an identical (mirrored) client layout — the multi-AP
  // comparisons of Fig. 18 assume comparable cells.
  bool symmetric_cells = false;

  // DSCP mark per client index (drives the EDCA access category, Fig. 4).
  int (*dscp_of)(int client_idx) = nullptr;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg);
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // Run warmup + measurement; safe to call exactly once.
  void run();

  // Roam a client — identified by its *original* (ap, client) indices — to
  // `to_ap_idx`, from wherever it currently is (§5.5.4): disassociates,
  // re-associates, reroutes its wired path and transfers FastACK flow state
  // when both APs run the agent. Call from a scheduled simulator event to
  // roam mid-run. No-op if already there.
  void roam(int orig_ap_idx, int client_idx, int to_ap_idx);

  // --- fault-injection surface ------------------------------------------
  // AP crash/reboot: every queued downlink frame is lost, clients
  // re-associate, and the FastACK agent's flow table is gone (the paper's
  // §5.5.4 state-loss corner case). Senders recover end to end. Call from a
  // scheduled simulator event to crash mid-run.
  void crash_ap(int ap_idx);
  // Wired links (per AP) for outage/flap injection, and mutable agent
  // access for anomaly injection.
  [[nodiscard]] WiredLink& down_link(int ap_idx) { return *down_links_.at(static_cast<std::size_t>(ap_idx)); }
  [[nodiscard]] WiredLink& up_link(int ap_idx) { return *up_links_.at(static_cast<std::size_t>(ap_idx)); }
  [[nodiscard]] fastack::FastAckAgent* agent_mut(int idx) {
    return agents_.at(static_cast<std::size_t>(idx)).get();
  }

  // --- results (valid after run()) --------------------------------------
  // Goodput summed over every client of every AP, measured post-warmup.
  [[nodiscard]] double aggregate_throughput_mbps() const;
  [[nodiscard]] double ap_throughput_mbps(int ap_idx) const;
  [[nodiscard]] std::vector<double> per_client_throughput_mbps() const;

  // Mean A-MPDU size per client of one AP (Fig. 15).
  [[nodiscard]] std::vector<double> mean_ampdu_per_client(int ap_idx) const;

  // Condensed run health for bench mains and the fleet health engine
  // (plain types only; trace fields are zero in W11_OBS=0 builds).
  struct Health {
    int aps = 0;
    int clients = 0;
    double aggregate_mbps = 0.0;
    double client_min_mbps = 0.0;
    double client_max_mbps = 0.0;
    std::uint64_t trace_events = 0;   // recorded this run (all lanes)
    std::uint64_t trace_dropped = 0;  // lost to per-lane ring overflow
  };
  [[nodiscard]] Health health() const;

  [[nodiscard]] const AccessPoint& ap(int idx) const { return *aps_.at(idx); }
  [[nodiscard]] const fastack::FastAckAgent* agent(int idx) const {
    return agents_.at(idx).get();
  }
  [[nodiscard]] const snoop::SnoopAgent* snoop_agent(int idx) const {
    return snoop_agents_.at(idx).get();
  }
  [[nodiscard]] const TcpSender& sender(int ap_idx, int client_idx) const;
  [[nodiscard]] TcpSender& sender(int ap_idx, int client_idx);
  [[nodiscard]] const ClientStation& client(int ap_idx, int client_idx) const;
  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] const mac::Medium& medium() const { return *medium_; }
  [[nodiscard]] const TestbedConfig& config() const { return cfg_; }

 private:
  struct FlowCtx {
    FlowId flow;
    int ap_idx;  // current serving AP (changes on roam)
    int client_idx;
    std::unique_ptr<TcpSender> sender;
    std::uint64_t bytes_at_warmup = 0;  // receiver-side snapshot
  };

  [[nodiscard]] std::size_t flow_index(int ap_idx, int client_idx) const;

  TestbedConfig cfg_;
  Simulator sim_;
  Rng rng_;
  std::unique_ptr<mac::Medium> medium_;
  std::vector<std::unique_ptr<AccessPoint>> aps_;
  std::vector<std::unique_ptr<fastack::FastAckAgent>> agents_;
  std::vector<std::unique_ptr<snoop::SnoopAgent>> snoop_agents_;
  std::vector<std::unique_ptr<ClientStation>> clients_;  // ap-major order
  std::vector<std::unique_ptr<WiredLink>> down_links_;   // per AP
  std::vector<std::unique_ptr<WiredLink>> up_links_;     // per AP
  std::vector<FlowCtx> flows_;                           // ap-major order
  std::vector<std::uint64_t> udp_bytes_at_warmup_;       // per client
  bool ran_ = false;
};

}  // namespace w11::scenario
