#pragma once
// Slab-allocated event storage and the scheduling heap behind Simulator.
//
// EventArena owns every pending event record in fixed-size chunks. Records
// are recycled through an intrusive free list, so steady-state scheduling
// performs zero allocations; chunk addresses are stable, so records are
// never moved while pending. Each slot carries a generation counter that is
// bumped on release — an EventHandle captures (slot, generation) and a
// stale pair simply fails the check, which makes O(1) cancellation safe
// without a per-event shared_ptr control block.
//
// TimerHeap is a 4-ary implicit min-heap over compact 24-byte keys
// (time, seq, slot). The comparator is the exact strict total order the old
// std::priority_queue used — (time, seq) with unique seq — so the pop
// sequence is bit-for-bit identical to the pre-overhaul engine; the win is
// purely constant-factor (flat keys instead of fat events, and a branch
// factor tuned for the short-horizon MAC/TCP timers that dominate, where a
// shallower tree means fewer cache lines per sift).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "sim/small_fn.hpp"

namespace w11::sim_detail {

inline constexpr std::uint32_t kNullSlot = 0xffffffffu;

struct EventSlot {
  std::uint32_t gen = 0;
  bool cancelled = false;
  std::uint32_t next_free = kNullSlot;
  sim::SmallFn cb;
};

class EventArena {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  ~EventArena() {
    // Only slots below the watermark were ever constructed.
    for (std::uint32_t i = 0; i < watermark_; ++i) slot(i).~EventSlot();
  }

  // Claims a recycled slot, or lazily constructs the next virgin slot at the
  // bump watermark. Chunks are raw storage: a fresh arena never pays a
  // full-chunk value-initialization or free-list threading pass — each slot
  // is placement-constructed exactly once, on first use. The caller installs
  // the callback in place via slot(idx).cb.emplace(...) so the capture is
  // built directly in the slab, with no relocating move in between.
  std::uint32_t acquire() {
    if (free_head_ != kNullSlot) {
      const std::uint32_t idx = free_head_;
      EventSlot& s = slot(idx);
      free_head_ = s.next_free;
      s.next_free = kNullSlot;
      s.cancelled = false;
      return idx;
    }
    if (watermark_ == capacity_) grow();
    const std::uint32_t idx = watermark_++;
    // Default-init, not value-init: NSDMIs set the header fields and null
    // the callback's dispatch pointers, but the 152-byte capture buffer is
    // deliberately left untouched instead of being zeroed.
    ::new (static_cast<void*>(slot_ptr(idx))) EventSlot;
    return idx;
  }

  // Destroys the callback, invalidates outstanding handles via the
  // generation bump, and recycles the slot.
  void release(std::uint32_t idx) {
    EventSlot& s = slot(idx);
    s.cb.reset();
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = idx;
  }

  [[nodiscard]] EventSlot& slot(std::uint32_t idx) {
    return *std::launder(reinterpret_cast<EventSlot*>(slot_ptr(idx)));
  }

  [[nodiscard]] bool live(std::uint32_t idx, std::uint32_t gen) {
    return idx < watermark_ && slot(idx).gen == gen;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;

  [[nodiscard]] std::byte* slot_ptr(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift].get() +
           std::size_t{idx & kChunkMask} * sizeof(EventSlot);
  }

  void grow() {
    // new std::byte[] is aligned for max_align_t, which covers EventSlot
    // (SmallFn's buffer is alignas(max_align_t)).
    static_assert(alignof(EventSlot) <= alignof(std::max_align_t));
    chunks_.push_back(std::make_unique_for_overwrite<std::byte[]>(
        (std::size_t{1} << kChunkShift) * sizeof(EventSlot)));
    capacity_ += 1u << kChunkShift;
  }

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::uint32_t free_head_ = kNullSlot;
  std::uint32_t watermark_ = 0;  // slots below this have been constructed
  std::uint32_t capacity_ = 0;
};

// Liveness tag shared by a Simulator and every EventHandle it hands out.
// The refcount is deliberately non-atomic: the engine is single-threaded by
// design (fleet parallelism runs one Simulator per worker), and a plain
// increment replaces the two atomic RMW ops a weak_ptr copy would cost on
// every scheduled event. `arena` is nulled when the Simulator dies, which
// is what makes cancel-after-destruction a safe no-op.
struct ArenaTag {
  EventArena* arena;
  std::uint32_t refs;
};

class TimerHeap {
 public:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] const Entry& top() const { return v_.front(); }

  void push(Entry e) {
    // Hole technique: shift losing parents down and place the new entry
    // once, instead of swapping 24-byte entries at every level.
    std::size_t i = v_.size();
    v_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, v_[parent])) break;
      v_[i] = v_[parent];
      i = parent;
    }
    v_[i] = e;
  }

  void pop() {
    const Entry last = v_.back();
    v_.pop_back();
    const std::size_t n = v_.size();
    if (n == 0) return;
    std::size_t i = 0;
    while (true) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + 4, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c)
        if (earlier(v_[c], v_[best])) best = c;
      if (!earlier(v_[best], last)) break;
      v_[i] = v_[best];
      i = best;
    }
    v_[i] = last;
  }

 private:
  // The determinism contract: strictly (time, seq) — seq is unique, so this
  // is a strict total order and the pop sequence is engine-independent.
  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::vector<Entry> v_;
};

}  // namespace w11::sim_detail
