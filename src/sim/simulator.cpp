#include "sim/simulator.hpp"

namespace w11 {

EventHandle Simulator::schedule_at(Time at, Callback cb) {
  W11_CHECK_MSG(at >= now_, "cannot schedule into the past");
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{at, next_seq_++, std::move(cb), flag});
  ++live_events_;
  return EventHandle{std::move(flag)};
}

EventHandle Simulator::schedule_after(Time delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

void Simulator::pop_and_run() {
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  --live_events_;
  now_ = ev.at;
  if (!*ev.cancelled) {
    ++processed_;
    ev.cb();
  }
}

void Simulator::run_until(Time until) {
  while (!queue_.empty() && queue_.top().at <= until) pop_and_run();
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (!queue_.empty()) pop_and_run();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  pop_and_run();
  return true;
}

}  // namespace w11
