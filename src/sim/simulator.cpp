#include "sim/simulator.hpp"

#include <algorithm>

namespace w11 {

Simulator::Simulator(Engine engine) : engine_(engine) {
  if (engine_ == Engine::kArena) {
    arena_ = std::make_unique<sim_detail::EventArena>();
    tag_ = new sim_detail::ArenaTag{arena_.get(), 1};
  }
}

Simulator::~Simulator() {
#if W11_OBS
  // Unbind the recorder's clock; it points at this simulator's now_.
  if (tracer_ != nullptr) tracer_->bind_clock(nullptr);
#endif
  // Retire still-queued reference-engine events so outstanding handles
  // report not-pending after the simulator dies — the same answer arena
  // handles get once the tag's arena pointer is nulled below.
  while (!ref_queue_.empty()) {
    *ref_queue_.top().cancelled = true;
    ref_queue_.pop();
  }
  if (tag_ != nullptr) {
    tag_->arena = nullptr;
    if (--tag_->refs == 0) delete tag_;
  }
}

void Simulator::enable_event_trace(std::size_t capacity) {
  trace_on_ = true;
  trace_capacity_ = capacity;
  trace_.clear();
  trace_.reserve(std::min<std::size_t>(capacity, 4096));
  digest_ = 14695981039346656037ull;
}

}  // namespace w11
