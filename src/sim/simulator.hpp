#pragma once
// Discrete-event simulation engine.
//
// The Simulator owns a priority queue of (time, sequence, callback) events.
// Events scheduled for the same instant run in scheduling order (the
// sequence number breaks ties deterministically). Handles returned by
// schedule() can cancel pending events, which is how timers are retired.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace w11 {

class EventHandle;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `cb` at absolute time `at` (must be >= now). Returns a handle
  // that can cancel the event while it is still pending.
  EventHandle schedule_at(Time at, Callback cb);

  // Schedule `cb` after a relative delay.
  EventHandle schedule_after(Time delay, Callback cb);

  // Run until the queue drains or simulated time exceeds `until`.
  void run_until(Time until);

  // Run until the queue drains entirely.
  void run();

  // Execute at most one event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return live_events_; }
  [[nodiscard]] std::uint64_t processed_events() const { return processed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void pop_and_run();

  Time now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;

  friend class EventHandle;
};

// Cancellation token for a scheduled event. Copyable; cancelling any copy
// cancels the event. A default-constructed handle is inert.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (flag_ && !*flag_) *flag_ = true;
  }
  [[nodiscard]] bool pending() const { return flag_ && !*flag_; }

 private:
  explicit EventHandle(std::shared_ptr<bool> flag) : flag_(std::move(flag)) {}
  std::shared_ptr<bool> flag_;
  friend class Simulator;
};

// A repeating timer built on the Simulator. Fires first after `period`
// (or `first_delay` if given), then every `period` until stopped/destroyed.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Time period, Simulator::Callback cb)
      : PeriodicTimer(sim, period, period, std::move(cb)) {}

  PeriodicTimer(Simulator& sim, Time first_delay, Time period, Simulator::Callback cb)
      : sim_(sim), period_(period), cb_(std::move(cb)) {
    W11_CHECK(period_ > Time{0});
    arm(first_delay);
  }

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop() { handle_.cancel(); }

 private:
  void arm(Time delay) {
    handle_ = sim_.schedule_after(delay, [this] {
      arm(period_);
      cb_();
    });
  }

  Simulator& sim_;
  Time period_;
  Simulator::Callback cb_;
  EventHandle handle_;
};

}  // namespace w11
