#pragma once
// Discrete-event simulation engine.
//
// The Simulator executes (time, sequence, callback) events in (time, seq)
// order: events scheduled for the same instant run in scheduling order (the
// sequence number breaks ties deterministically). Handles returned by
// schedule() can cancel pending events, which is how timers are retired.
//
// Two interchangeable engines implement that contract (DESIGN.md §11):
//
//   kArena (default) — slab-allocated event records recycled through a free
//     list, small-buffer-optimized callbacks (sim::SmallFn) so per-packet
//     lambdas do not heap-allocate, a 4-ary indexed heap over compact
//     (time, seq, slot) keys, and generation-counted handles for O(1)
//     cancellation. Steady-state scheduling is allocation-free.
//
//   kReference — the pre-overhaul engine, preserved verbatim: a
//     std::priority_queue of fat event records, one shared_ptr<bool> cancel
//     flag allocated per event. Exists so golden tests and benches can
//     prove, per run, that the arena engine executes the exact same event
//     sequence and is only faster.
//
// Both engines produce bit-for-bit identical execution orders because the
// (time, seq) order is a strict total order (seq is unique): any correct
// implementation pops the same sequence.

#include <cstdint>
#include <memory>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "obs/gate.hpp"
#include "sim/event_arena.hpp"
#include "sim/small_fn.hpp"

#if W11_OBS
#include "obs/trace.hpp"
#endif

namespace w11 {

class EventHandle;

class Simulator {
 public:
  using Callback = sim::SmallFn;

  enum class Engine { kArena, kReference };

  explicit Simulator(Engine engine = Engine::kArena);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Engine engine() const { return engine_; }

  // Schedule `cb` at absolute time `at` (must be >= now). Returns a handle
  // that can cancel the event while it is still pending. Templated so the
  // capture is constructed directly inside the slab record — no relocating
  // move of the callable between the call site and the event store.
  template <typename F>
  EventHandle schedule_at(Time at, F&& cb);

  // Schedule `cb` after a relative delay.
  template <typename F>
  EventHandle schedule_after(Time delay, F&& cb);

  // Run until the queue drains or simulated time exceeds `until`.
  void run_until(Time until);

  // Run until the queue drains entirely.
  void run();

  // Execute at most one event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return live_events_; }
  [[nodiscard]] std::uint64_t processed_events() const { return processed_; }

  // --- execution-order observability (golden tests) ----------------------
  // Record every processed event's (time, seq). The digest is an FNV-1a
  // fold over the full stream; the trace vector keeps the first `capacity`
  // entries so mismatches are debuggable without unbounded memory.
  struct ProcessedEvent {
    Time at;
    std::uint64_t seq;
    friend constexpr bool operator==(const ProcessedEvent&,
                                     const ProcessedEvent&) = default;
  };
  void enable_event_trace(std::size_t capacity = 1u << 20);
  [[nodiscard]] const std::vector<ProcessedEvent>& event_trace() const {
    return trace_;
  }
  [[nodiscard]] std::uint64_t event_digest() const { return digest_; }

  // --- structured tracing (DESIGN.md §12) --------------------------------
  // Attach an obs recorder: every dispatched event records a kSimEvent
  // stamped with its (sim time, seq), and the recorder's clock is bound to
  // this simulator so sim-attached instrumentation sites (AP, FastACK)
  // stamp sim virtual time. Detached (default) the hot loop pays one null
  // check. Compiled out entirely under W11_OBS=0.
#if W11_OBS
  void set_tracer(obs::TraceRecorder* t) {
    if (tracer_ != nullptr && t == nullptr) tracer_->bind_clock(nullptr);
    tracer_ = t;
    if (tracer_ != nullptr) tracer_->bind_clock(&now_);
  }
  [[nodiscard]] obs::TraceRecorder* tracer() const { return tracer_; }
#endif

 private:
  struct RefEvent {
    Time at;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> cancelled;
  };
  struct RefLater {
    bool operator()(const RefEvent& a, const RefEvent& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void pop_and_run_arena();
  void pop_and_run_ref();

  void note_processed(Time at, std::uint64_t seq) {
    if (!trace_on_) return;
    // FNV-1a over the (at, seq) stream.
    auto mix = [this](std::uint64_t v) {
      digest_ ^= v;
      digest_ *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(at.ns()));
    mix(seq);
    if (trace_.size() < trace_capacity_) trace_.push_back({at, seq});
  }

  Engine engine_;
  Time now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_events_ = 0;

  // kArena engine state. The tag is heap-allocated so outstanding handles
  // can outlive the Simulator; ~Simulator nulls tag_->arena and drops its
  // reference.
  std::unique_ptr<sim_detail::EventArena> arena_;
  sim_detail::ArenaTag* tag_ = nullptr;
  sim_detail::TimerHeap heap_;

  // kReference engine state.
  std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater> ref_queue_;

#if W11_OBS
  obs::TraceRecorder* tracer_ = nullptr;
#endif

  bool trace_on_ = false;
  std::size_t trace_capacity_ = 0;
  std::uint64_t digest_ = 14695981039346656037ull;  // FNV offset basis
  std::vector<ProcessedEvent> trace_;

  friend class EventHandle;
};

// Cancellation token for a scheduled event. Copyable; cancelling any copy
// cancels the event. A default-constructed handle is inert. Every
// degenerate use is a safe no-op: cancelling after the event ran, after the
// slot was recycled for a newer event (the generation check fails), or
// after the Simulator itself was destroyed (the shared ArenaTag's arena
// pointer is nulled by ~Simulator, and the tag outlives both sides via its
// refcount — non-atomic on purpose, see ArenaTag).
class EventHandle {
 public:
  EventHandle() = default;

  EventHandle(const EventHandle& o)
      : flag_(o.flag_), tag_(o.tag_), slot_(o.slot_), gen_(o.gen_) {
    if (tag_ != nullptr) ++tag_->refs;
  }
  EventHandle(EventHandle&& o) noexcept
      : flag_(std::move(o.flag_)), tag_(o.tag_), slot_(o.slot_), gen_(o.gen_) {
    o.tag_ = nullptr;
  }
  EventHandle& operator=(const EventHandle& o) {
    if (this != &o) {
      release_tag();
      flag_ = o.flag_;
      tag_ = o.tag_;
      slot_ = o.slot_;
      gen_ = o.gen_;
      if (tag_ != nullptr) ++tag_->refs;
    }
    return *this;
  }
  EventHandle& operator=(EventHandle&& o) noexcept {
    if (this != &o) {
      release_tag();
      flag_ = std::move(o.flag_);
      tag_ = o.tag_;
      o.tag_ = nullptr;
      slot_ = o.slot_;
      gen_ = o.gen_;
    }
    return *this;
  }
  ~EventHandle() { release_tag(); }

  void cancel() {
    if (flag_) {  // reference engine
      if (!*flag_) *flag_ = true;
      return;
    }
    if (tag_ != nullptr && tag_->arena != nullptr &&
        tag_->arena->live(slot_, gen_))
      tag_->arena->slot(slot_).cancelled = true;
  }

  [[nodiscard]] bool pending() const {
    if (flag_) return !*flag_;
    return tag_ != nullptr && tag_->arena != nullptr &&
           tag_->arena->live(slot_, gen_) &&
           !tag_->arena->slot(slot_).cancelled;
  }

 private:
  EventHandle(sim_detail::ArenaTag* tag, std::uint32_t slot, std::uint32_t gen)
      : tag_(tag), slot_(slot), gen_(gen) {
    ++tag_->refs;
  }
  explicit EventHandle(std::shared_ptr<bool> flag) : flag_(std::move(flag)) {}

  void release_tag() noexcept {
    if (tag_ != nullptr && --tag_->refs == 0) delete tag_;
    tag_ = nullptr;
  }

  std::shared_ptr<bool> flag_;
  sim_detail::ArenaTag* tag_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
  friend class Simulator;
};

// --- hot-path definitions ---------------------------------------------------
// Scheduling and dispatch live in the header so call sites (per-packet
// lambdas on the wire/MAC paths, the bench loops) can inline the whole
// schedule -> heap-push and pop -> run sequences.

template <typename F>
inline EventHandle Simulator::schedule_at(Time at, F&& cb) {
  W11_CHECK_MSG(at >= now_, "cannot schedule into the past");
  const std::uint64_t seq = next_seq_++;
  ++live_events_;
  if (engine_ == Engine::kArena) {
    const std::uint32_t idx = arena_->acquire();
    sim_detail::EventSlot& s = arena_->slot(idx);
    if constexpr (std::is_same_v<std::remove_cvref_t<F>, Callback>) {
      s.cb = std::forward<F>(cb);
    } else {
      s.cb.emplace(std::forward<F>(cb));
    }
    heap_.push({at, seq, idx});
    return EventHandle{tag_, idx, s.gen};
  }
  auto flag = std::make_shared<bool>(false);
  ref_queue_.push(RefEvent{at, seq, Callback(std::forward<F>(cb)), flag});
  return EventHandle{std::move(flag)};
}

template <typename F>
inline EventHandle Simulator::schedule_after(Time delay, F&& cb) {
  return schedule_at(now_ + delay, std::forward<F>(cb));
}

inline void Simulator::pop_and_run_arena() {
  const sim_detail::TimerHeap::Entry entry = heap_.top();
  heap_.pop();
  --live_events_;
  now_ = entry.at;
  sim_detail::EventSlot& slot = arena_->slot(entry.slot);
  if (slot.cancelled) {
    arena_->release(entry.slot);
    return;
  }
  ++processed_;
  note_processed(entry.at, entry.seq);
#if W11_OBS
  if (tracer_ != nullptr)
    tracer_->record_at(entry.at, obs::TraceKind::kSimEvent, entry.seq);
#endif
  // Run the callback in place: the slot is off the free list while it
  // executes and chunk addresses are stable, so the captures cannot move
  // or be overwritten even if the callback schedules new events. release()
  // afterwards destroys the captures and bumps the generation, making the
  // event's own handle inert; a self-cancel during the callback only sets
  // a flag on a slot that is already past its cancellation check.
  slot.cb();
  arena_->release(entry.slot);
}

inline void Simulator::pop_and_run_ref() {
  RefEvent ev = std::move(const_cast<RefEvent&>(ref_queue_.top()));
  ref_queue_.pop();
  --live_events_;
  now_ = ev.at;
  if (*ev.cancelled) return;
  // Retire before running so the event's own handle is inert during its
  // callback — the same contract the arena engine's generation bump gives.
  *ev.cancelled = true;
  ++processed_;
  note_processed(ev.at, ev.seq);
#if W11_OBS
  if (tracer_ != nullptr)
    tracer_->record_at(ev.at, obs::TraceKind::kSimEvent, ev.seq);
#endif
  ev.cb();
}

inline void Simulator::run_until(Time until) {
  if (engine_ == Engine::kArena) {
    while (!heap_.empty() && heap_.top().at <= until) pop_and_run_arena();
  } else {
    while (!ref_queue_.empty() && ref_queue_.top().at <= until)
      pop_and_run_ref();
  }
  if (now_ < until) now_ = until;
}

inline void Simulator::run() {
  if (engine_ == Engine::kArena) {
    while (!heap_.empty()) pop_and_run_arena();
  } else {
    while (!ref_queue_.empty()) pop_and_run_ref();
  }
}

inline bool Simulator::step() {
  if (engine_ == Engine::kArena) {
    if (heap_.empty()) return false;
    pop_and_run_arena();
  } else {
    if (ref_queue_.empty()) return false;
    pop_and_run_ref();
  }
  return true;
}

// A repeating timer built on the Simulator. Fires first after `period`
// (or `first_delay` if given), then every `period` until stopped/destroyed.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Time period, Simulator::Callback cb)
      : PeriodicTimer(sim, period, period, std::move(cb)) {}

  PeriodicTimer(Simulator& sim, Time first_delay, Time period, Simulator::Callback cb)
      : sim_(sim), period_(period), cb_(std::move(cb)) {
    W11_CHECK(period_ > Time{0});
    arm(first_delay);
  }

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop() { handle_.cancel(); }

 private:
  void arm(Time delay) {
    handle_ = sim_.schedule_after(delay, [this] {
      arm(period_);
      cb_();
    });
  }

  Simulator& sim_;
  Time period_;
  Simulator::Callback cb_;
  EventHandle handle_;
};

}  // namespace w11
