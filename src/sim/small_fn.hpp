#pragma once
// Small-buffer-optimized move-only callable for simulator events.
//
// Every scheduled event used to carry a std::function whose captures — a
// TcpSegment copy on the wired link / client ACK turnaround, the medium's
// winner lists — overflow the libstdc++ small-object buffer and heap-
// allocate per packet. SmallFn keeps captures up to kInlineBytes inline, so
// the slab-allocated event record owns them directly and steady-state
// scheduling never touches the heap. Oversized callables still work: they
// fall back to a single heap cell, they are just not free.

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace w11::sim {

class SmallFn {
 public:
  // Sized so the datapath's fattest captures stay inline: [this, TcpSegment]
  // lambdas are ~136 bytes with inline SACK blocks.
  static constexpr std::size_t kInlineBytes = 152;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    construct(std::forward<F>(f));
  }

  // Destroy the current callable (if any) and construct `f` directly in the
  // inline buffer — the slab path uses this to build callbacks in place in
  // recycled event slots, fully inlined at the call site.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { invoke_(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  // Destroy the held callable (if any) and return to the empty state.
  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  template <typename F>
  void construct(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      if constexpr (std::is_trivially_copyable_v<Fn>) {
        // No destructor to run and no move ctor worth calling: relocation
        // is a memcpy and destruction is free. Leaving these null lets the
        // event slab recycle trivially-captured callbacks (the common
        // per-packet lambdas) without an indirect call.
        relocate_ = nullptr;
        destroy_ = nullptr;
      } else {
        relocate_ = [](void* dst, void* src) noexcept {
          Fn* s = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        };
        destroy_ = [](void* p) noexcept {
          std::launder(reinterpret_cast<Fn*>(p))->~Fn();
        };
      }
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); };
      relocate_ = [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      };
      destroy_ = [](void* p) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(p));
      };
    }
  }

  void move_from(SmallFn& other) noexcept {
    if (other.invoke_ == nullptr) return;
    if (other.relocate_ != nullptr)
      other.relocate_(buf_, other.buf_);
    else  // trivially-copyable inline callable: relocation is a byte copy
      std::memcpy(buf_, other.buf_, kInlineBytes);
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  // Relocate = move-construct into dst and end src's lifetime (trivially a
  // pointer copy for the heap fallback).
  void (*relocate_)(void* dst, void* src) noexcept = nullptr;
  void (*destroy_)(void*) noexcept = nullptr;
};

}  // namespace w11::sim
