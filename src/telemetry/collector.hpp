#pragma once
// Collector: periodically snapshots a flowsim network evaluation into
// LittleTable rows — the shape of the Meraki backend's polling loop (§2.2).

#include "flowsim/network.hpp"
#include "obs/gate.hpp"
#include "telemetry/littletable.hpp"

namespace w11::telemetry {

class NetworkCollector {
 public:
  NetworkCollector()
      : ap_stats_("ap_stats", {"throughput_mbps", "offered_mbps", "utilization",
                               "airtime_share", "mean_phy_rate_mbps",
                               "bitrate_efficiency", "cochannel_interferers"}),
        net_stats_("network_stats",
                   {"total_throughput_mbps", "total_offered_mbps",
                    "channel_switches", "records_dropped",
                    "records_written"}) {}

  // Drop the next `count` polling intervals on the floor (fault injection:
  // the collection pipeline loses samples; dashboards must tolerate gaps).
  void drop_next(int count) { drop_pending_ += count; }
  [[nodiscard]] std::uint64_t records_dropped() const { return records_dropped_; }
  [[nodiscard]] std::uint64_t records_written() const { return records_written_; }

  // Record one polling interval. Returns false when the interval was lost
  // to an injected collection fault.
  bool record(const flowsim::Network& net, const flowsim::Evaluation& ev,
              Time at) {
    if (drop_pending_ > 0) {
      --drop_pending_;
      ++records_dropped_;
      W11_COUNT("telemetry.records_dropped");
      W11_TRACE_EVENT_AT(at, ::w11::obs::TraceKind::kCollectorPoll,
                         static_cast<std::uint64_t>(at.ns()), 0,
                         records_dropped_);
      return false;
    }
    ++records_written_;
    W11_COUNT("telemetry.records_written");
    // Batch the interval: build all AP rows, then one bulk append (one
    // reserve + one sortedness check instead of per-AP bookkeeping).
    std::vector<LittleTable::Row> batch;
    batch.reserve(ev.per_ap.size());
    for (const auto& m : ev.per_ap) {
      batch.push_back(LittleTable::Row{
          m.id.value(), at,
          {m.throughput_mbps, m.offered_mbps, m.utilization, m.airtime_share,
           m.mean_phy_rate_mbps, m.mean_bitrate_efficiency,
           static_cast<double>(m.cochannel_interferers)}});
    }
    ap_stats_.append(std::move(batch));
    net_stats_.insert(0, at,
                      {ev.total_throughput_mbps, ev.total_offered_mbps,
                       static_cast<double>(net.total_switches()),
                       static_cast<double>(records_dropped_),
                       static_cast<double>(records_written_)});
    W11_TRACE_EVENT_AT(at, ::w11::obs::TraceKind::kCollectorPoll,
                       static_cast<std::uint64_t>(at.ns()),
                       ev.per_ap.size() + 1, records_dropped_);
    return true;
  }

  [[nodiscard]] const LittleTable& ap_stats() const { return ap_stats_; }
  [[nodiscard]] const LittleTable& net_stats() const { return net_stats_; }
  [[nodiscard]] LittleTable& ap_stats() { return ap_stats_; }
  [[nodiscard]] LittleTable& net_stats() { return net_stats_; }

 private:
  LittleTable ap_stats_;
  LittleTable net_stats_;
  int drop_pending_ = 0;
  std::uint64_t records_dropped_ = 0;
  std::uint64_t records_written_ = 0;
};

}  // namespace w11::telemetry
