#pragma once
// Collector: periodically snapshots a flowsim network evaluation into
// LittleTable rows — the shape of the Meraki backend's polling loop (§2.2).

#include "flowsim/network.hpp"
#include "telemetry/littletable.hpp"

namespace w11::telemetry {

class NetworkCollector {
 public:
  NetworkCollector()
      : ap_stats_("ap_stats", {"throughput_mbps", "offered_mbps", "utilization",
                               "airtime_share", "mean_phy_rate_mbps",
                               "bitrate_efficiency", "cochannel_interferers"}),
        net_stats_("network_stats",
                   {"total_throughput_mbps", "total_offered_mbps",
                    "channel_switches"}) {}

  // Record one polling interval.
  void record(const flowsim::Network& net, const flowsim::Evaluation& ev,
              Time at) {
    for (const auto& m : ev.per_ap) {
      ap_stats_.insert(m.id.value(), at,
                       {m.throughput_mbps, m.offered_mbps, m.utilization,
                        m.airtime_share, m.mean_phy_rate_mbps,
                        m.mean_bitrate_efficiency,
                        static_cast<double>(m.cochannel_interferers)});
    }
    net_stats_.insert(0, at,
                      {ev.total_throughput_mbps, ev.total_offered_mbps,
                       static_cast<double>(net.total_switches())});
  }

  [[nodiscard]] const LittleTable& ap_stats() const { return ap_stats_; }
  [[nodiscard]] const LittleTable& net_stats() const { return net_stats_; }
  [[nodiscard]] LittleTable& ap_stats() { return ap_stats_; }
  [[nodiscard]] LittleTable& net_stats() { return net_stats_; }

 private:
  LittleTable ap_stats_;
  LittleTable net_stats_;
};

}  // namespace w11::telemetry
