#pragma once
// FleetIngest: batched multi-network telemetry ingestion (§2.2 at scale).
//
// The backend polls every campus and lands the interval's rows in bulk; at
// fleet scale the write path must be one reserve + one append per campus
// poll, never per-AP inserts — and the tables must tolerate the resulting
// timestamp interleaving across campuses (LittleTable's retention probe
// reads the tracked oldest timestamp, not the sort index, exactly so these
// seams stay O(1) per batch).

#include <cstdint>
#include <vector>

#include "flowsim/scan.hpp"
#include "obs/gate.hpp"
#include "telemetry/littletable.hpp"

namespace w11::telemetry {

class FleetIngest {
 public:
  FleetIngest()
      : ap_stats_("fleet_ap_stats",
                  {"campus", "utilization", "load", "neighbors"}),
        plan_stats_("fleet_plans",
                    {"n_aps", "netp_log", "improved", "plan_seconds"}) {}

  // One campus's slice of a polling interval: one reserve, one bulk
  // append, staged through a scratch batch whose capacity persists across
  // polls (steady-state ingest allocates no outer batch vector).
  void ingest_scans(std::uint32_t campus_key,
                    const std::vector<ApScan>& scans, Time at) {
    scratch_.clear();
    scratch_.reserve(scans.size());
    for (const ApScan& s : scans) {
      scratch_.push_back(LittleTable::Row{
          s.id.value(), at,
          {static_cast<double>(campus_key), s.utilization_current,
           s.total_load(), static_cast<double>(s.neighbors.size())}});
    }
    rows_ingested_ += scratch_.size();
    W11_COUNT_N("telemetry.fleet_rows", scratch_.size());
    ap_stats_.append_reusing(scratch_);
  }

  // One delivered campus plan (entity = campus key).
  void ingest_plan(std::uint32_t campus_key, Time at, std::uint32_t n_aps,
                   double netp_log, bool improved, double plan_seconds) {
    plan_stats_.insert(campus_key, at,
                       {static_cast<double>(n_aps), netp_log,
                        improved ? 1.0 : 0.0, plan_seconds});
    ++plans_ingested_;
    W11_COUNT("telemetry.fleet_plans");
  }

  [[nodiscard]] std::uint64_t rows_ingested() const { return rows_ingested_; }
  [[nodiscard]] std::uint64_t plans_ingested() const { return plans_ingested_; }
  [[nodiscard]] const LittleTable& ap_stats() const { return ap_stats_; }
  [[nodiscard]] const LittleTable& plan_stats() const { return plan_stats_; }
  [[nodiscard]] LittleTable& ap_stats() { return ap_stats_; }
  [[nodiscard]] LittleTable& plan_stats() { return plan_stats_; }

 private:
  LittleTable ap_stats_;
  LittleTable plan_stats_;
  std::vector<LittleTable::Row> scratch_;  // reused across ingest_scans calls
  std::uint64_t rows_ingested_ = 0;
  std::uint64_t plans_ingested_ = 0;
};

}  // namespace w11::telemetry
