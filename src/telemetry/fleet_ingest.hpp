#pragma once
// FleetIngest: batched multi-network telemetry ingestion (§2.2 at scale).
//
// The backend polls every campus and lands the interval's rows in bulk; at
// fleet scale the write path must be one reserve + one append per campus
// poll, never per-AP inserts — and the tables must tolerate the resulting
// timestamp interleaving across campuses (LittleTable's retention probe
// reads the tracked oldest timestamp, not the sort index, exactly so these
// seams stay O(1) per batch).

#include <cstdint>
#include <vector>

#include "fleet/queues.hpp"
#include "flowsim/scan.hpp"
#include "obs/gate.hpp"
#include "telemetry/littletable.hpp"

namespace w11::telemetry {

class FleetIngest {
 public:
  FleetIngest()
      : ap_stats_("fleet_ap_stats",
                  {"campus", "utilization", "load", "neighbors"}),
        plan_stats_("fleet_plans",
                    {"n_aps", "netp_log", "improved", "plan_seconds"}) {
#if W11_OBS
    // Eager handles: the pipeline metrics must exist (at zero) in every
    // snapshot — rate SLIs over quiet polls are undefined when the name is
    // absent (DESIGN.md §17) — so registration cannot wait for a first hit.
    obs::MetricsRegistry& mr = obs::metrics();
    m_ingest_hw_ = mr.gauge("fleet.ingest.high_water");
    m_output_hw_ = mr.gauge("fleet.output.high_water");
    m_epochs_dropped_ = mr.counter("fleet.epochs_dropped");
    m_output_rejected_ = mr.counter("fleet.output.rejected");
    m_jobs_deferred_ = mr.counter("fleet.jobs_deferred");
#endif
  }

  // One campus's slice of a polling interval: one reserve, one bulk
  // append, staged through a scratch batch whose capacity persists across
  // polls (steady-state ingest allocates no outer batch vector).
  void ingest_scans(std::uint32_t campus_key,
                    const std::vector<ApScan>& scans, Time at) {
    scratch_.clear();
    scratch_.reserve(scans.size());
    for (const ApScan& s : scans) {
      scratch_.push_back(LittleTable::Row{
          s.id.value(), at,
          {static_cast<double>(campus_key), s.utilization_current,
           s.total_load(), static_cast<double>(s.neighbors.size())}});
    }
    rows_ingested_ += scratch_.size();
    W11_COUNT_N("telemetry.fleet_rows", scratch_.size());
    ap_stats_.append_reusing(scratch_);
  }

  // One delivered campus plan (entity = campus key).
  void ingest_plan(std::uint32_t campus_key, Time at, std::uint32_t n_aps,
                   double netp_log, bool improved, double plan_seconds) {
    plan_stats_.insert(campus_key, at,
                       {static_cast<double>(n_aps), netp_log,
                        improved ? 1.0 : 0.0, plan_seconds});
    ++plans_ingested_;
    W11_COUNT("telemetry.fleet_plans");
  }

  // One controller poll's pipeline health: bounded-queue high-water marks
  // land as gauges, the MPMC ingest drop counter (epochs_dropped ==
  // ingest_q.rejected) and backpressure deferrals as cumulative counters
  // (inputs are cumulative; deltas are added so the registry counter
  // tracks the source). Call once per poll from the ticking thread.
  void ingest_pipeline(const fleet::QueueStats& ingest_q,
                       const fleet::QueueStats& output_q,
                       std::uint64_t jobs_deferred) {
    ++pipeline_polls_;
#if W11_OBS
    if (!obs::metrics().enabled()) return;
    m_ingest_hw_.set(static_cast<double>(ingest_q.high_water));
    m_output_hw_.set(static_cast<double>(output_q.high_water));
    m_epochs_dropped_.add(ingest_q.rejected - last_epochs_dropped_);
    last_epochs_dropped_ = ingest_q.rejected;
    m_output_rejected_.add(output_q.rejected - last_output_rejected_);
    last_output_rejected_ = output_q.rejected;
    m_jobs_deferred_.add(jobs_deferred - last_jobs_deferred_);
    last_jobs_deferred_ = jobs_deferred;
#else
    (void)ingest_q;
    (void)output_q;
    (void)jobs_deferred;
#endif
  }

  [[nodiscard]] std::uint64_t pipeline_polls() const { return pipeline_polls_; }
  [[nodiscard]] std::uint64_t rows_ingested() const { return rows_ingested_; }
  [[nodiscard]] std::uint64_t plans_ingested() const { return plans_ingested_; }
  [[nodiscard]] const LittleTable& ap_stats() const { return ap_stats_; }
  [[nodiscard]] const LittleTable& plan_stats() const { return plan_stats_; }
  [[nodiscard]] LittleTable& ap_stats() { return ap_stats_; }
  [[nodiscard]] LittleTable& plan_stats() { return plan_stats_; }

 private:
  LittleTable ap_stats_;
  LittleTable plan_stats_;
  std::vector<LittleTable::Row> scratch_;  // reused across ingest_scans calls
  std::uint64_t rows_ingested_ = 0;
  std::uint64_t plans_ingested_ = 0;
  std::uint64_t pipeline_polls_ = 0;
#if W11_OBS
  obs::Gauge m_ingest_hw_;
  obs::Gauge m_output_hw_;
  obs::Counter m_epochs_dropped_;
  obs::Counter m_output_rejected_;
  obs::Counter m_jobs_deferred_;
  std::uint64_t last_epochs_dropped_ = 0;
  std::uint64_t last_output_rejected_ = 0;
  std::uint64_t last_jobs_deferred_ = 0;
#endif
};

}  // namespace w11::telemetry
