#include "telemetry/littletable.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace w11::telemetry {

LittleTable::LittleTable(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  W11_CHECK_MSG(!columns_.empty(), "a table needs at least one column");
}

std::size_t LittleTable::column_index(std::string_view column) const {
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i] == column) return i;
  throw std::logic_error("LittleTable '" + name_ + "': unknown column '" +
                         std::string(column) + "'");
}

void LittleTable::insert(std::uint32_t entity, Time at,
                         std::vector<double> values) {
  W11_CHECK_MSG(values.size() == columns_.size(), "schema width mismatch");
  if (!rows_.empty() && at < rows_.back().at) sorted_ = false;
  oldest_ = rows_.empty() ? at : std::min(oldest_, at);
  rows_.push_back(Row{entity, at, std::move(values)});
  newest_ = std::max(newest_, at);
  maybe_compact();
}

void LittleTable::reserve_rows(std::size_t rows) {
  rows_.reserve(rows_.size() + rows);
}

void LittleTable::append(std::vector<Row> batch) { append_reusing(batch); }

void LittleTable::append_reusing(std::vector<Row>& batch) {
  if (batch.empty()) return;
  for (const Row& r : batch)
    W11_CHECK_MSG(r.values.size() == columns_.size(), "schema width mismatch");
  // One sortedness check across the seam plus the batch's own ordering;
  // per-row checks are redundant once the batch is known monotone.
  Time prev = rows_.empty() ? batch.front().at : rows_.back().at;
  for (const Row& r : batch) {
    if (r.at < prev) {
      sorted_ = false;
      break;
    }
    prev = r.at;
  }
  rows_.reserve(rows_.size() + batch.size());
  if (rows_.empty()) oldest_ = batch.front().at;
  for (const Row& r : batch) {
    newest_ = std::max(newest_, r.at);
    oldest_ = std::min(oldest_, r.at);
  }
  std::move(batch.begin(), batch.end(), std::back_inserter(rows_));
  batch.clear();
  maybe_compact();
}

void LittleTable::ensure_sorted() const {
  if (sorted_) return;
  std::stable_sort(rows_.begin(), rows_.end(),
                   [](const Row& a, const Row& b) { return a.at < b.at; });
  sorted_ = true;
}

std::vector<LittleTable::Row> LittleTable::query(
    Time from, Time to, std::optional<std::uint32_t> entity) const {
  ensure_sorted();
  const auto lo = std::lower_bound(
      rows_.begin(), rows_.end(), from,
      [](const Row& r, Time t) { return r.at < t; });
  std::vector<Row> out;
  for (auto it = lo; it != rows_.end() && it->at <= to; ++it) {
    if (entity && it->entity != *entity) continue;
    out.push_back(*it);
  }
  return out;
}

std::vector<std::pair<Time, double>> LittleTable::aggregate(
    std::string_view column, Agg agg, Time from, Time to, Time bucket) const {
  W11_CHECK(bucket > Time{0});
  const std::size_t col = column_index(column);
  ensure_sorted();

  const bool quantile_agg = agg == Agg::kP50 || agg == Agg::kP95;

  std::vector<std::pair<Time, double>> out;
  struct Acc {
    double sum = 0.0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    std::size_t n = 0;
    std::vector<double> vals;  // only filled for quantile aggregates
  };
  Acc acc;
  Time bucket_start = from;

  // Interpolated quantile over the bucket's values — the exact formula of
  // common::Samples::quantile (pos = q·(n−1), linear between neighbors).
  auto quantile_of = [](std::vector<double>& vals, double q) {
    std::sort(vals.begin(), vals.end());
    if (vals.size() == 1) return vals[0];
    const double pos = q * static_cast<double>(vals.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, vals.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return vals[lo] * (1.0 - frac) + vals[hi] * frac;
  };

  auto flush = [&] {
    if (acc.n == 0) return;
    double v = 0.0;
    switch (agg) {
      case Agg::kSum: v = acc.sum; break;
      case Agg::kMean: v = acc.sum / static_cast<double>(acc.n); break;
      case Agg::kMin: v = acc.mn; break;
      case Agg::kMax: v = acc.mx; break;
      case Agg::kCount: v = static_cast<double>(acc.n); break;
      case Agg::kP50: v = quantile_of(acc.vals, 0.50); break;
      case Agg::kP95: v = quantile_of(acc.vals, 0.95); break;
    }
    out.emplace_back(bucket_start, v);
    acc = Acc{};
  };

  const auto lo = std::lower_bound(
      rows_.begin(), rows_.end(), from,
      [](const Row& r, Time t) { return r.at < t; });
  for (auto it = lo; it != rows_.end() && it->at <= to; ++it) {
    while (it->at >= bucket_start + bucket) {
      flush();
      bucket_start += bucket;
    }
    const double v = it->values[col];
    acc.sum += v;
    acc.mn = std::min(acc.mn, v);
    acc.mx = std::max(acc.mx, v);
    ++acc.n;
    if (quantile_agg) acc.vals.push_back(v);
  }
  flush();
  return out;
}

double LittleTable::aggregate_scalar(std::string_view column, Agg agg,
                                     Time from, Time to) const {
  const auto buckets = aggregate(column, agg, from, to, to - from + Time{1});
  if (buckets.empty()) return 0.0;
  return buckets.front().second;
}

void LittleTable::trim_before(Time cutoff) {
  ensure_sorted();
  const auto lo = std::lower_bound(
      rows_.begin(), rows_.end(), cutoff,
      [](const Row& r, Time t) { return r.at < t; });
  rows_trimmed_ += static_cast<std::uint64_t>(lo - rows_.begin());
  rows_.erase(rows_.begin(), lo);
  if (!rows_.empty()) oldest_ = rows_.front().at;  // sorted here
}

void LittleTable::set_retention(Retention r) {
  retention_ = r;
  // Enforce immediately so shrinking the window takes effect without
  // waiting for the next ingest to cross the slack threshold.
  if (retention_.max_age > Time{0} && !rows_.empty())
    trim_before(newest_ - retention_.max_age);
  if (retention_.max_rows > 0 && rows_.size() > retention_.max_rows) {
    ensure_sorted();
    const std::size_t drop = rows_.size() - retention_.max_rows;
    rows_trimmed_ += drop;
    rows_.erase(rows_.begin(),
                rows_.begin() + static_cast<std::ptrdiff_t>(drop));
    if (!rows_.empty()) oldest_ = rows_.front().at;
  }
}

void LittleTable::maybe_compact() {
  // Amortization: act only once the window is exceeded by slack, so the
  // sort + prefix erase is paid once per ~window/kCompactSlack ingested
  // rows instead of on every insert.
  bool over = false;
  if (retention_.max_rows > 0 &&
      rows_.size() > retention_.max_rows + retention_.max_rows / kCompactSlack)
    over = true;
  if (!over && retention_.max_age > Time{0} && !rows_.empty()) {
    const Time budget =
        retention_.max_age + time::nanos(retention_.max_age.ns() /
                                         static_cast<std::int64_t>(kCompactSlack));
    // The incrementally tracked oldest timestamp, not the sort index: a
    // batch append must not force a sort just to ask "is anything old?".
    if (newest_ - oldest_ > budget) over = true;
  }
  if (!over) return;
  if (retention_.max_age > Time{0})
    trim_before(newest_ - retention_.max_age);
  if (retention_.max_rows > 0 && rows_.size() > retention_.max_rows) {
    ensure_sorted();
    const std::size_t drop = rows_.size() - retention_.max_rows;
    rows_trimmed_ += drop;
    rows_.erase(rows_.begin(),
                rows_.begin() + static_cast<std::ptrdiff_t>(drop));
    if (!rows_.empty()) oldest_ = rows_.front().at;
  }
}

}  // namespace w11::telemetry
