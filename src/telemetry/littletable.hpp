#pragma once
// LittleTable-style time-series storage (§2.2, [42]).
//
// The Meraki backend aggregates AP statistics into a clustered time-series
// database; this is an in-memory equivalent with the same usage pattern:
// fixed schema per table, rows keyed by (entity, timestamp), appended in
// (mostly) time order, queried by time range, bucket-aggregated for
// dashboards, and trimmed by retention.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace w11::telemetry {

class LittleTable {
 public:
  struct Row {
    std::uint32_t entity = 0;
    Time at{};
    std::vector<double> values;
  };

  // kP50/kP95 compute the bucket's interpolated quantile (same formula as
  // common::Samples::quantile, so dashboard numbers and bench summaries
  // agree); they buffer the bucket's values, unlike the streaming aggregates.
  enum class Agg { kSum, kMean, kMin, kMax, kCount, kP50, kP95 };

  LittleTable(std::string name, std::vector<std::string> columns);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  // Insert one row. Values must match the schema width. Out-of-order
  // timestamps are accepted (a sort index is rebuilt lazily).
  void insert(std::uint32_t entity, Time at, std::vector<double> values);

  // Pre-size the row store for `rows` additional rows (ingestion batching:
  // one reallocation for a whole polling interval instead of one per AP).
  void reserve_rows(std::size_t rows);

  // Bulk append: moves a whole batch in, validating each row's width and
  // updating sortedness once. Equivalent to insert() per row, but with a
  // single reserve and no per-row sorted_ bookkeeping.
  void append(std::vector<Row> batch);

  // Same, for callers that reuse one scratch batch across polls: rows are
  // moved out and `batch` is cleared with its capacity intact, so a
  // steady-state campus poll allocates no outer batch vector at all.
  void append_reusing(std::vector<Row>& batch);

  // All rows in [from, to], optionally restricted to one entity.
  [[nodiscard]] std::vector<Row> query(Time from, Time to,
                                       std::optional<std::uint32_t> entity =
                                           std::nullopt) const;

  // Aggregate `column` over fixed time buckets within [from, to].
  // Returns (bucket start, aggregate) for every non-empty bucket.
  [[nodiscard]] std::vector<std::pair<Time, double>> aggregate(
      std::string_view column, Agg agg, Time from, Time to, Time bucket) const;

  // Single aggregate over the whole range.
  [[nodiscard]] double aggregate_scalar(std::string_view column, Agg agg,
                                        Time from, Time to) const;

  // Retention: drop rows strictly before `cutoff`.
  void trim_before(Time cutoff);

  // Retention window, enforced by amortized compaction at ingest time (the
  // backend's tables are trimmed by the writer, not by readers):
  //   * max_age: rows older than this relative to the newest row go;
  //     Time{0} disables the age bound.
  //   * max_rows: hard cap on resident rows (oldest evicted first);
  //     0 disables the cap.
  // Compaction runs when the window is exceeded by kCompactSlack — one
  // erase per ~slack ingests, not one per row — so steady-state ingest
  // stays amortized O(1) per row. The age probe reads the incrementally
  // tracked oldest resident timestamp, never the sort index: multi-network
  // fleet ingest appends per-campus batches whose timestamps interleave
  // across campuses (every seam is out-of-order), and paying a full table
  // sort per batch just to ask "is anything too old?" would regress ingest
  // to O(n log n) per poll.
  struct Retention {
    Time max_age{0};
    std::size_t max_rows = 0;
  };
  void set_retention(Retention r);
  [[nodiscard]] const Retention& retention() const { return retention_; }
  // Rows dropped by retention so far (trim_before included).
  [[nodiscard]] std::uint64_t rows_trimmed() const { return rows_trimmed_; }

  // Exceed the window by 1/kCompactSlack of its size before compacting.
  static constexpr std::size_t kCompactSlack = 8;

 private:
  [[nodiscard]] std::size_t column_index(std::string_view column) const;
  void ensure_sorted() const;
  void maybe_compact();

  std::string name_;
  std::vector<std::string> columns_;
  mutable std::vector<Row> rows_;
  mutable bool sorted_ = true;
  Retention retention_;
  Time newest_{};  // max timestamp ever ingested (age anchor)
  Time oldest_{};  // min timestamp resident (meaningful while !rows_.empty())
  std::uint64_t rows_trimmed_ = 0;
};

}  // namespace w11::telemetry
