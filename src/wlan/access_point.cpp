#include "wlan/access_point.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/gate.hpp"
#include "phy/mcs.hpp"

namespace w11 {

AccessPoint::AccessPoint(Simulator& sim, mac::Medium& medium, Config cfg, Rng rng)
    : sim_(sim), medium_(medium), cfg_(cfg), rng_(std::move(rng)) {
  for (AccessCategory ac : kAllAccessCategories) {
    auto q = std::make_unique<AcQueue>(*this, ac);
    medium_.attach(q.get());
    ac_queues_[ac_index(ac)] = std::move(q);
  }
}

AccessPoint::~AccessPoint() {
  for (auto& q : ac_queues_)
    if (q) medium_.detach(q.get());
}

void AccessPoint::associate(ClientStation* client) {
  W11_CHECK(client != nullptr);
  const StationId id = client->id();
  W11_CHECK_MSG(!clients_.contains(id), "client already associated");

  ClientCtx ctx;
  ctx.station = client;
  RateController::Config down_cfg = cfg_.rate_control;
  down_cfg.tx_power = kApTxPowerDbm;
  ctx.rc = std::make_unique<RateController>(
      cfg_.prop, cfg_.pos, client->position(), cfg_.channel.band,
      cfg_.channel.width, cfg_.cap, client->capability(), down_cfg, rng_.fork());

  RateController::Config up_cfg = cfg_.rate_control;
  up_cfg.tx_power = kClientTxPowerDbm;
  auto uplink_rc = std::make_unique<RateController>(
      cfg_.prop, cfg_.pos, client->position(), cfg_.channel.band,
      cfg_.channel.width, cfg_.cap, client->capability(), up_cfg, rng_.fork());

  clients_.emplace(id, std::move(ctx));
  client_order_.push_back(id);
  client->attach_ap(this, std::move(uplink_rc));
}

std::size_t AccessPoint::disassociate(StationId station) {
  const auto it = clients_.find(station);
  if (it == clients_.end()) return 0;
  std::size_t dropped = 0;
  for (const auto& q : it->second.queues) dropped += q.size();
  clients_.erase(it);
  std::erase(client_order_, station);
  for (auto& cursor : rr_cursor_) cursor = 0;
  for (AccessCategory ac : kAllAccessCategories) update_backlog(ac);
  return dropped;
}

void AccessPoint::wire_in(TcpSegment seg) {
  seg.ap_rx_at = sim_.now();
  const AccessCategory ac = dscp_to_ac(seg.dscp);

  ClientCtx* ctx = ctx_of(seg.dst_station);
  if (ctx == nullptr) return;  // not associated here

  bool priority = false;
  if (interceptor_ != nullptr && seg.has_payload() && !seg.udp) {
    switch (interceptor_->on_downlink_data(seg)) {
      case TcpInterceptor::DataAction::kDrop:
        return;
      case TcpInterceptor::DataAction::kForwardPriority:
        priority = true;
        break;
      case TcpInterceptor::DataAction::kForward:
        break;
    }
  }

  if (seg.has_payload() && !seg.udp) {
    // Record for the AP-side TCP latency metric (§4.6.2).
    auto& pend = tcp_pending_[seg.flow];
    pend.insert_or_assign(seg.seq_end(), sim_.now());
    if (pend.size() > 4096) pend.pop_front();  // bound stale state
  }

  enqueue(*ctx, ac, QueuedMpdu{std::move(seg), 0, sim_.now()}, priority);
}

void AccessPoint::inject_downlink(TcpSegment seg, bool priority) {
  ClientCtx* ctx = ctx_of(seg.dst_station);
  if (ctx == nullptr) return;
  seg.ap_rx_at = sim_.now();
  enqueue(*ctx, dscp_to_ac(seg.dscp), QueuedMpdu{std::move(seg), 0, sim_.now()},
          priority);
}

void AccessPoint::send_to_wire(TcpSegment seg) {
  if (wire_out_) wire_out_(std::move(seg));
}

void AccessPoint::uplink_receive(TcpSegment seg) {
  if (seg.is_ack) {
    // TCP latency: every data segment this ACK covers completes now.
    auto it = tcp_pending_.find(seg.flow);
    if (it != tcp_pending_.end()) {
      auto& pend = it->second;
      while (!pend.empty() && pend.front().first <= seg.ack) {
        stats_.tcp_latency.add((sim_.now() - pend.front().second).ms());
        pend.pop_front();
      }
    }
    if (interceptor_ != nullptr && interceptor_->on_uplink_ack(seg)) {
      ++stats_.acks_suppressed;
      return;
    }
  }
  ++stats_.segments_forwarded;
  if (wire_out_) wire_out_(std::move(seg));
}

void AccessPoint::enable_udp_saturation(StationId station, Bytes mpdu_payload) {
  ClientCtx* ctx = ctx_of(station);
  W11_CHECK_MSG(ctx != nullptr, "station not associated");
  ctx->udp_saturate = true;
  ctx->udp_payload = mpdu_payload;
  refill_udp(*ctx);
}

void AccessPoint::refill_udp(ClientCtx& ctx) {
  if (!ctx.udp_saturate) return;
  auto& q = ctx.queues[ac_index(AccessCategory::BE)];
  while (q.size() < cfg_.per_client_queue_cap) {
    TcpSegment seg;
    seg.dst_station = ctx.station->id();
    seg.udp = true;
    seg.seq = ctx.udp_seq;
    seg.payload = static_cast<std::uint32_t>(ctx.udp_payload.count());
    ctx.udp_seq += seg.payload;
    seg.ap_rx_at = sim_.now();
    q.push_back(QueuedMpdu{std::move(seg), 0, sim_.now()});
  }
  update_backlog(AccessCategory::BE);
}

void AccessPoint::enqueue(ClientCtx& ctx, AccessCategory ac, QueuedMpdu mpdu,
                          bool priority) {
  auto& q = ctx.queues[ac_index(ac)];
  if (q.size() >= cfg_.per_client_queue_cap) {
    ++stats_.queue_drops;
    ++stats_.queue_drops_by_ac[ac_index(ac)];
    return;
  }
  if (priority) {
    q.push_front(std::move(mpdu));
  } else {
    q.push_back(std::move(mpdu));
  }
  update_backlog(ac);
}

void AccessPoint::update_backlog(AccessCategory ac) {
  bool any = false;
  for (const auto& [id, ctx] : clients_) {
    if (!ctx.queues[ac_index(ac)].empty()) {
      any = true;
      break;
    }
  }
  medium_.set_backlogged(ac_queues_[ac_index(ac)].get(), any);
}

mac::TxDescriptor AccessPoint::begin_txop(AccessCategory ac) {
  const std::size_t aci = ac_index(ac);
  // Round-robin scheduler: next client with frames in this AC.
  ClientCtx* chosen = nullptr;
  const std::size_t n = client_order_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = (rr_cursor_[aci] + step) % n;
    ClientCtx& ctx = clients_.at(client_order_[idx]);
    if (!ctx.queues[aci].empty()) {
      chosen = &ctx;
      rr_cursor_[aci] = (idx + 1) % n;
      break;
    }
  }
  W11_CHECK_MSG(chosen != nullptr, "TXOP granted with no backlog");

  PendingTxop txop;
  txop.client = chosen->station->id();
  txop.decision = chosen->rc->decide_txop();
  auto& q = chosen->queues[aci];
  Time airtime = mac::kVhtPreamble;
  // Batch building: the A-MPDU holds up to 64 MPDUs; with A-MSDU enabled
  // each MPDU bundles up to k MSDUs (consecutive queue entries), paying the
  // MPDU framing once per bundle plus a 14 B subframe header per MSDU.
  const int msdus_per_mpdu = std::max(1, cfg_.amsdu_max_msdus);
  int bundle_id = -1;
  int in_bundle = msdus_per_mpdu;  // force a new bundle on first MSDU
  int bundles = 0;
  while (!q.empty()) {
    const bool new_bundle = in_bundle >= msdus_per_mpdu;
    if (new_bundle && bundles >= mac::kMaxAmpduMpdus) break;
    Bytes sz = q.front().seg.wire_size() + Bytes{14};  // A-MSDU subframe
    if (new_bundle) sz += mac::kPerMpduOverhead;
    const Time add = transmit_time(sz, txop.decision.rate);
    if (airtime + add > mac::kMaxAmpduAirtime && !txop.batch.empty()) break;
    if (new_bundle) {
      ++bundle_id;
      ++bundles;
      in_bundle = 0;
    }
    airtime += add;
    QueuedMpdu mpdu = std::move(q.front());
    mpdu.bundle = bundle_id;
    txop.batch.push_back(std::move(mpdu));
    q.pop_front();
    ++in_bundle;
  }

  Time duration =
      airtime + mac::kSifs + mac::control_frame_airtime(mac::kBlockAckBytes);
  if (cfg_.rts_protected) {
    duration += mac::control_frame_airtime(mac::kRtsBytes) + mac::kSifs +
                mac::control_frame_airtime(mac::kCtsBytes) + mac::kSifs;
  }
  txop.n_bundles = bundles;
  // The A-MPDU occupies [now, now+duration] on the air; the sim is
  // single-threaded, so processed_events() is a deterministic ordinal.
  W11_TRACE_SPAN_AT(sim_.now(), sim_.now() + duration,
                    ::w11::obs::TraceKind::kAmpduTx, sim_.processed_events(),
                    static_cast<std::uint64_t>(bundles), txop.batch.size());
  W11_HISTOGRAM("mac.ampdu_bundles", bundles);
  W11_HISTOGRAM("mac.ampdu_frames", txop.batch.size());
  pending_[aci] = std::move(txop);
  return mac::TxDescriptor{duration, bundles};
}

void AccessPoint::end_txop(AccessCategory ac, bool collided) {
  const std::size_t aci = ac_index(ac);
  W11_CHECK(pending_[aci].has_value());
  PendingTxop txop = std::move(*pending_[aci]);
  pending_[aci].reset();

  ClientCtx* ctx = ctx_of(txop.client);
  if (ctx == nullptr) {
    // Client disassociated (roamed away) while the TXOP was on the air;
    // its frames are moot.
    update_backlog(ac);
    return;
  }
  auto& q = ctx->queues[aci];

  if (collided) {
    // RTS collision: the data never went out; restore the batch unscathed.
    for (auto it = txop.batch.rbegin(); it != txop.batch.rend(); ++it)
      q.push_front(std::move(*it));
  } else {
    ctx->ampdu_sizes.add(static_cast<double>(txop.n_bundles));
    const int retry_limit = edca_params(ac).retry_limit;
    std::vector<QueuedMpdu> retries;
    // Per-MPDU delivery: all MSDUs in an A-MSDU bundle share one FCS, so
    // the whole bundle succeeds or fails together on its combined length.
    // Bundle ids are dense (0..n_bundles-1, bounded by the A-MPDU MPDU
    // cap), so a fixed bitmask replaces the former std::map<int, bool>: one
    // pass accumulates per-bundle lengths, then one Bernoulli draw per
    // bundle in increasing id order — the same draw order as the old
    // first-occurrence walk, so RNG streams are unchanged.
    static_assert(mac::kMaxAmpduMpdus <= 64,
                  "bundle_acked bitmask holds one bit per A-MPDU bundle");
    std::array<int, mac::kMaxAmpduMpdus> bundle_bytes;
    bundle_bytes.fill(40);  // MPDU framing
    for (const auto& mpdu : txop.batch)
      bundle_bytes[static_cast<std::size_t>(mpdu.bundle)] +=
          static_cast<int>(mpdu.seg.wire_size().count()) + 14;
    std::uint64_t bundle_acked = 0;
    for (int b = 0; b < txop.n_bundles; ++b) {
      const double per = mcs::packet_error_rate(
          txop.decision.mcs, txop.decision.snr,
          bundle_bytes[static_cast<std::size_t>(b)]);
      if (!rng_.bernoulli(per) && txop.decision.viable)
        bundle_acked |= std::uint64_t{1} << b;
    }
    for (auto& mpdu : txop.batch) {
      const bool acked = (bundle_acked >> mpdu.bundle) & 1u;
      if (acked) {
        ++stats_.mpdus_acked_by_ac[aci];
        stats_.latency_80211_by_ac[aci].add((sim_.now() - mpdu.enqueued_at).ms());
        // "Bad hint": MAC-acked but lost before the transport (§5.7).
        const bool reaches_transport =
            cfg_.bad_hint_rate <= 0.0 || !rng_.bernoulli(cfg_.bad_hint_rate);
        if (interceptor_ != nullptr && mpdu.seg.has_payload() && !mpdu.seg.udp)
          interceptor_->on_80211_delivered(mpdu.seg);
        if (reaches_transport) ctx->station->receive_mpdu(mpdu.seg);
      } else if (++mpdu.retries <= retry_limit) {
        retries.push_back(std::move(mpdu));
      } else {
        ++stats_.mpdus_lost_by_ac[aci];
        if (interceptor_ != nullptr && mpdu.seg.has_payload() && !mpdu.seg.udp)
          interceptor_->on_mpdu_dropped(mpdu.seg);
      }
    }
    // Failed MPDUs return to the head so TCP ordering is preserved as much
    // as possible.
    for (auto it = retries.rbegin(); it != retries.rend(); ++it)
      q.push_front(std::move(*it));
    refill_udp(*ctx);
  }
  update_backlog(ac);
}

AccessPoint::ClientCtx* AccessPoint::ctx_of(StationId id) {
  const auto it = clients_.find(id);
  return it == clients_.end() ? nullptr : &it->second;
}

const Samples& AccessPoint::ampdu_sizes(StationId station) const {
  const auto it = clients_.find(station);
  W11_CHECK_MSG(it != clients_.end(), "station not associated");
  return it->second.ampdu_sizes;
}

std::size_t AccessPoint::queue_depth(StationId station) const {
  const auto it = clients_.find(station);
  if (it == clients_.end()) return 0;
  std::size_t total = 0;
  for (const auto& q : it->second.queues) total += q.size();
  return total;
}

const RateController* AccessPoint::rate_controller(StationId station) const {
  const auto it = clients_.find(station);
  return it == clients_.end() ? nullptr : it->second.rc.get();
}

}  // namespace w11
