#pragma once
// 802.11ac access point datapath.
//
// The AP bridges a wired uplink and the wireless medium:
//   wire_in()  — downlink TCP data from the wired side is classified into an
//                EDCA access category, passed through the optional
//                TcpInterceptor (FastACK), and queued per client.
//   TXOPs      — one EDCA contention function per access category; a TXOP
//                serves one client with an A-MPDU bounded by 64 MPDUs /
//                5.3 ms; per-MPDU delivery is drawn from the PER model and
//                reported like a BlockAck.
//   uplink     — client TCP ACKs arrive over the air; the interceptor may
//                suppress them (FastACK) before they reach the wire.
//
// The AP also measures what the paper measures: per-AC 802.11 latency
// (frame-to-link-layer-ack, Fig. 4/10), AP-side TCP latency (data-to-TCP-ack,
// §4.6.2), per-client A-MPDU sizes (Fig. 15), and per-AC loss.

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/seq_containers.hpp"
#include "common/stats.hpp"
#include "mac/aggregation.hpp"
#include "mac/medium.hpp"
#include "net/tcp_segment.hpp"
#include "phy/propagation.hpp"
#include "wlan/capability.hpp"
#include "wlan/client.hpp"
#include "wlan/interceptor.hpp"
#include "wlan/rate_control.hpp"

namespace w11 {

class AccessPoint {
 public:
  struct Config {
    ApId id;
    Position pos;
    Channel channel{Band::G5, 36, ChannelWidth::MHz80};
    ApCapability cap;
    PropagationModel prop;
    RateController::Config rate_control;
    std::size_t per_client_queue_cap = 768;
    // Fraction of 802.11 ACKs that are "bad hints" (§5.7 fn. 15): the MAC
    // acknowledges but the transport never sees the data.
    double bad_hint_rate = 0.0;
    bool rts_protected = true;
    // A-MSDU bundling (§5.1): up to this many MSDUs share one MPDU. >1
    // multiplies the aggregation ceiling (64 MPDUs × k MSDUs) and amortizes
    // MPDU framing, at the cost of a larger loss unit — all MSDUs in a
    // bundle fail together.
    int amsdu_max_msdus = 1;
  };

  struct Stats {
    std::array<Samples, 4> latency_80211_by_ac;  // wire-in -> 802.11 ack
    std::array<std::uint64_t, 4> mpdus_acked_by_ac{};
    std::array<std::uint64_t, 4> mpdus_lost_by_ac{};  // retry exhaustion
    Samples tcp_latency;     // data processed -> TCP ACK processed (ms)
    std::uint64_t queue_drops = 0;       // downlink queue overflow
    std::array<std::uint64_t, 4> queue_drops_by_ac{};
    std::uint64_t acks_suppressed = 0;   // by the interceptor
    std::uint64_t segments_forwarded = 0;
  };

  using WireOutFn = std::function<void(TcpSegment)>;

  AccessPoint(Simulator& sim, mac::Medium& medium, Config cfg, Rng rng);
  ~AccessPoint();
  AccessPoint(const AccessPoint&) = delete;
  AccessPoint& operator=(const AccessPoint&) = delete;

  // Upstream path toward the TCP sender(s).
  void set_wire_out(WireOutFn fn) { wire_out_ = std::move(fn); }
  // Install / remove the FastACK agent.
  void set_interceptor(TcpInterceptor* agent) { interceptor_ = agent; }

  void associate(ClientStation* client);

  // Remove a client (roam-away, §5.5.4). Frames still queued for it are
  // dropped (they never reach the air) and their count is returned — the
  // roam-to AP's accelerator must be able to supply them from its cache.
  std::size_t disassociate(StationId station);

  // Downlink packet from the wired network.
  void wire_in(TcpSegment seg);

  // Local (interceptor-initiated) downlink injection, e.g. FastACK cache
  // retransmissions. Priority puts the segment at the head of its queue.
  void inject_downlink(TcpSegment seg, bool priority);

  // Interceptor-initiated upstream transmission (fast ACKs).
  void send_to_wire(TcpSegment seg);

  // Uplink frame received over the air from an associated client.
  void uplink_receive(TcpSegment seg);

  // Keep `station`'s BE queue saturated with UDP payload (Fig. 15 bound).
  void enable_udp_saturation(StationId station, Bytes mpdu_payload);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Samples& ampdu_sizes(StationId station) const;
  [[nodiscard]] std::size_t queue_depth(StationId station) const;
  [[nodiscard]] const RateController* rate_controller(StationId station) const;

 private:
  struct QueuedMpdu {
    TcpSegment seg;
    int retries = 0;
    Time enqueued_at{};
    int bundle = -1;  // A-MSDU bundle id within the current TXOP batch
  };

  struct ClientCtx {
    ClientStation* station = nullptr;
    std::unique_ptr<RateController> rc;
    std::array<std::deque<QueuedMpdu>, 4> queues;
    Samples ampdu_sizes;
    bool udp_saturate = false;
    Bytes udp_payload{1470};
    std::uint64_t udp_seq = 0;
  };

  // One EDCA contention function per access category.
  class AcQueue : public mac::Contender {
   public:
    AcQueue(AccessPoint& ap, AccessCategory ac) : ap_(ap), ac_(ac) {}
    mac::TxDescriptor begin_txop() override { return ap_.begin_txop(ac_); }
    void end_txop(bool collided) override { ap_.end_txop(ac_, collided); }
    [[nodiscard]] AccessCategory access_category() const override { return ac_; }

   private:
    AccessPoint& ap_;
    AccessCategory ac_;
  };

  struct PendingTxop {
    StationId client;
    RateController::Decision decision;
    std::vector<QueuedMpdu> batch;
    int n_bundles = 0;  // MPDU count (= batch size unless A-MSDU bundles)
  };

  mac::TxDescriptor begin_txop(AccessCategory ac);
  void end_txop(AccessCategory ac, bool collided);
  void enqueue(ClientCtx& ctx, AccessCategory ac, QueuedMpdu mpdu, bool priority);
  void refill_udp(ClientCtx& ctx);
  void update_backlog(AccessCategory ac);
  [[nodiscard]] ClientCtx* ctx_of(StationId id);
  [[nodiscard]] static std::size_t ac_index(AccessCategory ac) {
    return static_cast<std::size_t>(ac);
  }

  Simulator& sim_;
  mac::Medium& medium_;
  Config cfg_;
  Rng rng_;
  WireOutFn wire_out_;
  TcpInterceptor* interceptor_ = nullptr;

  std::array<std::unique_ptr<AcQueue>, 4> ac_queues_;
  std::array<std::optional<PendingTxop>, 4> pending_;
  std::array<std::size_t, 4> rr_cursor_{};

  std::unordered_map<StationId, ClientCtx> clients_;
  std::vector<StationId> client_order_;  // stable round-robin order

  // TCP-latency bookkeeping: flow -> (seq_end -> forwarded-at). Entries
  // arrive in (nearly) sequence order and retire front-first as ACKs cover
  // them, which is exactly the SeqRing access pattern.
  std::unordered_map<FlowId, SeqRing<Time>> tcp_pending_;

  Stats stats_;
};

}  // namespace w11
