#pragma once
// Client device capabilities as advertised at association time (Fig. 1).

#include "phy/channel.hpp"
#include "phy/mcs.hpp"

namespace w11 {

enum class WifiStandard : std::uint8_t { k80211g, k80211n, k80211ac };

[[nodiscard]] constexpr const char* to_string(WifiStandard s) {
  switch (s) {
    case WifiStandard::k80211g: return "802.11g";
    case WifiStandard::k80211n: return "802.11n";
    case WifiStandard::k80211ac: return "802.11ac";
  }
  return "?";
}

struct ClientCapability {
  WifiStandard standard = WifiStandard::k80211ac;
  bool supports_5ghz = true;
  ChannelWidth max_width = ChannelWidth::MHz80;
  int max_nss = 2;
  bool short_gi = true;
  bool supports_csa = true;  // honours Channel Switch Announcements (§4.3.1)

  [[nodiscard]] mcs::Capability to_mcs_capability() const {
    mcs::Capability c;
    c.max_width = max_width;
    c.max_nss = max_nss;
    c.short_gi = short_gi;
    // 802.11n tops out at MCS7-equivalent modulation (64-QAM 5/6).
    c.max_mcs = (standard == WifiStandard::k80211ac) ? mcs::kMaxMcs : 7;
    return c;
  }
};

struct ApCapability {
  ChannelWidth max_width = ChannelWidth::MHz80;
  int max_nss = 3;  // the paper's testbed APs are 3x3 wave-2
  bool short_gi = true;

  [[nodiscard]] mcs::Capability to_mcs_capability() const {
    return mcs::Capability{max_width, max_nss, mcs::kMaxMcs, short_gi};
  }
};

}  // namespace w11
