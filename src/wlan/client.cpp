#include "wlan/client.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "phy/mcs.hpp"
#include "wlan/access_point.hpp"

namespace w11 {

ClientStation::ClientStation(Simulator& sim, mac::Medium& medium, Config cfg, Rng rng)
    : sim_(sim), medium_(medium), cfg_(cfg), rng_(std::move(rng)) {}

ClientStation::~ClientStation() {
  if (attached_to_medium_) medium_.detach(this);
}

void ClientStation::attach_ap(AccessPoint* ap,
                              std::unique_ptr<RateController> uplink_rc) {
  W11_CHECK(ap != nullptr);
  ap_ = ap;
  uplink_rc_ = std::move(uplink_rc);
  if (!attached_to_medium_) {
    medium_.attach(this);
    attached_to_medium_ = true;
  }
}

void ClientStation::add_flow(FlowId flow) {
  W11_CHECK_MSG(!receivers_.contains(flow), "flow already registered");
  receivers_[flow] = std::make_unique<TcpReceiver>(
      sim_, flow, cfg_.receiver,
      [this](TcpSegment ack) {
        // ACK turnaround: device-side processing before the ACK can even
        // enter the uplink queue.
        const Time delay{rng_.uniform_int(cfg_.turnaround_min.ns(),
                                          cfg_.turnaround_max.ns())};
        sim_.schedule_after(delay, [this, a = std::move(ack)]() mutable {
          enqueue_ack(std::move(a));
        });
      });
}

void ClientStation::receive_mpdu(const TcpSegment& seg) {
  if (seg.udp) {
    udp_bytes_ += seg.payload;
    return;
  }
  const auto it = receivers_.find(seg.flow);
  if (it == receivers_.end()) return;  // stale flow
  it->second->on_data(seg);
}

void ClientStation::enqueue_ack(TcpSegment ack) {
  if (uplink_.size() >= cfg_.uplink_queue_cap) return;  // tail drop
  ack.dst_station = cfg_.id;
  uplink_.push_back(PendingAck{std::move(ack), 0});
  medium_.set_backlogged(this, true);
}

mac::TxDescriptor ClientStation::begin_txop() {
  W11_CHECK(!uplink_.empty());
  W11_CHECK(uplink_rc_ != nullptr);
  txop_decision_ = uplink_rc_->decide_txop();
  const RateMbps rate = txop_decision_.rate;

  in_flight_.clear();
  Time airtime = mac::kVhtPreamble;
  const auto ampdu_cap = static_cast<std::size_t>(
      std::min(cfg_.max_uplink_ampdu, mac::kMaxAmpduMpdus));
  while (!uplink_.empty() && in_flight_.size() < ampdu_cap) {
    const Bytes sz = uplink_.front().seg.wire_size() + mac::kPerMpduOverhead;
    const Time add = transmit_time(sz, rate);
    if (airtime + add > mac::kMaxAmpduAirtime && !in_flight_.empty()) break;
    airtime += add;
    in_flight_.push_back(std::move(uplink_.front()));
    uplink_.pop_front();
  }
  const Time duration =
      airtime + mac::kSifs + mac::control_frame_airtime(mac::kBlockAckBytes);
  return mac::TxDescriptor{duration, static_cast<int>(in_flight_.size())};
}

void ClientStation::end_txop(bool collided) {
  W11_CHECK(ap_ != nullptr);
  if (collided) {
    // The whole exchange failed before data went out (RTS collision); put
    // the batch back at the head in original order.
    for (auto it = in_flight_.rbegin(); it != in_flight_.rend(); ++it)
      uplink_.push_front(std::move(*it));
  } else {
    const int retry_limit = edca_params(AccessCategory::BE).retry_limit;
    std::vector<PendingAck> retries;
    for (auto& pa : in_flight_) {
      const double per = mcs::packet_error_rate(
          txop_decision_.mcs, txop_decision_.snr,
          static_cast<int>(pa.seg.wire_size().count()));
      if (!rng_.bernoulli(per)) {
        ap_->uplink_receive(pa.seg);
      } else if (++pa.retries <= retry_limit) {
        retries.push_back(std::move(pa));
      }
      // else: ACK lost for good; cumulative ACKs make this recoverable.
    }
    for (auto it = retries.rbegin(); it != retries.rend(); ++it)
      uplink_.push_front(std::move(*it));
  }
  in_flight_.clear();
  medium_.set_backlogged(this, !uplink_.empty());
}

std::uint64_t ClientStation::bytes_delivered() const {
  std::uint64_t total = udp_bytes_;
  for (const auto& [flow, rx] : receivers_) total += rx->bytes_delivered();
  return total;
}

const TcpReceiver* ClientStation::receiver(FlowId flow) const {
  const auto it = receivers_.find(flow);
  return it == receivers_.end() ? nullptr : it->second.get();
}

}  // namespace w11
