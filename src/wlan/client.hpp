#pragma once
// Wireless client station (the TCP receiver side, §5.1 fn. 7).
//
// Receives downlink MPDUs from its AP, runs a TcpReceiver per flow, and
// contends for the medium to transmit the resulting TCP ACKs uplink. Two
// behaviours the paper measures are modelled explicitly:
//   * ACK turnaround delay — "many client devices take over 2 ms to even
//     begin transmitting TCP ACKs" (§5.1); drawn uniformly per ACK.
//   * Uplink ACK aggregation — clients also form A-MPDUs, so ACKs arrive at
//     the AP in bursts.

#include <deque>
#include <memory>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "mac/aggregation.hpp"
#include "mac/medium.hpp"
#include "net/tcp_receiver.hpp"
#include "phy/propagation.hpp"
#include "wlan/capability.hpp"
#include "wlan/rate_control.hpp"

namespace w11 {

class AccessPoint;

class ClientStation : public mac::Contender {
 public:
  struct Config {
    StationId id;
    Position pos;
    ClientCapability cap;
    // TCP ACK processing delay bounds (time from transport-layer receipt to
    // the ACK being ready for the uplink queue).
    Time turnaround_min = time::micros(300);
    Time turnaround_max = time::millis(2);
    std::size_t uplink_queue_cap = 512;
    // Client devices aggregate uplink ACKs far less aggressively than APs
    // aggregate data (sparse release + conservative drivers); this cap is
    // what makes TCP-ACK medium access expensive (§5.1 / Fig. 10).
    int max_uplink_ampdu = 8;
    TcpReceiver::Config receiver;
  };

  ClientStation(Simulator& sim, mac::Medium& medium, Config cfg, Rng rng);
  ~ClientStation() override;
  ClientStation(const ClientStation&) = delete;
  ClientStation& operator=(const ClientStation&) = delete;

  // Called by AccessPoint::associate.
  void attach_ap(AccessPoint* ap, std::unique_ptr<RateController> uplink_rc);

  // Register a downlink TCP flow terminating at this client.
  void add_flow(FlowId flow);

  // Downlink MPDU delivered over the air to the transport layer.
  void receive_mpdu(const TcpSegment& seg);

  // mac::Contender (uplink ACK transmission).
  mac::TxDescriptor begin_txop() override;
  void end_txop(bool collided) override;
  [[nodiscard]] AccessCategory access_category() const override {
    return AccessCategory::BE;
  }

  [[nodiscard]] StationId id() const { return cfg_.id; }
  [[nodiscard]] const Position& position() const { return cfg_.pos; }
  [[nodiscard]] const ClientCapability& capability() const { return cfg_.cap; }
  [[nodiscard]] std::uint64_t bytes_delivered() const;
  [[nodiscard]] std::uint64_t udp_bytes_received() const { return udp_bytes_; }
  [[nodiscard]] const TcpReceiver* receiver(FlowId flow) const;

 private:
  struct PendingAck {
    TcpSegment seg;
    int retries = 0;
  };

  void enqueue_ack(TcpSegment ack);

  Simulator& sim_;
  mac::Medium& medium_;
  Config cfg_;
  Rng rng_;
  AccessPoint* ap_ = nullptr;
  std::unique_ptr<RateController> uplink_rc_;

  std::unordered_map<FlowId, std::unique_ptr<TcpReceiver>> receivers_;
  std::deque<PendingAck> uplink_;
  std::vector<PendingAck> in_flight_;  // batch for the current TXOP
  RateController::Decision txop_decision_{};
  std::uint64_t udp_bytes_ = 0;
  bool attached_to_medium_ = false;
};

}  // namespace w11
