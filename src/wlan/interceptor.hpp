#pragma once
// AP datapath interception points.
//
// The FastACK agent (core/fastack) plugs into the AP through this interface
// — the same three touch points the paper's Click-based implementation uses
// (Figs. 11 & 12): downlink TCP data from the wire, uplink TCP ACKs from
// the client, and per-MPDU 802.11 acknowledgment outcomes.

#include "net/tcp_segment.hpp"

namespace w11 {

class TcpInterceptor {
 public:
  virtual ~TcpInterceptor() = default;

  enum class DataAction {
    kForward,          // enqueue normally
    kForwardPriority,  // enqueue at queue head (end-to-end retransmission)
    kDrop,             // spurious retransmission — do not transmit
  };

  // Downlink TCP data arriving from the wire, before queuing. The agent may
  // mutate the segment (not needed today) and decides its fate.
  virtual DataAction on_downlink_data(TcpSegment& seg) = 0;

  // Uplink TCP ACK received over the air from the client. Return true to
  // suppress (the AP will not forward it upstream).
  virtual bool on_uplink_ack(const TcpSegment& ack) = 0;

  // A downlink TCP data MPDU was acknowledged at the 802.11 layer.
  virtual void on_80211_delivered(const TcpSegment& seg) = 0;

  // A downlink MPDU exhausted its 802.11 retries and was dropped.
  virtual void on_mpdu_dropped(const TcpSegment& seg) = 0;
};

}  // namespace w11
