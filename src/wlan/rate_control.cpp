#include "wlan/rate_control.hpp"

#include <algorithm>

namespace w11 {

RateController::RateController(const PropagationModel& prop, Position ap_pos,
                               Position client_pos, Band band,
                               ChannelWidth channel_width, ApCapability ap_cap,
                               ClientCapability client_cap, Config cfg, Rng rng)
    : cfg_(cfg), rng_(std::move(rng)) {
  width_ = std::min(channel_width,
                    std::min(ap_cap.max_width, client_cap.max_width));
  nss_ = std::min(ap_cap.max_nss, client_cap.max_nss);
  short_gi_ = ap_cap.short_gi && client_cap.short_gi;
  max_mcs_ = client_cap.to_mcs_capability().max_mcs;
  rssi_ = prop.rssi(cfg.tx_power, ap_pos, client_pos, band);
  mean_snr_ = rssi_ - prop.noise_floor(width_);

  mcs::Capability ac = ap_cap.to_mcs_capability();
  mcs::Capability cc = client_cap.to_mcs_capability();
  ac.max_width = cc.max_width = width_;
  max_rate_ = mcs::max_rate(ac, cc);
}

RateController::Decision RateController::decide_txop() {
  Decision d;
  d.snr = mean_snr_ + (cfg_.fading_sigma > 0.0
                           ? rng_.normal(0.0, cfg_.fading_sigma)
                           : 0.0);
  const auto pick = mcs::select(d.snr - cfg_.selection_margin, width_, nss_);
  if (!pick || pick->mcs > max_mcs_) {
    // Either no MCS fits or the capability caps modulation; degrade to the
    // best capped choice at this SNR.
    std::optional<McsIndex> best;
    RateMbps best_rate{0.0};
    for (int nss = 1; nss <= nss_; ++nss) {
      for (int m = 0; m <= max_mcs_; ++m) {
        const McsIndex idx{m, nss};
        if (!mcs::valid(idx, width_)) continue;
        if (d.snr - cfg_.selection_margin < mcs::min_snr(idx)) continue;
        const auto r = mcs::rate(idx, width_, short_gi_);
        if (r && *r > best_rate) {
          best_rate = *r;
          best = idx;
        }
      }
    }
    if (!best) {
      d.viable = false;
      d.mcs = McsIndex{0, 1};
      d.rate = mcs::rate(d.mcs, width_, short_gi_).value_or(RateMbps{6.5});
      return d;
    }
    d.mcs = *best;
    d.rate = best_rate;
    d.viable = true;
    return d;
  }
  d.mcs = *pick;
  d.rate = mcs::rate(*pick, width_, short_gi_).value_or(RateMbps{6.5});
  d.viable = true;
  return d;
}

}  // namespace w11
