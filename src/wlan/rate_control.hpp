#pragma once
// SNR-driven bit-rate selection for one AP↔client link.
//
// A simplified Minstrel: the controller tracks an SNR estimate for the link
// (mean SNR from the propagation model plus slow fading jitter drawn per
// TXOP) and selects the highest valid VHT MCS with a safety margin. It also
// reports the maximum rate the pair could ever use — the denominator of the
// paper's *bit-rate efficiency* metric (§4.6.2).

#include "common/rng.hpp"
#include "common/units.hpp"
#include "phy/channel.hpp"
#include "phy/mcs.hpp"
#include "phy/propagation.hpp"
#include "wlan/capability.hpp"

namespace w11 {

class RateController {
 public:
  struct Config {
    Db selection_margin = 2.0;  // back off from the threshold for stability
    Db fading_sigma = 2.0;      // per-TXOP SNR jitter (dB)
    Dbm tx_power = kApTxPowerDbm;  // clients pass kClientTxPowerDbm
  };

  RateController(const PropagationModel& prop, Position ap_pos, Position client_pos,
                 Band band, ChannelWidth channel_width, ApCapability ap_cap,
                 ClientCapability client_cap, Config cfg, Rng rng);

  // Current PHY rate decision plus the SNR realized for this TXOP.
  struct Decision {
    McsIndex mcs;
    RateMbps rate;
    Db snr;          // realized (faded) SNR for PER evaluation
    bool viable;     // false if even MCS0 is not sustainable
  };
  [[nodiscard]] Decision decide_txop();

  // Link-budget facts (no fading).
  [[nodiscard]] Db mean_snr() const { return mean_snr_; }
  [[nodiscard]] Dbm rssi() const { return rssi_; }
  // Max rate both ends support at this channel width — the bit-rate
  // efficiency denominator.
  [[nodiscard]] RateMbps max_link_rate() const { return max_rate_; }
  [[nodiscard]] ChannelWidth effective_width() const { return width_; }
  [[nodiscard]] int effective_nss() const { return nss_; }

 private:
  Config cfg_;
  ChannelWidth width_;
  int nss_;
  bool short_gi_;
  int max_mcs_;
  Db mean_snr_;
  Dbm rssi_;
  RateMbps max_rate_;
  Rng rng_;
};

}  // namespace w11
