#include "workload/device_population.hpp"

#include <algorithm>

namespace w11::workload {

ClientCapability sample_client(Era era, Rng& rng) {
  const bool is_2017 = era == Era::k2017;
  ClientCapability cap;

  // Band support: ~40 % of devices are 2.4 GHz-only in both eras (the
  // paper calls this "surprisingly steady").
  cap.supports_5ghz = !rng.bernoulli(0.40);

  // Standard. 2.4-only devices cannot be 802.11ac.
  const double p_ac = is_2017 ? 0.46 : 0.18;
  if (cap.supports_5ghz && rng.bernoulli(std::min(1.0, p_ac / 0.60))) {
    cap.standard = WifiStandard::k80211ac;
  } else if (rng.bernoulli(0.95)) {
    cap.standard = WifiStandard::k80211n;
  } else {
    cap.standard = WifiStandard::k80211g;
  }

  // Channel width follows the standard: 11ac devices are overwhelmingly
  // 80 MHz-capable by 2017; 11n tops out at 40 MHz.
  switch (cap.standard) {
    case WifiStandard::k80211ac:
      cap.max_width = rng.bernoulli(is_2017 ? 0.90 : 0.75) ? ChannelWidth::MHz80
                                                           : ChannelWidth::MHz40;
      break;
    case WifiStandard::k80211n:
      cap.max_width =
          rng.bernoulli(0.65) ? ChannelWidth::MHz40 : ChannelWidth::MHz20;
      break;
    case WifiStandard::k80211g:
      cap.max_width = ChannelWidth::MHz20;
      break;
  }

  // Spatial streams: 2-stream share 19 % (2015) → 37 % (2017); a sliver of
  // 3-stream laptops.
  const double p_2ss = is_2017 ? 0.37 : 0.19;
  if (rng.bernoulli(p_2ss)) {
    cap.max_nss = rng.bernoulli(0.12) ? 3 : 2;
  } else {
    cap.max_nss = 1;
  }

  cap.short_gi = cap.standard != WifiStandard::k80211g;
  // CSA support is spotty, worse on older devices (§4.3.1).
  cap.supports_csa = rng.bernoulli(is_2017 ? 0.80 : 0.65);
  return cap;
}

CapabilityShares summarize(const std::vector<ClientCapability>& pop) {
  CapabilityShares s;
  if (pop.empty()) return s;
  for (const auto& c : pop) {
    if (c.standard == WifiStandard::k80211ac) s.ac += 1;
    if (c.standard == WifiStandard::k80211n) s.n_only += 1;
    if (!c.supports_5ghz) s.band24_only += 1;
    if (c.max_nss >= 2) s.two_stream += 1;
    if (c.max_width >= ChannelWidth::MHz40) s.width40 += 1;
    if (c.max_width >= ChannelWidth::MHz80) s.width80 += 1;
  }
  const auto n = static_cast<double>(pop.size());
  s.ac /= n;
  s.n_only /= n;
  s.band24_only /= n;
  s.two_stream /= n;
  s.width40 /= n;
  s.width80 /= n;
  return s;
}

ApProfile sample_ap(Rng& rng) {
  ApProfile ap;
  const double r = rng.uniform();
  ap.standard = r < 0.52   ? WifiStandard::k80211ac
                : r < 0.99 ? WifiStandard::k80211n
                           : WifiStandard::k80211g;
  const double a = rng.uniform();
  ap.antenna_chains = a < 0.01 ? 1 : a < 0.74 ? 2 : a < 0.98 ? 3 : 4;
  ap.indoor = rng.bernoulli(0.93);
  return ap;
}

ChannelWidth sample_configured_width(bool large_network, Rng& rng) {
  // Table 1 columns.
  const double p20 = large_network ? 0.173 : 0.149;
  const double p40 = large_network ? 0.194 : 0.191;
  const double r = rng.uniform();
  if (r < p20) return ChannelWidth::MHz20;
  if (r < p20 + p40) return ChannelWidth::MHz40;
  return ChannelWidth::MHz80;
}

int sample_client_density(Rng& rng) {
  const double r = rng.uniform();
  if (r < 0.33) return static_cast<int>(rng.uniform_int(1, 5));
  if (r < 0.55) return static_cast<int>(rng.uniform_int(6, 10));
  if (r < 0.75) return static_cast<int>(rng.uniform_int(11, 20));
  // Heavy tail up to the observed maximum of 338.
  const double u = rng.uniform();
  const int heavy = 21 + static_cast<int>(std::pow(u, 3.0) * 317.0);
  return std::min(heavy, 338);
}

}  // namespace w11::workload
