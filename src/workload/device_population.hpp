#pragma once
// Generative models of the device populations the paper measures (§3.2).
//
// The §3 study is over Meraki's production fleet, which we obviously do not
// have; instead the reported marginal distributions are encoded here as
// samplers. Benches draw populations from these models and re-derive the
// paper's figures, which keeps every statistic flowing through the same
// code paths a real backend would use.

#include <vector>

#include "common/rng.hpp"
#include "wlan/capability.hpp"

namespace w11::workload {

// Which measurement epoch's marginals to use (Fig. 1 compares 2015 → 2017).
enum class Era { k2015, k2017 };

// Draw one client device's advertised capabilities.
//   2017 marginals: 46 % 802.11ac, ~40 % 2.4 GHz-only, 37 % 2-stream;
//   2015 marginals: 18 % 802.11ac, ~40 % 2.4 GHz-only, 19 % 2-stream.
[[nodiscard]] ClientCapability sample_client(Era era, Rng& rng);

// Population summary used by the Fig. 1 bench.
struct CapabilityShares {
  double ac = 0.0;           // 802.11ac-capable
  double n_only = 0.0;       // 802.11n (not ac)
  double band24_only = 0.0;  // no 5 GHz support
  double two_stream = 0.0;   // >= 2 spatial streams
  double width40 = 0.0;      // >= 40 MHz capable
  double width80 = 0.0;      // >= 80 MHz capable
};
[[nodiscard]] CapabilityShares summarize(const std::vector<ClientCapability>& pop);

// AP-side population (§3.2.1): 52 % ac / 47 % n / 1 % g; antenna chains
// <1 % single, 73 % two, 24 % three, 2 % four; 93 % indoor.
struct ApProfile {
  WifiStandard standard = WifiStandard::k80211ac;
  int antenna_chains = 2;
  bool indoor = true;
};
[[nodiscard]] ApProfile sample_ap(Rng& rng);

// Administrator channel-width configuration (Table 1): the probability an
// 80 MHz-capable AP is configured down to 40 or 20 MHz, fleet-wide vs in
// networks larger than 10 APs.
[[nodiscard]] ChannelWidth sample_configured_width(bool large_network, Rng& rng);

// Per-AP peak associated-client count (§3.2.3 client density buckets:
// 33 % ≤5, 22 % 6–10, 20 % 11–20, 25 % ≥21, max observed 338).
[[nodiscard]] int sample_client_density(Rng& rng);

}  // namespace w11::workload
