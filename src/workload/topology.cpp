#include "workload/topology.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace w11::workload {

namespace {

// Clamp a client's capability to the band the network models. 2.4-only
// clients never appear on a 5 GHz radio's association list.
bool usable_on_band(const ClientCapability& cap, Band band) {
  return band == Band::G2_4 || cap.supports_5ghz;
}

Channel band_default(Band band) {
  return band == Band::G2_4 ? Channel{Band::G2_4, 1, ChannelWidth::MHz20}
                            : Channel{Band::G5, 36, ChannelWidth::MHz20};
}

void place_clients(flowsim::Network& net, ApId ap, Position ap_pos, int count,
                   double offered_mbps, Era era, Band band, Rng& rng) {
  int placed = 0;
  int guard = 0;
  while (placed < count && guard < count * 20) {
    ++guard;
    ClientCapability cap = sample_client(era, rng);
    if (!usable_on_band(cap, band)) continue;
    const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double dist = std::sqrt(rng.uniform(1.0, 20.0 * 20.0));
    const Position pos{ap_pos.x + dist * std::cos(angle),
                       ap_pos.y + dist * std::sin(angle)};
    const double load = offered_mbps * rng.lognormal(0.0, 0.6);
    net.add_client(ap, pos, cap, load);
    ++placed;
  }
}

}  // namespace

std::unique_ptr<flowsim::Network> make_campus(const CampusConfig& cfg) {
  W11_CHECK(cfg.n_aps > 0);
  Rng rng(cfg.seed);

  flowsim::Network::Config ncfg;
  ncfg.band = cfg.band;
  ncfg.uplink_capacity = cfg.uplink_capacity;
  ncfg.seed = rng.engine()();
  auto net = std::make_unique<flowsim::Network>(ncfg);

  // Buildings on a grid; APs uniform within their building.
  const int grid = std::max(1, static_cast<int>(std::ceil(std::sqrt(
                                   static_cast<double>(cfg.buildings)))));
  const double pitch = cfg.campus_size_m / grid;

  const Channel initial =
      cfg.band == cfg.initial.band ? cfg.initial : band_default(cfg.band);

  for (int i = 0; i < cfg.n_aps; ++i) {
    const int b = static_cast<int>(rng.index(static_cast<std::size_t>(cfg.buildings)));
    const double bx = (b % grid) * pitch + pitch / 2.0;
    const double by = (b / grid) * pitch + pitch / 2.0;
    const Position pos{bx + rng.uniform(-cfg.building_size_m / 2, cfg.building_size_m / 2),
                       by + rng.uniform(-cfg.building_size_m / 2, cfg.building_size_m / 2)};
    const ApId ap = net->add_ap(pos, ChannelWidth::MHz80, initial);

    const int n_clients = std::max(
        0, static_cast<int>(rng.normal(cfg.clients_per_ap_mean,
                                       cfg.clients_per_ap_mean / 2.5)));
    place_clients(*net, ap, pos, n_clients, cfg.offered_per_client_mbps,
                  cfg.era, cfg.band, rng);
  }

  // External interferers (neighbouring businesses, hotspots): parked on
  // random catalog channels near buildings.
  const auto catalog = channels::us_catalog(cfg.band, ChannelWidth::MHz20);
  const int n_intf = static_cast<int>(cfg.interferers_per_building *
                                      static_cast<double>(cfg.buildings));
  for (int k = 0; k < n_intf; ++k) {
    flowsim::ExternalInterferer intf;
    const int b = static_cast<int>(rng.index(static_cast<std::size_t>(cfg.buildings)));
    intf.pos = Position{(b % grid) * pitch + rng.uniform(0.0, pitch),
                        (b / grid) * pitch + rng.uniform(0.0, pitch)};
    intf.channel = catalog[rng.index(catalog.size())];
    intf.duty_cycle = rng.uniform(0.05, 0.5);
    net->add_interferer(intf);
  }
  return net;
}

std::unique_ptr<flowsim::Network> make_office(const OfficeConfig& cfg) {
  Rng rng(cfg.seed);

  flowsim::Network::Config ncfg;
  ncfg.band = cfg.band;
  ncfg.seed = rng.engine()();
  auto net = std::make_unique<flowsim::Network>(ncfg);

  // APs on a regular grid over the floor — dense: every AP hears many
  // others, which is what drives the HQ utilization numbers in Fig. 2.
  const int cols = std::max(1, static_cast<int>(std::ceil(
                                   std::sqrt(cfg.n_aps * cfg.floor_w_m /
                                             std::max(cfg.floor_h_m, 1.0)))));
  const int rows = (cfg.n_aps + cols - 1) / cols;
  const Channel initial =
      cfg.band == cfg.initial.band ? cfg.initial : band_default(cfg.band);

  std::vector<ApId> aps;
  std::vector<Position> ap_pos;
  for (int i = 0; i < cfg.n_aps; ++i) {
    const Position pos{(i % cols + 0.5) * cfg.floor_w_m / cols,
                       (i / cols % std::max(rows, 1) + 0.5) * cfg.floor_h_m /
                           std::max(rows, 1)};
    aps.push_back(net->add_ap(pos, ChannelWidth::MHz80, initial));
    ap_pos.push_back(pos);
  }

  // Clients spread over the whole floor, attached to the nearest AP.
  int placed = 0;
  int guard = 0;
  while (placed < cfg.n_clients && guard < cfg.n_clients * 20) {
    ++guard;
    ClientCapability cap = sample_client(cfg.era, rng);
    if (!usable_on_band(cap, cfg.band)) continue;
    const Position pos{rng.uniform(0.0, cfg.floor_w_m),
                       rng.uniform(0.0, cfg.floor_h_m)};
    std::size_t best = 0;
    double best_d = 1e18;
    for (std::size_t a = 0; a < ap_pos.size(); ++a) {
      const double d = distance_m(pos, ap_pos[a]);
      if (d < best_d) {
        best_d = d;
        best = a;
      }
    }
    net->add_client(aps[best], pos, cap,
                    cfg.offered_per_client_mbps * rng.lognormal(0.0, 0.5));
    ++placed;
  }
  return net;
}

void randomize_channels(flowsim::Network& net, ChannelWidth width, Rng& rng) {
  auto cands =
      channels::candidate_set(net.config().band, width, /*allow_dfs=*/false);
  // candidate_set returns every width up to `width`; keep the exact width
  // when it exists without DFS (160 MHz does not — fall back to widest).
  auto exact = cands;
  std::erase_if(exact, [&](const Channel& c) { return c.width != width; });
  if (!exact.empty()) cands = std::move(exact);
  W11_CHECK(!cands.empty());
  ChannelPlan plan;
  for (const auto& ap : net.aps()) plan[ap.id] = cands[rng.index(cands.size())];
  net.apply_plan(plan);
}

}  // namespace w11::workload
