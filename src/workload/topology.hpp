#pragma once
// Topology generators: build flowsim Networks shaped like the paper's
// deployments — UNet (≈600-AP university campus), MNet (≈300-AP museum),
// the Meraki HQ dense office (§3.2.2), and generic enterprise networks for
// the fleet-level figures.

#include <memory>

#include "common/rng.hpp"
#include "flowsim/network.hpp"
#include "workload/device_population.hpp"

namespace w11::workload {

struct CampusConfig {
  int n_aps = 100;
  // APs cluster into buildings laid out on a grid.
  int buildings = 8;
  double building_size_m = 60.0;
  double campus_size_m = 500.0;
  double clients_per_ap_mean = 8.0;
  double offered_per_client_mbps = 1.5;
  Era era = Era::k2017;
  Band band = Band::G5;
  // Initial channels: all on the same default (a fresh, unplanned network).
  Channel initial{Band::G5, 36, ChannelWidth::MHz20};
  // External interference: density per building.
  double interferers_per_building = 1.0;
  RateMbps uplink_capacity{0.0};
  std::uint64_t seed = 1;
};

// A clustered multi-building campus network.
[[nodiscard]] std::unique_ptr<flowsim::Network> make_campus(const CampusConfig& cfg);

struct OfficeConfig {
  int n_aps = 33;           // Meraki HQ floor: 31-35 APs
  int n_clients = 350;      // 300-400 clients
  double floor_w_m = 120.0;
  double floor_h_m = 60.0;
  double offered_per_client_mbps = 1.2;
  Band band = Band::G5;
  Era era = Era::k2017;
  Channel initial{Band::G5, 36, ChannelWidth::MHz20};
  std::uint64_t seed = 7;
};

// A single dense office floor (the high-utilization HQ comparison, Fig. 2).
[[nodiscard]] std::unique_ptr<flowsim::Network> make_office(const OfficeConfig& cfg);

// Assign initial channels randomly from the non-DFS catalog (what a naive /
// fresh deployment looks like before any CA service runs).
void randomize_channels(flowsim::Network& net, ChannelWidth width, Rng& rng);

}  // namespace w11::workload
