#include "workload/traffic.hpp"

#include <algorithm>
#include <cmath>

namespace w11::workload {

double diurnal_factor(double hour) {
  hour = std::fmod(hour, 24.0);
  if (hour < 0) hour += 24.0;
  // Piecewise profile anchored at (hour, factor) control points.
  static constexpr std::pair<double, double> kAnchors[] = {
      {0.0, 0.08}, {6.0, 0.10}, {8.0, 0.45}, {10.0, 0.95}, {12.0, 0.75},
      {13.0, 0.85}, {15.0, 1.00}, {17.0, 0.80}, {19.0, 0.35}, {22.0, 0.12},
      {24.0, 0.08}};
  for (std::size_t i = 1; i < std::size(kAnchors); ++i) {
    if (hour <= kAnchors[i].first) {
      const auto& [h0, f0] = kAnchors[i - 1];
      const auto& [h1, f1] = kAnchors[i];
      const double t = (hour - h0) / (h1 - h0);
      return f0 + t * (f1 - f0);
    }
  }
  return kAnchors[0].second;
}

double burst_factor(const BurstEvent& b, double hour) {
  return (hour >= b.start_hour && hour < b.start_hour + b.duration_hours)
             ? b.multiplier
             : 1.0;
}

AccessCategory sample_field_ac(Rng& rng) {
  const double r = rng.uniform();
  if (r < 0.14) return AccessCategory::BK;
  if (r < 0.995) return AccessCategory::BE;
  return r < 0.998 ? AccessCategory::VI : AccessCategory::VO;
}

AccessCategory sample_office_ac(Rng& rng) {
  return rng.bernoulli(0.10) ? AccessCategory::VO : AccessCategory::BE;
}

int dscp_for(AccessCategory ac) {
  switch (ac) {
    case AccessCategory::BK: return 8;   // CS1
    case AccessCategory::BE: return 0;   // CS0
    case AccessCategory::VI: return 32;  // CS4
    case AccessCategory::VO: return 46;  // EF
  }
  return 0;
}

}  // namespace w11::workload
