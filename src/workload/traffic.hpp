#pragma once
// Traffic shape generators: diurnal load profiles (Fig. 6), burst events,
// and the access-category mixes observed in the field (§3.2.4).

#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "mac/edca.hpp"

namespace w11::workload {

// Multiplicative load factor for an enterprise workday, by hour [0, 24).
// Low overnight, ramps from ~8 am, lunch dip, afternoon peak, evening
// fall-off — the shape behind the paper's "peak vs non-peak" comparisons.
[[nodiscard]] double diurnal_factor(double hour);

// A transient usage burst (the 2 pm spike in Fig. 6).
struct BurstEvent {
  double start_hour = 14.0;
  double duration_hours = 0.5;
  double multiplier = 3.0;
};
[[nodiscard]] double burst_factor(const BurstEvent& b, double hour);

// Field-wide access-category mix (§3.2.4): 14 % BK, 86 % BE, negligible
// VI/VO — the paper blames upstream DSCP mangling.
[[nodiscard]] AccessCategory sample_field_ac(Rng& rng);

// A "typical enterprise office" mix: 10 % VO, 90 % BE.
[[nodiscard]] AccessCategory sample_office_ac(Rng& rng);

// DSCP value that maps (via dscp_to_ac) onto the given category.
[[nodiscard]] int dscp_for(AccessCategory ac);

}  // namespace w11::workload
