// Unit tests for common/: strong types, statistics, RNG.

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table_printer.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace w11 {
namespace {

// ---------------------------------------------------------------- Time --

TEST(Time, FactoriesProduceExpectedNanos) {
  EXPECT_EQ(time::nanos(5).ns(), 5);
  EXPECT_EQ(time::micros(3).ns(), 3'000);
  EXPECT_EQ(time::millis(2).ns(), 2'000'000);
  EXPECT_EQ(time::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(time::minutes(1).ns(), 60'000'000'000LL);
  EXPECT_EQ(time::hours(1).ns(), 3'600'000'000'000LL);
}

TEST(Time, ArithmeticAndComparison) {
  const Time a = time::millis(5);
  const Time b = time::millis(3);
  EXPECT_EQ((a + b).ns(), time::millis(8).ns());
  EXPECT_EQ((a - b).ns(), time::millis(2).ns());
  EXPECT_EQ((a * 2).ns(), time::millis(10).ns());
  EXPECT_EQ((a / 5).ns(), time::millis(1).ns());
  EXPECT_EQ(a / b, 1);  // integer division of durations
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(Time, UnitConversions) {
  const Time t = time::micros(1500);
  EXPECT_DOUBLE_EQ(t.us(), 1500.0);
  EXPECT_DOUBLE_EQ(t.ms(), 1.5);
  EXPECT_DOUBLE_EQ(t.sec(), 0.0015);
}

TEST(Time, FromSecRoundsToNearest) {
  EXPECT_EQ(time::from_sec(1e-9).ns(), 1);
  EXPECT_EQ(time::from_sec(2.5e-9).ns(), 3);  // round half up
  EXPECT_EQ(time::from_sec(1.0).ns(), 1'000'000'000);
}

TEST(Time, CompoundAssignment) {
  Time t = time::millis(1);
  t += time::millis(2);
  EXPECT_EQ(t, time::millis(3));
  t -= time::millis(1);
  EXPECT_EQ(t, time::millis(2));
}

// --------------------------------------------------------------- Units --

TEST(Units, ByteFactoriesAndConversions) {
  EXPECT_EQ(units::kilobytes(2).count(), 2'000);
  EXPECT_EQ(units::megabytes(1).count(), 1'000'000);
  EXPECT_EQ(units::gigabytes(1).count(), 1'000'000'000);
  EXPECT_EQ(Bytes{10}.bits(), 80);
  EXPECT_DOUBLE_EQ(units::megabytes(1500).gigabytes(), 1.5);
  EXPECT_DOUBLE_EQ(units::gigabytes(2500).terabytes(), 2.5);
}

TEST(Units, TransmitTime) {
  // 1250 bytes = 10000 bits at 10 Mbps = 1 ms.
  EXPECT_EQ(transmit_time(Bytes{1250}, RateMbps{10.0}), time::millis(1));
  // Zero rate: never completes.
  EXPECT_EQ(transmit_time(Bytes{1}, RateMbps{0.0}), time::kForever);
}

TEST(Units, RateComparisonAndScaling) {
  EXPECT_LT(RateMbps{10.0}, RateMbps{20.0});
  EXPECT_DOUBLE_EQ((RateMbps{10.0} * 2.0).mbps(), 20.0);
  EXPECT_DOUBLE_EQ((RateMbps{10.0} + RateMbps{5.0}).mbps(), 15.0);
  EXPECT_DOUBLE_EQ(RateMbps{1.0}.bits_per_sec(), 1e6);
  EXPECT_FALSE(RateMbps{0.0}.positive());
}

// ----------------------------------------------------------------- Ids --

TEST(Ids, DefaultIsInvalid) {
  EXPECT_FALSE(ApId{}.valid());
  EXPECT_TRUE(ApId{0}.valid());
}

TEST(Ids, EqualityAndOrdering) {
  EXPECT_EQ(ApId{3}, ApId{3});
  EXPECT_NE(ApId{3}, ApId{4});
  EXPECT_LT(ApId{3}, ApId{4});
}

TEST(Ids, HashWorksInUnorderedContainers) {
  std::unordered_map<FlowId, int> m;
  m[FlowId{1}] = 10;
  m[FlowId{2}] = 20;
  EXPECT_EQ(m.at(FlowId{1}), 10);
  EXPECT_EQ(m.at(FlowId{2}), 20);
}

// --------------------------------------------------------------- Check --

TEST(Check, ThrowsLogicErrorWithContext) {
  EXPECT_THROW(W11_CHECK(false), std::logic_error);
  EXPECT_NO_THROW(W11_CHECK(true));
  try {
    W11_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

// -------------------------------------------------------- RunningStats --

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSingleStream) {
  // Sharded accumulation (Chan et al. combine) must agree with one stream
  // that saw every sample: exact on count/sum/min/max, tight on mean/var.
  const std::vector<double> xs = {2.0, 4.0,  4.0, 4.0, 5.0, 5.0,
                                  7.0, 9.0,  1.5, 8.25, -3.0, 0.0};
  RunningStats whole;
  for (double x : xs) whole.add(x);

  for (std::size_t split = 0; split <= xs.size(); ++split) {
    RunningStats a, b;
    for (std::size_t i = 0; i < split; ++i) a.add(xs[i]);
    for (std::size_t i = split; i < xs.size(); ++i) b.add(xs[i]);
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count()) << "split " << split;
    EXPECT_DOUBLE_EQ(a.sum(), whole.sum()) << "split " << split;
    EXPECT_DOUBLE_EQ(a.min(), whole.min()) << "split " << split;
    EXPECT_DOUBLE_EQ(a.max(), whole.max()) << "split " << split;
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12) << "split " << split;
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-12) << "split " << split;
  }
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats filled;
  for (double x : {1.0, 2.0, 3.0}) filled.add(x);

  RunningStats lhs_empty;
  lhs_empty.merge(filled);
  EXPECT_EQ(lhs_empty.count(), 3u);
  EXPECT_DOUBLE_EQ(lhs_empty.mean(), 2.0);

  RunningStats rhs_empty;
  filled.merge(rhs_empty);
  EXPECT_EQ(filled.count(), 3u);
  EXPECT_DOUBLE_EQ(filled.mean(), 2.0);
}

TEST(RunningStats, ManyShardMergeIsOrderedDeterministic) {
  // The bench sharding pattern: per-shard accumulators folded in shard
  // order. Two identical folds must agree bit-for-bit.
  auto fold = [] {
    RunningStats total;
    for (int shard = 0; shard < 8; ++shard) {
      RunningStats s;
      Rng rng(1000 + static_cast<std::uint64_t>(shard));
      for (int i = 0; i < 257; ++i) s.add(rng.normal(shard, 1.5));
      total.merge(s);
    }
    return total;
  };
  const RunningStats a = fold();
  const RunningStats b = fold();
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.sum(), b.sum());
}

// ------------------------------------------------------------- Samples --

TEST(Samples, QuantilesInterpolate) {
  Samples s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 2.0);
}

TEST(Samples, SingleElement) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 42.0);
}

TEST(Samples, EmptyQuantileThrows) {
  Samples s;
  EXPECT_THROW(s.median(), std::logic_error);
}

TEST(Samples, CdfAt) {
  Samples s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(Samples, CdfSeriesIsMonotone) {
  Samples s;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) s.add(rng.normal(0, 1));
  const auto cdf = s.cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(Samples, MeanMatchesRunningStats) {
  Samples s;
  RunningStats r;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 100);
    s.add(x);
    r.add(x);
  }
  EXPECT_NEAR(s.mean(), r.mean(), 1e-9);
}

// Property sweep: quantiles must match a brute-force order statistic.
class SamplesQuantileSweep : public ::testing::TestWithParam<int> {};

TEST_P(SamplesQuantileSweep, MatchesSortedReference) {
  Rng rng(GetParam());
  Samples s;
  std::vector<double> ref;
  const int n = 50 + GetParam() * 37;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-1000, 1000);
    s.add(x);
    ref.push_back(x);
  }
  std::sort(ref.begin(), ref.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double pos = q * (n - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min<std::size_t>(lo + 1, ref.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    const double expected = ref[lo] * (1 - frac) + ref[hi] * frac;
    EXPECT_NEAR(s.quantile(q), expected, 1e-9) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplesQuantileSweep, ::testing::Range(1, 9));

// ----------------------------------------------------------- Histogram --

TEST(Histogram, BinningAndFractions) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.9, 9.9}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);  // 0.5, 1.5
  EXPECT_EQ(h.count(1), 2u);  // 2.5, 2.9
  EXPECT_EQ(h.count(4), 1u);  // 9.9
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(15.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

// ---------------------------------------------------------------- Jain --

TEST(Jain, PerfectFairnessIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(Jain, KnownValue) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(jain_fairness({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(Jain, DegenerateCases) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
  // One user hogging everything among n: index -> 1/n.
  EXPECT_NEAR(jain_fairness({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

// ----------------------------------------------------------------- Rng --

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  const std::vector<double> w = {0.0, 1.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10'000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 10'000.0, 0.9, 0.03);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(5);
  const std::vector<double> w = {0.0, 0.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) ++counts[rng.weighted_index(w)];
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  Rng b(42);
  (void)b.fork();
  // Parent streams stay in sync after forking.
  EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  // Child differs from a fresh seed-42 generator.
  Rng fresh(42);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    any_diff |= child.uniform_int(0, 1 << 30) != fresh.uniform_int(0, 1 << 30);
  EXPECT_TRUE(any_diff);
}

// The copy constructor is deleted: copying a generator silently shares its
// future draw sequence between two owners, which breaks determinism the
// first time the copies land on different threads (DESIGN.md §10).
static_assert(!std::is_copy_constructible_v<Rng>);
static_assert(!std::is_copy_assignable_v<Rng>);
static_assert(std::is_move_constructible_v<Rng>);
static_assert(std::is_move_assignable_v<Rng>);

TEST(Rng, StreamForkDependsOnlyOnSeedAndStreamId) {
  // fork(stream_id) must be a pure function of (seed, stream id) — the
  // parent's draw position must not leak in, or per-task streams would vary
  // with scheduling.
  Rng fresh(42);
  Rng drained(42);
  for (int i = 0; i < 500; ++i) (void)drained.uniform_int(0, 1 << 20);

  for (std::uint64_t stream : {0ULL, 1ULL, 99ULL}) {
    Rng a = fresh.fork(stream);
    Rng b = drained.fork(stream);
    for (int i = 0; i < 32; ++i)
      ASSERT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30))
          << "stream " << stream;
  }
}

TEST(Rng, StreamForkDoesNotAdvanceParent) {
  Rng a(7), b(7);
  (void)a.fork(3);
  (void)a.fork(4);
  EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
}

TEST(Rng, DistinctStreamForksDiverge) {
  Rng root(11);
  Rng a = root.fork(std::uint64_t{0});
  Rng b = root.fork(std::uint64_t{1});
  bool any_diff = false;
  for (int i = 0; i < 16; ++i)
    any_diff |= a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SeedAccessorIsStableAcrossDraws) {
  Rng rng(123);
  for (int i = 0; i < 10; ++i) (void)rng.uniform();
  EXPECT_EQ(rng.seed(), 123u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

// -------------------------------------------------------- TablePrinter --

TEST(TablePrinter, AlignsAndPrintsRows) {
  TablePrinter t({"name", "value"});
  t.add_row("alpha", 1.5);
  t.add_row("b", std::string("xyz"));
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.500"), std::string::npos);
  EXPECT_NE(out.find("xyz"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

}  // namespace
}  // namespace w11
