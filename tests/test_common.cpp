// Unit tests for common/: strong types, statistics, RNG.

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table_printer.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace w11 {
namespace {

// ---------------------------------------------------------------- Time --

TEST(Time, FactoriesProduceExpectedNanos) {
  EXPECT_EQ(time::nanos(5).ns(), 5);
  EXPECT_EQ(time::micros(3).ns(), 3'000);
  EXPECT_EQ(time::millis(2).ns(), 2'000'000);
  EXPECT_EQ(time::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(time::minutes(1).ns(), 60'000'000'000LL);
  EXPECT_EQ(time::hours(1).ns(), 3'600'000'000'000LL);
}

TEST(Time, ArithmeticAndComparison) {
  const Time a = time::millis(5);
  const Time b = time::millis(3);
  EXPECT_EQ((a + b).ns(), time::millis(8).ns());
  EXPECT_EQ((a - b).ns(), time::millis(2).ns());
  EXPECT_EQ((a * 2).ns(), time::millis(10).ns());
  EXPECT_EQ((a / 5).ns(), time::millis(1).ns());
  EXPECT_EQ(a / b, 1);  // integer division of durations
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(Time, UnitConversions) {
  const Time t = time::micros(1500);
  EXPECT_DOUBLE_EQ(t.us(), 1500.0);
  EXPECT_DOUBLE_EQ(t.ms(), 1.5);
  EXPECT_DOUBLE_EQ(t.sec(), 0.0015);
}

TEST(Time, FromSecRoundsToNearest) {
  EXPECT_EQ(time::from_sec(1e-9).ns(), 1);
  EXPECT_EQ(time::from_sec(2.5e-9).ns(), 3);  // round half up
  EXPECT_EQ(time::from_sec(1.0).ns(), 1'000'000'000);
}

TEST(Time, CompoundAssignment) {
  Time t = time::millis(1);
  t += time::millis(2);
  EXPECT_EQ(t, time::millis(3));
  t -= time::millis(1);
  EXPECT_EQ(t, time::millis(2));
}

// --------------------------------------------------------------- Units --

TEST(Units, ByteFactoriesAndConversions) {
  EXPECT_EQ(units::kilobytes(2).count(), 2'000);
  EXPECT_EQ(units::megabytes(1).count(), 1'000'000);
  EXPECT_EQ(units::gigabytes(1).count(), 1'000'000'000);
  EXPECT_EQ(Bytes{10}.bits(), 80);
  EXPECT_DOUBLE_EQ(units::megabytes(1500).gigabytes(), 1.5);
  EXPECT_DOUBLE_EQ(units::gigabytes(2500).terabytes(), 2.5);
}

TEST(Units, TransmitTime) {
  // 1250 bytes = 10000 bits at 10 Mbps = 1 ms.
  EXPECT_EQ(transmit_time(Bytes{1250}, RateMbps{10.0}), time::millis(1));
  // Zero rate: never completes.
  EXPECT_EQ(transmit_time(Bytes{1}, RateMbps{0.0}), time::kForever);
}

TEST(Units, RateComparisonAndScaling) {
  EXPECT_LT(RateMbps{10.0}, RateMbps{20.0});
  EXPECT_DOUBLE_EQ((RateMbps{10.0} * 2.0).mbps(), 20.0);
  EXPECT_DOUBLE_EQ((RateMbps{10.0} + RateMbps{5.0}).mbps(), 15.0);
  EXPECT_DOUBLE_EQ(RateMbps{1.0}.bits_per_sec(), 1e6);
  EXPECT_FALSE(RateMbps{0.0}.positive());
}

// ----------------------------------------------------------------- Ids --

TEST(Ids, DefaultIsInvalid) {
  EXPECT_FALSE(ApId{}.valid());
  EXPECT_TRUE(ApId{0}.valid());
}

TEST(Ids, EqualityAndOrdering) {
  EXPECT_EQ(ApId{3}, ApId{3});
  EXPECT_NE(ApId{3}, ApId{4});
  EXPECT_LT(ApId{3}, ApId{4});
}

TEST(Ids, HashWorksInUnorderedContainers) {
  std::unordered_map<FlowId, int> m;
  m[FlowId{1}] = 10;
  m[FlowId{2}] = 20;
  EXPECT_EQ(m.at(FlowId{1}), 10);
  EXPECT_EQ(m.at(FlowId{2}), 20);
}

// --------------------------------------------------------------- Check --

TEST(Check, ThrowsLogicErrorWithContext) {
  EXPECT_THROW(W11_CHECK(false), std::logic_error);
  EXPECT_NO_THROW(W11_CHECK(true));
  try {
    W11_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

// -------------------------------------------------------- RunningStats --

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

// ------------------------------------------------------------- Samples --

TEST(Samples, QuantilesInterpolate) {
  Samples s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 2.0);
}

TEST(Samples, SingleElement) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 42.0);
}

TEST(Samples, EmptyQuantileThrows) {
  Samples s;
  EXPECT_THROW(s.median(), std::logic_error);
}

TEST(Samples, CdfAt) {
  Samples s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(Samples, CdfSeriesIsMonotone) {
  Samples s;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) s.add(rng.normal(0, 1));
  const auto cdf = s.cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(Samples, MeanMatchesRunningStats) {
  Samples s;
  RunningStats r;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 100);
    s.add(x);
    r.add(x);
  }
  EXPECT_NEAR(s.mean(), r.mean(), 1e-9);
}

// Property sweep: quantiles must match a brute-force order statistic.
class SamplesQuantileSweep : public ::testing::TestWithParam<int> {};

TEST_P(SamplesQuantileSweep, MatchesSortedReference) {
  Rng rng(GetParam());
  Samples s;
  std::vector<double> ref;
  const int n = 50 + GetParam() * 37;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-1000, 1000);
    s.add(x);
    ref.push_back(x);
  }
  std::sort(ref.begin(), ref.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double pos = q * (n - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min<std::size_t>(lo + 1, ref.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    const double expected = ref[lo] * (1 - frac) + ref[hi] * frac;
    EXPECT_NEAR(s.quantile(q), expected, 1e-9) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplesQuantileSweep, ::testing::Range(1, 9));

// ----------------------------------------------------------- Histogram --

TEST(Histogram, BinningAndFractions) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.9, 9.9}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);  // 0.5, 1.5
  EXPECT_EQ(h.count(1), 2u);  // 2.5, 2.9
  EXPECT_EQ(h.count(4), 1u);  // 9.9
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(15.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

// ---------------------------------------------------------------- Jain --

TEST(Jain, PerfectFairnessIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(Jain, KnownValue) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(jain_fairness({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(Jain, DegenerateCases) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
  // One user hogging everything among n: index -> 1/n.
  EXPECT_NEAR(jain_fairness({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

// ----------------------------------------------------------------- Rng --

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  const std::vector<double> w = {0.0, 1.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10'000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 10'000.0, 0.9, 0.03);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(5);
  const std::vector<double> w = {0.0, 0.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) ++counts[rng.weighted_index(w)];
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  Rng b(42);
  (void)b.fork();
  // Parent streams stay in sync after forking.
  EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  // Child differs from a fresh seed-42 generator.
  Rng fresh(42);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    any_diff |= child.uniform_int(0, 1 << 30) != fresh.uniform_int(0, 1 << 30);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

// -------------------------------------------------------- TablePrinter --

TEST(TablePrinter, AlignsAndPrintsRows) {
  TablePrinter t({"name", "value"});
  t.add_row("alpha", 1.5);
  t.add_row("b", std::string("xyz"));
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.500"), std::string::npos);
  EXPECT_NE(out.find("xyz"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

}  // namespace
}  // namespace w11
