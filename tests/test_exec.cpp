// Unit tests for exec/: deterministic TaskPool and ShardRng.
//
// The load-bearing property is that every pool-based computation is
// bit-for-bit identical to its serial execution at any worker count; these
// tests pin that down for ordered reduction, exception propagation, nesting,
// and seed derivation. The stress cases double as the TSAN workload
// (CI runs this binary under -fsanitize=thread).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "exec/shard_rng.hpp"
#include "exec/task_pool.hpp"

namespace w11::exec {
namespace {

// ------------------------------------------------------------ coverage --

TEST(TaskPool, ParallelForRunsEveryIndexExactlyOnce) {
  for (int workers : {1, 2, 4, 8}) {
    TaskPool pool(workers);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << workers
                                   << " workers";
  }
}

TEST(TaskPool, WorkersReportsLanesIncludingCaller) {
  EXPECT_EQ(TaskPool(1).workers(), 1);
  EXPECT_EQ(TaskPool(4).workers(), 4);
  EXPECT_GE(TaskPool(0).workers(), 1);  // 0 -> default_workers()
}

TEST(TaskPool, LaneArgumentIsInRangeAndLaneZeroIsCaller) {
  TaskPool pool(4);
  constexpr std::size_t kN = 5'000;
  std::vector<int> lane_of(kN, -1);
  pool.parallel_for(kN, [&](std::size_t i, int lane) { lane_of[i] = lane; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_GE(lane_of[i], 0);
    ASSERT_LT(lane_of[i], pool.workers());
  }

  // The serial pool executes everything on the caller, lane 0.
  TaskPool serial(1);
  serial.parallel_for(8, [&](std::size_t, int lane) { EXPECT_EQ(lane, 0); });
}

TEST(TaskPool, ParallelMapPreservesIndexOrder) {
  TaskPool pool(4);
  constexpr std::size_t kN = 4'096;
  const std::vector<std::uint64_t> out = pool.parallel_map<std::uint64_t>(
      kN, [](std::size_t i) { return static_cast<std::uint64_t>(i) * 3 + 1; });
  ASSERT_EQ(out.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], i * 3 + 1);
}

// -------------------------------------------------------- determinism --

// Sums whose value depends on FP accumulation order: if the reduction ever
// folded in completion order, different worker counts would disagree in the
// low bits. Require bitwise equality with the serial fold.
TEST(TaskPool, OrderedReductionIsBitIdenticalAcrossWorkerCounts) {
  constexpr std::size_t kN = 20'000;
  auto term = [](std::size_t i) {
    return std::sin(static_cast<double>(i) * 1e-3) /
           (1.0 + static_cast<double>(i % 97));
  };

  double serial = 0.0;
  for (std::size_t i = 0; i < kN; ++i) serial += term(i);

  for (int workers : {1, 2, 4, 8}) {
    TaskPool pool(workers);
    const double got = pool.parallel_reduce<double>(
        kN, 0.0, term, [](double a, double b) { return a + b; });
    ASSERT_EQ(serial, got) << "FP sum diverged at " << workers << " workers";
  }
}

TEST(TaskPool, RepeatedRunsOnOnePoolAreIdentical) {
  TaskPool pool(4);
  constexpr std::size_t kN = 2'048;
  auto run = [&] {
    return pool.parallel_map<double>(kN, [](std::size_t i) {
      return std::cos(static_cast<double>(i)) * 1e-6;
    });
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a, b);
}

// --------------------------------------------------------- exceptions --

TEST(TaskPool, PropagatesLowestFailingIndexAndStaysUsable) {
  TaskPool pool(4);
  constexpr std::size_t kN = 3'000;
  for (int round = 0; round < 3; ++round) {
    try {
      pool.parallel_for(kN, [](std::size_t i) {
        if (i % 1000 == 500) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      // Failing indices are 500, 1500, 2500; the propagated exception must
      // be the lowest one regardless of which lane hit which chunk.
      EXPECT_STREQ(e.what(), "boom at 500");
    }

    // The pool must be fully reusable after an exceptional batch.
    std::atomic<std::size_t> done{0};
    pool.parallel_for(kN, [&](std::size_t) {
      done.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), kN);
  }
}

// ------------------------------------------------------------- nesting --

TEST(TaskPool, NestedParallelForRunsInlineWithoutDeadlock) {
  TaskPool pool(4);
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    EXPECT_TRUE(TaskPool::in_task());
    // Nested call: must execute inline on this lane, not re-enqueue.
    pool.parallel_for(kInner, [&](std::size_t i) {
      hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_FALSE(TaskPool::in_task());
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

// -------------------------------------------------------------- stress --

// Many small batches back to back: exercises enqueue/steal/wake paths under
// contention. Run under TSAN in CI; any unsynchronized access to Batch or
// lane deques shows up here.
TEST(TaskPoolStress, ManySmallBatchesAreCoherent) {
  TaskPool pool(4);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 16 + static_cast<std::size_t>(round % 48);
    std::vector<std::uint32_t> out(n, 0);
    pool.parallel_for(n, [&](std::size_t i) {
      out[i] = static_cast<std::uint32_t>(i * i);
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i * i);
  }
}

TEST(TaskPoolStress, LargeBatchReductionMatchesSerial) {
  TaskPool pool(8);
  constexpr std::size_t kN = 200'000;
  const std::uint64_t got = pool.parallel_reduce<std::uint64_t>(
      kN, std::uint64_t{0},
      [](std::size_t i) { return static_cast<std::uint64_t>(i) ^ (i << 7); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  std::uint64_t want = 0;
  for (std::size_t i = 0; i < kN; ++i)
    want += static_cast<std::uint64_t>(i) ^ (i << 7);
  EXPECT_EQ(got, want);
}

// ------------------------------------------------------------ ShardRng --

TEST(ShardRng, MatchesRngFork) {
  const std::uint64_t root = 0xDEADBEEFCAFEF00DULL;
  ShardRng shards(root);
  Rng reference(root);
  for (std::uint64_t stream : {0ULL, 1ULL, 7ULL, 1'000'000ULL}) {
    Rng a = shards.rng_for(stream);
    Rng b = reference.fork(stream);
    for (int i = 0; i < 16; ++i) ASSERT_EQ(a.engine()(), b.engine()());
  }
}

TEST(ShardRng, StreamsAreIndependentOfDrawOrder) {
  // Task RNGs must depend only on (root seed, stream id) — never on how
  // many draws other streams made, or results would vary with scheduling.
  ShardRng shards(42);
  Rng first = shards.rng_for(3);
  Rng burner = shards.rng_for(9);
  for (int i = 0; i < 1'000; ++i) burner.engine()();
  Rng second = shards.rng_for(3);
  for (int i = 0; i < 16; ++i) ASSERT_EQ(first.engine()(), second.engine()());
}

TEST(ShardRng, DistinctStreamsDiverge) {
  ShardRng shards(7);
  Rng a = shards.rng_for(0);
  Rng b = shards.rng_for(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.engine()() == b.engine()()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(ShardRng, TasksDrawingFromOwnStreamsAreDeterministic) {
  // The end-to-end pattern the planner/bench sharding uses: per-task RNG
  // forked by index, results reduced in index order.
  auto run = [](int workers) {
    TaskPool pool(workers);
    ShardRng shards(123);
    return pool.parallel_map<double>(512, [&](std::size_t i) {
      Rng r = shards.rng_for(i);
      double acc = 0.0;
      for (int d = 0; d < 32; ++d) acc += r.uniform();
      return acc;
    });
  };
  const auto serial = run(1);
  for (int workers : {2, 4, 8}) ASSERT_EQ(serial, run(workers));
}

TEST(ShardRng, BackoffJitterStreamsAreWorkerCountInvariant) {
  // The ctrl::PlanApplier derives retry jitter from a stream keyed by
  // (ap << 32) | attempt — the exact pattern under test here. The full
  // (ap, attempt) grid of draws must come out identical whether the draws
  // happen serially or race across any number of pool workers.
  constexpr std::uint32_t kAps = 64;
  constexpr int kAttempts = 8;
  const ShardRng shards(0xC0FFEE);
  auto stream_of = [](std::uint32_t ap, int attempt) {
    return (static_cast<std::uint64_t>(ap) << 32) |
           static_cast<std::uint64_t>(attempt);
  };
  auto draw = [&](std::uint32_t ap, int attempt) {
    Rng r = shards.rng_for(stream_of(ap, attempt));
    return r.uniform(0.75, 1.25);  // the jitter scale draw
  };
  std::vector<double> serial;
  for (std::uint32_t ap = 0; ap < kAps; ++ap)
    for (int attempt = 2; attempt < 2 + kAttempts; ++attempt)
      serial.push_back(draw(ap, attempt));
  for (int workers : {1, 2, 4, 8}) {
    TaskPool pool(workers);
    const auto parallel = pool.parallel_map<double>(
        kAps * kAttempts, [&](std::size_t i) {
          const auto ap = static_cast<std::uint32_t>(i / kAttempts);
          const int attempt = 2 + static_cast<int>(i % kAttempts);
          return draw(ap, attempt);
        });
    ASSERT_EQ(serial, parallel) << workers << " workers";
  }
}

TEST(ShardRng, BackoffJitterStreamsDoNotCollide) {
  // (ap, attempt) pairs map to distinct streams: neighboring APs at the
  // same attempt, and the same AP at successive attempts, never share a
  // jitter sequence (a collision would synchronize retry thundering herds).
  const ShardRng shards(99);
  auto first_draw = [&](std::uint32_t ap, int attempt) {
    Rng r = shards.rng_for((static_cast<std::uint64_t>(ap) << 32) |
                           static_cast<std::uint64_t>(attempt));
    return r.uniform();
  };
  std::vector<double> seen;
  for (std::uint32_t ap = 0; ap < 32; ++ap)
    for (int attempt = 2; attempt < 10; ++attempt)
      seen.push_back(first_draw(ap, attempt));
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
  // And the same (root, stream) always replays the same value.
  EXPECT_EQ(first_draw(5, 3), first_draw(5, 3));
}

}  // namespace
}  // namespace w11::exec
